//! The two competing BNN accelerators, functionally reproduced:
//! VIBNN's Gaussian weight sampling and BYNQNet's sampling-free moment
//! propagation — the paper's Table IV baselines.
//!
//! ```bash
//! cargo run --release --example baseline_comparison
//! ```

use bnn_fpga::platforms::bynqnet::{BynqnetNetwork, BynqnetPerfModel};
use bnn_fpga::platforms::vibnn::{VibnnNetwork, VibnnPerfModel};
use bnn_fpga::rng::SoftRng;

fn entropy(p: &[f32]) -> f64 {
    p.iter()
        .filter(|&&v| v > 0.0)
        .map(|&v| -f64::from(v) * f64::from(v).ln())
        .sum()
}

fn main() {
    // --- VIBNN: sample weights per inference with a hardware Gaussian RNG.
    let vibnn = VibnnNetwork::mnist_784_400_400_10(7);
    let mut grng = VibnnNetwork::hardware_sampler(42);
    let mut rng = SoftRng::new(3);
    let x: Vec<f32> = (0..784).map(|_| rng.next_f32()).collect();
    let pred = vibnn.predictive(&x, 20, &mut grng);
    println!("VIBNN (784-400-400-10, CLT Gaussian sampler):");
    println!(
        "  predictive entropy over 20 weight samples: {:.3} nats",
        entropy(&pred)
    );
    let perf = VibnnPerfModel::default();
    println!(
        "  perf model: {:.1} GOP/s -> {:.3} ms per weight sample\n",
        perf.throughput_gops(),
        perf.sample_latency_ms(&vibnn)
    );

    // --- BYNQNet: one pass propagates (mean, variance) analytically.
    let bynq = BynqnetNetwork::new(&[784, 128, 64, 10], 11);
    let mean: Vec<f32> = (0..784).map(|_| rng.next_f32()).collect();
    let var = vec![0.01f32; 784];
    let (m, v) = bynq.forward_moments(&mean, &var);
    println!("BYNQNet (quadratic activations, moment propagation):");
    let top = m
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("non-empty");
    println!(
        "  top logit: class {} with mean {:.3} +- {:.3} (one pass, no sampling)",
        top.0,
        top.1,
        v[top.0].sqrt()
    );
    let perf = BynqnetPerfModel::default();
    println!(
        "  perf model: {:.2} GOP/s on {} DSPs",
        perf.throughput_gops(),
        perf.dsps
    );

    println!("\nTable IV context: the paper's accelerator reaches ~1590 GOP/s on");
    println!("ResNet-101 — see `cargo bench -p bnn-bench --bench table4`.");
}
