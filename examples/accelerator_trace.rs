//! Per-layer accelerator trace: where the cycles go, and what
//! intermediate-layer caching buys.
//!
//! Prints the cycle/bandwidth breakdown of VGG-11 on the paper's
//! 64/64/1 configuration, per layer, then the IC speedup across the
//! `{L, S}` grid of Table III.
//!
//! ```bash
//! cargo run --release --example accelerator_trace
//! ```

use bnn_fpga::accel::{AccelConfig, PerfModel};
use bnn_fpga::mcd::BayesConfig;
use bnn_fpga::nn::{arch::extract_layers, models};
use bnn_fpga::tensor::Shape4;

fn main() {
    let net = models::vgg11(10, 3, 32, 8, 1);
    let layers = extract_layers(&net, Shape4::new(1, 3, 32, 32));
    let cfg = AccelConfig::paper_default();
    let perf = PerfModel::new(cfg);

    println!("VGG-11 (reduced) on P_C=64 P_F=64 P_V=1 @ 225 MHz\n");
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>8} {:>7}",
        "layer", "compute", "memory", "total", "bound", "util%"
    );
    let mut sum = 0u64;
    for l in &layers {
        let t = perf.layer_timing(l, true, true);
        sum += t.total_cycles;
        println!(
            "{:<22} {:>9} {:>9} {:>9} {:>8} {:>7.1}",
            l.name,
            t.compute_cycles,
            t.mem_cycles,
            t.total_cycles,
            format!("{:?}", t.bound),
            t.utilization * 100.0
        );
    }
    println!(
        "{:<22} {:>9} {:>9} {:>9}   ({:.3} ms/pass)\n",
        "TOTAL",
        "",
        "",
        sum,
        cfg.cycles_to_ms(sum)
    );

    println!("Intermediate-layer caching speedup (Table III sweep):");
    println!(
        "{:>4} {:>5} {:>12} {:>12} {:>9}",
        "L", "S", "w/ IC [ms]", "w/o IC [ms]", "speedup"
    );
    for &l in &[1usize, 4, 6, 8, 11] {
        for &s in &[10usize, 50, 100] {
            let b = BayesConfig::new(l, s);
            let with = perf.network_timing(&layers, b, true);
            let without = perf.network_timing(&layers, b, false);
            println!(
                "{:>4} {:>5} {:>12.3} {:>12.3} {:>8.1}x",
                l,
                s,
                with.latency_ms(&cfg),
                without.latency_ms(&cfg),
                without.total_cycles as f64 / with.total_cycles as f64
            );
        }
    }
}
