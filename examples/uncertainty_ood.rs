//! Out-of-distribution uncertainty (the paper's Figure 1 story).
//!
//! A standard network is confidently wrong on pure noise; a Bayesian
//! network inferred through MCD spreads its predictive mass. This
//! example trains LeNet-5 on synthetic MNIST, then prints confidence
//! histograms on Gaussian-noise inputs for both models, plus the aPE
//! metric the paper optimises.
//!
//! ```bash
//! cargo run --release --example uncertainty_ood
//! ```

use bnn_fpga::data::{gaussian_noise_like, synth_mnist};
use bnn_fpga::mcd::uncertainty::{max_entropy, max_prob, mutual_information_rows};
use bnn_fpga::mcd::{avg_predictive_entropy, BayesConfig, ParallelConfig};
use bnn_fpga::nn::{models, MaskSet, SgdConfig, Trainer};
use bnn_fpga::tensor::{softmax_rows, Tensor};
use bnn_fpga::Session;

fn confidence_histogram(probs: &Tensor, bins: usize) -> Vec<f64> {
    let mut hist = vec![0.0f64; bins];
    let n = probs.shape().n;
    for i in 0..n {
        // Max-prob confidence from the shared uncertainty module —
        // the same quantity a bnn-serve reply carries per request.
        let (_, conf) = max_prob(probs.item(i));
        let b = ((f64::from(conf) * bins as f64) as usize).min(bins - 1);
        hist[b] += 1.0;
    }
    for h in &mut hist {
        *h /= n as f64;
    }
    hist
}

fn print_hist(label: &str, hist: &[f64]) {
    println!("{label}");
    for (b, &h) in hist.iter().enumerate() {
        let lo = b as f64 / hist.len() as f64;
        let bar = "#".repeat((h * 60.0).round() as usize);
        println!("  {:4.2}-{:4.2} | {:5.2} {}", lo, lo + 0.1, h, bar);
    }
}

fn main() {
    let ds = synth_mnist(1200, 200, 11);
    let l = 5; // fully Bayesian (L = N)

    // Two networks, identical except for MCD: the overconfidence of
    // Figure 1 needs a *standard* (dropout-free) network; an MCD-
    // trained network evaluated deterministically is already strongly
    // regularised.
    let mut bnn_net = models::lenet5(10, 1, 28, 3);
    let mut bnn_tr = Trainer::new(&bnn_net, SgdConfig::default(), l, 0.25, 5);
    let mut std_net = models::lenet5(10, 1, 28, 3);
    let mut std_tr = Trainer::new(&std_net, SgdConfig::default(), 0, 0.25, 5);
    for epoch in 0..8 {
        let (bl, ba) = bnn_tr.train_epoch(&mut bnn_net, &ds.train_x, &ds.train_y, 32);
        let (sl, sa) = std_tr.train_epoch(&mut std_net, &ds.train_x, &ds.train_y, 32);
        println!("epoch {epoch}: bnn loss {bl:.3} acc {ba:.3} | std loss {sl:.3} acc {sa:.3}");
    }

    // OOD probe: Gaussian noise with the training data's statistics.
    let noise = gaussian_noise_like(&ds, 200, 99);

    // Standard NN: deterministic forward, no masks.
    let mut std_logits = std_net.forward(&noise, &MaskSet::none());
    let (n, k) = (std_logits.shape().n, std_logits.shape().item_len());
    softmax_rows(std_logits.as_mut_slice(), n, k);
    let std_probs = std_logits;

    // BNN: MCD with S = 50 samples, served through a Session. Keep
    // the per-sample passes so the epistemic share (BALD mutual
    // information) can be decomposed out of the total entropy.
    let mut session = Session::for_graph(&bnn_net)
        .bayes(BayesConfig::new(l, 50))
        .parallel(ParallelConfig::max_parallel())
        .seed(7)
        .build();
    let passes = session.sample_probs(&noise);
    let bnn_probs = bnn_fpga::mcd::mean_probs(&passes, passes.len());

    println!("\n== Confidence on random-noise inputs (Figure 1) ==\n");
    print_hist(
        "Standard neural network:",
        &confidence_histogram(&std_probs, 10),
    );
    println!();
    print_hist(
        "Bayesian neural network (MCD, S=50):",
        &confidence_histogram(&bnn_probs, 10),
    );

    let ape_std = avg_predictive_entropy(&std_probs);
    let ape_bnn = avg_predictive_entropy(&bnn_probs);
    println!("\naPE on noise: standard NN {ape_std:.3} nats, BNN {ape_bnn:.3} nats");
    let mi_rows = mutual_information_rows(&passes);
    let mi_bnn = mi_rows.iter().sum::<f64>() / mi_rows.len() as f64;
    println!("BNN epistemic share (BALD mutual information): {mi_bnn:.3} nats");
    println!(
        "(higher is better on OOD data; max = ln 10 = {:.3})",
        max_entropy(10)
    );
}
