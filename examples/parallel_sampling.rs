//! The parallel Monte-Carlo sampling engine: predictive inference at
//! `S = 100` with the serial engine and with a 4-worker team, showing
//! wall-clock per configuration and that the distributions are
//! bit-identical (the mask stream is drawn serially either way).
//!
//! Run with `cargo run --release --example parallel_sampling`.

use bnn_fpga::mcd::{BayesConfig, McdPredictor, ParallelConfig, SoftwareMaskSource};
use bnn_fpga::nn::models;
use bnn_fpga::tensor::{Shape4, Tensor};
use std::time::Instant;

fn main() {
    let net = models::lenet5(10, 1, 28, 5);
    let x = Tensor::full(Shape4::new(1, 1, 28, 28), 0.25);
    let cfg = BayesConfig::new(3, 100);

    let timed = |label: &str, parallel: ParallelConfig| -> Tensor {
        let pred = McdPredictor::new(&net).with_parallelism(parallel);
        let mut src = SoftwareMaskSource::new(42);
        let start = Instant::now();
        let reps = 20;
        let mut probs = pred.predictive(&x, cfg, &mut src);
        for _ in 1..reps {
            probs = pred.predictive(&x, cfg, &mut src);
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
        println!("{label:<28} {ms:8.2} ms / predictive (S = {})", cfg.s);
        probs
    };

    let serial = timed("serial (threads = 1)", ParallelConfig::serial());
    let four = timed("thread team (threads = 4)", ParallelConfig::with_threads(4));
    let auto = timed("auto (all CPUs)", ParallelConfig::max_parallel());

    assert_eq!(
        serial.as_slice(),
        four.as_slice(),
        "engines must agree bit-for-bit"
    );
    assert_eq!(
        serial.as_slice(),
        auto.as_slice(),
        "engines must agree bit-for-bit"
    );
    println!("\nall engines bit-identical on the same mask stream ✓");
    println!(
        "host CPUs: {}",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
}
