//! Quickstart: the full pipeline on one page.
//!
//! Train a small Bayesian LeNet-5 on the synthetic MNIST stand-in,
//! fold batch norm, quantize to int8, run it on the simulated FPGA
//! accelerator and compare against the paper's CPU/GPU baselines.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use bnn_fpga::accel::{AccelConfig, Accelerator};
use bnn_fpga::data::synth_mnist;
use bnn_fpga::mcd::BayesConfig;
use bnn_fpga::nn::{arch::extract_layers, models, SgdConfig, Trainer};
use bnn_fpga::platforms::PlatformModel;
use bnn_fpga::quant::Quantizer;

fn main() {
    // 1. Data + model. LeNet-5 has N = 5 weight layers, each guarded
    //    by an MCD site; we make the last L = 2 Bayesian.
    let ds = synth_mnist(1200, 128, 42);
    let mut net = models::lenet5(10, 1, 28, 7);
    let bayes = BayesConfig::new(2, 10); // L = 2, S = 10, p = 0.25

    // 2. Train with MCD active at the Bayesian sites (a few quick epochs).
    let mut trainer = Trainer::new(&net, SgdConfig::default(), bayes.l, bayes.p, 1);
    for epoch in 0..5 {
        let (loss, acc) = trainer.train_epoch(&mut net, &ds.train_x, &ds.train_y, 32);
        println!("epoch {epoch}: loss {loss:.3}, train acc {acc:.3}");
    }

    // 3. Deployment: fold BN, calibrate, quantize to int8.
    let folded = net.fold_batch_norm();
    let qgraph = Quantizer::new(&folded).calibrate(&ds.train_x).quantize();

    // 4. Run one test image on the simulated accelerator (the paper's
    //    64/64/1 configuration at 225 MHz, LFSR Bernoulli sampler).
    let accel = Accelerator::new(
        AccelConfig::paper_default(),
        &folded,
        &qgraph,
        ds.image_shape(),
    );
    let image = ds.test_x.select_item(0);
    let run = accel.run(&image, bayes, 2024);

    let pred = run.predictive.argmax_item(0);
    let conf = run.predictive.item(0)[pred];
    println!(
        "\nprediction: class {pred} (confidence {conf:.3}, truth {})",
        ds.test_y[0]
    );
    println!(
        "latency: {:.3} ms over S = {} samples (IC: prefix runs once)",
        run.timing.latency_ms(accel.config()),
        bayes.s
    );
    println!(
        "off-chip traffic: {:.1} KiB weights, {:.1} KiB activations",
        run.traffic.weight_bytes as f64 / 1024.0,
        (run.traffic.input_bytes + run.traffic.output_bytes) as f64 / 1024.0
    );
    println!(
        "sampler: {} mask bits, {:.1}% dropped",
        run.sampler.bits_produced,
        100.0 * run.sampler.bits_dropped as f64 / run.sampler.bits_produced.max(1) as f64
    );

    // 5. Compare against the paper's software baselines.
    let layers = extract_layers(&folded, ds.image_shape());
    let cpu = PlatformModel::i9_9900k().bayes_latency_ms(&layers, bayes);
    let gpu = PlatformModel::rtx_2080_super().bayes_latency_ms(&layers, bayes);
    println!(
        "\nbaselines ({} MC samples, no IC): CPU {cpu:.3} ms, GPU {gpu:.3} ms",
        bayes.s
    );
}
