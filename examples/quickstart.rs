//! Quickstart: the full pipeline on one page.
//!
//! Train a small Bayesian LeNet-5 on the synthetic MNIST stand-in,
//! fold batch norm, quantize to int8, then serve the *same* seeded
//! Monte Carlo prediction through one `Session` API on all four
//! execution substrates — f32 software, f32 with batched-sample GEMM
//! fusion (`Backend::Fused`: bit-identical to `Backend::Float` but
//! each suffix weight matrix streams once per layer instead of once
//! per sample — prefer it when `S` is large), int8 integer, and the
//! simulated FPGA accelerator — compare against the paper's CPU/GPU
//! baselines, serve four concurrent clients through the
//! request-coalescing `bnn-serve` front door, and finish with the
//! same server on a TCP socket: a binary-protocol prediction with
//! its seed echoed for offline replay, plus a `GET /status`
//! telemetry fetch (what `curl http://host:port/status` would see).
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use bnn_fpga::accel::{AccelConfig, Accelerator};
use bnn_fpga::data::synth_mnist;
use bnn_fpga::mcd::{BayesConfig, ParallelConfig};
use bnn_fpga::net::{NetClient, NetConfig, NetServer, Request, Response};
use bnn_fpga::nn::{arch::extract_layers, models, SgdConfig, Trainer};
use bnn_fpga::platforms::PlatformModel;
use bnn_fpga::quant::Quantizer;
use bnn_fpga::{Backend, BatchPolicy, Priority, ServeBackend, ServeError, Server, Session};

fn main() {
    // 1. Data + model. LeNet-5 has N = 5 weight layers, each guarded
    //    by an MCD site; we make the last L = 2 Bayesian.
    let ds = synth_mnist(1200, 128, 42);
    let mut net = models::lenet5(10, 1, 28, 7);
    let bayes = BayesConfig::new(2, 10); // L = 2, S = 10, p = 0.25

    // 2. Train with MCD active at the Bayesian sites (a few quick epochs).
    let mut trainer = Trainer::new(&net, SgdConfig::default(), bayes.l, bayes.p, 1);
    for epoch in 0..5 {
        let (loss, acc) = trainer.train_epoch(&mut net, &ds.train_x, &ds.train_y, 32);
        println!("epoch {epoch}: loss {loss:.3}, train acc {acc:.3}");
    }

    // 3. Deployment: fold BN, calibrate, quantize to int8, compile the
    //    accelerator (the paper's 64/64/1 configuration at 225 MHz).
    let folded = net.fold_batch_norm();
    let qgraph = Quantizer::new(&folded).calibrate(&ds.train_x).quantize();
    let accel = Accelerator::new(AccelConfig::default(), &folded, &qgraph, ds.image_shape());

    // 4. Serve: one Session per substrate, same Bayesian protocol,
    //    same seed -> same mask stream everywhere. Each session owns a
    //    persistent WorkerPool sized by its ParallelConfig (serial ->
    //    zero resident workers, inline execution); on a multi-core
    //    host, opt into the two-axis schedule with e.g.
    //    `.parallel(ParallelConfig::with_threads(4).with_batch_threads(2))`
    //    or share one pool across sessions via `.pool(..)` — the
    //    predictions are bit-identical under every schedule.
    let image = ds.test_x.select_item(0);
    let build = |backend: Backend| {
        Session::for_graph(&folded)
            .backend(backend)
            .bayes(bayes)
            .parallel(ParallelConfig::serial())
            .seed(2024)
            .build()
    };
    println!(
        "\n== the same prediction on four substrates (truth {}) ==",
        ds.test_y[0]
    );
    for backend in [
        Backend::Float,
        Backend::Fused,
        Backend::Int8(qgraph.clone()),
        Backend::Accel(accel),
    ] {
        let mut session = build(backend);
        let probs = session.predictive(&image);
        let pred = probs.argmax_item(0);
        let conf = probs.item(0)[pred];
        let cost = session.last_cost().expect("predictive records cost");
        print!(
            "{:>6}: class {pred} (confidence {conf:.3}), wall {:.3} ms",
            session.backend_name(),
            cost.wall_ms
        );
        match cost.model {
            // The accelerator carries a full hardware cost model; the
            // software paths model weight-streaming traffic only (the
            // quantity `Backend::Fused` cuts by its factor of S).
            Some(m) if m.cycles > 0 => println!(
                ", modelled {:.3} ms ({} cycles, {:.1} KiB off-chip)",
                m.latency_ms,
                m.cycles,
                m.mem_bytes as f64 / 1024.0
            ),
            Some(m) => println!(
                ", {:.1} KiB weights streamed (modelled)",
                m.mem_bytes as f64 / 1024.0
            ),
            None => println!(),
        }
    }

    // 5. Compare against the paper's software baselines.
    let layers = extract_layers(&folded, ds.image_shape());
    let cpu = PlatformModel::i9_9900k().bayes_latency_ms(&layers, bayes);
    let gpu = PlatformModel::rtx_2080_super().bayes_latency_ms(&layers, bayes);
    println!(
        "\nbaselines ({} MC samples, no IC): CPU {cpu:.3} ms, GPU {gpu:.3} ms",
        bayes.s
    );

    // 6. Concurrent serving: the bnn-serve front door. Many clients
    //    submit single inputs through cheap cloneable handles; one
    //    resident dispatcher coalesces them into micro-batches and
    //    hands each caller its probabilities plus an uncertainty
    //    summary and its own cost slice. Each request's masks derive
    //    from its own seed, so a reply is bit-identical whether the
    //    request was served alone or coalesced with strangers.
    let server = Server::for_graph(std::sync::Arc::new(folded.clone()))
        .backend(ServeBackend::Fused)
        .bayes(bayes)
        .policy(BatchPolicy {
            max_batch: 8,
            max_wait: std::time::Duration::from_millis(1),
            queue_cap: 64,
            ..BatchPolicy::default()
        })
        .seed(2024)
        .start();
    println!("\n== 4 concurrent clients through one coalescing server ==");
    std::thread::scope(|scope| {
        for client in 0..4usize {
            let handle = server.handle();
            let x = ds.test_x.select_item(client);
            let truth = ds.test_y[client];
            scope.spawn(move || {
                let reply = handle.predict(x).wait().expect("served");
                let u = reply.uncertainty;
                println!(
                    "client {client}: class {} (truth {truth}, confidence {:.3}), \
                     entropy {:.3} nats (epistemic {:.3}), \
                     coalesced x{}, {:.3} ms",
                    u.predicted,
                    u.confidence,
                    u.entropy,
                    u.mutual_information,
                    reply.coalesced,
                    reply.cost.wall_ms
                );
            });
        }
    });

    // 7. Admission control: requests carry a priority and an optional
    //    queue-time budget, and every outcome is a typed `ServeError`.
    //    A latency-critical caller submits High with a deadline; if
    //    the queue can't reach it in time it gets a clean
    //    `DeadlineExceeded` back instead of a late answer.
    let handle = server.handle();
    let urgent = handle
        .request(ds.test_x.select_item(5))
        .priority(Priority::High)
        .deadline(std::time::Duration::from_millis(250))
        .seed(7)
        .submit();
    match urgent.wait() {
        Ok(reply) => println!(
            "\nurgent client: class {} in time (confidence {:.3})",
            reply.uncertainty.predicted, reply.uncertainty.confidence
        ),
        Err(ServeError::DeadlineExceeded) => {
            println!("\nurgent client: queue budget lapsed — fall back")
        }
        Err(err) => println!("\nurgent client: {err}"),
    }
    let stats = server.stats();
    println!(
        "server totals: {} served, {} shed, {} expired",
        stats.served, stats.shed, stats.expired
    );

    // 8. Over the wire: the bnn-net TCP front door puts that same
    //    admission layer on a socket — binary protocol v1 for
    //    predictions (every reply echoes its effective mask seed, so
    //    it can be reproduced offline bit-for-bit) and HTTP/1.1
    //    `GET /status` for live telemetry. The curl equivalent of the
    //    status fetch below:
    //
    //        curl http://127.0.0.1:<port>/status
    let front = NetServer::bind("127.0.0.1:0", server, NetConfig::default())
        .expect("bind loopback front door");
    let addr = front.local_addr();
    println!("\n== the same server over TCP ({addr}) ==");
    let mut client = NetClient::connect(addr).expect("connect");
    let response = client
        .send(
            &Request::new(ds.test_x.select_item(6))
                .tenant("quickstart")
                .seed(99),
        )
        .expect("round trip");
    match response {
        Response::Reply(reply) => println!(
            "wire client: class {} (confidence {:.3}), seed echo {} — \
             replay offline with Session::seed({})",
            reply.uncertainty.predicted, reply.uncertainty.confidence, reply.seed, reply.seed
        ),
        Response::Error(err) => println!("wire client: typed error {:?}", err.code),
    }
    let status = bnn_fpga::net::http_get_status(addr).expect("GET /status");
    println!("GET /status -> {status}");
    front.shutdown();
}
