//! The random-number hardware: LFSRs, the Bernoulli mask pipeline and
//! the Gaussian samplers used by weight-sampling baselines.
//!
//! ```bash
//! cargo run --release --example hardware_sampler
//! ```

use bnn_fpga::rng::{
    BernoulliSampler, BoxMullerFixedSampler, CltGaussianSampler, DropProbability, GaussianSampler,
    Lfsr,
};

fn main() {
    // 1. The paper's 128-bit 4-tap LFSR (taps 128, 126, 101, 99).
    let mut lfsr = Lfsr::paper_128(0xACE1_F00D_1234_5678);
    let word = lfsr.step_word(64);
    println!("128-bit LFSR first 64 output bits: {word:016x}");
    let ones: u32 = (0..10_000).map(|_| u32::from(lfsr.step())).sum();
    println!(
        "bit balance over 10k cycles: {:.4} (ideal 0.5)\n",
        f64::from(ones) / 10_000.0
    );

    // 2. Bernoulli sampler: p = 0.25 = two LFSRs + AND gate, SIPO to
    //    P_F = 64-bit words, FIFO decoupling (paper Figure 3).
    let mut sampler = BernoulliSampler::new(DropProbability::quarter(), 64, 64, 42);
    let mask = sampler.generate_mask(64);
    let dropped = mask.iter().filter(|&&k| !k).count();
    println!("one 64-filter MCD mask ({dropped} dropped):");
    let line: String = mask.iter().map(|&k| if k { '1' } else { '.' }).collect();
    println!("  {line}");
    let mut total = 0u64;
    for _ in 0..1000 {
        total += sampler.generate_mask(64).iter().filter(|&&k| !k).count() as u64;
    }
    println!(
        "empirical drop rate over 64k bits: {:.4} (target 0.25)",
        total as f64 / 64_000.0
    );
    let st = sampler.stats();
    println!(
        "sampler stats: {} cycles, FIFO high-water {} words, {} stalls\n",
        st.cycles, st.fifo_high_water, st.stall_cycles
    );

    // 3. Gaussian samplers (VIBNN-style weight sampling).
    let mut clt = CltGaussianSampler::new(12, 16, 7);
    let mut bm = BoxMullerFixedSampler::new(7);
    for (name, xs) in [
        ("CLT (sum of 12 uniforms)", clt.sample_n(50_000)),
        ("fixed-point Box-Muller", bm.sample_n(50_000)),
    ] {
        let mean = xs.iter().map(|&v| f64::from(v)).sum::<f64>() / xs.len() as f64;
        let var = xs
            .iter()
            .map(|&v| (f64::from(v) - mean).powi(2))
            .sum::<f64>()
            / xs.len() as f64;
        let tail = xs.iter().filter(|v| v.abs() > 2.0).count() as f64 / xs.len() as f64;
        println!("{name}: mean {mean:+.4}, var {var:.4}, P(|z|>2) = {tail:.4} (normal: 0.0455)");
    }
}
