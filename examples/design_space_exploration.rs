//! The automatic optimization framework (paper Section IV, Figure 6).
//!
//! Runs both stages on ResNet-18: hardware optimization against the
//! Arria 10 SX660 budget, then the algorithmic `L × S` sweep under all
//! four optimization modes, and finally a constrained Opt-Confidence
//! search like the paper's Figure 6.
//!
//! ```bash
//! cargo run --release --example design_space_exploration
//! ```

use bnn_fpga::accel::FpgaDevice;
use bnn_fpga::framework::{
    optimize_hardware, Explorer, OptMode, Requirements, SyntheticMetricProvider,
};
use bnn_fpga::nn::{arch::extract_layers, models};
use bnn_fpga::tensor::Shape4;

fn main() {
    let net = models::resnet18(10, 3, 16, 1);
    let input = Shape4::new(1, 3, 32, 32);
    let layers = extract_layers(&net, input);

    // Stage 1: hardware optimization.
    let device = FpgaDevice::arria10_sx660();
    let cfg = optimize_hardware(&device, &[&layers]);
    println!(
        "hardware optimization on {}: P_C={} P_F={} P_V={} ({} multipliers, {:.0} GOP/s peak)\n",
        device.name,
        cfg.pc,
        cfg.pf,
        cfg.pv,
        cfg.multipliers(),
        cfg.peak_gops()
    );

    // Stage 2: algorithmic exploration (trend-model metrics for speed;
    // the bench harness uses trained networks).
    let explorer = Explorer::new(cfg, layers, net.n_sites());
    let mut provider = SyntheticMetricProvider::resnet18();

    println!("== Unconstrained optima (Table I style) ==");
    println!(
        "{:<16} {:>5} {:>5} {:>10} {:>8} {:>8} {:>9}",
        "mode", "L", "S", "FPGA[ms]", "aPE", "ECE[%]", "acc[%]"
    );
    for mode in OptMode::all() {
        let r = explorer.explore(&mut provider, mode, &Requirements::none());
        let c = r.selected.expect("unconstrained always feasible");
        println!(
            "{:<16} {:>5} {:>5} {:>10.2} {:>8.2} {:>8.2} {:>9.2}",
            mode.label(),
            c.l,
            c.s,
            c.fpga_ms,
            c.ape,
            c.ece * 100.0,
            c.accuracy * 100.0
        );
    }

    // Constrained exploration (Figure 6): latency, accuracy and
    // uncertainty bounds, optimise confidence inside the box.
    let req = Requirements {
        max_latency_ms: Some(10.0),
        min_accuracy: Some(0.92),
        min_ape: Some(0.5),
        max_ece: None,
    };
    let r = explorer.explore(&mut provider, OptMode::Confidence, &req);
    println!("\n== Constrained Opt-Confidence (Figure 6 box: lat<=10ms, acc>=92%, aPE>=0.5) ==");
    match r.selected {
        Some(c) => println!(
            "selected {{L={}, S={}}}: {:.2} ms, aPE {:.2}, ECE {:.2}%, acc {:.2}%",
            c.l,
            c.s,
            c.fpga_ms,
            c.ape,
            c.ece * 100.0,
            c.accuracy * 100.0
        ),
        None => println!("no feasible point — relax the constraints"),
    }
    let feasible = r.candidates.iter().filter(|c| c.feasible(&req)).count();
    println!(
        "candidates: {} total, {} feasible",
        r.candidates.len(),
        feasible
    );
}
