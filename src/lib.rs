//! **bnn-fpga** — a Rust reproduction of *"High-Performance FPGA-based
//! Accelerator for Bayesian Neural Networks"* (DAC 2021).
//!
//! # Serving: one engine, four substrates
//!
//! The paper's point is that a Monte Carlo Dropout workload — `S`
//! forward passes over a partially-Bayesian network — retargets
//! across execution substrates. This crate's [`Session`] API makes
//! that the front door: train → quantize → serve is one fluent
//! pipeline, and swapping the substrate is one builder call. The
//! substrates: f32 software (`Backend::Float`), f32 with
//! batched-sample GEMM fusion (`Backend::Fused` — weights stream once
//! per layer instead of once per sample, bit-identical results, the
//! fastest software path at large `S`), int8 integer
//! (`Backend::Int8`) and the simulated accelerator
//! (`Backend::Accel`).
//!
//! ```no_run
//! use bnn_fpga::accel::{AccelConfig, Accelerator};
//! use bnn_fpga::mcd::{BayesConfig, ParallelConfig};
//! use bnn_fpga::nn::models;
//! use bnn_fpga::quant::Quantizer;
//! use bnn_fpga::tensor::{Shape4, Tensor};
//! use bnn_fpga::{Backend, Session};
//!
//! let net = models::lenet5(10, 1, 28, 7).fold_batch_norm();
//! let calib = Tensor::zeros(Shape4::new(8, 1, 28, 28));
//! let qgraph = Quantizer::new(&net).calibrate(&calib).quantize();
//! let accel = Accelerator::new(AccelConfig::default(), &net, &qgraph, calib.shape());
//!
//! // Same protocol, same seeded mask stream — pick a substrate:
//! let mut float = Session::for_graph(&net)
//!     .bayes(BayesConfig::new(2, 10))
//!     .parallel(ParallelConfig::max_parallel())
//!     .seed(42)
//!     .build();
//! let mut fpga = Session::for_graph(&net)
//!     .backend(Backend::Accel(accel))
//!     .bayes(BayesConfig::new(2, 10))
//!     .seed(42)
//!     .build();
//!
//! let x = calib.select_item(0);
//! let p_sw = float.predictive(&x);
//! let p_hw = fpga.predictive(&x);
//! let cost = fpga.last_cost().unwrap();
//! println!("fpga: {} cycles, {:.3} ms modelled",
//!     cost.model.unwrap().cycles, cost.model.unwrap().latency_ms);
//! # let _ = (p_sw, p_hw);
//! ```
//!
//! Every substrate implements [`mcd::BayesBackend`]; the sampling
//! engine (mask pre-draw, two-axis batch × sample scheduling over a
//! persistent [`mcd::WorkerPool`], averaging, cost accounting) exists
//! once in [`mcd::backend`] and new substrates are drop-in
//! implementations. Each [`Session`] owns (or shares) its pool, so no
//! predictive call pays per-call thread spawn. The conformance
//! harness in [`mcd::conformance`] gives any new backend
//! cross-substrate agreement coverage (shared mask stream, thread and
//! pool-size invariance, batched-vs-unbatched serving, both schedule
//! axes, coalescing invariance) in one `assert_backend_agrees` call —
//! see `tests/backends.rs`.
//!
//! # Serving concurrent traffic: the `bnn-serve` front door
//!
//! A [`Session`] is the right shape for *batch* work — one owner, one
//! mask stream, dataset-sized calls. Concurrent single-input traffic
//! goes through [`Server`] (crate `bnn-serve`, re-exported as
//! [`serve`]): callers submit through cheap cloneable [`Handle`]s, a
//! resident dispatcher coalesces queued requests into micro-batches
//! under a [`BatchPolicy`] (`max_batch` / `max_wait` / `queue_cap`
//! backpressure), and every caller gets back its probabilities plus a
//! per-request [`mcd::Uncertainty`] summary (max-prob confidence,
//! predictive entropy, mutual information) and its own
//! [`mcd::CostReport`] slice. The load-bearing guarantee is
//! **coalescing invariance**: each request's masks derive from its own
//! seed (`serve::request_seed`, or pinned via
//! `Handle::predict_seeded`), so its reply is bit-identical whether it
//! is served alone or coalesced with arbitrary neighbors — on every
//! substrate, at any pool size. See `examples/quickstart.rs` for the
//! multi-client tour and [`Session::serve_requests`] for the
//! synchronous in-thread form.
//!
//! # Failure modes and guarantees
//!
//! The front door's contract under stress is that **every accepted
//! request resolves to exactly one typed outcome** — a served
//! [`Reply`] or a [`ServeError`] — and that nothing a caller does can
//! wedge the dispatcher:
//!
//! * **Overload** — the queue is bounded (`queue_cap`). A
//!   non-blocking submission against a full queue is handed back as
//!   [`ServeError::Rejected`] *with its input*
//!   ([`SubmitError::into_input`]), so the caller can retry —
//!   [`RetryPolicy`] packages the jittered-backoff loop. Requests
//!   carry a [`Priority`]; when a higher-priority request arrives at
//!   capacity it sheds the youngest strictly-lower-priority entry
//!   instead of being turned away, and micro-batches always drain the
//!   highest class first (FIFO within a class).
//! * **Deadlines** — a submission may attach a queue-time budget
//!   (`Submission::deadline`). A request whose budget lapses before
//!   its micro-batch forms resolves to
//!   [`ServeError::DeadlineExceeded`]; it is swept out at batch
//!   formation, never served late.
//! * **Backend faults** — a panicking micro-batch is quarantined:
//!   exactly its own requests resolve to
//!   [`ServeError::BackendFailed`] and the dispatcher keeps serving.
//!   A run of consecutive panics (builder knob
//!   `ServerBuilder::breaker_after`) trips a circuit breaker: queued
//!   requests fail over to `BackendFailed`, later submissions are
//!   refused at the door, and shutdown stays clean.
//! * **Shutdown** — closing the server drains every accepted request
//!   (bit-identically) and resolves late arrivals to
//!   [`ServeError::Shutdown`]; deadlines keep expiring during the
//!   drain.
//!
//! Observability: [`Server::stats`] counts served / shed / expired /
//! failed / rejected requests, plus live `queued` / `in_flight`
//! backlog gauges. The whole contract is exercised by a
//! deterministic fault-injection harness — [`mcd::ChaosBackend`]
//! injects seeded panics and delays at a pure, replayable per-call
//! schedule ([`mcd::fault_at`]), threaded through
//! `ServerBuilder::chaos`, and conformance check 7
//! ([`mcd::conformance::assert_chaos_agrees`]) pins fault containment
//! and bit-identical survivors on all four substrates.
//!
//! # Wire protocol: the `bnn-net` TCP front door
//!
//! [`NetServer`] (crate `bnn-net`, re-exported as [`net`]) puts the
//! admission layer on a TCP port with zero external dependencies — a
//! resident acceptor thread plus one worker per connection, speaking
//! two framings sniffed from the first four bytes of each connection
//! (`b"GET "` decodes as an impossible frame length, so they can
//! never be confused):
//!
//! **Binary protocol v1** — every frame is a little-endian `u32`
//! payload length followed by the payload; integers are little-endian
//! and floats travel as IEEE-754 bit patterns (replies are
//! bit-identical to the engine output). Payload layouts:
//!
//! | frame | layout |
//! |---|---|
//! | request (kind 1) | `ver u8, kind u8, flags u8, priority u8, tenant_len u8, tenant utf8, [deadline_us u64], [seed u64], n·c·h·w 4×u32, data (c·h·w)×f32` |
//! | reply (kind 2) | `ver, kind, id u64, seed u64, coalesced u32, k u32, probs k×f32, predicted u32, confidence f32, entropy f64, mutual_info f64, samples u64, batch u64, wall_ms f64, has_model u8, [cycles u64, latency_ms f64, mem_bytes u64]` |
//! | error (kind 3) | `ver, kind, code u8, flags u8, [id u64], [seed u64]` |
//!
//! Error codes: `1` Rejected, `2` DeadlineExceeded, `3`
//! BackendFailed, `4` Shutdown (the four [`ServeError`]s), plus
//! wire-only `5` RateLimited (the tenant's token bucket was empty)
//! and `6` Malformed (undecodable frame; the server closes the
//! connection after sending it). Malformed input of any kind —
//! truncated frame, oversized length prefix, bad version byte,
//! non-UTF-8 tenant id — resolves to a typed
//! [`net::DecodeError`], never a panic (the
//! `panic` audit rule covers `crates/net/src`).
//!
//! **Seed echo (reproducibility contract)** — every reply carries the
//! request's *effective* mask-stream seed: the one the client pinned,
//! or the server-derived [`request_seed`]`(base_seed, id)`. Serving
//! the same input through an offline [`Session`] seeded with the
//! echoed value reproduces the reply's probabilities bit for bit, so
//! any answer that ever crossed the wire can be re-derived and
//! audited after the fact (`tests/net_loopback.rs` pins this on all
//! four substrates).
//!
//! **Protocol v2: pipelining** — a request carrying a client-chosen
//! correlation id (`Request::corr`, flag bit `0x04`) upgrades the
//! frame to version 2 and the connection to pipelined mode: the
//! server keeps up to `NetConfig::max_pipeline` requests from one
//! connection in flight concurrently and echoes each id on the
//! matching reply or error frame, so responses correlate even when
//! admission reorders completion. Corr-less requests encode
//! byte-identical v1 frames, so lock-step peers keep working
//! unchanged. [`PipelinedClient`] is the client half: `submit` keeps
//! up to `depth` requests outstanding (draining the oldest response
//! when full), `recv`/`drain` correlate replies by echoed id, a typed
//! error frame mid-pipeline resolves only its own id, and every
//! socket wait is bounded by [`net::Timeouts`] surfacing as typed
//! `TimedOut` instead of hanging. `tests/net_pipeline.rs` pins
//! pipelined replies bit-identical to lock-step v1 on all four
//! substrates.
//!
//! **HTTP `GET /status`** — one-shot JSON telemetry from a
//! rolling-window monitor: nearest-rank p50/p99 latency over a ring
//! buffer, the admission counters and backlog gauges (exactly
//! [`Server::stats`]), a batch-size histogram, per-substrate cost
//! aggregates, and net-layer counters (connections, rate-limited,
//! malformed). Per-tenant policy ([`net::TenantPolicy`])
//! maps tenant ids to a priority ceiling plus a token-bucket rate
//! limit, enforced before admission so the wire boundary cannot jump
//! the in-process queue.
//!
//! ## Observability: `bnn-trace` spans, `GET /trace`, `GET /metrics`
//!
//! Every request that crosses the front door is decomposed into
//! stage spans by [`trace`] (`bnn-trace`): `decode` → `admission` →
//! `submit` on the socket thread, `queue_wait` → `batch_form` →
//! `compute` → `write` inside the serving engine, `writer_wait` on
//! the reply path, all nested under one `request` root span per
//! frame. The recorder is a per-thread bounded ring (oldest events
//! evicted, never blocking), gated behind one atomic flag: with
//! tracing disabled every instrumentation point is a single relaxed
//! load, and replies stay bit-identical either way — timestamps are
//! telemetry, never inputs (`tests/trace.rs` pins this on all four
//! substrates). Two export surfaces:
//!
//! * **`GET /trace`** drains the rings as Chrome trace-event JSON —
//!   load it in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)
//!   to see queueing, batching and compute laid out on a timeline.
//!   [`serve::Server::drain_trace`] is the in-process equivalent.
//! * **`GET /metrics`** renders Prometheus-style text: the rolling
//!   monitor's cumulative log2 request-latency histogram
//!   (`bnn_request_latency_us`), admission/net counters and backlog
//!   gauges, plus per-stage duration histograms
//!   (`bnn_stage_duration_us{stage=...}`) folded at record time — the
//!   stage aggregates survive `/trace` drains, so scrapes and trace
//!   pulls don't fight over the same data.
//!
//! The one wall-clock intake is `trace::clock`, a single audited
//! waiver site; everything downstream of it is display-only.
//!
//! ## Load testing: `bnn-loadgen`
//!
//! `cargo run -p bnn-net --bin loadgen --release -- --smoke` drives a
//! deterministic load test against the front door and writes a
//! machine-readable `BENCH_net.json` snapshot. The schedule is planned
//! entirely from `--seed` by [`net::loadgen::plan`] — per-connection
//! request classes (priority, tenant, deadline, weighted mix) and
//! arrival gaps replay bit-identically run to run, and adding
//! connections never reshuffles existing ones. `--mode closed` (the
//! default) submits through a [`PipelinedClient`] with bounded think
//! time so offered load tracks service capacity; `--mode fixed` and
//! `--mode poisson` are open-loop pacers at `--rate` requests/sec per
//! connection (Poisson gaps drawn from the seeded stream). Latencies
//! land in log2-bucket histograms ([`net::loadgen::LogHistogram`])
//! reported as interpolated p50/p99/p999 per class with
//! `latency_samples` counts, and at quiesce every client-side outcome
//! counter is cross-checked against `GET /status` — any mismatch or
//! transport error fails the run (and the CI smoke step). `--addr`
//! points the same workload at an external server instead of the
//! self-hosted fused LeNet-5.
//!
//! # Invariants (statically enforced by `bnn-audit`)
//!
//! Bit-identical replies — solo vs. coalesced, at any thread count,
//! on any substrate — are only as strong as the invariants the code
//! keeps everywhere, not just on the shapes the conformance harness
//! samples. `cargo run -p bnn-audit --release` (a CI gate) proves the
//! code *can't* reach for nondeterminism, via five named rules:
//!
//! * **`unsafe-audit`** — `unsafe` only in `crates/mcd/src/pool.rs`,
//!   each use immediately preceded by a `SAFETY:` argument, and every
//!   crate roof carries `#![deny(unsafe_code)]` or stricter. One
//!   audited lifetime-erasure must not quietly become two.
//! * **`determinism`** — the engine/kernel crates (`tensor`, `nn`,
//!   `rng`, `quant`, the deterministic modules of `mcd`, the
//!   load-generator planner and the `bnn-net` binaries, plus the
//!   `trace` recorder — whose only wall-clock intake is the
//!   single waived `trace::clock` module) may
//!   consume only seed-derived state: no `HashMap`/`HashSet`
//!   (hash-order iteration), no `Instant::now`/`SystemTime`
//!   (wall-clock), no OS randomness, no env-dependent branching.
//!   This is what makes "same seed, same reply" provable.
//! * **`concurrency`** — all data-parallel fan-out routes through
//!   [`mcd::WorkerPool`] (the one audited spawn site —
//!   order-preserving, caller-helps, panic-poisoning), and every
//!   `Mutex` unwrap in `serve`/`pool` states its poisoning policy.
//! * **`panic`** — no `unwrap`/`expect`/`panic!` on `bnn-serve`
//!   dispatcher paths outside `#[cfg(test)]`: a dispatcher panic
//!   kills the thread every `Handle` depends on, so any failure there
//!   must resolve to a typed [`ServeError`] instead.
//! * **`lint-headers`** — every crate roof keeps
//!   `#![warn(missing_docs)]` or stricter.
//!
//! Exceptions are inline, named and justified —
//! `audit:allow(<rule>) reason...` as the leading text of a regular
//! comment, covering its own line (trailing) or the next code line
//! (standalone). A waiver without a written reason is itself a
//! finding, so `grep -rn audit:allow` always returns the complete,
//! justified exception list; `AUDIT.json` tracks the counts as part
//! of the repo trajectory next to `BENCH_serve.json`.
//!
//! # Workspace map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`accel`] | `bnn-accel` | the accelerator simulator: NNE, cycle model, resource model, IC, `AccelBackend` |
//! | [`rng`] | `bnn-rng` | LFSRs, Bernoulli sampler, fixed-point Gaussian samplers |
//! | [`tensor`] | `bnn-tensor` | NCHW tensors, GEMM, im2col, pooling |
//! | [`nn`] | `bnn-nn` | layer-graph IR, f32 executor, backprop, SGD, model builders |
//! | [`data`] | `bnn-data` | synthetic MNIST/SVHN/CIFAR-like datasets, OOD noise |
//! | [`mcd`] | `bnn-mcd` | the `BayesBackend` trait, generic MC engine, `FloatBackend`/`FusedBackend`, conformance harness, uncertainty metrics |
//! | [`serve`] | `bnn-serve` | the request-coalescing serving front door: `Server`, `Handle`, `BatchPolicy` |
//! | [`net`] | `bnn-net` | the TCP front door: binary protocol v1/v2 (pipelining), `GET /status` telemetry, tenant gate, `loadgen` |
//! | [`trace`] | `bnn-trace` | stage-span recorder: per-thread rings, log2 histograms, Chrome-trace export behind `/trace` + `/metrics` |
//! | [`quant`] | `bnn-quant` | 8-bit linear quantization, int8 executor, `Int8Backend` |
//! | [`platforms`] | `bnn-platforms` | CPU/GPU latency models, VIBNN and BYNQNet baselines |
//! | [`framework`] | `bnn-framework` | the automatic hardware/algorithm optimization framework |
//!
//! See `examples/quickstart.rs` for the end-to-end tour: train → fold
//! BN → quantize → serve the same seeded prediction on all four
//! backends → compare against the paper's CPU/GPU baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod session;

pub use bnn_accel as accel;
pub use bnn_data as data;
pub use bnn_framework as framework;
pub use bnn_mcd as mcd;
pub use bnn_net as net;
pub use bnn_net::{NetClient, NetConfig, NetServer, PipelinedClient, Timeouts};
pub use bnn_nn as nn;
pub use bnn_platforms as platforms;
pub use bnn_quant as quant;
pub use bnn_rng as rng;
pub use bnn_serve as serve;
pub use bnn_serve::{
    request_seed, BatchPolicy, Handle, Pending, Priority, Reply, RetryPolicy, ServeBackend,
    ServeError, ServeStats, Server, Submission, SubmitError,
};
pub use bnn_tensor as tensor;
pub use bnn_trace as trace;
pub use session::{Backend, Session, SessionBuilder};
