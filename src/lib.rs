//! **bnn-fpga** — a Rust reproduction of *"High-Performance FPGA-based
//! Accelerator for Bayesian Neural Networks"* (DAC 2021).
//!
//! The crate is a facade over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`accel`] | `bnn-accel` | the accelerator simulator: NNE, cycle model, resource model, IC |
//! | [`rng`] | `bnn-rng` | LFSRs, Bernoulli sampler, fixed-point Gaussian samplers |
//! | [`tensor`] | `bnn-tensor` | NCHW tensors, GEMM, im2col, pooling |
//! | [`nn`] | `bnn-nn` | layer-graph IR, f32 executor, backprop, SGD, model builders |
//! | [`data`] | `bnn-data` | synthetic MNIST/SVHN/CIFAR-like datasets, OOD noise |
//! | [`mcd`] | `bnn-mcd` | Monte Carlo Dropout inference + uncertainty metrics |
//! | [`quant`] | `bnn-quant` | 8-bit linear quantization + int8 reference executor |
//! | [`platforms`] | `bnn-platforms` | CPU/GPU latency models, VIBNN and BYNQNet baselines |
//! | [`framework`] | `bnn-framework` | the automatic hardware/algorithm optimization framework |
//!
//! See `examples/quickstart.rs` for an end-to-end tour: train → fold BN
//! → quantize → run on the simulated accelerator → explore the design
//! space.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bnn_accel as accel;
pub use bnn_data as data;
pub use bnn_framework as framework;
pub use bnn_mcd as mcd;
pub use bnn_nn as nn;
pub use bnn_platforms as platforms;
pub use bnn_quant as quant;
pub use bnn_rng as rng;
pub use bnn_tensor as tensor;
