//! The `Session` serving API: one fluent pipeline from a trained
//! graph to Bayesian predictions on any execution substrate.
//!
//! A [`Session`] binds a graph, a [`Backend`] (float, int8 or the
//! simulated accelerator), a Bayesian configuration `{L, S, p}`, a
//! thread fan-out and a seeded mask source, and then serves
//! predictions through the *one* generic sampling engine in
//! [`bnn_mcd::backend`]. The same seeded session produces the same
//! mask stream on every backend, so cross-substrate comparisons (the
//! paper's CPU/GPU/FPGA tables) are one-line diffs:
//!
//! ```
//! use bnn_fpga::mcd::BayesConfig;
//! use bnn_fpga::nn::models;
//! use bnn_fpga::tensor::{Shape4, Tensor};
//! use bnn_fpga::Session;
//!
//! let net = models::lenet5(10, 1, 16, 1);
//! let x = Tensor::full(Shape4::new(1, 1, 16, 16), 0.1);
//! let mut session = Session::for_graph(&net)
//!     .bayes(BayesConfig::new(2, 5))
//!     .seed(42)
//!     .build();
//! let probs = session.predictive(&x);
//! let sum: f32 = probs.item(0).iter().sum();
//! assert!((sum - 1.0).abs() < 1e-4);
//! assert!(session.last_cost().is_some());
//! ```

use bnn_accel::{AccelBackend, Accelerator};
use bnn_mcd::{
    predictive_batched_pooled, predictive_pooled, sample_probs_pooled, serve_requests_pooled,
    BayesBackend, BayesConfig, CostReport, FloatBackend, FusedBackend, HardwareMaskSource,
    MaskSource, ParallelConfig, RequestResult, SeededRequest, SoftwareMaskSource, WorkerPool,
};
use bnn_nn::Graph;
use bnn_quant::{Int8Backend, QGraph};
use bnn_tensor::{Shape4, Tensor};
use std::sync::Arc;

/// Which execution substrate a [`Session`] serves from.
///
/// `Float` and `Fused` execute the session's f32 graph directly
/// (per-sample suffix re-runs vs. batched-sample GEMM fusion, with
/// bit-identical results); `Int8` and `Accel` carry their own compiled
/// artefacts (a quantized graph, an accelerator instance) produced by
/// the deployment pipeline.
#[derive(Clone)]
pub enum Backend {
    /// f32 software execution of the session graph (the PR-1
    /// suffix-reuse engine).
    Float,
    /// f32 software execution with batched-sample GEMM fusion: each
    /// worker's Monte Carlo samples walk the Bayesian suffix *once*
    /// with sample-stacked activations, so every weight matrix streams
    /// once per layer instead of once per sample. Bit-identical to
    /// [`Backend::Float`] under the same seed at any thread count;
    /// prefer it whenever `S` is large relative to the batch (the
    /// serving common case — see the `backends` bench at `S = 100`).
    Fused,
    /// int8 integer execution of a quantized graph.
    Int8(QGraph),
    /// The simulated FPGA accelerator (batch-1 inputs; predictions
    /// come with a cycle/latency/traffic cost model).
    Accel(Accelerator),
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Float => "Backend::Float",
            Backend::Fused => "Backend::Fused",
            Backend::Int8(_) => "Backend::Int8(..)",
            Backend::Accel(_) => "Backend::Accel(..)",
        })
    }
}

impl From<Backend> for bnn_serve::ServeBackend {
    /// A session-level substrate choice maps one-to-one onto the
    /// serving front door's (`bnn_serve::Server`), so deployment code
    /// can pick once and both serve batch jobs (`Session`) and
    /// concurrent single-input traffic (`Server`) from it.
    fn from(backend: Backend) -> bnn_serve::ServeBackend {
        match backend {
            Backend::Float => bnn_serve::ServeBackend::Float,
            Backend::Fused => bnn_serve::ServeBackend::Fused,
            Backend::Int8(qgraph) => bnn_serve::ServeBackend::Int8(qgraph),
            Backend::Accel(accel) => bnn_serve::ServeBackend::Accel(accel),
        }
    }
}

enum BackendImpl<'g> {
    Float(FloatBackend<'g>),
    Fused(FusedBackend<'g>),
    Int8(Int8Backend),
    Accel(AccelBackend),
}

/// Dispatch a generic-engine call to the session's concrete backend.
macro_rules! with_backend {
    ($inner:expr, $b:ident => $body:expr) => {
        match $inner {
            BackendImpl::Float($b) => $body,
            BackendImpl::Fused($b) => $body,
            BackendImpl::Int8($b) => $body,
            BackendImpl::Accel($b) => $body,
        }
    };
}

enum SourceChoice {
    /// Software PRNG masks from a seed (the default).
    Software(u64),
    /// Bit-exact hardware LFSR Bernoulli masks from a seed
    /// (`p` must be 0.25, the paper's configuration).
    Hardware(u64),
    /// Caller-supplied source.
    Custom(Box<dyn MaskSource + Send>),
}

/// Builder for a [`Session`]; see [`Session::for_graph`].
pub struct SessionBuilder<'g> {
    graph: &'g Graph,
    backend: Backend,
    bayes: BayesConfig,
    parallel: ParallelConfig,
    source: SourceChoice,
    pool: Option<Arc<WorkerPool>>,
}

impl<'g> SessionBuilder<'g> {
    /// Select the execution substrate (default: [`Backend::Float`]).
    pub fn backend(mut self, backend: Backend) -> SessionBuilder<'g> {
        self.backend = backend;
        self
    }

    /// Bayesian configuration `{L, S, p}` (default: `L = 1, S = 10,
    /// p = 0.25`).
    pub fn bayes(mut self, bayes: BayesConfig) -> SessionBuilder<'g> {
        self.bayes = bayes;
        self
    }

    /// The two-axis work schedule — sample-axis `threads`, batch-axis
    /// `batch_threads`, optional sample `chunk` — for the Monte Carlo
    /// passes (default: [`ParallelConfig::serial`]; results are
    /// bit-identical at any setting).
    pub fn parallel(mut self, parallel: ParallelConfig) -> SessionBuilder<'g> {
        self.parallel = parallel;
        self
    }

    /// Share an existing [`WorkerPool`] instead of letting the session
    /// create its own (several sessions serving from one resident
    /// thread team).
    pub fn pool(mut self, pool: Arc<WorkerPool>) -> SessionBuilder<'g> {
        self.pool = Some(pool);
        self
    }

    /// Size the session's own [`WorkerPool`] explicitly (default:
    /// [`ParallelConfig::pool_workers`] for the configured schedule —
    /// zero resident workers, i.e. inline execution, for the serial
    /// default).
    pub fn pool_workers(mut self, workers: usize) -> SessionBuilder<'g> {
        self.pool = Some(Arc::new(WorkerPool::new(workers)));
        self
    }

    /// Seed the software mask source (default seed 0).
    pub fn seed(mut self, seed: u64) -> SessionBuilder<'g> {
        self.source = SourceChoice::Software(seed);
        self
    }

    /// Draw masks from the bit-exact hardware LFSR Bernoulli sampler
    /// instead of the software PRNG (requires `p = 0.25`).
    pub fn hardware_masks(mut self, seed: u64) -> SessionBuilder<'g> {
        self.source = SourceChoice::Hardware(seed);
        self
    }

    /// Supply a custom mask source.
    pub fn mask_source(mut self, src: Box<dyn MaskSource + Send>) -> SessionBuilder<'g> {
        self.source = SourceChoice::Custom(src);
        self
    }

    /// Finish the builder.
    pub fn build(self) -> Session<'g> {
        let inner = match self.backend {
            Backend::Float => BackendImpl::Float(FloatBackend::new(self.graph)),
            Backend::Fused => BackendImpl::Fused(FusedBackend::new(self.graph)),
            Backend::Int8(qg) => BackendImpl::Int8(Int8Backend::new(qg)),
            Backend::Accel(accel) => BackendImpl::Accel(AccelBackend::new(accel)),
        };
        let source: Box<dyn MaskSource + Send> = match self.source {
            SourceChoice::Software(seed) => Box::new(SoftwareMaskSource::new(seed)),
            SourceChoice::Hardware(seed) => Box::new(HardwareMaskSource::paper_default(seed)),
            SourceChoice::Custom(src) => src,
        };
        let pool = self
            .pool
            .unwrap_or_else(|| Arc::new(WorkerPool::new(self.parallel.pool_workers())));
        Session {
            inner,
            bayes: self.bayes,
            parallel: self.parallel,
            source,
            pool,
            last_cost: None,
        }
    }
}

/// A serving session: train → quantize → serve as one fluent
/// pipeline, generic over the execution substrate.
///
/// Construct with [`Session::for_graph`]. Every predictive call
/// advances the session's mask stream (like a [`MaskSource`]), so a
/// sequence of calls is one reproducible experiment, and
/// [`Session::last_cost`] reports the most recent run's wall time
/// plus — on the accelerator — its modelled cycles, latency and
/// off-chip traffic.
///
/// # Pool configuration
///
/// Every session owns (or shares) a persistent [`WorkerPool`]: its
/// worker threads are created once at `build` and every predictive
/// call executes its batch/sample chunks on them, so no call pays
/// per-call thread spawn. The pool is sized by the configured
/// [`ParallelConfig`] — the serial default gets a zero-worker pool
/// that runs inline — and can be overridden with
/// [`SessionBuilder::pool_workers`] or shared across sessions with
/// [`SessionBuilder::pool`]. Predictions are bit-identical at *any*
/// pool size and any [`ParallelConfig`]: the two-axis schedule
/// (`threads` over Monte Carlo samples, `batch_threads` over the
/// batch groups of [`Session::predictive_batched`], `chunk` over the
/// sample-chunk size) only changes wall-clock time.
pub struct Session<'g> {
    inner: BackendImpl<'g>,
    bayes: BayesConfig,
    parallel: ParallelConfig,
    source: Box<dyn MaskSource + Send>,
    pool: Arc<WorkerPool>,
    last_cost: Option<CostReport>,
}

impl<'g> Session<'g> {
    /// Start building a session for a graph.
    ///
    /// The graph is the f32 source of truth; backends carrying their
    /// own compiled artefacts ([`Backend::Int8`], [`Backend::Accel`])
    /// must have been lowered from it (same site layout).
    pub fn for_graph(graph: &'g Graph) -> SessionBuilder<'g> {
        SessionBuilder {
            graph,
            backend: Backend::Float,
            bayes: BayesConfig::new(1, 10),
            parallel: ParallelConfig::default(),
            source: SourceChoice::Software(0),
            pool: None,
        }
    }

    /// Predictive distribution `(n, k)` for an input batch
    /// (mean of `S` per-sample softmax probabilities). Updates
    /// [`Session::last_cost`].
    ///
    /// # Panics
    ///
    /// Panics on [`Backend::Accel`] if `x` has more than one item —
    /// the accelerator processes one image at a time; feed datasets
    /// through [`Session::predictive_batched`] with `batch = 1`.
    pub fn predictive(&mut self, x: &Tensor) -> Tensor {
        let (probs, cost) = with_backend!(&mut self.inner, b => predictive_pooled(
            b,
            x,
            self.bayes,
            self.source.as_mut(),
            self.parallel,
            &self.pool,
        ));
        self.last_cost = Some(cost);
        probs
    }

    /// Per-sample softmax probabilities (the paper's `S` sweep reuses
    /// prefixes of this list).
    pub fn sample_probs(&mut self, x: &Tensor) -> Vec<Tensor> {
        with_backend!(&mut self.inner, b => sample_probs_pooled(
            b,
            x,
            self.bayes,
            self.source.as_mut(),
            self.parallel,
            &self.pool,
        ))
    }

    /// Predictive over a dataset in batches of at most `batch` items.
    /// Updates [`Session::last_cost`] with the accumulated cost.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`, or (on [`Backend::Accel`]) if
    /// `batch != 1`.
    pub fn predictive_batched(&mut self, xs: &Tensor, batch: usize) -> Tensor {
        let (probs, cost) = with_backend!(&mut self.inner, b => predictive_batched_pooled(
            b,
            xs,
            self.bayes,
            self.source.as_mut(),
            self.parallel,
            batch,
            &self.pool,
        ));
        self.last_cost = Some(cost);
        probs
    }

    /// Serve a micro-batch of independently-seeded requests in one
    /// coalesced engine pass — the synchronous, in-thread form of the
    /// `bnn_fpga::serve::Server` front door.
    ///
    /// Each `(input, seed)` pair runs as its own batch group with its
    /// own mask stream, so every result is **bit-identical** to a
    /// solo `predictive` call on a fresh session seeded with that
    /// request's seed, whatever its neighbors (coalescing
    /// invariance). Unlike [`Session::predictive`], this does *not*
    /// consume the session's own mask stream — the seeds are the
    /// requests'. Each [`RequestResult`] carries the per-sample
    /// passes, the predictive mean and that request's cost slice.
    pub fn serve_requests(&mut self, requests: &[(&Tensor, u64)]) -> Vec<RequestResult> {
        let reqs: Vec<SeededRequest<'_>> = requests
            .iter()
            .map(|&(x, seed)| SeededRequest { x, seed })
            .collect();
        with_backend!(&mut self.inner, b => serve_requests_pooled(
            b,
            &reqs,
            self.bayes,
            self.parallel,
            &self.pool,
        ))
    }

    /// Cost report of the most recent predictive call.
    pub fn last_cost(&self) -> Option<&CostReport> {
        self.last_cost.as_ref()
    }

    /// The session's worker pool (share it with another session via
    /// [`SessionBuilder::pool`]).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The active backend's name (`"float"`, `"fused"`, `"int8"`,
    /// `"accel"`).
    pub fn backend_name(&self) -> &'static str {
        with_backend!(&self.inner, b => b.name())
    }

    /// The session's Bayesian configuration.
    pub fn bayes(&self) -> BayesConfig {
        self.bayes
    }

    /// Number of MCD sites in the served network.
    pub fn n_sites(&self) -> usize {
        with_backend!(&self.inner, b => b.n_sites())
    }

    /// Output classes for an input shape.
    pub fn output_classes(&self, input: Shape4) -> usize {
        with_backend!(&self.inner, b => b.output_classes(input))
    }
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("backend", &self.backend_name())
            .field("bayes", &self.bayes)
            .field("parallel", &self.parallel)
            .field("pool_workers", &self.pool.workers())
            .field("last_cost", &self.last_cost)
            .finish()
    }
}
