//! Cross-backend agreement: the `Session` API on its four execution
//! substrates against each other and against the legacy entry points.
//!
//! The pairwise contracts run through the reusable conformance
//! harness (`bnn_fpga::mcd::conformance::assert_backend_agrees`:
//! shared mask stream, threads ∈ {1, 4}, batched vs. unbatched), in
//! decreasing strictness:
//!
//! * `FusedBackend` is *bit-identical* to `FloatBackend`: batched-
//!   sample GEMM fusion is an exact re-scheduling of the float
//!   computation.
//! * `AccelBackend` is *bit-identical* to `Int8Backend`: the tiled PE
//!   engine is an exact re-scheduling of the integer reference
//!   executor.
//! * `Int8Backend` stays within quantization tolerance of
//!   `FloatBackend` on a trained LeNet-5.
//! * `Session` on `FloatBackend` is *bit-identical* to the legacy
//!   `McdPredictor::predictive` for the same seed, at any thread
//!   count — the serving redesign may not move a single ulp.
//! * Every substrate survives deterministic fault injection
//!   (`assert_chaos_agrees`): disabled chaos is bit-transparent and
//!   scheduled faults are contained and replayable.

use bnn_fpga::accel::{AccelBackend, AccelConfig, Accelerator};
use bnn_fpga::data::synth_mnist;
use bnn_fpga::mcd::conformance::{assert_backend_agrees, assert_chaos_agrees, Tolerance};
use bnn_fpga::mcd::{
    predictive_batched, BayesConfig, FloatBackend, FusedBackend, McdPredictor, ParallelConfig,
    SoftwareMaskSource, WorkerPool,
};
use bnn_fpga::nn::{models, SgdConfig, Trainer};
use bnn_fpga::quant::{Int8Backend, Quantizer};
use bnn_fpga::tensor::{Shape4, Tensor};
use bnn_fpga::{Backend, Session};

/// A briefly-trained LeNet-5 with its dataset, trained once and
/// shared by the whole suite.
fn trained_lenet() -> (bnn_fpga::nn::Graph, bnn_fpga::data::Dataset) {
    static SHARED: std::sync::OnceLock<(bnn_fpga::nn::Graph, bnn_fpga::data::Dataset)> =
        std::sync::OnceLock::new();
    SHARED
        .get_or_init(|| {
            let ds = synth_mnist(320, 64, 19);
            let mut net = models::lenet5(10, 1, 28, 3);
            let mut tr = Trainer::new(&net, SgdConfig::default(), 2, 0.25, 5);
            for _ in 0..3 {
                let _ = tr.train_epoch(&mut net, &ds.train_x, &ds.train_y, 32);
            }
            (net, ds)
        })
        .clone()
}

fn test_batch(ds: &bnn_fpga::data::Dataset, n: usize) -> Tensor {
    let mut t = Tensor::zeros(Shape4::new(n, 1, 28, 28));
    for i in 0..n {
        t.item_mut(i).copy_from_slice(ds.test_x.item(i));
    }
    t
}

#[test]
fn conformance_fused_bit_identical_to_float() {
    let (net, ds) = trained_lenet();
    // Batch > 1 plus L sweeping from FC-only to conv-containing
    // suffixes, so the fused im2col/GEMM stacking is exercised on both
    // layer kinds.
    for l in [2usize, 5] {
        assert_backend_agrees(
            &mut FloatBackend::new(&net),
            &mut FusedBackend::new(&net),
            &test_batch(&ds, 3),
            BayesConfig::new(l, 9),
            77,
            Tolerance::BitExact,
        );
    }
}

#[test]
fn conformance_accel_bit_identical_to_int8() {
    let (net, ds) = trained_lenet();
    let folded = net.fold_batch_norm();
    let qg = Quantizer::new(&folded).calibrate(&ds.train_x).quantize();
    let accel = Accelerator::new(AccelConfig::default(), &folded, &qg, ds.image_shape());
    // Single-item input: the accelerator processes one image at a time.
    assert_backend_agrees(
        &mut Int8Backend::new(qg),
        &mut AccelBackend::new(accel),
        &ds.test_x.select_item(0),
        BayesConfig::new(3, 8),
        123,
        Tolerance::BitExact,
    );
}

#[test]
fn conformance_chaos_containment_on_all_substrates() {
    // Conformance check 7: deterministic fault injection. On every
    // substrate, disabled chaos is bit-transparent, a scheduled panic
    // fails exactly its own request, survivors are bit-identical to
    // the fault-free run, and the same seed replays the same faults.
    let (net, ds) = trained_lenet();
    let folded = net.fold_batch_norm();
    let qg = Quantizer::new(&folded).calibrate(&ds.train_x).quantize();
    let accel = Accelerator::new(AccelConfig::default(), &folded, &qg, ds.image_shape());
    // Single-item input: the accelerator processes one image at a time.
    let x = ds.test_x.select_item(0);
    let cfg = BayesConfig::new(2, 4);
    assert_chaos_agrees(|| FloatBackend::new(&folded), &x, cfg, 0xFA01);
    assert_chaos_agrees(|| FusedBackend::new(&folded), &x, cfg, 0xFA02);
    assert_chaos_agrees(|| Int8Backend::new(qg.clone()), &x, cfg, 0xFA03);
    assert_chaos_agrees(|| AccelBackend::new(accel.clone()), &x, cfg, 0xFA04);
}

#[test]
fn conformance_int8_within_quantization_tolerance_of_float() {
    let (net, ds) = trained_lenet();
    let folded = net.fold_batch_norm();
    let qg = Quantizer::new(&folded).calibrate(&ds.train_x).quantize();
    assert_backend_agrees(
        &mut FloatBackend::new(&folded),
        &mut Int8Backend::new(qg),
        &test_batch(&ds, 4),
        BayesConfig::new(2, 16),
        31,
        Tolerance::L1(0.35),
    );
}

#[test]
fn float_session_bit_identical_to_legacy_predictor() {
    let (net, ds) = trained_lenet();
    let x = test_batch(&ds, 4);
    let cfg = BayesConfig::new(2, 9);

    let legacy = McdPredictor::new(&net)
        .with_parallelism(ParallelConfig::serial())
        .predictive(&x, cfg, &mut SoftwareMaskSource::new(77));

    for threads in [1usize, 4] {
        let mut session = Session::for_graph(&net)
            .bayes(cfg)
            .parallel(ParallelConfig::with_threads(threads))
            .seed(77)
            .build();
        let probs = session.predictive(&x);
        assert_eq!(
            probs.as_slice(),
            legacy.as_slice(),
            "Session(float, threads={threads}) diverged from legacy McdPredictor"
        );
        let cost = session.last_cost().expect("cost recorded");
        assert_eq!(cost.samples, cfg.s);
        let model = cost.model.expect("software paths model weight traffic");
        assert_eq!(model.cycles, 0, "float path has no cycle model");
    }
}

#[test]
fn fused_session_bit_identical_to_float_session() {
    let (net, ds) = trained_lenet();
    let x = test_batch(&ds, 4);
    let cfg = BayesConfig::new(3, 12);

    let mut float = Session::for_graph(&net)
        .bayes(cfg)
        .parallel(ParallelConfig::serial())
        .seed(55)
        .build();
    let want = float.predictive(&x);

    for threads in [1usize, 4] {
        let mut fused = Session::for_graph(&net)
            .backend(Backend::Fused)
            .bayes(cfg)
            .parallel(ParallelConfig::with_threads(threads))
            .seed(55)
            .build();
        assert_eq!(fused.backend_name(), "fused");
        let probs = fused.predictive(&x);
        assert_eq!(
            probs.as_slice(),
            want.as_slice(),
            "Session(fused, threads={threads}) diverged from Session(float)"
        );
    }
}

#[test]
fn fused_session_counts_weight_traffic_once_per_layer() {
    let (net, ds) = trained_lenet();
    let x = ds.test_x.select_item(0);
    let mem_at = |backend: Backend, s: usize| -> u64 {
        let mut session = Session::for_graph(&net)
            .backend(backend)
            .bayes(BayesConfig::new(2, s))
            .seed(9)
            .build();
        let _ = session.predictive(&x);
        session
            .last_cost()
            .and_then(|c| c.model)
            .expect("software paths model weight traffic")
            .mem_bytes
    };
    let (float10, float50) = (mem_at(Backend::Float, 10), mem_at(Backend::Float, 50));
    let (fused10, fused50) = (mem_at(Backend::Fused, 10), mem_at(Backend::Fused, 50));
    // Fused streams suffix weights once per layer: traffic is flat in
    // S. The per-sample float path pays the suffix S times — the
    // regression identity float(S) = fused + (S-1)·suffix must hold.
    assert_eq!(
        fused10, fused50,
        "fused weight traffic must not scale with S"
    );
    assert!(fused10 < float10, "fusion must reduce weight traffic");
    let suffix = (float10 - fused10) / 9;
    assert!(suffix > 0, "Bayesian suffix contains weight layers");
    assert_eq!(
        float50 - float10,
        40 * suffix,
        "float weight traffic must grow by exactly the suffix bytes per sample"
    );
}

#[test]
fn float_session_batched_matches_legacy_batched() {
    let (net, ds) = trained_lenet();
    let xs = test_batch(&ds, 6);
    let cfg = BayesConfig::new(2, 4);

    let legacy = predictive_batched(&net, &xs, cfg, &mut SoftwareMaskSource::new(5), 2);
    let mut session = Session::for_graph(&net)
        .bayes(cfg)
        .parallel(ParallelConfig::max_parallel())
        .seed(5)
        .build();
    let probs = session.predictive_batched(&xs, 2);
    assert_eq!(probs.as_slice(), legacy.as_slice());
    let cost = session.last_cost().expect("cost recorded");
    assert_eq!(cost.batch, 6);
    assert_eq!(cost.samples, 3 * cfg.s, "S per batch over 3 batches");
}

#[test]
fn sessions_sharing_one_pool_serve_identically() {
    // One resident worker team behind several sessions (the serving
    // deployment shape): every schedule — serial, sample-parallel,
    // two-axis batched — must produce the session's canonical bytes.
    let (net, ds) = trained_lenet();
    let xs = test_batch(&ds, 4);
    let cfg = BayesConfig::new(2, 6);
    let pool = std::sync::Arc::new(WorkerPool::new(4));

    let mut serial = Session::for_graph(&net).bayes(cfg).seed(21).build();
    let want_single = serial.predictive(&xs);
    let mut serial = Session::for_graph(&net).bayes(cfg).seed(21).build();
    let want_batched = serial.predictive_batched(&xs, 1);

    for fused in [false, true] {
        // Fresh seeded sessions per check: predictive calls advance
        // the mask stream, and the references above started at seed.
        let build = || {
            Session::for_graph(&net)
                .backend(if fused {
                    Backend::Fused
                } else {
                    Backend::Float
                })
                .bayes(cfg)
                .parallel(ParallelConfig::with_threads(4).with_batch_threads(2))
                .pool(std::sync::Arc::clone(&pool))
                .seed(21)
                .build()
        };
        let mut session = build();
        assert_eq!(session.pool().workers(), 4, "builder must adopt the pool");
        let got = session.predictive(&xs);
        assert_eq!(
            got.as_slice(),
            want_single.as_slice(),
            "{}: shared-pool predictive diverged",
            session.backend_name()
        );
        let mut session = build();
        let got = session.predictive_batched(&xs, 1);
        assert_eq!(
            got.as_slice(),
            want_batched.as_slice(),
            "{}: shared-pool two-axis batched serving diverged",
            session.backend_name()
        );
    }
}

#[test]
fn int8_and_accel_batch_parallel_serving_is_bit_identical() {
    // The batch axis on the integer substrates: three single-item
    // groups fanned over forked backends (Arc-shared model, fresh
    // prepared state per group) must reproduce the sequential loop
    // byte for byte — the accelerator's batch-1 constraint is exactly
    // why batch_threads is its only parallel axis.
    let (net, ds) = trained_lenet();
    let folded = net.fold_batch_norm();
    let qg = Quantizer::new(&folded).calibrate(&ds.train_x).quantize();
    let accel = Accelerator::new(AccelConfig::default(), &folded, &qg, ds.image_shape());
    let xs = test_batch(&ds, 3);
    let cfg = BayesConfig::new(2, 4);

    for fpga in [false, true] {
        let build = |parallel: ParallelConfig| {
            let backend = if fpga {
                Backend::Accel(accel.clone())
            } else {
                Backend::Int8(qg.clone())
            };
            Session::for_graph(&folded)
                .backend(backend)
                .bayes(cfg)
                .parallel(parallel)
                .seed(13)
                .build()
        };
        let mut serial = build(ParallelConfig::serial());
        let want = serial.predictive_batched(&xs, 1);
        let mut parallel = build(ParallelConfig::serial().with_batch_threads(2));
        assert!(parallel.pool().workers() > 0, "batch axis must get a pool");
        let got = parallel.predictive_batched(&xs, 1);
        assert_eq!(
            got.as_slice(),
            want.as_slice(),
            "{}: batch-parallel serving diverged from sequential",
            parallel.backend_name()
        );
    }
}

#[test]
fn int8_argmax_agrees_with_float_on_trained_model() {
    let (net, ds) = trained_lenet();
    let folded = net.fold_batch_norm();
    let qg = Quantizer::new(&folded).calibrate(&ds.train_x).quantize();
    let x = test_batch(&ds, 8);
    let cfg = BayesConfig::new(2, 16);

    let mut float = Session::for_graph(&folded).bayes(cfg).seed(31).build();
    let mut int8 = Session::for_graph(&folded)
        .backend(Backend::Int8(qg))
        .bayes(cfg)
        .seed(31)
        .build();

    let pf = float.predictive(&x);
    let pq = int8.predictive(&x);
    let mut agree = 0usize;
    for i in 0..x.shape().n {
        if pf.argmax_item(i) == pq.argmax_item(i) {
            agree += 1;
        }
    }
    assert!(
        agree >= x.shape().n - 1,
        "int8/float argmax agreement {agree}/{}",
        x.shape().n
    );
}

#[test]
fn accel_session_reports_cycle_cost() {
    let (net, ds) = trained_lenet();
    let folded = net.fold_batch_norm();
    let qg = Quantizer::new(&folded).calibrate(&ds.train_x).quantize();
    let accel = Accelerator::new(AccelConfig::default(), &folded, &qg, ds.image_shape());
    let cfg = BayesConfig::new(2, 10);

    let mut session = Session::for_graph(&folded)
        .backend(Backend::Accel(accel))
        .bayes(cfg)
        .seed(7)
        .build();
    let _ = session.predictive(&ds.test_x.select_item(1));

    let cost = session.last_cost().expect("cost recorded");
    let model = cost.model.expect("accelerator reports a hardware model");
    assert!(model.cycles > 0, "cycle count must be reported");
    assert!(model.latency_ms > 0.0, "latency must be reported");
    assert!(model.mem_bytes > 0, "off-chip traffic must be reported");
    assert_eq!(cost.samples, cfg.s);

    // More samples cost more cycles (the suffix re-runs per sample).
    let accel2 = Accelerator::new(AccelConfig::default(), &folded, &qg, ds.image_shape());
    session = Session::for_graph(&folded)
        .backend(Backend::Accel(accel2))
        .bayes(BayesConfig::new(2, 40))
        .seed(7)
        .build();
    let _ = session.predictive(&ds.test_x.select_item(1));
    let model40 = session.last_cost().unwrap().model.unwrap();
    assert!(
        model40.cycles > model.cycles,
        "S=40 must cost more cycles than S=10"
    );
}

#[test]
fn hardware_masks_flow_through_session() {
    let (net, _ds) = trained_lenet();
    let x = Tensor::full(Shape4::new(1, 1, 28, 28), 0.2);
    let cfg = BayesConfig::new(2, 6);
    let mut a = Session::for_graph(&net)
        .bayes(cfg)
        .hardware_masks(9)
        .build();
    let mut b = Session::for_graph(&net)
        .bayes(cfg)
        .hardware_masks(9)
        .build();
    let pa = a.predictive(&x);
    let pb = b.predictive(&x);
    assert_eq!(
        pa.as_slice(),
        pb.as_slice(),
        "hardware-mask sessions must be reproducible from the seed"
    );
    let mut c = Session::for_graph(&net)
        .bayes(cfg)
        .hardware_masks(10)
        .build();
    assert_ne!(pa.as_slice(), c.predictive(&x).as_slice());
}

#[test]
fn session_serve_requests_bit_identical_on_all_substrates() {
    // The coalesced request path (`Session::serve_requests` — the
    // synchronous form of the bnn-serve front door) on every
    // substrate: each (input, seed) request must come back byte-equal
    // to a fresh solo session seeded with that request's seed,
    // whatever its neighbors in the micro-batch.
    let (net, ds) = trained_lenet();
    let folded = net.fold_batch_norm();
    let qg = Quantizer::new(&folded).calibrate(&ds.train_x).quantize();
    let accel = Accelerator::new(AccelConfig::default(), &folded, &qg, ds.image_shape());
    let cfg = BayesConfig::new(2, 5);
    // Single-item inputs: the shape every backend (incl. the batch-1
    // accelerator) serves.
    let inputs: Vec<Tensor> = (0..3).map(|i| ds.test_x.select_item(i)).collect();
    let seeds = [401u64, 402, 403];

    type MakeBackend = Box<dyn Fn() -> Backend>;
    let backends: Vec<(&str, MakeBackend)> = vec![
        ("float", Box::new(|| Backend::Float)),
        ("fused", Box::new(|| Backend::Fused)),
        (
            "int8",
            Box::new({
                let qg = qg.clone();
                move || Backend::Int8(qg.clone())
            }),
        ),
        (
            "accel",
            Box::new({
                let accel = accel.clone();
                move || Backend::Accel(accel.clone())
            }),
        ),
    ];
    for (label, make) in backends {
        // Solo references: one fresh session per request, seeded with
        // the request's own seed.
        let solo: Vec<Tensor> = inputs
            .iter()
            .zip(seeds)
            .map(|(x, seed)| {
                Session::for_graph(&folded)
                    .backend(make())
                    .bayes(cfg)
                    .seed(seed)
                    .build()
                    .predictive(x)
            })
            .collect();
        for parallel in [
            ParallelConfig::serial(),
            ParallelConfig::serial().with_batch_threads(3),
        ] {
            let mut session = Session::for_graph(&folded)
                .backend(make())
                .bayes(cfg)
                .parallel(parallel)
                .build();
            let requests: Vec<(&Tensor, u64)> = inputs.iter().zip(seeds).collect();
            let served = session.serve_requests(&requests);
            assert_eq!(served.len(), 3);
            for (i, (out, want)) in served.iter().zip(&solo).enumerate() {
                assert_eq!(
                    out.probs.as_slice(),
                    want.as_slice(),
                    "{label}: coalesced request {i} diverged from solo serving \
                     (batch_threads={})",
                    parallel.batch_threads
                );
                assert_eq!(out.passes.len(), cfg.s);
                assert_eq!(out.cost.samples, cfg.s);
            }
        }
    }
}

#[test]
fn server_front_door_serves_integer_substrates() {
    // The threaded Server over the substrates the serve crate's own
    // tests don't cover (int8, accelerator), reached through the
    // facade's Backend -> ServeBackend conversion: replies must be
    // byte-equal to solo sessions with the same seeds.
    let (net, ds) = trained_lenet();
    let folded = net.fold_batch_norm();
    let qg = Quantizer::new(&folded).calibrate(&ds.train_x).quantize();
    let accel = Accelerator::new(AccelConfig::default(), &folded, &qg, ds.image_shape());
    let cfg = BayesConfig::new(2, 4);
    let graph = std::sync::Arc::new(folded.clone());

    for backend in [Backend::Int8(qg.clone()), Backend::Accel(accel.clone())] {
        let name = format!("{backend:?}");
        let solo = |x: &Tensor, seed: u64, backend: Backend| {
            Session::for_graph(&folded)
                .backend(backend)
                .bayes(cfg)
                .seed(seed)
                .build()
                .predictive(x)
        };
        let server = bnn_fpga::Server::for_graph(std::sync::Arc::clone(&graph))
            .backend(backend.into())
            .bayes(cfg)
            .start();
        let handle = server.handle();
        let pendings: Vec<_> = (0..3u64)
            .map(|i| {
                let x = ds.test_x.select_item(i as usize);
                (i, handle.predict_seeded(x, 900 + i))
            })
            .collect();
        for (i, pending) in pendings {
            let reply = pending.wait().expect("served");
            let x = ds.test_x.select_item(i as usize);
            let rebuilt = if name.contains("Int8") {
                Backend::Int8(qg.clone())
            } else {
                Backend::Accel(accel.clone())
            };
            let want = solo(&x, 900 + i, rebuilt);
            assert_eq!(
                reply.probs.as_slice(),
                want.as_slice(),
                "{name}: served reply {i} diverged from the solo session"
            );
            assert_eq!(reply.uncertainty.predicted, reply.probs.argmax_item(0));
        }
        server.shutdown();
    }
}
