//! Cross-crate integration: train on synthetic data, quantize, run on
//! the simulated accelerator, and check the paper's core claims hold
//! end to end.

use bnn_fpga::accel::{AccelConfig, Accelerator};
use bnn_fpga::data::{gaussian_noise_like, synth_mnist};
use bnn_fpga::mcd::{
    accuracy, avg_predictive_entropy, BayesConfig, HardwareMaskSource, McdPredictor,
};
use bnn_fpga::nn::{evaluate_accuracy, models, MaskSet, SgdConfig, Trainer};
use bnn_fpga::quant::Quantizer;
use bnn_fpga::rng::SoftRng;
use bnn_fpga::tensor::{Shape4, Tensor};

/// Train a small LeNet on a small synthetic MNIST (shared by tests).
fn trained_lenet() -> (bnn_fpga::nn::Graph, bnn_fpga::data::Dataset) {
    let ds = synth_mnist(400, 96, 33);
    let mut net = models::lenet5(10, 1, 28, 5);
    let mut tr = Trainer::new(&net, SgdConfig::default(), 2, 0.25, 7);
    for _ in 0..3 {
        let _ = tr.train_epoch(&mut net, &ds.train_x, &ds.train_y, 32);
    }
    (net, ds)
}

#[test]
fn training_learns_synthetic_mnist() {
    let (net, ds) = trained_lenet();
    let acc = evaluate_accuracy(&net, &ds.test_x, &ds.test_y, 32);
    assert!(acc > 0.5, "LeNet must beat chance comfortably, acc = {acc}");
}

#[test]
fn bnn_is_more_uncertain_on_noise_than_on_data() {
    let (net, ds) = trained_lenet();
    let noise = gaussian_noise_like(&ds, 48, 9);
    let cfg = BayesConfig::new(net.n_sites(), 20);
    let pred = McdPredictor::new(&net);
    let mut src = HardwareMaskSource::paper_default(3);

    let test_subset = {
        let mut t = Tensor::zeros(Shape4::new(48, 1, 28, 28));
        for i in 0..48 {
            t.item_mut(i).copy_from_slice(ds.test_x.item(i));
        }
        t
    };
    let p_data = pred.predictive(&test_subset, cfg, &mut src);
    let p_noise = pred.predictive(&noise, cfg, &mut src);
    let ape_data = avg_predictive_entropy(&p_data);
    let ape_noise = avg_predictive_entropy(&p_noise);
    assert!(
        ape_noise > ape_data,
        "OOD noise must be more uncertain: noise {ape_noise} vs data {ape_data}"
    );
}

#[test]
fn accelerator_matches_reference_on_trained_resnet() {
    // The residual/projection path through the tiled engine, end to end.
    let mut net = models::resnet18(10, 3, 4, 11);
    let mut rng = SoftRng::new(2);
    let shape = Shape4::new(4, 3, 16, 16);
    let calib = Tensor::from_vec(
        shape,
        (0..shape.len()).map(|_| rng.normal_f32(0.0, 1.0)).collect(),
    );
    // A couple of training steps so BN stats and weights are non-trivial.
    let mut tr = Trainer::new(&net, SgdConfig::default(), 18, 0.25, 3);
    let _ = tr.train_batch(&mut net, &calib, &[0, 1, 2, 3]);

    let folded = net.fold_batch_norm();
    let qg = Quantizer::new(&folded).calibrate(&calib).quantize();
    let accel = Accelerator::new(AccelConfig::paper_default(), &folded, &qg, shape);

    let img = calib.select_item(0);
    let channels = folded.site_channels(img.shape());
    let mut mask_rng = SoftRng::new(17);
    let active = vec![true; folded.n_sites()];
    let masks = MaskSet::sample_software(&active, &channels, 0.25, &mut mask_rng);

    let run = accel.run_with_masks(
        &img,
        BayesConfig {
            l: folded.n_sites(),
            s: 1,
            p: 0.25,
        },
        std::slice::from_ref(&masks),
    );
    let reference = qg.forward(&img, &masks);
    assert_eq!(
        run.logits_per_sample[0].as_slice(),
        reference.as_slice(),
        "ResNet path (residual + projection) must be bit-exact on the accelerator"
    );
}

#[test]
fn quantized_model_tracks_f32_accuracy() {
    let (net, ds) = trained_lenet();
    let folded = net.fold_batch_norm();
    let qg = Quantizer::new(&folded).calibrate(&ds.train_x).quantize();

    let n = 64;
    let mut test = Tensor::zeros(Shape4::new(n, 1, 28, 28));
    for i in 0..n {
        test.item_mut(i).copy_from_slice(ds.test_x.item(i));
    }
    let labels = &ds.test_y[..n];

    let f32_logits = folded.forward(&test, &MaskSet::none());
    let q_logits = qg.forward(&test, &MaskSet::none());
    let acc_f = accuracy(&f32_logits, labels);
    let acc_q = accuracy(&q_logits, labels);
    assert!(
        (acc_f - acc_q).abs() <= 0.1,
        "int8 accuracy must track f32: {acc_f} vs {acc_q}"
    );
}

#[test]
fn accelerator_predictive_close_to_software_predictive() {
    // Hardware (int8 + LFSR masks) and software (f32 + PRNG masks)
    // predictive distributions agree on the argmax for most inputs.
    let (net, ds) = trained_lenet();
    let folded = net.fold_batch_norm();
    let qg = Quantizer::new(&folded).calibrate(&ds.train_x).quantize();
    let accel = Accelerator::new(AccelConfig::paper_default(), &folded, &qg, ds.image_shape());

    let cfg = BayesConfig::new(2, 16);
    let pred = McdPredictor::new(&folded);
    let mut agree = 0;
    let total = 12;
    for i in 0..total {
        let img = ds.test_x.select_item(i);
        let hw = accel.run(&img, cfg, 100 + i as u64);
        let mut src = HardwareMaskSource::paper_default(200 + i as u64);
        let sw = pred.predictive(&img, cfg, &mut src);
        if hw.predictive.argmax_item(0) == sw.argmax_item(0) {
            agree += 1;
        }
    }
    assert!(
        agree >= total - 2,
        "hardware/software argmax agreement {agree}/{total}"
    );
}
