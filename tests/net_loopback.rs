//! Loopback conformance for the TCP front door (ISSUE 8 acceptance):
//!
//! * a reply served over TCP is **bit-identical** to the same request
//!   served through an in-process `Session` with the same seed, on
//!   all four substrates;
//! * the seed echoed in every reply reproduces that reply offline —
//!   including server-derived seeds the client never chose;
//! * `GET /status` returns well-formed JSON whose served/shed/expired
//!   counters match `Server::stats()` at quiesce;
//! * the tenant gate and the malformed-frame path answer with typed
//!   error frames over the wire.

use bnn_fpga::accel::{AccelConfig, Accelerator};
use bnn_fpga::data::synth_mnist;
use bnn_fpga::mcd::BayesConfig;
use bnn_fpga::net::{
    http_get_status, ErrorCode, NetClient, NetConfig, NetServer, Request, Response, TenantPolicy,
    TenantTable,
};
use bnn_fpga::nn::{models, SgdConfig, Trainer};
use bnn_fpga::quant::Quantizer;
use bnn_fpga::tensor::Tensor;
use bnn_fpga::{request_seed, Backend, Priority, Server, Session};
use std::sync::Arc;

/// A briefly-trained LeNet-5 with its dataset, trained once and
/// shared by the whole suite.
fn trained_lenet() -> (bnn_fpga::nn::Graph, bnn_fpga::data::Dataset) {
    static SHARED: std::sync::OnceLock<(bnn_fpga::nn::Graph, bnn_fpga::data::Dataset)> =
        std::sync::OnceLock::new();
    SHARED
        .get_or_init(|| {
            let ds = synth_mnist(320, 64, 19);
            let mut net = models::lenet5(10, 1, 28, 3);
            let mut tr = Trainer::new(&net, SgdConfig::default(), 2, 0.25, 5);
            for _ in 0..2 {
                let _ = tr.train_epoch(&mut net, &ds.train_x, &ds.train_y, 32);
            }
            (net, ds)
        })
        .clone()
}

/// The four substrates as facade `Backend`s over one folded graph.
fn substrates(
    folded: &bnn_fpga::nn::Graph,
    ds: &bnn_fpga::data::Dataset,
) -> Vec<(&'static str, Backend)> {
    let qg = Quantizer::new(folded).calibrate(&ds.train_x).quantize();
    let accel = Accelerator::new(AccelConfig::default(), folded, &qg, ds.image_shape());
    vec![
        ("float", Backend::Float),
        ("fused", Backend::Fused),
        ("int8", Backend::Int8(qg)),
        ("accel", Backend::Accel(accel)),
    ]
}

fn solo_probs(
    folded: &bnn_fpga::nn::Graph,
    backend: Backend,
    cfg: BayesConfig,
    seed: u64,
    x: &Tensor,
) -> Vec<f32> {
    Session::for_graph(folded)
        .backend(backend)
        .bayes(cfg)
        .seed(seed)
        .build()
        .predictive(x)
        .as_slice()
        .to_vec()
}

#[test]
fn tcp_replies_bit_identical_to_in_process_session_on_all_substrates() {
    let (net, ds) = trained_lenet();
    let folded = net.fold_batch_norm();
    let cfg = BayesConfig::new(2, 4);
    let graph = Arc::new(folded.clone());
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 2;

    for (name, backend) in substrates(&folded, &ds) {
        let server = Server::for_graph(Arc::clone(&graph))
            .backend(backend.clone().into())
            .bayes(cfg)
            .seed(0xD0C0 + name.len() as u64)
            .start();
        let front =
            NetServer::bind("127.0.0.1:0", server, NetConfig::default()).expect("bind loopback");
        let addr = front.local_addr();

        // N concurrent binary clients, each its own connection.
        let mut joins = Vec::new();
        for t in 0..CLIENTS {
            let xs: Vec<Tensor> = (0..PER_CLIENT)
                .map(|i| ds.test_x.select_item((t * PER_CLIENT + i) % 16))
                .collect();
            joins.push(std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                let mut got = Vec::new();
                for (i, x) in xs.into_iter().enumerate() {
                    let seed = 7000 + (t * PER_CLIENT + i) as u64;
                    let response = client
                        .send(&Request::new(x.clone()).seed(seed).tenant("conformance"))
                        .expect("send");
                    match response {
                        Response::Reply(reply) => got.push((x, seed, reply)),
                        Response::Error(e) => panic!("unexpected error frame: {e:?}"),
                    }
                }
                got
            }));
        }
        let mut total = 0usize;
        for join in joins {
            for (x, seed, reply) in join.join().expect("client thread") {
                assert_eq!(reply.seed, seed, "{name}: pinned seed must echo");
                let want = solo_probs(&folded, backend.clone(), cfg, seed, &x);
                let got_bits: Vec<u32> = reply.probs.iter().map(|p| p.to_bits()).collect();
                let want_bits: Vec<u32> = want.iter().map(|p| p.to_bits()).collect();
                assert_eq!(
                    got_bits, want_bits,
                    "{name}: TCP reply diverged from the in-process session"
                );
                assert_eq!(reply.cost.samples, cfg.s, "{name}: cost slice samples");
                assert!(reply.coalesced >= 1);
                total += 1;
            }
        }
        assert_eq!(total, CLIENTS * PER_CLIENT);

        let stats = front.stats();
        assert_eq!(stats.served, total as u64, "{name}: served counter");
        assert_eq!(stats.queued, 0, "{name}: queue empty at quiesce");
        assert_eq!(stats.in_flight, 0, "{name}: nothing in flight at quiesce");
        front.shutdown();
    }
}

#[test]
fn server_derived_seed_echo_reproduces_offline() {
    let (net, ds) = trained_lenet();
    let folded = net.fold_batch_norm();
    let cfg = BayesConfig::new(2, 4);
    let base_seed = 0xABCD;
    let server = Server::for_graph(Arc::new(folded.clone()))
        .bayes(cfg)
        .seed(base_seed)
        .start();
    let front = NetServer::bind("127.0.0.1:0", server, NetConfig::default()).expect("bind");
    let mut client = NetClient::connect(front.local_addr()).expect("connect");

    let x = ds.test_x.select_item(0);
    // No pinned seed: the server derives one and must echo it.
    let reply = match client.send(&Request::new(x.clone())).expect("send") {
        Response::Reply(reply) => reply,
        Response::Error(e) => panic!("unexpected error frame: {e:?}"),
    };
    assert_eq!(
        reply.seed,
        request_seed(base_seed, reply.id),
        "echoed seed must be the documented derivation"
    );
    // The echoed seed reproduces the reply offline, bit for bit —
    // the wire-level reproducibility contract.
    let offline = solo_probs(&folded, Backend::Fused, cfg, reply.seed, &x);
    let got: Vec<u32> = reply.probs.iter().map(|p| p.to_bits()).collect();
    let want: Vec<u32> = offline.iter().map(|p| p.to_bits()).collect();
    assert_eq!(got, want);
    front.shutdown();
}

#[test]
fn status_json_is_well_formed_and_matches_stats_at_quiesce() {
    let (net, ds) = trained_lenet();
    let folded = net.fold_batch_norm();
    let cfg = BayesConfig::new(1, 3);
    let server = Server::for_graph(Arc::new(folded.clone()))
        .bayes(cfg)
        .seed(5)
        .start();
    let front = NetServer::bind("127.0.0.1:0", server, NetConfig::default()).expect("bind");
    let addr = front.local_addr();

    let mut client = NetClient::connect(addr).expect("connect");
    for i in 0..5 {
        let x = ds.test_x.select_item(i);
        match client
            .send(&Request::new(x).seed(40 + i as u64))
            .expect("send")
        {
            Response::Reply(_) => {}
            Response::Error(e) => panic!("unexpected error frame: {e:?}"),
        }
    }

    let body = http_get_status(addr).expect("GET /status");
    assert!(body.starts_with('{') && body.trim_end().ends_with('}'));
    assert_eq!(
        body.matches('{').count(),
        body.matches('}').count(),
        "unbalanced JSON: {body}"
    );
    let stats = front.stats();
    assert_eq!(stats.served, 5);
    for (key, value) in [
        ("\"served\":", stats.served),
        ("\"shed\":", stats.shed),
        ("\"expired\":", stats.expired),
        ("\"failed\":", stats.failed),
        ("\"rejected\":", stats.rejected),
        ("\"queued\":", stats.queued),
        ("\"in_flight\":", stats.in_flight),
    ] {
        assert!(
            body.contains(&format!("{key}{value}")),
            "status JSON does not carry {key}{value}: {body}"
        );
    }
    assert!(body.contains("\"substrate\":\"fused\""));
    assert!(body.contains("\"p50_us\":"));
    // The in-process renderer is the same document the socket served.
    let direct = front.status_json();
    assert_eq!(direct, body);

    // Unknown paths and methods get proper HTTP errors, not hangs.
    assert!(http_get_status(addr).is_ok(), "status stays up");
    front.shutdown();
}

#[test]
fn tenant_rate_limit_and_priority_ceiling_are_enforced_on_the_wire() {
    let (net, ds) = trained_lenet();
    let folded = net.fold_batch_norm();
    let cfg = BayesConfig::new(1, 2);
    let server = Server::for_graph(Arc::new(folded.clone()))
        .bayes(cfg)
        .seed(9)
        .start();
    let tenants = TenantTable::default().tenant(
        "metered",
        // One-token bucket that never refills: request #2 must be
        // refused at the gate, before it touches the admission queue.
        TenantPolicy::limited(Priority::Low, 0.0, 1.0),
    );
    let net_cfg = NetConfig {
        tenants,
        ..NetConfig::default()
    };
    let front = NetServer::bind("127.0.0.1:0", server, net_cfg).expect("bind");
    let mut client = NetClient::connect(front.local_addr()).expect("connect");

    let x = ds.test_x.select_item(0);
    let first = client
        .send(
            &Request::new(x.clone())
                .tenant("metered")
                .priority(Priority::High)
                .seed(77),
        )
        .expect("send");
    assert!(
        matches!(first, Response::Reply(_)),
        "first request rides the burst token: {first:?}"
    );
    let second = client
        .send(&Request::new(x.clone()).tenant("metered").seed(78))
        .expect("send");
    match second {
        Response::Error(e) => {
            assert_eq!(e.code, ErrorCode::RateLimited);
            assert_eq!(e.seed, Some(78), "rate-limit errors still echo the seed");
        }
        other => panic!("expected RateLimited, got {other:?}"),
    }
    // Other tenants are unaffected by the metered bucket.
    let other = client.send(&Request::new(x).seed(79)).expect("send");
    assert!(matches!(other, Response::Reply(_)));

    let stats = front.stats();
    assert_eq!(
        stats.served, 2,
        "gate-refused request never reached admission"
    );
    front.shutdown();
}

#[test]
fn malformed_frames_get_typed_errors_never_a_dead_socket() {
    use std::io::{Read, Write};

    let (net, _ds) = trained_lenet();
    let folded = net.fold_batch_norm();
    let server = Server::for_graph(Arc::new(folded))
        .bayes(BayesConfig::new(1, 2))
        .seed(1)
        .start();
    let front = NetServer::bind("127.0.0.1:0", server, NetConfig::default()).expect("bind");

    // A framed payload that decodes to BadVersion: the server answers
    // with a Malformed error frame, then closes the connection.
    let mut stream = std::net::TcpStream::connect(front.local_addr()).expect("connect");
    let payload = [99u8, 1, 0, 1, 0]; // bad version byte
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .expect("len");
    stream.write_all(&payload).expect("payload");
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("error frame length");
    let mut frame = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut frame).expect("error frame body");
    match bnn_fpga::net::wire::decode_response(&frame) {
        Ok(Response::Error(e)) => assert_eq!(e.code, ErrorCode::Malformed),
        other => panic!("expected Malformed error frame, got {other:?}"),
    }
    // The connection is closed after a malformed frame…
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("clean close");
    assert!(rest.is_empty());

    // …but the front door itself survives and serves new connections.
    assert!(http_get_status(front.local_addr()).is_ok());
    assert!(front.status_json().contains("\"malformed\":1"));
    front.shutdown();
}
