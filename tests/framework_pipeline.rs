//! Integration of the optimization framework with real (trained)
//! metrics and the hardware models — the paper's Figure 5 workflow.

use bnn_fpga::accel::{AccelConfig, FpgaDevice, ResourceModel};
use bnn_fpga::data::synth_mnist;
use bnn_fpga::framework::{
    optimize_hardware, Explorer, NetKind, OptMode, Requirements, SyntheticMetricProvider,
    TrainedMetricProvider, TrainingBudget,
};
use bnn_fpga::nn::{arch::extract_layers, models};
use bnn_fpga::tensor::Shape4;

#[test]
fn full_pipeline_hw_then_algorithmic() {
    // Stage 1: hardware optimization fits the device.
    let net = models::lenet5(10, 1, 28, 1);
    let layers = extract_layers(&net, Shape4::new(1, 1, 28, 28));
    let device = FpgaDevice::arria10_sx660();
    let cfg = optimize_hardware(&device, &[&layers]);
    let rm = ResourceModel::new(device);
    let (_, fits) = rm.check(&cfg, &[&layers]);
    assert!(fits);

    // Stage 2: trained metrics at a tiny budget, all four modes.
    let ds = synth_mnist(160, 48, 3);
    let mut provider = TrainedMetricProvider::new(
        NetKind::LeNet5,
        ds,
        TrainingBudget {
            epochs: 1,
            batch: 16,
            test_n: 24,
            noise_n: 16,
            s_max: 10,
        },
        5,
    );
    let explorer = Explorer::new(cfg, layers, net.n_sites()).with_s_domain(vec![3, 5, 10]);
    for mode in OptMode::all() {
        let r = explorer.explore(&mut provider, mode, &Requirements::none());
        let sel = r
            .selected
            .expect("unconstrained exploration always selects");
        assert!(sel.fpga_ms > 0.0 && sel.fpga_ms.is_finite());
        assert!((0.0..=1.0).contains(&sel.accuracy));
    }
}

#[test]
fn requirements_are_respected_with_trained_metrics() {
    let net = models::lenet5(10, 1, 28, 1);
    let layers = extract_layers(&net, Shape4::new(1, 1, 28, 28));
    let ds = synth_mnist(160, 48, 4);
    let mut provider = TrainedMetricProvider::new(
        NetKind::LeNet5,
        ds,
        TrainingBudget {
            epochs: 1,
            batch: 16,
            test_n: 24,
            noise_n: 16,
            s_max: 10,
        },
        6,
    );
    let explorer = Explorer::new(AccelConfig::paper_default(), layers, net.n_sites())
        .with_s_domain(vec![3, 5, 10]);
    let candidates = explorer.candidates(&mut provider);
    // Pick a latency bound that splits the candidate set.
    let mut lats: Vec<f64> = candidates.iter().map(|c| c.fpga_ms).collect();
    lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let bound = lats[lats.len() / 2];
    let req = Requirements {
        max_latency_ms: Some(bound),
        ..Requirements::none()
    };
    let sel = bnn_fpga::framework::select(&candidates, OptMode::Uncertainty, &req)
        .expect("half the grid is feasible");
    assert!(sel.fpga_ms <= bound);
    // And it is the aPE-max among the feasible ones.
    for c in candidates.iter().filter(|c| c.feasible(&req)) {
        assert!(sel.ape >= c.ape - 1e-12);
    }
}

#[test]
fn latency_shapes_hold_across_providers() {
    // Whatever provider supplies the quality metrics, the latency
    // model must give the paper's monotone shapes.
    let net = models::resnet18(10, 3, 8, 1);
    let layers = extract_layers(&net, Shape4::new(1, 3, 32, 32));
    let explorer = Explorer::new(AccelConfig::paper_default(), layers, net.n_sites());
    let mut provider = SyntheticMetricProvider::resnet18();
    let candidates = explorer.candidates(&mut provider);
    for a in &candidates {
        for b in &candidates {
            if a.l == b.l && a.s < b.s {
                assert!(a.fpga_ms <= b.fpga_ms + 1e-12, "latency monotone in S");
            }
            if a.s == b.s && a.l < b.l {
                assert!(a.fpga_ms <= b.fpga_ms + 1e-9, "latency monotone in L");
            }
        }
    }
}
