//! Pipelined-wire conformance against the real front door (ISSUE 9
//! acceptance):
//!
//! * a reply received over a pipelined (protocol v2) connection is
//!   **bit-identical** to the same request sent lock-step (v1) with
//!   the same pinned seed, on all four substrates — pipelining
//!   changes scheduling, never arithmetic;
//! * proptest drives random in-flight depths and submit/recv
//!   interleavings and asserts the same bit-identity against an
//!   in-process `Session`;
//! * a typed error frame mid-pipeline (tenant gate refusal on the
//!   real server) fails only its own correlation id — neighbors on
//!   the same connection are served normally.

use bnn_fpga::accel::{AccelConfig, Accelerator};
use bnn_fpga::data::synth_mnist;
use bnn_fpga::mcd::BayesConfig;
use bnn_fpga::net::{
    ErrorCode, NetClient, NetConfig, NetServer, PipelinedClient, Request, Response, TenantPolicy,
    TenantTable,
};
use bnn_fpga::nn::{models, SgdConfig, Trainer};
use bnn_fpga::quant::Quantizer;
use bnn_fpga::tensor::Tensor;
use bnn_fpga::{Backend, Priority, Server, Session};
use proptest::prelude::*;
use std::sync::Arc;

/// A briefly-trained LeNet-5 with its dataset, trained once and
/// shared by the whole suite.
fn trained_lenet() -> (bnn_fpga::nn::Graph, bnn_fpga::data::Dataset) {
    static SHARED: std::sync::OnceLock<(bnn_fpga::nn::Graph, bnn_fpga::data::Dataset)> =
        std::sync::OnceLock::new();
    SHARED
        .get_or_init(|| {
            let ds = synth_mnist(320, 64, 19);
            let mut net = models::lenet5(10, 1, 28, 3);
            let mut tr = Trainer::new(&net, SgdConfig::default(), 2, 0.25, 5);
            for _ in 0..2 {
                let _ = tr.train_epoch(&mut net, &ds.train_x, &ds.train_y, 32);
            }
            (net, ds)
        })
        .clone()
}

/// The four substrates as facade `Backend`s over one folded graph.
fn substrates(
    folded: &bnn_fpga::nn::Graph,
    ds: &bnn_fpga::data::Dataset,
) -> Vec<(&'static str, Backend)> {
    let qg = Quantizer::new(folded).calibrate(&ds.train_x).quantize();
    let accel = Accelerator::new(AccelConfig::default(), folded, &qg, ds.image_shape());
    vec![
        ("float", Backend::Float),
        ("fused", Backend::Fused),
        ("int8", Backend::Int8(qg)),
        ("accel", Backend::Accel(accel)),
    ]
}

fn solo_probs(
    folded: &bnn_fpga::nn::Graph,
    backend: Backend,
    cfg: BayesConfig,
    seed: u64,
    x: &Tensor,
) -> Vec<f32> {
    Session::for_graph(folded)
        .backend(backend)
        .bayes(cfg)
        .seed(seed)
        .build()
        .predictive(x)
        .as_slice()
        .to_vec()
}

fn probs_bits(reply: &bnn_fpga::net::WireReply) -> Vec<u32> {
    reply.probs.iter().map(|p| p.to_bits()).collect()
}

#[test]
fn pipelined_replies_bit_identical_to_lock_step_on_all_substrates() {
    let (net, ds) = trained_lenet();
    let folded = net.fold_batch_norm();
    let cfg = BayesConfig::new(2, 4);
    let graph = Arc::new(folded.clone());
    const REQUESTS: usize = 6;
    const DEPTH: usize = 3;

    for (name, backend) in substrates(&folded, &ds) {
        let server = Server::for_graph(Arc::clone(&graph))
            .backend(backend.clone().into())
            .bayes(cfg)
            .seed(0x91 + name.len() as u64)
            .start();
        let front =
            NetServer::bind("127.0.0.1:0", server, NetConfig::default()).expect("bind loopback");
        let addr = front.local_addr();

        let inputs: Vec<(u64, Tensor)> = (0..REQUESTS)
            .map(|i| (4100 + i as u64, ds.test_x.select_item(i % 16)))
            .collect();

        // Pipelined pass: up to DEPTH requests in flight on one
        // protocol-v2 connection.
        let mut pipelined = PipelinedClient::connect(addr, DEPTH).expect("connect pipelined");
        let mut got: Vec<Option<Vec<u32>>> = vec![None; REQUESTS];
        let mut note = |corr: u64, response: Response| match response {
            Response::Reply(reply) => {
                assert_eq!(reply.seed, got_seed(corr), "{name}: pinned seed must echo");
                got[corr as usize] = Some(probs_bits(&reply));
            }
            Response::Error(e) => panic!("{name}: unexpected error frame: {e:?}"),
        };
        fn got_seed(corr: u64) -> u64 {
            4100 + corr
        }
        for (seed, x) in &inputs {
            let submitted = pipelined
                .submit(&Request::new(x.clone()).seed(*seed))
                .expect("submit");
            if let Some((corr, response)) = submitted.drained {
                note(corr, response);
            }
        }
        for (corr, response) in pipelined.drain().expect("drain") {
            note(corr, response);
        }
        drop(pipelined);

        // Lock-step pass: same requests, same seeds, protocol v1.
        let mut lock_step = NetClient::connect(addr).expect("connect lock-step");
        for (i, (seed, x)) in inputs.iter().enumerate() {
            let response = lock_step
                .send(&Request::new(x.clone()).seed(*seed))
                .expect("send");
            let reply = match response {
                Response::Reply(reply) => reply,
                Response::Error(e) => panic!("{name}: unexpected error frame: {e:?}"),
            };
            let pipelined_bits = got[i].as_ref().expect("every corr resolved");
            assert_eq!(
                &probs_bits(&reply),
                pipelined_bits,
                "{name}: pipelined reply diverged from lock-step for seed {seed}"
            );
            // Both must equal the in-process session — the substrate
            // arithmetic is a function of (input, seed) alone.
            let want: Vec<u32> = solo_probs(&folded, backend.clone(), cfg, *seed, x)
                .iter()
                .map(|p| p.to_bits())
                .collect();
            assert_eq!(
                pipelined_bits, &want,
                "{name}: pipelined reply diverged from the in-process session"
            );
        }

        let stats = front.stats();
        assert_eq!(stats.served, 2 * REQUESTS as u64, "{name}: served counter");
        assert_eq!(stats.in_flight, 0, "{name}: quiesce");
        front.shutdown();
    }
}

proptest! {
    // Each case spins four servers; keep the case count low — the
    // space is (depth, count, interleaving), and divergence, if any,
    // would be systematic rather than rare.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random in-flight depths and submit/recv interleavings on all
    /// four substrates: every reply stays bit-identical to the same
    /// request answered by an in-process `Session` with the same
    /// pinned seed.
    #[test]
    fn random_depths_and_interleavings_stay_bit_identical(
        depth in 1usize..6,
        count in 2usize..8,
        recv_first in proptest::collection::vec(any::<bool>(), 8..9),
        seed_base in 5000u64..9000,
    ) {
        let (net, ds) = trained_lenet();
        let folded = net.fold_batch_norm();
        let cfg = BayesConfig::new(1, 2);
        let graph = Arc::new(folded.clone());
        for (name, backend) in substrates(&folded, &ds) {
            let server = Server::for_graph(Arc::clone(&graph))
                .backend(backend.clone().into())
                .bayes(cfg)
                .seed(seed_base ^ name.len() as u64)
                .start();
            let front = NetServer::bind("127.0.0.1:0", server, NetConfig::default())
                .expect("bind loopback");

            let mut client =
                PipelinedClient::connect(front.local_addr(), depth).expect("connect");
            let inputs: Vec<(u64, Tensor)> = (0..count)
                .map(|i| (seed_base + i as u64, ds.test_x.select_item(i % 16)))
                .collect();
            let mut responses: Vec<(u64, Response)> = Vec::new();
            for (i, (seed, x)) in inputs.iter().enumerate() {
                // Randomized interleaving: sometimes eagerly collect a
                // response before the next submit, sometimes run at
                // full depth and let submit() drain.
                if recv_first[i % recv_first.len()] && client.in_flight() > 0 {
                    responses.push(client.recv().expect("recv"));
                }
                let submitted = client
                    .submit(&Request::new(x.clone()).seed(*seed))
                    .expect("submit");
                prop_assert_eq!(submitted.corr, i as u64);
                if let Some(pair) = submitted.drained {
                    responses.push(pair);
                }
            }
            responses.extend(client.drain().expect("drain"));
            prop_assert_eq!(responses.len(), count);

            for (corr, response) in responses {
                let (seed, x) = &inputs[corr as usize];
                let reply = match response {
                    Response::Reply(reply) => reply,
                    Response::Error(e) => panic!("{name}: unexpected error frame: {e:?}"),
                };
                prop_assert_eq!(reply.seed, *seed);
                let got: Vec<u32> = reply.probs.iter().map(|p| p.to_bits()).collect();
                let want: Vec<u32> = solo_probs(&folded, backend.clone(), cfg, *seed, x)
                    .iter()
                    .map(|p| p.to_bits())
                    .collect();
                prop_assert_eq!(got, want, "{} diverged at depth {}", name, depth);
            }
            front.shutdown();
        }
    }
}

#[test]
fn typed_error_mid_pipeline_fails_only_its_own_id() {
    let (net, ds) = trained_lenet();
    let folded = net.fold_batch_norm();
    let cfg = BayesConfig::new(1, 2);
    let server = Server::for_graph(Arc::new(folded.clone()))
        .bayes(cfg)
        .seed(17)
        .start();
    let tenants = TenantTable::default().tenant(
        "metered",
        // One-token bucket that never refills: the second metered
        // request must be refused at the gate mid-pipeline.
        TenantPolicy::limited(Priority::Low, 0.0, 1.0),
    );
    let front = NetServer::bind(
        "127.0.0.1:0",
        server,
        NetConfig {
            tenants,
            ..NetConfig::default()
        },
    )
    .expect("bind");

    let mut client = PipelinedClient::connect(front.local_addr(), 4).expect("connect");
    let x = ds.test_x.select_item(0);
    // corr 0: anonymous (served), corr 1: metered (burst token,
    // served), corr 2: metered (refused), corr 3: anonymous (served).
    let plan: [(&str, u64); 4] = [("", 900), ("metered", 901), ("metered", 902), ("", 903)];
    for (tenant, seed) in plan {
        client
            .submit(&Request::new(x.clone()).tenant(tenant).seed(seed))
            .expect("submit");
    }
    let responses = client.drain().expect("drain");
    assert_eq!(responses.len(), 4);
    for (corr, response) in responses {
        match (corr, response) {
            (2, Response::Error(err)) => {
                assert_eq!(err.code, ErrorCode::RateLimited);
                assert_eq!(err.corr, Some(2), "the error carries its own id");
                assert_eq!(err.seed, Some(902), "rate-limit errors still echo the seed");
            }
            (2, Response::Reply(_)) => panic!("corr 2 should have been rate-limited"),
            (corr, Response::Reply(reply)) => {
                assert_eq!(
                    reply.seed, plan[corr as usize].1,
                    "neighbor served normally"
                );
            }
            (corr, Response::Error(err)) => {
                panic!(
                    "corr {corr} failed with {:?}; only corr 2 may fail",
                    err.code
                )
            }
        }
    }
    let stats = front.stats();
    assert_eq!(stats.served, 3, "gate refusal never reached admission");
    assert_eq!(stats.in_flight, 0);
    front.shutdown();
}
