//! Integration tests of the hardware models against the paper's
//! quantitative claims (shape-level).

use bnn_fpga::accel::{AccelConfig, FpgaDevice, PerfModel, ResourceModel};
use bnn_fpga::mcd::BayesConfig;
use bnn_fpga::nn::arch::{extract_layers, resnet101_desc};
use bnn_fpga::nn::models;
use bnn_fpga::platforms::{bynqnet::BynqnetPerfModel, vibnn::VibnnPerfModel};
use bnn_fpga::tensor::Shape4;

#[test]
fn headline_claim_energy_and_compute_efficiency() {
    // Abstract: "up to 4x higher energy efficiency and 9x better
    // compute efficiency" than VIBNN/BYNQNet.
    let cfg = AccelConfig::paper_default();
    let perf = PerfModel::new(cfg);
    let layers = resnet101_desc();
    let n = layers.iter().filter_map(|l| l.input_site).count();
    let ours_gops = perf.throughput_gops(&layers, BayesConfig::new(n, 1), true);
    let ours_ee = ours_gops / cfg.board_power_w;
    let rm = ResourceModel::new(FpgaDevice::arria10_sx660());
    let refs: Vec<&[_]> = vec![&layers];
    let dsps = rm.estimate(&cfg, &refs).dsps;
    let ours_ce = ours_gops / dsps as f64;

    let vibnn = VibnnPerfModel::default().summary();
    let bynq = BynqnetPerfModel::default().summary();

    let ee_ratio_v = ours_ee / vibnn.energy_efficiency();
    let ee_ratio_b = ours_ee / bynq.energy_efficiency();
    assert!(
        (2.5..6.0).contains(&ee_ratio_v) && (2.5..6.0).contains(&ee_ratio_b),
        "energy-efficiency ratios {ee_ratio_v:.1}/{ee_ratio_b:.1} outside the paper's ~3-4x"
    );

    let ce_ratio_v = ours_ce / vibnn.compute_efficiency();
    let ce_ratio_b = ours_ce / bynq.compute_efficiency();
    assert!(
        (4.0..14.0).contains(&ce_ratio_v) && (4.0..14.0).contains(&ce_ratio_b),
        "compute-efficiency ratios {ce_ratio_v:.1}/{ce_ratio_b:.1} outside the paper's ~6-9x"
    );
}

#[test]
fn table3_shape_ic_wins_shrink_with_l() {
    let cfg = AccelConfig::paper_default();
    let perf = PerfModel::new(cfg);
    for (net, shape) in [
        (models::vgg11(10, 3, 32, 8, 1), Shape4::new(1, 3, 32, 32)),
        (models::resnet18(10, 3, 16, 1), Shape4::new(1, 3, 32, 32)),
    ] {
        let layers = extract_layers(&net, shape);
        let n = net.n_sites();
        let speedup = |l: usize, s: usize| {
            let b = BayesConfig::new(l, s);
            let w = perf.network_timing(&layers, b, true).total_cycles;
            let wo = perf.network_timing(&layers, b, false).total_cycles;
            wo as f64 / w as f64
        };
        let s_l1 = speedup(1, 100);
        let s_l23 = speedup((2 * n).div_ceil(3), 50);
        assert!(
            s_l1 > 5.0,
            "{}: L=1,S=100 IC speedup {s_l1:.1} too small",
            net.name()
        );
        assert!(
            s_l23 < s_l1,
            "{}: IC speedup must shrink as L grows ({s_l23:.1} vs {s_l1:.1})",
            net.name()
        );
    }
}

#[test]
fn table3_shape_fpga_beats_cpu_gpu_on_conv_nets() {
    use bnn_fpga::platforms::PlatformModel;
    let cfg = AccelConfig::paper_default();
    let perf = PerfModel::new(cfg);
    let cpu = PlatformModel::i9_9900k();
    let gpu = PlatformModel::rtx_2080_super();
    for (net, shape) in [
        (models::vgg11(10, 3, 32, 8, 1), Shape4::new(1, 3, 32, 32)),
        (models::resnet18(10, 3, 16, 1), Shape4::new(1, 3, 32, 32)),
    ] {
        let layers = extract_layers(&net, shape);
        let n = net.n_sites();
        let b = BayesConfig::new((2 * n).div_ceil(3), 50);
        let f = perf.network_timing(&layers, b, true).latency_ms(&cfg);
        let c = cpu.bayes_latency_ms(&layers, b);
        let g = gpu.bayes_latency_ms(&layers, b);
        assert!(
            c / f > 2.0,
            "{}: CPU/FPGA ratio {:.1} too small",
            net.name(),
            c / f
        );
        assert!(
            g / f > 1.5,
            "{}: GPU/FPGA ratio {:.1} too small",
            net.name(),
            g / f
        );
    }
}

#[test]
fn resource_model_matches_table2_regime() {
    let rm = ResourceModel::new(FpgaDevice::arria10_sx660());
    let nets: Vec<Vec<_>> = vec![
        extract_layers(&models::lenet5(10, 1, 28, 1), Shape4::new(1, 1, 28, 28)),
        extract_layers(&models::vgg11(10, 3, 32, 8, 1), Shape4::new(1, 3, 32, 32)),
        extract_layers(&models::resnet18(10, 3, 16, 1), Shape4::new(1, 3, 32, 32)),
        resnet101_desc(),
    ];
    let refs: Vec<&[_]> = nets.iter().map(|v| v.as_slice()).collect();
    let u = rm.estimate(&AccelConfig::paper_default(), &refs);
    // Table II: 71% ALMs, 52% registers, 97% DSPs.
    assert!((u.alms as f64 / 427_200.0 - 0.71).abs() < 0.1);
    assert!((u.registers as f64 / 1_708_800.0 - 0.52).abs() < 0.1);
    assert!((u.dsps as f64 / 1_518.0 - 0.97).abs() < 0.03);
    assert!(rm.fits(&u), "the paper's configuration fits its device");
}

#[test]
fn throughput_in_table4_regime() {
    let perf = PerfModel::new(AccelConfig::paper_default());
    let layers = resnet101_desc();
    let n = layers.iter().filter_map(|l| l.input_site).count();
    let gops = perf.throughput_gops(&layers, BayesConfig::new(n, 1), true);
    // Paper: 1590 GOP/s; peak is 1843.2.
    assert!(
        (1400.0..1843.2).contains(&gops),
        "ResNet-101 throughput {gops:.0}"
    );
}
