//! Trace correctness (ISSUE 10 acceptance): tracing must observe the
//! serving stack without perturbing it.
//!
//! * replies are **bit-identical** with tracing enabled vs disabled,
//!   on all four substrates — the recorder's timestamps are telemetry
//!   and never feed computed values;
//! * the stage spans of one traced request (queue wait, batch
//!   formation, compute, reply write) all nest under the caller's
//!   root span id, appear exactly once, are time-ordered, and their
//!   durations sum to no more than the end-to-end latency;
//! * a full per-thread ring evicts oldest events instead of blocking
//!   the recording thread;
//! * the front door's `/metrics` and `/trace` endpoints round-trip
//!   the same data over HTTP.
//!
//! The trace flag is process-global, so every test here serializes on
//! one mutex and restores the disabled state on exit (panic
//! included) — this file must stay the only facade test binary that
//! toggles tracing.

use bnn_fpga::accel::{AccelConfig, Accelerator};
use bnn_fpga::data::synth_mnist;
use bnn_fpga::mcd::BayesConfig;
use bnn_fpga::quant::Quantizer;
use bnn_fpga::tensor::Tensor;
use bnn_fpga::trace::{self, Stage};
use bnn_fpga::{Backend, Server};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Serialize the suite on the process-global trace flag; the guard
/// disables tracing again when dropped, even on panic.
struct FlagGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FlagGuard {
    fn drop(&mut self) {
        trace::set_enabled(false);
    }
}

fn flag_guard() -> FlagGuard {
    static GUARD: Mutex<()> = Mutex::new(());
    FlagGuard(GUARD.lock().unwrap_or_else(|e| e.into_inner()))
}

/// A briefly-trained LeNet-5 with its dataset, trained once and
/// shared by the whole suite.
fn trained_lenet() -> (bnn_fpga::nn::Graph, bnn_fpga::data::Dataset) {
    static SHARED: std::sync::OnceLock<(bnn_fpga::nn::Graph, bnn_fpga::data::Dataset)> =
        std::sync::OnceLock::new();
    SHARED
        .get_or_init(|| {
            let ds = synth_mnist(320, 64, 23);
            let mut net = bnn_fpga::nn::models::lenet5(10, 1, 28, 3);
            let mut tr =
                bnn_fpga::nn::Trainer::new(&net, bnn_fpga::nn::SgdConfig::default(), 2, 0.25, 5);
            for _ in 0..2 {
                let _ = tr.train_epoch(&mut net, &ds.train_x, &ds.train_y, 32);
            }
            (net.fold_batch_norm(), ds)
        })
        .clone()
}

/// The four substrates as facade `Backend`s over the folded graph.
fn substrates(
    folded: &bnn_fpga::nn::Graph,
    ds: &bnn_fpga::data::Dataset,
) -> Vec<(&'static str, Backend)> {
    let qg = Quantizer::new(folded).calibrate(&ds.train_x).quantize();
    let accel = Accelerator::new(AccelConfig::default(), folded, &qg, ds.image_shape());
    vec![
        ("float", Backend::Float),
        ("fused", Backend::Fused),
        ("int8", Backend::Int8(qg)),
        ("accel", Backend::Accel(accel)),
    ]
}

/// Serve one seeded request through a fresh `Server` on `backend` and
/// return the reply probabilities as exact bit patterns.
fn served_bits(
    graph: &Arc<bnn_fpga::nn::Graph>,
    backend: Backend,
    cfg: BayesConfig,
    seed: u64,
    x: &Tensor,
) -> Vec<u32> {
    let server = Server::for_graph(Arc::clone(graph))
        .backend(backend.into())
        .bayes(cfg)
        .seed(0xBEEF)
        .start();
    let reply = server
        .handle()
        .request(x.clone())
        .seed(seed)
        .submit()
        .wait()
        .expect("served");
    let bits = reply.probs.as_slice().iter().map(|p| p.to_bits()).collect();
    server.shutdown();
    bits
}

#[test]
fn tracing_toggle_keeps_replies_bit_identical_on_all_substrates() {
    let _guard = flag_guard();
    let (folded, ds) = trained_lenet();
    let graph = Arc::new(folded.clone());
    let cfg = BayesConfig::new(2, 4);
    let x = ds.test_x.select_item(3);

    for (name, backend) in substrates(&folded, &ds) {
        trace::set_enabled(false);
        let quiet = served_bits(&graph, backend.clone(), cfg, 4242, &x);
        trace::set_enabled(true);
        let traced = served_bits(&graph, backend, cfg, 4242, &x);
        trace::set_enabled(false);
        assert_eq!(
            quiet, traced,
            "{name}: enabling tracing changed the reply bits"
        );
        assert!(!quiet.is_empty(), "{name}: reply carried no probabilities");
    }
    trace::reset();
}

#[test]
fn stage_spans_nest_under_one_request_and_fit_its_latency() {
    let _guard = flag_guard();
    let (folded, ds) = trained_lenet();
    let server = Server::for_graph(Arc::new(folded))
        .bayes(BayesConfig::new(2, 4))
        .seed(77)
        .start();
    trace::set_enabled(true);
    trace::reset();

    let root = trace::new_span();
    assert_ne!(root, 0, "enabled tracing must hand out nonzero span ids");
    let t0 = Instant::now();
    server
        .handle()
        .request(ds.test_x.select_item(0))
        .seed(9001)
        .trace(root)
        .submit()
        .wait()
        .expect("served");
    let e2e_us = t0.elapsed().as_micros() as u64;

    // The reply-write span is recorded by the batch worker just after
    // the reply is delivered; wait for it before draining.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let wrote = trace::stage_histograms()
            .iter()
            .any(|(stage, hist)| *stage == Stage::Write && hist.total() >= 1);
        if wrote {
            break;
        }
        assert!(Instant::now() < deadline, "write span never recorded");
        std::thread::sleep(Duration::from_millis(2));
    }
    trace::set_enabled(false);
    let events: Vec<trace::Event> = trace::drain()
        .into_iter()
        .flat_map(|t| t.events)
        .filter(|e| e.parent == root)
        .collect();
    server.shutdown();

    let mut picked = Vec::new();
    for stage in [
        Stage::QueueWait,
        Stage::BatchForm,
        Stage::Compute,
        Stage::Write,
    ] {
        let matches: Vec<&trace::Event> = events.iter().filter(|e| e.stage == stage).collect();
        assert_eq!(
            matches.len(),
            1,
            "{}: one request must record exactly one {} span under its root, got {matches:?}",
            stage.name(),
            stage.name()
        );
        picked.push(*matches[0]);
    }
    for pair in picked.windows(2) {
        assert!(
            pair[0].t_start_us <= pair[1].t_start_us,
            "stage starts out of order: {pair:?}"
        );
    }
    let sum: u64 = picked.iter().map(|e| e.dur_us).sum();
    // The stages are sequential inside the submit→reply window; allow
    // a little slack for microsecond truncation on each boundary.
    assert!(
        sum <= e2e_us + 100,
        "stage durations {sum}us exceed end-to-end {e2e_us}us"
    );
    trace::reset();
}

#[test]
fn full_ring_evicts_oldest_without_blocking() {
    let _guard = flag_guard();
    trace::set_enabled(true);
    trace::reset();
    let extra = 9;
    for i in 0..(trace::RING_CAP + extra) {
        trace::record(Stage::Chunk, 1_000_000 + i as u64, 0, i as u64, 1, 0);
    }
    trace::set_enabled(false);
    let ours: Vec<trace::Event> = trace::drain()
        .into_iter()
        .flat_map(|t| t.events)
        .filter(|e| e.span_id >= 1_000_000)
        .collect();
    assert_eq!(ours.len(), trace::RING_CAP, "ring must cap, not grow");
    // Oldest `extra` events were evicted; the survivors stay ordered.
    assert_eq!(ours[0].t_start_us, extra as u64);
    for pair in ours.windows(2) {
        assert_eq!(pair[1].t_start_us, pair[0].t_start_us + 1);
    }
    trace::reset();
}

#[test]
fn metrics_and_trace_endpoints_round_trip() {
    use bnn_fpga::net::{http_get, NetClient, Request, Response};
    use bnn_fpga::{NetConfig, NetServer, Timeouts};

    let _guard = flag_guard();
    let (folded, ds) = trained_lenet();
    let server = Server::for_graph(Arc::new(folded))
        .bayes(BayesConfig::new(2, 4))
        .seed(55)
        .start();
    let front = NetServer::bind("127.0.0.1:0", server, NetConfig::default()).expect("bind");
    let addr = front.local_addr();
    trace::set_enabled(true);
    trace::reset();

    let mut client = NetClient::connect(addr).expect("connect");
    const SENT: usize = 4;
    for i in 0..SENT {
        let response = client
            .send(&Request::new(ds.test_x.select_item(i)).seed(100 + i as u64))
            .expect("send");
        assert!(
            matches!(response, Response::Reply(_)),
            "unexpected error frame: {response:?}"
        );
    }
    drop(client);

    let metrics = http_get(addr, "/metrics", Timeouts::default()).expect("GET /metrics");
    let count_line = metrics
        .lines()
        .find(|l| l.starts_with("bnn_request_latency_us_count"))
        .expect("latency histogram count sample");
    assert!(
        count_line.ends_with(&format!(" {SENT}")),
        "histogram count must reconcile with {SENT} served replies: {count_line}"
    );
    assert!(
        metrics.contains("# TYPE bnn_stage_duration_us histogram"),
        "stage histograms missing while tracing is enabled:\n{metrics}"
    );

    let trace_json = http_get(addr, "/trace", Timeouts::default()).expect("GET /trace");
    trace::set_enabled(false);
    assert!(
        trace_json.starts_with("{\"traceEvents\":["),
        "not a chrome trace document: {}",
        &trace_json[..trace_json.len().min(80)]
    );
    // Stages recorded before the reply write are guaranteed present
    // by the time the client has its replies.
    for stage in [
        "decode",
        "admission",
        "submit",
        "queue_wait",
        "batch_form",
        "compute",
    ] {
        assert!(
            trace_json.contains(&format!("\"name\":\"{stage}\"")),
            "trace has no `{stage}` spans"
        );
    }
    front.shutdown();
    trace::reset();
}
