//! Numerical gradient checks of the backward pass.
//!
//! Every op family (conv, linear, BN, ReLU, max/avg/global pooling,
//! residual add, MCD masks) is covered by a small network whose
//! analytic gradients are compared against central finite differences.

use bnn_nn::{cross_entropy, Graph, GraphBuilder, Mask, MaskSet};
use bnn_rng::SoftRng;
use bnn_tensor::{Shape4, Tensor};

/// Loss of a graph at its current parameters (training-mode forward so
/// BN uses batch statistics, matching what backward differentiates).
fn loss_of(graph: &Graph, x: &Tensor, labels: &[usize], masks: &MaskSet) -> f32 {
    let mut g = graph.clone();
    let acts = g.forward_train(x, masks);
    cross_entropy(acts.logits(&g), labels).loss
}

/// Compare analytic and numeric gradients for every trainable scalar.
fn check_gradients(graph: &mut Graph, x: &Tensor, labels: &[usize], masks: &MaskSet, tol: f32) {
    graph.params_mut().zero_grads();
    let acts = graph.forward_train(x, masks);
    let out = cross_entropy(acts.logits(graph), labels);
    graph.backward(&acts, masks, out.dlogits);

    // Small enough to avoid crossing ReLU kinks, large enough to stay
    // above f32 cancellation noise (verified by a convergence study).
    let eps = 3e-3f32;
    let ids: Vec<_> = graph.params().ids().collect();
    let mut checked = 0usize;
    for id in ids {
        if !graph.params().is_trainable(id) {
            continue;
        }
        let len = graph.params().get(id).len();
        // Sample a handful of coordinates per tensor to keep runtime sane.
        let stride = (len / 7).max(1);
        for j in (0..len).step_by(stride) {
            let orig = graph.params().get(id).as_slice()[j];
            let analytic = graph.params().grad(id).as_slice()[j];

            graph.params_mut().get_mut(id).as_mut_slice()[j] = orig + eps;
            let lp = loss_of(graph, x, labels, masks);
            graph.params_mut().get_mut(id).as_mut_slice()[j] = orig - eps;
            let lm = loss_of(graph, x, labels, masks);
            graph.params_mut().get_mut(id).as_mut_slice()[j] = orig;

            let numeric = (lp - lm) / (2.0 * eps);
            let denom = analytic.abs().max(numeric.abs()).max(1.0);
            assert!(
                (analytic - numeric).abs() / denom < tol,
                "param {:?}[{j}]: analytic {analytic} vs numeric {numeric}",
                id
            );
            checked += 1;
        }
    }
    assert!(checked > 10, "gradient check must cover many coordinates");
}

fn rand_input(shape: Shape4, seed: u64) -> Tensor {
    let mut rng = SoftRng::new(seed);
    Tensor::from_vec(
        shape,
        (0..shape.len()).map(|_| rng.normal_f32(0.0, 1.0)).collect(),
    )
}

#[test]
fn gradcheck_conv_bn_relu_maxpool_fc() {
    let mut b = GraphBuilder::new("g1", 3);
    let x = b.input();
    let c = b.conv(x, 2, 3, 3, 1, 1);
    let bn = b.batch_norm(c, 3);
    let r = b.relu(bn);
    let p = b.max_pool(r, 2, 2);
    let f = b.flatten(p);
    let fc = b.linear(f, 3 * 2 * 2, 3);
    let mut net = b.finish(fc);
    let x = rand_input(Shape4::new(3, 2, 4, 4), 10);
    check_gradients(&mut net, &x, &[0, 1, 2], &MaskSet::none(), 2e-2);
}

#[test]
fn gradcheck_avgpool_and_gap() {
    let mut b = GraphBuilder::new("g2", 4);
    let x = b.input();
    let c = b.conv(x, 1, 4, 3, 1, 1);
    let a = b.avg_pool(c, 2, 2);
    let c2 = b.conv(a, 4, 4, 3, 1, 1);
    let g = b.global_avg_pool(c2);
    let f = b.flatten(g);
    let fc = b.linear(f, 4, 2);
    let mut net = b.finish(fc);
    let x = rand_input(Shape4::new(2, 1, 6, 6), 11);
    check_gradients(&mut net, &x, &[0, 1], &MaskSet::none(), 2e-2);
}

#[test]
fn gradcheck_residual_add_with_projection() {
    let mut b = GraphBuilder::new("g3", 5);
    let x = b.input();
    let c1 = b.conv(x, 2, 4, 3, 2, 1);
    let bn1 = b.batch_norm(c1, 4);
    let proj = b.conv(x, 2, 4, 1, 2, 0);
    let add = b.add(bn1, proj);
    let r = b.relu(add);
    let f = b.flatten(r);
    let fc = b.linear(f, 4 * 2 * 2, 2);
    let mut net = b.finish(fc);
    let x = rand_input(Shape4::new(2, 2, 4, 4), 12);
    check_gradients(&mut net, &x, &[1, 0], &MaskSet::none(), 2e-2);
}

#[test]
fn gradcheck_with_active_mcd_masks() {
    // Masks are fixed, so the loss stays deterministic and
    // differentiable; gradients must flow only through kept channels.
    let mut b = GraphBuilder::new("g4", 6);
    let x = b.input();
    let m0 = b.mcd(x, 0.25);
    let c = b.conv(m0, 2, 4, 3, 1, 1);
    let r = b.relu(c);
    let f = b.flatten(r);
    let m1 = b.mcd(f, 0.25);
    let fc = b.linear(m1, 4 * 16, 3);
    let mut net = b.finish(fc);
    let masks = MaskSet::from_masks(vec![
        Some(Mask {
            keep: vec![true, false],
            scale: 4.0 / 3.0,
        }),
        Some(Mask {
            keep: vec![true; 64],
            scale: 4.0 / 3.0,
        }),
    ]);
    let x = rand_input(Shape4::new(2, 2, 4, 4), 13);
    check_gradients(&mut net, &x, &[2, 0], &masks, 2e-2);
}

#[test]
fn dropped_input_channel_gets_no_gradient() {
    let mut b = GraphBuilder::new("g5", 7);
    let x = b.input();
    let m0 = b.mcd(x, 0.25);
    let c = b.conv(m0, 2, 2, 1, 1, 0);
    let f = b.flatten(c);
    let fc = b.linear(f, 2 * 4, 2);
    let mut net = b.finish(fc);
    let masks = MaskSet::from_masks(vec![Some(Mask {
        keep: vec![true, false],
        scale: 4.0 / 3.0,
    })]);
    let x = rand_input(Shape4::new(1, 2, 2, 2), 14);

    net.params_mut().zero_grads();
    let acts = net.forward_train(&x, &masks);
    let out = cross_entropy(acts.logits(&net), &[0]);
    net.backward(&acts, &masks, out.dlogits);

    // Conv weight is [out=2, in=2, 1, 1]: the column reading the
    // dropped channel (in=1) must have exactly zero gradient.
    let wgrad = net
        .params()
        .grad(net.params().ids().next().expect("conv w"));
    assert_eq!(wgrad.at(0, 1, 0, 0), 0.0);
    assert_eq!(wgrad.at(1, 1, 0, 0), 0.0);
    assert!(wgrad.at(0, 0, 0, 0) != 0.0 || wgrad.at(1, 0, 0, 0) != 0.0);
}
