//! Structural invariants of the paper's model builders, across sizes.

use bnn_nn::arch::{extract_layers, first_bayesian_layer, LayerKind};
use bnn_nn::{models, MaskSet, Op};
use bnn_tensor::{Shape4, Tensor};

#[test]
fn every_weight_layer_is_guarded_by_a_site() {
    for (net, shape) in [
        (models::lenet5(10, 1, 28, 1), Shape4::new(1, 1, 28, 28)),
        (models::vgg11(10, 3, 32, 4, 1), Shape4::new(1, 3, 32, 32)),
        (models::resnet18(10, 3, 16, 1), Shape4::new(1, 3, 32, 32)),
    ] {
        let layers = extract_layers(&net, shape);
        for l in &layers {
            assert!(
                l.input_site.is_some(),
                "{}: layer {} has no MCD site",
                net.name(),
                l.name
            );
        }
    }
}

#[test]
fn site_first_occurrences_are_increasing() {
    // A projection conv legitimately *re-uses* its block's input site
    // (it reads the same masked tensor), so the raw site sequence may
    // step back to an already-seen site. The invariant that makes
    // "last L sites == last L layers" work is that each *new* site
    // appears in increasing order.
    for (net, shape) in [
        (models::lenet5(10, 1, 28, 1), Shape4::new(1, 1, 28, 28)),
        (models::vgg11(10, 3, 32, 8, 1), Shape4::new(1, 3, 32, 32)),
        (models::resnet18(10, 3, 8, 1), Shape4::new(1, 3, 32, 32)),
    ] {
        let layers = extract_layers(&net, shape);
        let mut seen_max: Option<usize> = None;
        for l in &layers {
            let s = l.input_site.expect("all layers guarded");
            match seen_max {
                None => seen_max = Some(s),
                Some(m) if s > m => seen_max = Some(s),
                Some(m) => assert!(
                    s <= m,
                    "{}: new site {} skipped backwards past {}",
                    net.name(),
                    s,
                    m
                ),
            }
        }
        assert_eq!(
            seen_max,
            Some(net.n_sites() - 1),
            "{}: all sites reached",
            net.name()
        );
    }
}

#[test]
fn first_bayesian_layer_splits_consistently() {
    let net = models::resnet18(10, 3, 8, 1);
    let layers = extract_layers(&net, Shape4::new(1, 3, 32, 32));
    let n = net.n_sites();
    // L = 0: no Bayesian layer. L = N: everything Bayesian.
    assert_eq!(first_bayesian_layer(&layers, 0), layers.len());
    assert_eq!(first_bayesian_layer(&layers, n), 0);
    // L = 1 must isolate exactly the final classifier.
    let split = first_bayesian_layer(&layers, 1);
    assert_eq!(split, layers.len() - 1);
    assert_eq!(layers[split].kind, LayerKind::Linear);
    // Monotone: larger L moves the split earlier (or keeps it).
    let mut prev = layers.len();
    for l in 1..=n {
        let s = first_bayesian_layer(&layers, l);
        assert!(s <= prev, "split must move toward the input as L grows");
        prev = s;
    }
}

#[test]
fn models_scale_with_width_parameters() {
    let small = models::vgg11(10, 3, 32, 16, 1);
    let large = models::vgg11(10, 3, 32, 4, 1);
    let shape = Shape4::new(1, 3, 32, 32);
    assert!(
        large.macs(shape) > 4 * small.macs(shape),
        "width divisor must scale MACs"
    );

    let r_small = models::resnet18(10, 3, 4, 1);
    let r_large = models::resnet18(10, 3, 16, 1);
    assert!(r_large.macs(shape) > 8 * r_small.macs(shape));
}

#[test]
fn deeper_nets_have_more_fused_layers() {
    let lenet = extract_layers(&models::lenet5(10, 1, 28, 1), Shape4::new(1, 1, 28, 28));
    let vgg = extract_layers(&models::vgg11(10, 3, 32, 8, 1), Shape4::new(1, 3, 32, 32));
    let resnet = extract_layers(&models::resnet18(10, 3, 8, 1), Shape4::new(1, 3, 32, 32));
    assert!(lenet.len() < vgg.len() && vgg.len() < resnet.len());
}

#[test]
fn classifier_head_is_linear_everywhere() {
    for (net, shape) in [
        (models::lenet5(10, 1, 28, 1), Shape4::new(1, 1, 28, 28)),
        (models::vgg11(10, 3, 32, 8, 1), Shape4::new(1, 3, 32, 32)),
        (models::resnet18(10, 3, 8, 1), Shape4::new(1, 3, 32, 32)),
    ] {
        let layers = extract_layers(&net, shape);
        let last = layers.last().expect("non-empty");
        assert_eq!(last.kind, LayerKind::Linear, "{}", net.name());
        assert_eq!(last.out_c, 10);
        assert!(!last.has_relu, "logits must not be rectified");
    }
}

#[test]
fn bn_follows_every_conv_in_builders() {
    // The quantizer requires conv->bn adjacency to fold.
    for net in [
        models::lenet5(10, 1, 28, 1),
        models::vgg11(10, 3, 32, 8, 1),
        models::resnet18(10, 3, 8, 1),
    ] {
        let folded = net.fold_batch_norm();
        assert!(
            !folded
                .nodes()
                .iter()
                .any(|n| matches!(n.op, Op::BatchNorm { .. })),
            "{}: BN nodes must all fold",
            net.name()
        );
        // Folded graph still runs.
        let shape = if net.name().starts_with("lenet") {
            Shape4::new(1, 1, 28, 28)
        } else {
            Shape4::new(1, 3, 32, 32)
        };
        let y = folded.forward(&Tensor::zeros(shape), &MaskSet::none());
        assert!(y.iter().all(|v| v.is_finite()));
    }
}
