//! SGD training loop.

use crate::exec::MaskSet;
use crate::graph::Graph;
use crate::loss::cross_entropy;
use bnn_rng::SoftRng;
use bnn_tensor::{Shape4, Tensor};

/// Hyper-parameters of the SGD optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 5e-4,
        }
    }
}

/// SGD-with-momentum trainer bound to one graph's parameter layout.
///
/// Training runs MCD exactly as the paper describes: the active sites
/// (the last `L` of `N`) sample a fresh filter-wise Bernoulli mask per
/// batch, during *both* training and evaluation.
#[derive(Debug)]
pub struct Trainer {
    cfg: SgdConfig,
    velocity: Vec<Vec<f32>>,
    /// Which MCD sites are active (length = graph.n_sites()).
    active_sites: Vec<bool>,
    p: f32,
    rng: SoftRng,
}

impl Trainer {
    /// Create a trainer for `graph` with `bayes_l` trailing Bayesian
    /// layers at dropout probability `p`.
    pub fn new(graph: &Graph, cfg: SgdConfig, bayes_l: usize, p: f32, seed: u64) -> Trainer {
        let n = graph.n_sites();
        let l = bayes_l.min(n);
        let mut active = vec![false; n];
        for site in active.iter_mut().skip(n - l) {
            *site = true;
        }
        let velocity = graph
            .params()
            .ids()
            .map(|id| vec![0.0f32; graph.params().get(id).len()])
            .collect();
        Trainer {
            cfg,
            velocity,
            active_sites: active,
            p,
            rng: SoftRng::new(seed),
        }
    }

    /// Active-site flags (last `L` of the sites are `true`).
    pub fn active_sites(&self) -> &[bool] {
        &self.active_sites
    }

    /// One SGD step on a single minibatch; returns `(loss, correct)`.
    pub fn train_batch(&mut self, graph: &mut Graph, x: &Tensor, labels: &[usize]) -> (f32, usize) {
        let channels = graph.site_channels(x.shape());
        let masks = MaskSet::sample_software(&self.active_sites, &channels, self.p, &mut self.rng);
        graph.params_mut().zero_grads();
        let acts = graph.forward_train(x, &masks);
        let out = cross_entropy(acts.logits(graph), labels);
        graph.backward(&acts, &masks, out.dlogits);
        self.apply_sgd(graph);
        (out.loss, out.correct)
    }

    fn apply_sgd(&mut self, graph: &mut Graph) {
        let cfg = self.cfg;
        let ids: Vec<_> = graph.params().ids().collect();
        for id in ids {
            if !graph.params().is_trainable(id) {
                continue;
            }
            let v = &mut self.velocity[id.index()];
            let params = graph.params_mut();
            // Two-phase: read grads, then update weights.
            let gbuf: Vec<f32> = params.grad(id).as_slice().to_vec();
            let w = params.get_mut(id);
            for ((wv, vel), g) in w.as_mut_slice().iter_mut().zip(v.iter_mut()).zip(gbuf) {
                let g = g + cfg.weight_decay * *wv;
                *vel = cfg.momentum * *vel - cfg.lr * g;
                *wv += *vel;
            }
        }
    }

    /// Train one epoch over `(xs, labels)` with the given batch size;
    /// returns `(mean loss, accuracy)`.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != xs.shape().n` or the dataset is empty.
    pub fn train_epoch(
        &mut self,
        graph: &mut Graph,
        xs: &Tensor,
        labels: &[usize],
        batch_size: usize,
    ) -> (f32, f32) {
        let n = xs.shape().n;
        assert_eq!(labels.len(), n, "label count mismatch");
        assert!(n > 0, "empty dataset");
        let mut order: Vec<usize> = (0..n).collect();
        self.rng.shuffle(&mut order);
        let mut total_loss = 0.0f64;
        let mut total_correct = 0usize;
        let mut batches = 0usize;
        let mut batcher = Batcher::new(xs, labels, &order, batch_size);
        while let Some((bx, bl)) = batcher.next_batch() {
            let (loss, correct) = self.train_batch(graph, &bx, &bl);
            total_loss += f64::from(loss);
            total_correct += correct;
            batches += 1;
        }
        (
            (total_loss / batches as f64) as f32,
            total_correct as f32 / n as f32,
        )
    }
}

/// Assembles minibatches from a dataset tensor in a given order.
#[derive(Debug)]
pub struct Batcher<'a> {
    xs: &'a Tensor,
    labels: &'a [usize],
    order: &'a [usize],
    batch_size: usize,
    pos: usize,
}

impl<'a> Batcher<'a> {
    /// Create a batcher over `order` indices.
    pub fn new(
        xs: &'a Tensor,
        labels: &'a [usize],
        order: &'a [usize],
        batch_size: usize,
    ) -> Batcher<'a> {
        assert!(batch_size > 0, "batch size must be non-zero");
        Batcher {
            xs,
            labels,
            order,
            batch_size,
            pos: 0,
        }
    }

    /// Next `(inputs, labels)` minibatch, or `None` when exhausted.
    pub fn next_batch(&mut self) -> Option<(Tensor, Vec<usize>)> {
        if self.pos >= self.order.len() {
            return None;
        }
        let end = (self.pos + self.batch_size).min(self.order.len());
        let idx = &self.order[self.pos..end];
        self.pos = end;
        let s = self.xs.shape();
        let mut bx = Tensor::zeros(Shape4::new(idx.len(), s.c, s.h, s.w));
        let mut bl = Vec::with_capacity(idx.len());
        for (row, &i) in idx.iter().enumerate() {
            bx.item_mut(row).copy_from_slice(self.xs.item(i));
            bl.push(self.labels[i]);
        }
        Some((bx, bl))
    }
}

/// Deterministic (mask-free) evaluation accuracy over a dataset.
pub fn evaluate_accuracy(graph: &Graph, xs: &Tensor, labels: &[usize], batch_size: usize) -> f32 {
    let n = xs.shape().n;
    assert_eq!(labels.len(), n, "label count mismatch");
    let order: Vec<usize> = (0..n).collect();
    let mut batcher = Batcher::new(xs, labels, &order, batch_size);
    let mut correct = 0usize;
    while let Some((bx, bl)) = batcher.next_batch() {
        let logits = graph.forward(&bx, &MaskSet::none());
        for (i, &label) in bl.iter().enumerate() {
            if logits.argmax_item(i) == label {
                correct += 1;
            }
        }
    }
    correct as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Tiny linearly-separable 2-class problem on 1x4x4 "images".
    fn toy_data(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = SoftRng::new(seed);
        let mut xs = Tensor::zeros(Shape4::new(n, 1, 4, 4));
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let item = xs.item_mut(i);
            for (j, v) in item.iter_mut().enumerate() {
                let base = if class == 0 {
                    if j < 8 {
                        1.0
                    } else {
                        -1.0
                    }
                } else if j < 8 {
                    -1.0
                } else {
                    1.0
                };
                *v = base + rng.normal_f32(0.0, 0.3);
            }
            labels.push(class);
        }
        (xs, labels)
    }

    fn toy_net(seed: u64) -> Graph {
        let mut b = GraphBuilder::new("toy", seed);
        let x = b.input();
        let m1 = b.mcd(x, 0.25);
        let c = b.conv(m1, 1, 4, 3, 1, 1);
        let bn = b.batch_norm(c, 4);
        let r = b.relu(bn);
        let f = b.flatten(r);
        let m2 = b.mcd(f, 0.25);
        let fc = b.linear(m2, 4 * 16, 2);
        b.finish(fc)
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let mut net = toy_net(7);
        let (xs, labels) = toy_data(64, 3);
        let mut tr = Trainer::new(
            &net,
            SgdConfig {
                lr: 0.05,
                momentum: 0.9,
                weight_decay: 1e-4,
            },
            1,
            0.25,
            11,
        );
        let (first_loss, _) = tr.train_epoch(&mut net, &xs, &labels, 16);
        let mut last = (0.0, 0.0);
        for _ in 0..14 {
            last = tr.train_epoch(&mut net, &xs, &labels, 16);
        }
        assert!(
            last.0 < first_loss,
            "loss should fall: {first_loss} -> {}",
            last.0
        );
        let acc = evaluate_accuracy(&net, &xs, &labels, 16);
        assert!(acc > 0.9, "toy problem should be learned, acc = {acc}");
    }

    #[test]
    fn trainer_activates_trailing_sites() {
        let net = toy_net(1);
        let tr = Trainer::new(&net, SgdConfig::default(), 1, 0.25, 1);
        assert_eq!(tr.active_sites(), &[false, true]);
        let tr_full = Trainer::new(&net, SgdConfig::default(), 2, 0.25, 1);
        assert_eq!(tr_full.active_sites(), &[true, true]);
        let tr_over = Trainer::new(&net, SgdConfig::default(), 99, 0.25, 1);
        assert_eq!(tr_over.active_sites(), &[true, true], "L is clamped to N");
    }

    #[test]
    fn batcher_covers_everything_once() {
        let (xs, labels) = toy_data(10, 5);
        let order: Vec<usize> = (0..10).collect();
        let mut b = Batcher::new(&xs, &labels, &order, 4);
        let mut seen = 0;
        while let Some((bx, bl)) = b.next_batch() {
            assert_eq!(bx.shape().n, bl.len());
            seen += bl.len();
        }
        assert_eq!(seen, 10);
    }
}
