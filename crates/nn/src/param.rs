//! Parameter storage shared by every executor of a graph.

use bnn_rng::SoftRng;
use bnn_tensor::{Shape4, Tensor};

/// Handle to a parameter tensor inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index (stable for the lifetime of the store).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Owns every parameter tensor of a graph together with its gradient
/// accumulator, so optimizers can iterate `(param, grad)` pairs without
/// knowing the graph structure.
#[derive(Debug, Clone)]
pub struct ParamStore {
    tensors: Vec<Tensor>,
    grads: Vec<Tensor>,
    trainable: Vec<bool>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> ParamStore {
        ParamStore {
            tensors: Vec::new(),
            grads: Vec::new(),
            trainable: Vec::new(),
        }
    }

    /// Register a tensor (trainable by default).
    pub fn add(&mut self, t: Tensor) -> ParamId {
        self.add_with_trainable(t, true)
    }

    /// Register a tensor, marking whether the optimizer may update it
    /// (running BN statistics are stored but not trainable).
    pub fn add_with_trainable(&mut self, t: Tensor, trainable: bool) -> ParamId {
        let id = ParamId(self.tensors.len());
        self.grads.push(Tensor::zeros(t.shape()));
        self.tensors.push(t);
        self.trainable.push(trainable);
        id
    }

    /// Kaiming-normal initialised tensor (fan-in mode), for conv and
    /// linear weights feeding ReLU.
    pub fn add_kaiming(&mut self, shape: Shape4, fan_in: usize, rng: &mut SoftRng) -> ParamId {
        let std = (2.0 / fan_in as f32).sqrt();
        let data = (0..shape.len()).map(|_| rng.normal_f32(0.0, std)).collect();
        self.add(Tensor::from_vec(shape, data))
    }

    /// Number of parameters tensors registered.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total scalar parameter count (for model summaries).
    pub fn scalar_count(&self) -> usize {
        self.tensors.iter().map(Tensor::len).sum()
    }

    /// Immutable access to a parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable access to a parameter (used by BN running stats and the
    /// optimizer).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// Immutable access to a gradient accumulator.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Mutable access to a gradient accumulator.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.grads[id.0]
    }

    /// Whether the optimizer may update this parameter.
    pub fn is_trainable(&self, id: ParamId) -> bool {
        self.trainable[id.0]
    }

    /// Zero every gradient accumulator.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.as_mut_slice().fill(0.0);
        }
    }

    /// Iterate over all ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.tensors.len()).map(ParamId)
    }
}

impl Default for ParamStore {
    fn default() -> Self {
        ParamStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_access() {
        let mut ps = ParamStore::new();
        let id = ps.add(Tensor::full(Shape4::vec(1, 3), 2.0));
        assert_eq!(ps.get(id).as_slice(), &[2.0, 2.0, 2.0]);
        assert_eq!(ps.grad(id).as_slice(), &[0.0, 0.0, 0.0]);
        assert!(ps.is_trainable(id));
        assert_eq!(ps.scalar_count(), 3);
    }

    #[test]
    fn non_trainable_flag() {
        let mut ps = ParamStore::new();
        let id = ps.add_with_trainable(Tensor::zeros(Shape4::vec(1, 2)), false);
        assert!(!ps.is_trainable(id));
    }

    #[test]
    fn zero_grads_clears() {
        let mut ps = ParamStore::new();
        let id = ps.add(Tensor::zeros(Shape4::vec(1, 2)));
        ps.grad_mut(id).as_mut_slice()[0] = 5.0;
        ps.zero_grads();
        assert_eq!(ps.grad(id).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn kaiming_init_statistics() {
        let mut ps = ParamStore::new();
        let mut rng = SoftRng::new(1);
        let id = ps.add_kaiming(Shape4::new(64, 32, 3, 3), 32 * 9, &mut rng);
        let t = ps.get(id);
        let std_expected = (2.0f32 / (32.0 * 9.0)).sqrt();
        assert!(t.mean().abs() < 0.01);
        assert!((t.variance().sqrt() - std_expected).abs() < 0.01);
    }
}
