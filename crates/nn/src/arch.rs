//! Fused layer descriptors — the interface between the graph IR and
//! the hardware models.
//!
//! The accelerator processes one *fused layer* at a time: a conv or FC
//! matrix multiply followed by the functional-unit chain
//! (BN → ReLU → Pool → Shortcut) and the dropout unit. This module
//! extracts that fused view from a [`Graph`] and also provides a
//! hand-built descriptor list for ResNet-101 (used for the paper's
//! Table IV throughput comparison, where only layer geometry matters).

use crate::graph::{Graph, Op};
use bnn_tensor::Shape4;

/// Whether the matrix engine runs a convolution or an FC layer
/// (FC is a 1×1 convolution on a 1×1 feature map).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv,
    /// Fully-connected layer.
    Linear,
}

/// Pooling fused after the layer, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolDesc {
    /// Window (0 for global pooling).
    pub k: usize,
    /// Stride (ignored for global pooling).
    pub stride: usize,
    /// Global average pool to 1×1.
    pub global: bool,
}

/// One fused accelerator layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDesc {
    /// Diagnostic name (from the conv/linear node).
    pub name: String,
    /// Matrix-engine mode.
    pub kind: LayerKind,
    /// Input channels `C`.
    pub in_c: usize,
    /// Output channels / filters `F`.
    pub out_c: usize,
    /// Kernel size `K` (1 for FC).
    pub k: usize,
    /// Stride (1 for FC).
    pub stride: usize,
    /// Padding (0 for FC).
    pub pad: usize,
    /// Input feature-map height (1 for FC).
    pub in_h: usize,
    /// Input feature-map width (1 for FC).
    pub in_w: usize,
    /// Matrix-engine output height before pooling.
    pub out_h: usize,
    /// Matrix-engine output width before pooling.
    pub out_w: usize,
    /// Stored output height (after fused pooling).
    pub stored_h: usize,
    /// Stored output width (after fused pooling).
    pub stored_w: usize,
    /// Batch normalization fused in the FU chain.
    pub has_bn: bool,
    /// ReLU fused in the FU chain.
    pub has_relu: bool,
    /// Pooling fused in the FU chain.
    pub pool: Option<PoolDesc>,
    /// Residual shortcut addition fused in the FU chain.
    pub shortcut_add: bool,
    /// MCD site guarding this layer's *input*, if any.
    pub input_site: Option<usize>,
}

impl LayerDesc {
    /// Multiply-accumulate operations of the matrix engine.
    pub fn macs(&self) -> u64 {
        (self.out_c * self.out_h * self.out_w * self.in_c * self.k * self.k) as u64
    }

    /// Operations (2 × MACs, the GOP convention used in Table IV).
    pub fn ops(&self) -> u64 {
        2 * self.macs()
    }

    /// Weight footprint in bytes at `dw`-byte precision.
    pub fn weight_bytes(&self, dw: usize) -> u64 {
        (self.out_c * self.in_c * self.k * self.k * dw) as u64
    }

    /// Input feature-map footprint in bytes.
    pub fn input_bytes(&self, dw: usize) -> u64 {
        (self.in_c * self.in_h * self.in_w * dw) as u64
    }

    /// Stored output feature-map footprint in bytes (after pooling).
    pub fn output_bytes(&self, dw: usize) -> u64 {
        (self.out_c * self.stored_h * self.stored_w * dw) as u64
    }
}

/// Index of the first Bayesian layer for "last `l` of the MCD sites".
///
/// Layers are in execution order; returns `layers.len()` when `l == 0`
/// (no Bayesian layer). Used by every latency model that splits the
/// network into a deterministic prefix and a Bayesian suffix.
pub fn first_bayesian_layer(layers: &[LayerDesc], l: usize) -> usize {
    // Sites can be shared (a projection conv reads the same masked
    // tensor as its block's first conv), so N is the number of
    // *distinct* sites, not the number of site-carrying layers.
    let n_sites = layers
        .iter()
        .filter_map(|d| d.input_site)
        .max()
        .map_or(0, |m| m + 1);
    let l = l.min(n_sites);
    if l == 0 {
        return layers.len();
    }
    let threshold = n_sites - l;
    layers
        .iter()
        .position(|d| d.input_site.map(|s| s >= threshold).unwrap_or(false))
        .unwrap_or(layers.len())
}

/// Extract the fused layer sequence of a graph for a given input shape.
///
/// Fusion follows single-consumer chains out of each weight layer
/// through BN, ReLU, pooling and main-path residual additions — the
/// exact set of stages the accelerator's FU chain implements.
pub fn extract_layers(graph: &Graph, input: Shape4) -> Vec<LayerDesc> {
    let nodes = graph.nodes();
    let shapes = graph.infer_shapes(input.with_n(1));
    // consumers[i] = nodes reading node i.
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (id, node) in nodes.iter().enumerate() {
        for &i in &node.inputs {
            consumers[i].push(id);
        }
    }

    let mut layers = Vec::new();
    for (id, node) in nodes.iter().enumerate() {
        let (kind, in_c, out_c, k, stride, pad) = match node.op {
            Op::Conv {
                in_c,
                out_c,
                k,
                stride,
                pad,
                ..
            } => (LayerKind::Conv, in_c, out_c, k, stride, pad),
            Op::Linear { in_f, out_f, .. } => (LayerKind::Linear, in_f, out_f, 1, 1, 0),
            _ => continue,
        };
        let in_shape = shapes[node.inputs[0]];
        let out_shape = shapes[id];

        // Walk the input chain upwards through flatten/mcd to find the site.
        let mut input_site = None;
        let mut up = node.inputs[0];
        loop {
            match &nodes[up].op {
                Op::McdSite { site, .. } => {
                    input_site = Some(site.0);
                    break;
                }
                Op::Flatten => up = nodes[up].inputs[0],
                _ => break,
            }
        }

        // Walk the consumer chain downwards to collect the fused FU stages.
        let mut has_bn = false;
        let mut has_relu = false;
        let mut pool = None;
        let mut shortcut_add = false;
        let mut stored = (out_shape.h, out_shape.w);
        let mut cur = id;
        // (A plain loop, not `while let`: the chain also breaks from
        // several arms of the op match below.)
        #[allow(clippy::while_let_loop)]
        loop {
            let next = match consumers[cur].as_slice() {
                [single] => *single,
                _ => break,
            };
            match &nodes[next].op {
                Op::BatchNorm { .. } if !has_relu => has_bn = true,
                Op::Relu => has_relu = true,
                Op::MaxPool { k, stride } => {
                    pool = Some(PoolDesc {
                        k: *k,
                        stride: *stride,
                        global: false,
                    });
                    stored = (shapes[next].h, shapes[next].w);
                }
                Op::AvgPool { k, stride } => {
                    pool = Some(PoolDesc {
                        k: *k,
                        stride: *stride,
                        global: false,
                    });
                    stored = (shapes[next].h, shapes[next].w);
                }
                Op::GlobalAvgPool => {
                    pool = Some(PoolDesc {
                        k: 0,
                        stride: 0,
                        global: true,
                    });
                    stored = (1, 1);
                }
                Op::Add => {
                    // Fuse only along the main path (first input).
                    if nodes[next].inputs[0] != cur {
                        break;
                    }
                    shortcut_add = true;
                }
                _ => break,
            }
            cur = next;
        }

        layers.push(LayerDesc {
            name: node.name.clone(),
            kind,
            in_c,
            out_c,
            k,
            stride,
            pad,
            in_h: in_shape.h,
            in_w: in_shape.w,
            out_h: out_shape.h,
            out_w: out_shape.w,
            stored_h: stored.0,
            stored_w: stored.1,
            has_bn,
            has_relu,
            pool,
            shortcut_add,
            input_site,
        });
    }
    layers
}

/// Hand-built fused descriptors of a full ImageNet ResNet-101 with MCD
/// on every layer (`L = N`), used for the Table IV throughput
/// comparison. Bottleneck blocks `[3, 4, 23, 3]`, 224×224 input.
pub fn resnet101_desc() -> Vec<LayerDesc> {
    let mut layers = Vec::new();
    let mut site = 0usize;
    let mut push = |name: String,
                    in_c: usize,
                    out_c: usize,
                    k: usize,
                    stride: usize,
                    pad: usize,
                    hw_in: usize,
                    layers: &mut Vec<LayerDesc>| {
        let hw_out = (hw_in + 2 * pad - k) / stride + 1;
        layers.push(LayerDesc {
            name,
            kind: LayerKind::Conv,
            in_c,
            out_c,
            k,
            stride,
            pad,
            in_h: hw_in,
            in_w: hw_in,
            out_h: hw_out,
            out_w: hw_out,
            stored_h: hw_out,
            stored_w: hw_out,
            has_bn: true,
            has_relu: true,
            pool: None,
            shortcut_add: false,
            input_site: Some({
                let s = site;
                site += 1;
                s
            }),
        });
        hw_out
    };

    // Stem: 7x7/2 conv then (fused) 3x3/2 max pool.
    let hw = push("conv1".into(), 3, 64, 7, 2, 3, 224, &mut layers);
    {
        let stem = layers.last_mut().expect("stem exists");
        stem.pool = Some(PoolDesc {
            k: 3,
            stride: 2,
            global: false,
        });
        stem.stored_h = (hw - 1) / 2; // 112 -> 56 with pad-1 3x3/2 pooling
        stem.stored_w = stem.stored_h;
    }
    let mut hw = 56usize;

    let stages: [(usize, usize, usize); 4] =
        [(64, 256, 3), (128, 512, 4), (256, 1024, 23), (512, 2048, 3)];
    let mut in_c = 64usize;
    for (si, &(mid, out, blocks)) in stages.iter().enumerate() {
        for bi in 0..blocks {
            let stride = if si > 0 && bi == 0 { 2 } else { 1 };
            if stride == 2 {
                hw /= 2;
            }
            let hw_in = if stride == 2 { hw * 2 } else { hw };
            push(
                format!("s{si}b{bi}_1x1a"),
                in_c,
                mid,
                1,
                stride,
                0,
                hw_in,
                &mut layers,
            );
            push(
                format!("s{si}b{bi}_3x3"),
                mid,
                mid,
                3,
                1,
                1,
                hw,
                &mut layers,
            );
            let _ = push(
                format!("s{si}b{bi}_1x1b"),
                mid,
                out,
                1,
                1,
                0,
                hw,
                &mut layers,
            );
            layers.last_mut().expect("block exists").shortcut_add = true;
            if bi == 0 {
                // Projection shortcut.
                push(
                    format!("s{si}b{bi}_proj"),
                    in_c,
                    out,
                    1,
                    stride,
                    0,
                    hw_in,
                    &mut layers,
                );
                let proj = layers.last_mut().expect("projection exists");
                proj.has_relu = false;
            }
            in_c = out;
        }
    }

    // Classifier: GAP fused into the last block, then FC 2048 -> 1000.
    layers.push(LayerDesc {
        name: "fc".into(),
        kind: LayerKind::Linear,
        in_c: 2048,
        out_c: 1000,
        k: 1,
        stride: 1,
        pad: 0,
        in_h: 1,
        in_w: 1,
        out_h: 1,
        out_w: 1,
        stored_h: 1,
        stored_w: 1,
        has_bn: false,
        has_relu: false,
        pool: None,
        shortcut_add: false,
        input_site: Some(site),
    });
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn lenet_extracts_five_layers() {
        let net = models::lenet5(10, 1, 28, 1);
        let layers = extract_layers(&net, Shape4::new(1, 1, 28, 28));
        assert_eq!(layers.len(), 5);
        assert_eq!(layers[0].kind, LayerKind::Conv);
        assert!(layers[0].has_bn && layers[0].has_relu);
        assert!(layers[0].pool.is_some(), "first conv fuses its max pool");
        assert_eq!(layers[0].input_site, Some(0));
        assert_eq!(layers[4].kind, LayerKind::Linear);
        assert_eq!(layers[4].input_site, Some(4));
    }

    #[test]
    fn fused_pool_changes_stored_dims() {
        let net = models::lenet5(10, 1, 28, 1);
        let layers = extract_layers(&net, Shape4::new(1, 1, 28, 28));
        assert_eq!((layers[0].out_h, layers[0].out_w), (28, 28));
        assert_eq!((layers[0].stored_h, layers[0].stored_w), (14, 14));
    }

    #[test]
    fn resnet18_marks_shortcuts() {
        let net = models::resnet18(10, 3, 8, 1);
        let layers = extract_layers(&net, Shape4::new(1, 3, 32, 32));
        // Second conv of each basic block fuses the residual addition.
        let adds = layers.iter().filter(|l| l.shortcut_add).count();
        assert_eq!(adds, 8, "eight basic blocks end in an Add");
        // 18 main-path layers + 3 projection convs.
        assert_eq!(layers.len(), 21);
    }

    #[test]
    fn macs_match_graph_totals() {
        let net = models::vgg11(10, 3, 32, 8, 1);
        let input = Shape4::new(1, 3, 32, 32);
        let layers = extract_layers(&net, input);
        let total: u64 = layers.iter().map(LayerDesc::macs).sum();
        assert_eq!(total, net.macs(input));
    }

    #[test]
    fn resnet101_totals_are_imagenet_scale() {
        let layers = resnet101_desc();
        let gmacs = layers.iter().map(LayerDesc::macs).sum::<u64>() as f64 / 1e9;
        // Published ResNet-101 is ~7.8 GMACs at 224².
        assert!((6.5..9.0).contains(&gmacs), "ResNet-101 GMACs = {gmacs}");
        assert!(layers.len() > 100);
        assert!(
            layers.iter().all(|l| l.input_site.is_some()),
            "L = N: every layer Bayesian"
        );
    }

    #[test]
    fn layer_byte_accounting() {
        let d = LayerDesc {
            name: "t".into(),
            kind: LayerKind::Conv,
            in_c: 3,
            out_c: 8,
            k: 3,
            stride: 1,
            pad: 1,
            in_h: 8,
            in_w: 8,
            out_h: 8,
            out_w: 8,
            stored_h: 4,
            stored_w: 4,
            has_bn: true,
            has_relu: true,
            pool: Some(PoolDesc {
                k: 2,
                stride: 2,
                global: false,
            }),
            shortcut_add: false,
            input_site: None,
        };
        assert_eq!(d.macs(), 8 * 64 * 27);
        assert_eq!(d.weight_bytes(1), 8 * 27);
        assert_eq!(d.input_bytes(1), 3 * 64);
        assert_eq!(d.output_bytes(1), 8 * 16);
    }
}
