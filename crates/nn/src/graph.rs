//! The layer-graph IR.

use crate::param::{ParamId, ParamStore};
use bnn_rng::SoftRng;
use bnn_tensor::{conv_out_dim, Shape4, Tensor};

/// Identifier of a node within its graph (creation order).
pub type NodeId = usize;

/// Identifier of an MCD dropout site (creation order; site `i` guards
/// the input of the `i`-th weight layer, so "last `L` layers Bayesian"
/// activates sites `n_sites - L ..`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub usize);

/// Operations of the IR. Weight layers reference parameters by
/// [`ParamId`] inside the graph's [`ParamStore`].
#[derive(Debug, Clone)]
pub enum Op {
    /// Graph input placeholder.
    Input,
    /// 2-D convolution (NCHW, square kernel).
    Conv {
        /// Weight `[out_c, in_c, k, k]`.
        w: ParamId,
        /// Bias `[out_c]`.
        b: ParamId,
        /// Input channels.
        in_c: usize,
        /// Output channels (filters `F`).
        out_c: usize,
        /// Kernel size `K`.
        k: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Fully-connected layer.
    Linear {
        /// Weight `[out_f, in_f]`.
        w: ParamId,
        /// Bias `[out_f]`.
        b: ParamId,
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
    },
    /// Batch normalization over channels.
    BatchNorm {
        /// Scale `γ` `[c]`.
        gamma: ParamId,
        /// Shift `β` `[c]`.
        beta: ParamId,
        /// Running mean `[c]` (non-trainable).
        mean: ParamId,
        /// Running variance `[c]` (non-trainable).
        var: ParamId,
        /// Channel count.
        channels: usize,
        /// Numerical-stability epsilon.
        eps: f32,
        /// Running-statistics momentum.
        momentum: f32,
    },
    /// Rectified linear unit.
    Relu,
    /// Max pooling.
    MaxPool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Average pooling.
    AvgPool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling to `1×1`.
    GlobalAvgPool,
    /// Flatten `(n,c,h,w)` to `(n, c·h·w, 1, 1)`.
    Flatten,
    /// Elementwise addition of two inputs (residual shortcut).
    Add,
    /// Monte Carlo Dropout site: channel-wise Bernoulli mask applied to
    /// the feature map when the site is active, identity otherwise.
    McdSite {
        /// Position of this site in weight-layer order.
        site: SiteId,
        /// Dropout probability the network was designed for.
        p: f32,
    },
}

/// A node: an operation plus its data dependencies.
#[derive(Debug, Clone)]
pub struct Node {
    /// Operation performed by this node.
    pub op: Op,
    /// Producer nodes (all with smaller ids — the graph is topologically
    /// ordered by construction).
    pub inputs: Vec<NodeId>,
    /// Human-readable name for traces and error messages.
    pub name: String,
}

/// A neural network: topologically-ordered nodes plus their parameters.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    pub(crate) params: ParamStore,
    pub(crate) input: NodeId,
    pub(crate) output: NodeId,
    pub(crate) n_sites: usize,
    name: String,
}

impl Graph {
    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The input node id.
    pub fn input_id(&self) -> NodeId {
        self.input
    }

    /// The output (logits) node id.
    pub fn output_id(&self) -> NodeId {
        self.output
    }

    /// Number of MCD sites (`N`, the paper's weight-layer count).
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Network name ("lenet5", "vgg11", ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Immutable parameter store.
    pub fn params(&self) -> &ParamStore {
        &self.params
    }

    /// Mutable parameter store (optimizer, quantizer calibration).
    pub fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.params
    }

    /// Infer the output shape of every node for a given input shape.
    ///
    /// # Panics
    ///
    /// Panics if the graph is malformed (shape mismatch), which is a
    /// construction bug rather than a runtime condition.
    pub fn infer_shapes(&self, input: Shape4) -> Vec<Shape4> {
        let mut shapes: Vec<Shape4> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let s = node_out_shape(node, input, |id| shapes[id]);
            shapes.push(s);
        }
        shapes
    }

    /// Channel count seen by each MCD site for a given input shape
    /// (the mask length the Bernoulli sampler must produce).
    pub fn site_channels(&self, input: Shape4) -> Vec<usize> {
        let shapes = self.infer_shapes(input);
        let mut out = vec![0usize; self.n_sites];
        for (id, node) in self.nodes.iter().enumerate() {
            if let Op::McdSite { site, .. } = node.op {
                out[site.0] = shapes[id].c;
            }
        }
        out
    }

    /// Fold every BatchNorm node into its producing conv/linear layer
    /// and return the BN-free graph (weights rescaled per channel,
    /// biases shifted). This is the standard pre-quantization transform:
    /// the accelerator's FU BN stage then reduces to the per-channel
    /// requantization multipliers.
    ///
    /// # Panics
    ///
    /// Panics if a BatchNorm's producer is not a conv or linear layer
    /// (never the case for the models in this crate).
    pub fn fold_batch_norm(&self) -> Graph {
        let mut g = self.clone();
        // Map from old node id to new node id after BN removal.
        let mut remap: Vec<NodeId> = Vec::with_capacity(g.nodes.len());
        let mut new_nodes: Vec<Node> = Vec::new();
        for (id, node) in self.nodes.iter().enumerate() {
            if let Op::BatchNorm {
                gamma,
                beta,
                mean,
                var,
                channels,
                eps,
                ..
            } = node.op
            {
                let src = node.inputs[0];
                let (w_id, b_id, per_out) = match self.nodes[src].op {
                    Op::Conv { w, b, out_c, .. } => (w, b, out_c),
                    Op::Linear { w, b, out_f, .. } => (w, b, out_f),
                    _ => panic!(
                        "{}: BatchNorm must follow a weight layer to fold",
                        node.name
                    ),
                };
                assert_eq!(per_out, channels, "{}: BN channel mismatch", node.name);
                let gm = g.params.get(gamma).as_slice().to_vec();
                let bt = g.params.get(beta).as_slice().to_vec();
                let mu = g.params.get(mean).as_slice().to_vec();
                let vr = g.params.get(var).as_slice().to_vec();
                let per_ch = g.params.get(w_id).len() / per_out;
                {
                    let w = g.params.get_mut(w_id);
                    for c in 0..per_out {
                        let s = gm[c] / (vr[c] + eps).sqrt();
                        for v in &mut w.as_mut_slice()[c * per_ch..(c + 1) * per_ch] {
                            *v *= s;
                        }
                    }
                }
                {
                    let b = g.params.get_mut(b_id);
                    for c in 0..per_out {
                        let s = gm[c] / (vr[c] + eps).sqrt();
                        let bv = &mut b.as_mut_slice()[c];
                        *bv = (*bv - mu[c]) * s + bt[c];
                    }
                }
                // The BN node disappears: alias it to its producer.
                remap.push(remap[src]);
            } else {
                let new_id = new_nodes.len();
                new_nodes.push(Node {
                    op: node.op.clone(),
                    inputs: node.inputs.iter().map(|&i| remap[i]).collect(),
                    name: node.name.clone(),
                });
                remap.push(new_id);
                let _ = id;
            }
        }
        Graph {
            nodes: new_nodes,
            params: g.params,
            input: remap[self.input],
            output: remap[self.output],
            n_sites: self.n_sites,
            name: format!("{}-bnfold", self.name),
        }
    }

    /// Total multiply-accumulate operations of one forward pass for a
    /// given input shape (batch treated as 1 regardless of `input.n`).
    pub fn macs(&self, input: Shape4) -> u64 {
        let shapes = self.infer_shapes(input.with_n(1));
        let mut macs = 0u64;
        for (id, node) in self.nodes.iter().enumerate() {
            match &node.op {
                Op::Conv { in_c, k, .. } => {
                    let so = shapes[id];
                    macs += (so.c * so.h * so.w * in_c * k * k) as u64;
                }
                Op::Linear { in_f, out_f, .. } => {
                    macs += (*in_f * *out_f) as u64;
                }
                _ => {}
            }
        }
        macs
    }
}

/// Output shape of a single node given its predecessors' shapes
/// (`get(id)`), used by [`Graph::infer_shapes`] and by the executor's
/// scratch-buffer planner.
///
/// # Panics
///
/// Panics on a malformed graph (shape mismatch), which is a
/// construction bug rather than a runtime condition.
pub(crate) fn node_out_shape(node: &Node, input: Shape4, get: impl Fn(NodeId) -> Shape4) -> Shape4 {
    match &node.op {
        Op::Input => input,
        Op::Conv {
            in_c,
            out_c,
            k,
            stride,
            pad,
            ..
        } => {
            let si = get(node.inputs[0]);
            assert_eq!(si.c, *in_c, "{}: channel mismatch", node.name);
            Shape4::new(
                si.n,
                *out_c,
                conv_out_dim(si.h, *k, *stride, *pad),
                conv_out_dim(si.w, *k, *stride, *pad),
            )
        }
        Op::Linear { in_f, out_f, .. } => {
            let si = get(node.inputs[0]);
            assert_eq!(si.item_len(), *in_f, "{}: feature mismatch", node.name);
            Shape4::vec(si.n, *out_f)
        }
        Op::BatchNorm { channels, .. } => {
            let si = get(node.inputs[0]);
            assert_eq!(si.c, *channels, "{}: BN channel mismatch", node.name);
            si
        }
        Op::Relu | Op::McdSite { .. } => get(node.inputs[0]),
        Op::MaxPool { k, stride } | Op::AvgPool { k, stride } => {
            let si = get(node.inputs[0]);
            Shape4::new(
                si.n,
                si.c,
                conv_out_dim(si.h, *k, *stride, 0),
                conv_out_dim(si.w, *k, *stride, 0),
            )
        }
        Op::GlobalAvgPool => {
            let si = get(node.inputs[0]);
            Shape4::new(si.n, si.c, 1, 1)
        }
        Op::Flatten => {
            let si = get(node.inputs[0]);
            Shape4::vec(si.n, si.item_len())
        }
        Op::Add => {
            let a = get(node.inputs[0]);
            let b = get(node.inputs[1]);
            assert_eq!(a, b, "{}: add shape mismatch", node.name);
            a
        }
    }
}

/// Incremental graph constructor used by the model builders.
///
/// All `add_*` methods return the new node's id so residual branches
/// can reference any earlier tensor.
#[derive(Debug)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
    params: ParamStore,
    input: NodeId,
    n_sites: usize,
    rng: SoftRng,
    name: String,
}

impl GraphBuilder {
    /// Start a graph; `seed` drives weight initialisation.
    pub fn new(name: &str, seed: u64) -> GraphBuilder {
        let nodes = vec![Node {
            op: Op::Input,
            inputs: vec![],
            name: "input".into(),
        }];
        GraphBuilder {
            nodes,
            params: ParamStore::new(),
            input: 0,
            n_sites: 0,
            rng: SoftRng::new(seed),
            name: name.to_string(),
        }
    }

    /// The input node id.
    pub fn input(&self) -> NodeId {
        self.input
    }

    fn push(&mut self, op: Op, inputs: Vec<NodeId>, name: String) -> NodeId {
        for &i in &inputs {
            assert!(i < self.nodes.len(), "input node {i} does not exist");
        }
        self.nodes.push(Node { op, inputs, name });
        self.nodes.len() - 1
    }

    /// Add an MCD site guarding the next weight layer's input.
    pub fn mcd(&mut self, x: NodeId, p: f32) -> NodeId {
        let site = SiteId(self.n_sites);
        self.n_sites += 1;
        self.push(Op::McdSite { site, p }, vec![x], format!("mcd{}", site.0))
    }

    /// Add a convolution (Kaiming-initialised).
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        &mut self,
        x: NodeId,
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> NodeId {
        let w =
            self.params
                .add_kaiming(Shape4::new(out_c, in_c, k, k), in_c * k * k, &mut self.rng);
        let b = self.params.add(Tensor::zeros(Shape4::vec(1, out_c)));
        let n = self.nodes.len();
        self.push(
            Op::Conv {
                w,
                b,
                in_c,
                out_c,
                k,
                stride,
                pad,
            },
            vec![x],
            format!("conv{n}_{in_c}x{out_c}k{k}s{stride}"),
        )
    }

    /// Add a linear layer (Kaiming-initialised).
    pub fn linear(&mut self, x: NodeId, in_f: usize, out_f: usize) -> NodeId {
        let w = self
            .params
            .add_kaiming(Shape4::new(out_f, in_f, 1, 1), in_f, &mut self.rng);
        let b = self.params.add(Tensor::zeros(Shape4::vec(1, out_f)));
        let n = self.nodes.len();
        self.push(
            Op::Linear { w, b, in_f, out_f },
            vec![x],
            format!("fc{n}_{in_f}x{out_f}"),
        )
    }

    /// Add a batch-normalization layer (γ=1, β=0, running stats 0/1).
    pub fn batch_norm(&mut self, x: NodeId, channels: usize) -> NodeId {
        let gamma = self.params.add(Tensor::full(Shape4::vec(1, channels), 1.0));
        let beta = self.params.add(Tensor::zeros(Shape4::vec(1, channels)));
        let mean = self
            .params
            .add_with_trainable(Tensor::zeros(Shape4::vec(1, channels)), false);
        let var = self
            .params
            .add_with_trainable(Tensor::full(Shape4::vec(1, channels), 1.0), false);
        let n = self.nodes.len();
        self.push(
            Op::BatchNorm {
                gamma,
                beta,
                mean,
                var,
                channels,
                eps: 1e-5,
                momentum: 0.1,
            },
            vec![x],
            format!("bn{n}"),
        )
    }

    /// Add a ReLU.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let n = self.nodes.len();
        self.push(Op::Relu, vec![x], format!("relu{n}"))
    }

    /// Add a max-pool.
    pub fn max_pool(&mut self, x: NodeId, k: usize, stride: usize) -> NodeId {
        let n = self.nodes.len();
        self.push(Op::MaxPool { k, stride }, vec![x], format!("maxpool{n}"))
    }

    /// Add an average pool.
    pub fn avg_pool(&mut self, x: NodeId, k: usize, stride: usize) -> NodeId {
        let n = self.nodes.len();
        self.push(Op::AvgPool { k, stride }, vec![x], format!("avgpool{n}"))
    }

    /// Add a global average pool.
    pub fn global_avg_pool(&mut self, x: NodeId) -> NodeId {
        let n = self.nodes.len();
        self.push(Op::GlobalAvgPool, vec![x], format!("gap{n}"))
    }

    /// Add a flatten.
    pub fn flatten(&mut self, x: NodeId) -> NodeId {
        let n = self.nodes.len();
        self.push(Op::Flatten, vec![x], format!("flatten{n}"))
    }

    /// Add a residual addition.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let n = self.nodes.len();
        self.push(Op::Add, vec![a, b], format!("add{n}"))
    }

    /// Finish the graph with `output` as the logits node.
    ///
    /// # Panics
    ///
    /// Panics if `output` does not exist.
    pub fn finish(self, output: NodeId) -> Graph {
        assert!(output < self.nodes.len(), "output node does not exist");
        Graph {
            nodes: self.nodes,
            params: self.params,
            input: self.input,
            output,
            n_sites: self.n_sites,
            name: self.name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> Graph {
        // input -> mcd -> conv(1->2,k3,p1) -> bn -> relu -> gap -> flatten -> fc(2->3)
        let mut b = GraphBuilder::new("tiny", 1);
        let x = b.input();
        let m = b.mcd(x, 0.25);
        let c = b.conv(m, 1, 2, 3, 1, 1);
        let bn = b.batch_norm(c, 2);
        let r = b.relu(bn);
        let g = b.global_avg_pool(r);
        let f = b.flatten(g);
        let m2 = b.mcd(f, 0.25);
        let fc = b.linear(m2, 2, 3);
        b.finish(fc)
    }

    #[test]
    fn shapes_inferred() {
        let g = tiny_graph();
        let shapes = g.infer_shapes(Shape4::new(4, 1, 8, 8));
        assert_eq!(shapes[g.output_id()], Shape4::vec(4, 3));
        assert_eq!(g.n_sites(), 2);
    }

    #[test]
    fn site_channels_reported() {
        let g = tiny_graph();
        let ch = g.site_channels(Shape4::new(1, 1, 8, 8));
        assert_eq!(ch, vec![1, 2]);
    }

    #[test]
    fn macs_counted() {
        let g = tiny_graph();
        // conv: 2*8*8*1*9 = 1152; fc: 2*3 = 6.
        assert_eq!(g.macs(Shape4::new(1, 1, 8, 8)), 1152 + 6);
    }

    #[test]
    fn residual_add_shapes() {
        let mut b = GraphBuilder::new("res", 2);
        let x = b.input();
        let c1 = b.conv(x, 3, 3, 3, 1, 1);
        let a = b.add(c1, x);
        let g = b.finish(a);
        let shapes = g.infer_shapes(Shape4::new(1, 3, 4, 4));
        assert_eq!(shapes[a], Shape4::new(1, 3, 4, 4));
    }

    #[test]
    #[should_panic(expected = "add shape mismatch")]
    fn mismatched_add_panics() {
        let mut b = GraphBuilder::new("bad", 3);
        let x = b.input();
        let c1 = b.conv(x, 3, 5, 3, 1, 1); // 5 channels
        let a = b.add(c1, x); // 3 channels -> mismatch
        let g = b.finish(a);
        let _ = g.infer_shapes(Shape4::new(1, 3, 4, 4));
    }

    #[test]
    fn param_count_tracks_layers() {
        let g = tiny_graph();
        // conv w+b, bn gamma/beta/mean/var, fc w+b = 8 tensors.
        assert_eq!(g.params().len(), 8);
    }

    #[test]
    fn bn_folding_preserves_eval_forward() {
        use crate::exec::MaskSet;
        // Train-ish running stats so BN is non-trivial, then fold.
        let mut g = tiny_graph();
        {
            use crate::param::ParamId;
            // BN params are ids 2..6 (conv w, b, gamma, beta, mean, var).
            let gm = g.params_mut().get_mut(ParamId(2));
            gm.as_mut_slice().copy_from_slice(&[1.5, 0.7]);
            let bt = g.params_mut().get_mut(ParamId(3));
            bt.as_mut_slice().copy_from_slice(&[0.3, -0.2]);
            let mu = g.params_mut().get_mut(ParamId(4));
            mu.as_mut_slice().copy_from_slice(&[0.1, -0.4]);
            let vr = g.params_mut().get_mut(ParamId(5));
            vr.as_mut_slice().copy_from_slice(&[0.9, 1.7]);
        }
        let folded = g.fold_batch_norm();
        assert_eq!(folded.nodes().len(), g.nodes().len() - 1, "one BN removed");
        let x = Tensor::from_vec(
            Shape4::new(2, 1, 8, 8),
            (0..128).map(|i| (i as f32 / 40.0) - 1.5).collect(),
        );
        let ya = g.forward(&x, &MaskSet::none());
        let yb = folded.forward(&x, &MaskSet::none());
        assert!(
            ya.max_abs_diff(&yb) < 1e-4,
            "folding must preserve the function"
        );
    }

    #[test]
    fn bn_folding_keeps_sites_and_shapes() {
        let g = tiny_graph();
        let folded = g.fold_batch_norm();
        assert_eq!(folded.n_sites(), g.n_sites());
        let shapes = folded.infer_shapes(Shape4::new(1, 1, 8, 8));
        assert_eq!(shapes[folded.output_id()], Shape4::vec(1, 3));
    }
}
