//! Layer-graph neural network IR with f32 inference, backprop and SGD
//! training.
//!
//! The graph plays the role of a *netlist*: every consumer in the stack
//! — the f32 executor here, the int8 reference executor in `bnn-quant`,
//! the accelerator compiler in `bnn-accel` and the CPU/GPU latency
//! models in `bnn-platforms` — walks the same [`Graph`] so they are
//! guaranteed to describe the same network.
//!
//! Monte Carlo Dropout sites are first-class: every weight layer's
//! input carries a [`Op::McdSite`] node. A site is *active* when the
//! Bayesian configuration enables it (the paper's "last `L` layers");
//! inactive sites are identities, so a single graph serves every
//! partial-Bayesian configuration.
//!
//! # Example
//!
//! ```
//! use bnn_nn::{models, MaskSet};
//! use bnn_tensor::{Shape4, Tensor};
//!
//! let mut net = models::lenet5(10, 1, 28, 7);
//! let x = Tensor::zeros(Shape4::new(1, 1, 28, 28));
//! // Standard (non-Bayesian) forward: no masks.
//! let logits = net.forward(&x, &MaskSet::none());
//! assert_eq!(logits.shape().c, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
mod exec;
mod graph;
mod loss;
pub mod models;
mod param;
mod train;

pub use exec::{Activations, ExecScratch, Mask, MaskSet, StackedScratch};
pub use graph::{Graph, GraphBuilder, Node, NodeId, Op, SiteId};
pub use loss::{cross_entropy, CrossEntropyOutput};
pub use param::{ParamId, ParamStore};
pub use train::{evaluate_accuracy, Batcher, SgdConfig, Trainer};
