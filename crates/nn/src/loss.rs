//! Cross-entropy loss for classification.

use bnn_tensor::{log_softmax_rows, softmax_rows, Tensor};

/// Result of a cross-entropy evaluation: the mean loss and the gradient
/// w.r.t. the logits, ready for [`crate::Graph::backward`].
#[derive(Debug, Clone)]
pub struct CrossEntropyOutput {
    /// Mean negative log-likelihood over the batch.
    pub loss: f32,
    /// `∂loss/∂logits`, shape `(n, k, 1, 1)`.
    pub dlogits: Tensor,
    /// Number of correct argmax predictions in the batch.
    pub correct: usize,
}

/// Mean cross-entropy of `logits (n×k)` against integer labels.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size or a label is
/// out of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> CrossEntropyOutput {
    let s = logits.shape();
    let (n, k) = (s.n, s.item_len());
    assert_eq!(labels.len(), n, "one label per batch item required");
    let mut logp = logits.as_slice().to_vec();
    log_softmax_rows(&mut logp, n, k);
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < k, "label {label} out of range for {k} classes");
        loss -= f64::from(logp[i * k + label]);
        if logits.argmax_item(i) == label {
            correct += 1;
        }
    }
    // dlogits = (softmax - onehot) / n
    let mut probs = logits.as_slice().to_vec();
    softmax_rows(&mut probs, n, k);
    let inv_n = 1.0 / n as f32;
    for (i, &label) in labels.iter().enumerate() {
        probs[i * k + label] -= 1.0;
    }
    for v in &mut probs {
        *v *= inv_n;
    }
    CrossEntropyOutput {
        loss: (loss / n as f64) as f32,
        dlogits: Tensor::from_vec(s, probs),
        correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_tensor::Shape4;

    #[test]
    fn uniform_logits_loss_is_log_k() {
        let logits = Tensor::zeros(Shape4::vec(2, 4));
        let out = cross_entropy(&logits, &[0, 3]);
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Tensor::from_vec(Shape4::vec(1, 3), vec![10.0, 0.0, 0.0]);
        let out = cross_entropy(&logits, &[0]);
        assert!(out.loss < 1e-3);
        assert_eq!(out.correct, 1);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(Shape4::vec(2, 3), vec![1.0, 2.0, 3.0, -1.0, 0.5, 0.2]);
        let out = cross_entropy(&logits, &[2, 1]);
        for i in 0..2 {
            let s: f32 = out.dlogits.item(i).iter().sum();
            assert!(s.abs() < 1e-6, "softmax-onehot rows sum to zero");
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let base = vec![0.3f32, -0.7, 1.2];
        let labels = [1usize];
        let eps = 1e-3f32;
        let out = cross_entropy(&Tensor::from_vec(Shape4::vec(1, 3), base.clone()), &labels);
        for j in 0..3 {
            let mut plus = base.clone();
            plus[j] += eps;
            let lp = cross_entropy(&Tensor::from_vec(Shape4::vec(1, 3), plus), &labels).loss;
            let mut minus = base.clone();
            minus[j] -= eps;
            let lm = cross_entropy(&Tensor::from_vec(Shape4::vec(1, 3), minus), &labels).loss;
            let fd = (lp - lm) / (2.0 * eps);
            let an = out.dlogits.as_slice()[j];
            assert!((fd - an).abs() < 1e-3, "dim {j}: fd {fd} vs analytic {an}");
        }
    }

    #[test]
    #[should_panic(expected = "label")]
    fn out_of_range_label_panics() {
        let logits = Tensor::zeros(Shape4::vec(1, 2));
        let _ = cross_entropy(&logits, &[5]);
    }
}
