//! Forward and backward execution of a [`Graph`] in f32.

use crate::graph::{node_out_shape, Graph, Node, NodeId, Op};
use crate::param::ParamStore;
use bnn_rng::SoftRng;
use bnn_tensor::{
    add_inplace, avg_pool, avg_pool_backward, avg_pool_into, col2im, gemm, gemm_at, gemm_bt,
    gemm_bt_stacked, gemm_stacked, global_avg_pool, global_avg_pool_into, im2col, im2col_into,
    im2col_stacked_into, max_pool, max_pool_backward, max_pool_into, relu_inplace, Shape4, Tensor,
};

/// A channel-wise dropout mask: `keep[c]` keeps channel `c` (scaled by
/// `scale = 1/(1-p)`), otherwise the channel is zeroed.
#[derive(Debug, Clone, PartialEq)]
pub struct Mask {
    /// Keep decision per channel.
    pub keep: Vec<bool>,
    /// Rescale factor applied to kept channels.
    pub scale: f32,
}

/// The masks supplied to one forward pass, indexed by MCD site.
///
/// `None` at a site means the site is inactive (identity), which is how
/// partial Bayesian inference deactivates the first `N - L` sites.
#[derive(Debug, Clone, Default)]
pub struct MaskSet {
    masks: Vec<Option<Mask>>,
}

impl MaskSet {
    /// No active sites — the standard (deterministic) network.
    pub fn none() -> MaskSet {
        MaskSet { masks: Vec::new() }
    }

    /// Build from per-site masks (index = site id).
    pub fn from_masks(masks: Vec<Option<Mask>>) -> MaskSet {
        MaskSet { masks }
    }

    /// Draw masks for the active sites from an arbitrary keep-bit
    /// source: `keep_bits(len)` returns one site's keep vector.
    ///
    /// This is the *only* place that maps `active`/`channels` to a
    /// [`MaskSet`] — the software PRNG source, the hardware LFSR
    /// source and the accelerator simulator all route through it, so
    /// no two mask producers can disagree on which sites are Bayesian
    /// or on the `1/(1-p)` rescale of the kept channels.
    ///
    /// # Panics
    ///
    /// Panics if `active` and `channels` have different lengths, or if
    /// `p` is outside `[0, 1)` (at `p = 1` the kept-channel rescale
    /// `1/(1-p)` is infinite and dropout degenerates to zeroing the
    /// whole feature map).
    pub fn draw(
        active: &[bool],
        channels: &[usize],
        p: f32,
        mut keep_bits: impl FnMut(usize) -> Vec<bool>,
    ) -> MaskSet {
        assert_eq!(
            active.len(),
            channels.len(),
            "active/channels length mismatch"
        );
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1), got {p}"
        );
        let scale = 1.0 / (1.0 - p);
        let masks = active
            .iter()
            .zip(channels)
            .map(|(&on, &c)| {
                on.then(|| Mask {
                    keep: keep_bits(c),
                    scale,
                })
            })
            .collect();
        MaskSet { masks }
    }

    /// Sample software Bernoulli masks for the active sites.
    ///
    /// `active[i]` enables site `i`; `channels[i]` is the mask length
    /// (from [`Graph::site_channels`]); `p` is the drop probability.
    /// Keep bits come from the batched [`SoftRng::bernoulli_many`]
    /// drop draws (byte-threshold fast path for `p = k/256`).
    pub fn sample_software(
        active: &[bool],
        channels: &[usize],
        p: f32,
        rng: &mut SoftRng,
    ) -> MaskSet {
        MaskSet::draw(active, channels, p, |c| {
            let mut bits = rng.bernoulli_many(f64::from(p), c);
            for b in &mut bits {
                *b = !*b;
            }
            bits
        })
    }

    /// Mask at `site`, if the site is active.
    pub fn get(&self, site: usize) -> Option<&Mask> {
        self.masks.get(site).and_then(|m| m.as_ref())
    }

    /// Number of sites covered (sites beyond this are inactive).
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Whether no site is covered.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }
}

/// Per-node data cached by a training forward pass.
#[derive(Debug, Clone)]
enum Aux {
    None,
    MaxPool(Vec<u32>),
    Bn { xhat: Tensor, inv_std: Vec<f32> },
}

/// Cached activations of a training-mode forward pass, consumed by
/// [`Graph::backward`].
#[derive(Debug, Clone)]
pub struct Activations {
    outs: Vec<Tensor>,
    aux: Vec<Aux>,
}

impl Activations {
    /// Output tensor of a node.
    pub fn output(&self, node: usize) -> &Tensor {
        &self.outs[node]
    }

    /// The logits (output of the last node executed).
    pub fn logits(&self, graph: &Graph) -> &Tensor {
        &self.outs[graph.output_id()]
    }
}

/// Apply one channel mask to a contiguous range of batch items (the
/// sample-stacked walk masks each sample's item group separately).
fn apply_mask_items(x: &mut Tensor, mask: &Mask, items: std::ops::Range<usize>, name: &str) {
    let s = x.shape();
    assert_eq!(mask.keep.len(), s.c, "{name}: mask length != channels");
    let plane = s.h * s.w;
    for n in items {
        let item = x.item_mut(n);
        for (c, &keep) in mask.keep.iter().enumerate() {
            let sl = &mut item[c * plane..(c + 1) * plane];
            if keep {
                for v in sl {
                    *v *= mask.scale;
                }
            } else {
                sl.fill(0.0);
            }
        }
    }
}

fn apply_mask(x: &mut Tensor, mask: &Mask, name: &str) {
    let n = x.shape().n;
    apply_mask_items(x, mask, 0..n, name);
}

/// Copy an item range of `src` into `out` with the channel mask folded
/// into the copy: kept channels are written as `v · scale`, dropped
/// channels as `0.0` — element for element the same values the
/// copy-then-[`apply_mask`] pair produces, in a single pass.
///
/// For flat feature maps (`plane == 1`, the fully-connected case) the
/// per-channel work is one element, so the mask is applied as a
/// branch-free bit-mask multiply: `keep` expands to an all-ones or
/// all-zeros bit mask, the masked value is exactly `v` or `+0.0`, and
/// the `· scale` multiply then reproduces the copy-then-apply values
/// bit for bit (`+0.0 · scale = +0.0`). Random keep bits make the
/// branchy per-channel formulation mispredict-bound, which is
/// otherwise the dominant per-sample cost of an FC Bayesian suffix.
fn masked_copy_items(
    src: &Tensor,
    out: &mut Tensor,
    mask: &Mask,
    items: std::ops::Range<usize>,
    name: &str,
) {
    let s = out.shape();
    assert_eq!(mask.keep.len(), s.c, "{name}: mask length != channels");
    let plane = s.h * s.w;
    if plane == 1 {
        for n in items {
            let sl = &src.as_slice()[n * s.c..(n + 1) * s.c];
            let dst = out.item_mut(n);
            for ((d, &v), &keep) in dst.iter_mut().zip(sl).zip(&mask.keep) {
                let bits = (keep as u32).wrapping_neg();
                *d = f32::from_bits(v.to_bits() & bits) * mask.scale;
            }
        }
    } else {
        for n in items {
            let sl = src.item(n);
            let dst = out.item_mut(n);
            for (c, &keep) in mask.keep.iter().enumerate() {
                let r = c * plane..(c + 1) * plane;
                if keep {
                    for (d, &v) in dst[r.clone()].iter_mut().zip(&sl[r]) {
                        *d = v * mask.scale;
                    }
                } else {
                    dst[r].fill(0.0);
                }
            }
        }
    }
}

/// Convolution forward into a preallocated output, reusing `cols` as
/// the im2col workspace (grown on demand, never shrunk).
///
/// With `split_batch` set and a batch of at least four items, the
/// items are divided across two scoped workers (each on its own half
/// of `cols`); callers that already run inside a worker team — the
/// MCD sampler — pass `false` to avoid oversubscribing the host.
#[allow(clippy::too_many_arguments)]
fn conv_forward_into(
    x: &Tensor,
    w: &Tensor,
    b: &Tensor,
    k: usize,
    stride: usize,
    pad: usize,
    y: &mut Tensor,
    cols: &mut Vec<f32>,
    split_batch: bool,
) {
    let si = x.shape();
    let so = y.shape();
    let (f, ckk, howo) = (so.c, si.c * k * k, so.h * so.w);
    let item_len = so.item_len();
    let cols_len = ckk * howo;
    let one_item = |n: usize, yi: &mut [f32], cols: &mut [f32]| {
        im2col_into(x.item(n), si.c, si.h, si.w, k, stride, pad, cols);
        yi.fill(0.0);
        gemm(f, ckk, howo, w.as_slice(), cols, yi);
        for (c, &bias) in b.as_slice().iter().enumerate() {
            for v in &mut yi[c * howo..(c + 1) * howo] {
                *v += bias;
            }
        }
    };
    if split_batch && si.n >= 4 {
        // Batch items are independent; split across two workers, each
        // owning one half of the (persistent) im2col buffer. The item
        // computations are untouched, so the outputs are identical to
        // the serial walk.
        let mid = si.n / 2;
        let (lo, hi) = y.as_mut_slice().split_at_mut(mid * item_len);
        if cols.len() < 2 * cols_len {
            cols.resize(2 * cols_len, 0.0);
        }
        let (cols_a, cols_b) = cols.split_at_mut(cols_len);
        // audit:allow(concurrency) bnn-nn sits below bnn-mcd, so it cannot route through WorkerPool without a dependency cycle; the halves write disjoint output slices and the result is bit-identical to the serial walk.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for n in 0..mid {
                    one_item(n, &mut lo[n * item_len..(n + 1) * item_len], cols_a);
                }
            });
            for n in mid..si.n {
                one_item(
                    n,
                    &mut hi[(n - mid) * item_len..(n - mid + 1) * item_len],
                    &mut cols_b[..cols_len],
                );
            }
        });
    } else {
        if cols.len() < cols_len {
            cols.resize(cols_len, 0.0);
        }
        let data = y.as_mut_slice();
        for n in 0..si.n {
            one_item(
                n,
                &mut data[n * item_len..(n + 1) * item_len],
                &mut cols[..cols_len],
            );
        }
    }
}

fn conv_forward(
    x: &Tensor,
    w: &Tensor,
    b: &Tensor,
    out_shape: Shape4,
    k: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    let mut y = Tensor::zeros(out_shape);
    let mut cols = Vec::new();
    conv_forward_into(x, w, b, k, stride, pad, &mut y, &mut cols, true);
    y
}

/// Fused convolution over a sample-stacked batch: every item's im2col
/// block lands side by side in one `[C·K·K, N·Ho·Wo]` column matrix
/// and a single [`gemm_stacked`] call covers all of them, so the
/// weight matrix streams once per *layer* instead of once per item.
/// The staged `[F, N·Ho·Wo]` GEMM output is then gathered back into
/// per-item NCHW layout with the bias added — one add per element,
/// exactly like the per-item path — so the result is bit-identical to
/// [`conv_forward_into`] on each item.
#[allow(clippy::too_many_arguments)]
fn conv_forward_stacked_into(
    x: &Tensor,
    w: &Tensor,
    b: &Tensor,
    k: usize,
    stride: usize,
    pad: usize,
    y: &mut Tensor,
    cols: &mut Vec<f32>,
    stage: &mut Vec<f32>,
) {
    let si = x.shape();
    let so = y.shape();
    let (f, ckk, howo) = (so.c, si.c * k * k, so.h * so.w);
    let total_cols = si.n * howo;
    let cols_len = ckk * total_cols;
    let stage_len = f * total_cols;
    if cols.len() < cols_len {
        cols.resize(cols_len, 0.0);
    }
    if stage.len() < stage_len {
        stage.resize(stage_len, 0.0);
    }
    let cols = &mut cols[..cols_len];
    let stage = &mut stage[..stage_len];
    for n in 0..si.n {
        im2col_stacked_into(
            x.item(n),
            si.c,
            si.h,
            si.w,
            k,
            stride,
            pad,
            cols,
            total_cols,
            n * howo,
        );
    }
    stage.fill(0.0);
    gemm_stacked(f, ckk, howo, si.n, w.as_slice(), cols, stage);
    let bias = b.as_slice();
    for n in 0..si.n {
        let yi = y.item_mut(n);
        for (c, &bv) in bias.iter().enumerate() {
            let src = &stage[c * total_cols + n * howo..c * total_cols + (n + 1) * howo];
            let dst = &mut yi[c * howo..(c + 1) * howo];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s + bv;
            }
        }
    }
}

/// Fused fully-connected forward over a sample-stacked activation
/// matrix: the `samples` row blocks go through one [`gemm_bt_stacked`]
/// call, sharing the streamed weight matrix across stacked rows.
/// Bit-identical to [`linear_forward_into`] on each block.
fn linear_forward_stacked_into(x: &Tensor, w: &Tensor, b: &Tensor, samples: usize, y: &mut Tensor) {
    let si = x.shape();
    let in_f = si.item_len();
    let out_f = y.shape().item_len();
    debug_assert_eq!(si.n % samples, 0, "stacked batch must cover all samples");
    y.as_mut_slice().fill(0.0);
    gemm_bt_stacked(
        si.n / samples,
        in_f,
        out_f,
        samples,
        x.as_slice(),
        w.as_slice(),
        y.as_mut_slice(),
    );
    for n in 0..si.n {
        add_inplace(y.item_mut(n), b.as_slice());
    }
}

/// Fully-connected forward into a preallocated output.
fn linear_forward_into(x: &Tensor, w: &Tensor, b: &Tensor, y: &mut Tensor) {
    let si = x.shape();
    let in_f = si.item_len();
    let out_f = y.shape().item_len();
    y.as_mut_slice().fill(0.0);
    gemm_bt(
        si.n,
        in_f,
        out_f,
        x.as_slice(),
        w.as_slice(),
        y.as_mut_slice(),
    );
    for n in 0..si.n {
        add_inplace(y.item_mut(n), b.as_slice());
    }
}

fn linear_forward(x: &Tensor, w: &Tensor, b: &Tensor, out_f: usize) -> Tensor {
    let mut y = Tensor::zeros(Shape4::vec(x.shape().n, out_f));
    linear_forward_into(x, w, b, &mut y);
    y
}

/// Per-channel batch statistics over (N, H, W).
fn bn_batch_stats(x: &Tensor) -> (Vec<f32>, Vec<f32>) {
    let s = x.shape();
    let plane = s.h * s.w;
    let m = (s.n * plane) as f64;
    let mut mean = vec![0f64; s.c];
    let mut var = vec![0f64; s.c];
    for n in 0..s.n {
        let item = x.item(n);
        for c in 0..s.c {
            for &v in &item[c * plane..(c + 1) * plane] {
                mean[c] += f64::from(v);
            }
        }
    }
    for mc in &mut mean {
        *mc /= m;
    }
    for n in 0..s.n {
        let item = x.item(n);
        for c in 0..s.c {
            for &v in &item[c * plane..(c + 1) * plane] {
                let d = f64::from(v) - mean[c];
                var[c] += d * d;
            }
        }
    }
    for vc in &mut var {
        *vc /= m;
    }
    (
        mean.into_iter().map(|v| v as f32).collect(),
        var.into_iter().map(|v| v as f32).collect(),
    )
}

fn bn_apply(
    x: &Tensor,
    mean: &[f32],
    var: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) -> (Tensor, Tensor, Vec<f32>) {
    let s = x.shape();
    let plane = s.h * s.w;
    let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
    let mut xhat = Tensor::zeros(s);
    let mut y = Tensor::zeros(s);
    for n in 0..s.n {
        let xi = x.item(n);
        let range = n * s.item_len()..(n + 1) * s.item_len();
        let xh = &mut xhat.as_mut_slice()[range.clone()];
        let yo = &mut y.as_mut_slice()[range];
        for c in 0..s.c {
            let (g, b, mu, is) = (gamma[c], beta[c], mean[c], inv_std[c]);
            for i in c * plane..(c + 1) * plane {
                let h = (xi[i] - mu) * is;
                xh[i] = h;
                yo[i] = g * h + b;
            }
        }
    }
    (y, xhat, inv_std)
}

/// Evaluation-mode batch norm (running statistics) into a
/// preallocated output; no `xhat` cache is produced.
fn bn_apply_eval_into(
    x: &Tensor,
    mean: &[f32],
    var: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    y: &mut Tensor,
) {
    let s = x.shape();
    assert_eq!(y.shape(), s, "bn eval: output shape mismatch");
    let plane = s.h * s.w;
    let item_len = s.item_len();
    let (xs, ys) = (x.as_slice(), y.as_mut_slice());
    for n in 0..s.n {
        let xi = &xs[n * item_len..(n + 1) * item_len];
        let yo = &mut ys[n * item_len..(n + 1) * item_len];
        for c in 0..s.c {
            let inv_std = 1.0 / (var[c] + eps).sqrt();
            let (g, b, mu) = (gamma[c], beta[c], mean[c]);
            let range = c * plane..(c + 1) * plane;
            for (yv, &xv) in yo[range.clone()].iter_mut().zip(&xi[range]) {
                *yv = g * (xv - mu) * inv_std + b;
            }
        }
    }
}

/// Reusable per-thread execution workspace: one pre-sized output
/// tensor per graph node plus a shared im2col column buffer.
///
/// Built once per (graph, input shape) via [`Graph::scratch`] and
/// reused across forward passes, the scratch removes every per-node
/// `Tensor::zeros` allocation from the evaluation hot path — the MCD
/// predictor's per-sample Bayesian-suffix re-runs in particular.
///
/// A scratch is tied to the input shape it was built for; running a
/// differently-shaped input through it panics.
#[derive(Debug, Clone)]
pub struct ExecScratch {
    outs: Vec<Tensor>,
    cols: Vec<f32>,
    split_conv: bool,
}

/// Workspace for the sample-stacked suffix walk
/// ([`Graph::forward_from_stacked`]): per-node output tensors sized
/// for `samples · n` stacked batch items, the stacked im2col column
/// buffer, the fused-GEMM staging buffer, and the replicated prefix
/// outputs the suffix reads.
///
/// Built by [`Graph::stacked_scratch_after`] for one `(graph, input
/// shape, suffix boundary, sample count)` tuple and reused across
/// fused walks; running a different configuration through it panics.
#[derive(Debug, Clone)]
pub struct StackedScratch {
    /// Stacked node outputs (placeholders for prefix nodes, which are
    /// read from the replicas below, never executed).
    outs: Vec<Tensor>,
    /// Stacked im2col workspace `[C·K·K, samples·n·Ho·Wo]`.
    cols: Vec<f32>,
    /// Fused conv GEMM staging buffer `[F, samples·n·Ho·Wo]`.
    stage: Vec<f32>,
    /// Prefix outputs replicated `samples` times, filled lazily for
    /// exactly the prefix nodes the suffix reads.
    rep: Vec<Option<Tensor>>,
    /// Sample count this scratch stacks.
    samples: usize,
    /// Suffix boundary the scratch was built for.
    from: NodeId,
}

impl StackedScratch {
    /// Sample count this scratch stacks.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Suffix boundary this scratch was built for.
    pub fn suffix_from(&self) -> NodeId {
        self.from
    }

    /// Drop the cached prefix replicas. A scratch pooled across
    /// predictive calls must be reset this way whenever the prepared
    /// prefix changes (new input), or the suffix would read stale
    /// activations; the buffers themselves stay allocated.
    pub fn clear_replicas(&mut self) {
        for slot in &mut self.rep {
            *slot = None;
        }
    }
}

/// Replicate a whole batch `samples` times along the item axis
/// (sample-major: sample `s` owns items `s·n .. (s+1)·n`).
fn stack_items(t: &Tensor, samples: usize) -> Tensor {
    let s = t.shape();
    let mut out = Tensor::zeros(s.with_n(samples * s.n));
    let block = s.len();
    for si in 0..samples {
        out.as_mut_slice()[si * block..(si + 1) * block].copy_from_slice(t.as_slice());
    }
    out
}

impl ExecScratch {
    /// Disable the convolution batch split for passes run through
    /// this scratch. The split spreads a batch of ≥ 4 items over two
    /// scoped workers; callers that already parallelize at a higher
    /// level (one scratch per sampler worker, as the MCD engine does)
    /// should opt out so convs do not oversubscribe the host. Results
    /// are identical either way.
    pub fn serial_conv(mut self) -> ExecScratch {
        self.split_conv = false;
        self
    }
}

/// Execute one node in evaluation mode into a preallocated output.
///
/// `get` resolves predecessor outputs (from a prefix cache or the
/// scratch itself); `input` backs the `Op::Input` node; `cols` is the
/// shared im2col workspace; `split_conv` forwards to
/// [`conv_forward_into`]'s batch split.
#[allow(clippy::too_many_arguments)]
fn eval_node_into<'a>(
    node: &Node,
    params: &ParamStore,
    get: impl Fn(NodeId) -> &'a Tensor,
    input: &Tensor,
    masks: &MaskSet,
    out: &mut Tensor,
    cols: &mut Vec<f32>,
    split_conv: bool,
) {
    match &node.op {
        Op::Input => {
            assert_eq!(out.shape(), input.shape(), "input shape mismatch");
            out.as_mut_slice().copy_from_slice(input.as_slice());
        }
        Op::Conv {
            w,
            b,
            k,
            stride,
            pad,
            ..
        } => {
            conv_forward_into(
                get(node.inputs[0]),
                params.get(*w),
                params.get(*b),
                *k,
                *stride,
                *pad,
                out,
                cols,
                split_conv,
            );
        }
        Op::Linear { w, b, .. } => {
            linear_forward_into(get(node.inputs[0]), params.get(*w), params.get(*b), out);
        }
        Op::BatchNorm {
            gamma,
            beta,
            mean,
            var,
            eps,
            ..
        } => {
            bn_apply_eval_into(
                get(node.inputs[0]),
                params.get(*mean).as_slice(),
                params.get(*var).as_slice(),
                params.get(*gamma).as_slice(),
                params.get(*beta).as_slice(),
                *eps,
                out,
            );
        }
        Op::Relu => {
            out.as_mut_slice()
                .copy_from_slice(get(node.inputs[0]).as_slice());
            relu_inplace(out.as_mut_slice());
        }
        Op::MaxPool { k, stride } => max_pool_into(get(node.inputs[0]), *k, *stride, out),
        Op::AvgPool { k, stride } => avg_pool_into(get(node.inputs[0]), *k, *stride, out),
        Op::GlobalAvgPool => global_avg_pool_into(get(node.inputs[0]), out),
        Op::Flatten => {
            // NCHW flatten is a relabeling; the buffer layout is identical.
            out.as_mut_slice()
                .copy_from_slice(get(node.inputs[0]).as_slice());
        }
        Op::Add => {
            out.as_mut_slice()
                .copy_from_slice(get(node.inputs[0]).as_slice());
            add_inplace(out.as_mut_slice(), get(node.inputs[1]).as_slice());
        }
        Op::McdSite { site, .. } => {
            out.as_mut_slice()
                .copy_from_slice(get(node.inputs[0]).as_slice());
            if let Some(mask) = masks.get(site.0) {
                apply_mask(out, mask, &node.name);
            }
        }
    }
}

/// Evaluation-mode driver: BN reads running statistics, nothing
/// mutates. Allocates each node output once (the caller keeps them),
/// but shares one im2col workspace across the pass.
fn run_forward_eval(
    nodes: &[Node],
    params: &ParamStore,
    input: &Tensor,
    masks: &MaskSet,
) -> Activations {
    let mut outs: Vec<Tensor> = Vec::with_capacity(nodes.len());
    let mut aux: Vec<Aux> = Vec::with_capacity(nodes.len());
    let mut cols: Vec<f32> = Vec::new();
    for node in nodes {
        // Max-pool keeps its argmax cache so eval-mode activations of
        // a BN-free graph remain usable by `Graph::backward`, exactly
        // as before the scratch executor.
        if let Op::MaxPool { k, stride } = &node.op {
            let (y, arg) = max_pool(&outs[node.inputs[0]], *k, *stride);
            outs.push(y);
            aux.push(Aux::MaxPool(arg));
            continue;
        }
        let shape = node_out_shape(node, input.shape(), |id| outs[id].shape());
        let mut y = Tensor::zeros(shape);
        eval_node_into(
            node,
            params,
            |id| &outs[id],
            input,
            masks,
            &mut y,
            &mut cols,
            true,
        );
        outs.push(y);
        aux.push(Aux::None);
    }
    Activations { outs, aux }
}

impl Graph {
    /// Evaluation-mode forward pass (BN uses running statistics).
    ///
    /// Supplying masks makes the active MCD sites stochastic — this is
    /// exactly "MCD at test time". With [`MaskSet::none`] the network
    /// is the deterministic standard NN.
    pub fn forward(&self, input: &Tensor, masks: &MaskSet) -> Tensor {
        let acts = run_forward_eval(&self.nodes, &self.params, input, masks);
        acts.outs
            .into_iter()
            .nth(self.output)
            .expect("output node exists")
    }

    /// Evaluation-mode forward pass that keeps every node's output.
    ///
    /// Used by software intermediate-layer caching (run the prefix once,
    /// re-run only the Bayesian suffix) and by executor cross-checks.
    /// Hot serving loops that only need the outputs up to a suffix
    /// boundary should prefer [`Graph::forward_prefix_with`], which
    /// stops at the boundary and reuses a previous cache's buffers.
    pub fn forward_full(&self, input: &Tensor, masks: &MaskSet) -> Activations {
        run_forward_eval(&self.nodes, &self.params, input, masks)
    }

    /// Evaluation-mode pass over the deterministic prefix only: nodes
    /// `0..=upto` are executed and returned as an [`Activations`]
    /// whose later slots are empty placeholders. Computed outputs are
    /// bit-identical to [`Graph::forward_full`]'s for every node
    /// `<= upto`, which is exactly the region
    /// [`Graph::forward_from_with`] / [`Graph::forward_from_stacked`]
    /// read when resuming from `upto` — so a per-call `prepare` pays
    /// for the prefix instead of the whole network.
    ///
    /// Passing a previously returned cache back through `reuse` (and
    /// keeping `cols`, the shared im2col workspace, across calls)
    /// re-executes into the existing buffers: once warm, the prefix
    /// pass allocates nothing. The returned cache keeps no backward
    /// auxiliaries and must not feed [`Graph::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `upto` is not a node of this graph, or if `reuse`
    /// came from a different graph.
    pub fn forward_prefix_with(
        &self,
        input: &Tensor,
        upto: NodeId,
        masks: &MaskSet,
        reuse: Option<Activations>,
        cols: &mut Vec<f32>,
    ) -> Activations {
        assert!(upto < self.nodes.len(), "prefix node {upto} does not exist");
        let mut acts = match reuse {
            Some(acts) => {
                assert_eq!(
                    acts.outs.len(),
                    self.nodes.len(),
                    "prefix cache built for a different graph"
                );
                acts
            }
            None => Activations {
                outs: (0..self.nodes.len())
                    .map(|_| Tensor::zeros(Shape4::vec(0, 0)))
                    .collect(),
                aux: vec![Aux::None; self.nodes.len()],
            },
        };
        for (id, node) in self.nodes.iter().take(upto + 1).enumerate() {
            let (done, rest) = acts.outs.split_at_mut(id);
            let shape = node_out_shape(node, input.shape(), |j| done[j].shape());
            if rest[0].shape() != shape {
                rest[0] = Tensor::zeros(shape);
            }
            eval_node_into(
                node,
                &self.params,
                |j| &done[j],
                input,
                masks,
                &mut rest[0],
                cols,
                true,
            );
            // Reused caches may carry a MaxPool argmax from a
            // forward_full pass; it no longer matches the fresh
            // outputs, so drop it.
            acts.aux[id] = Aux::None;
        }
        acts
    }

    /// Build an execution scratch for this graph at a given input
    /// shape: one pre-sized output tensor per node plus an im2col
    /// workspace sized for the largest convolution.
    pub fn scratch(&self, input: Shape4) -> ExecScratch {
        self.scratch_impl(input, 0)
    }

    /// Scratch for suffix re-runs resuming after node `from` (the
    /// [`Graph::forward_from_with`] hot path): only nodes `> from` get
    /// real output buffers — the prefix slots are empty placeholders,
    /// since those nodes are read from the prefix cache, never
    /// executed. A suffix scratch must not be passed to
    /// [`Graph::forward_with`] (its input slot is a placeholder).
    pub fn scratch_after(&self, input: Shape4, from: NodeId) -> ExecScratch {
        self.scratch_impl(input, from + 1)
    }

    fn scratch_impl(&self, input: Shape4, first_live: usize) -> ExecScratch {
        let shapes = self.infer_shapes(input);
        let mut cols_len = 0usize;
        for (id, node) in self.nodes.iter().enumerate().skip(first_live) {
            if let Op::Conv { in_c, k, .. } = node.op {
                let so = shapes[id];
                cols_len = cols_len.max(in_c * k * k * so.h * so.w);
            }
        }
        let outs = shapes
            .into_iter()
            .enumerate()
            .map(|(id, s)| {
                if id < first_live {
                    Tensor::zeros(Shape4::vec(0, 0))
                } else {
                    Tensor::zeros(s)
                }
            })
            .collect();
        ExecScratch {
            outs,
            cols: vec![0.0; cols_len],
            split_conv: true,
        }
    }

    /// Evaluation-mode forward pass writing every node output into a
    /// reusable [`ExecScratch`] (no per-node allocation).
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was built for a different graph or input
    /// shape.
    pub fn forward_with(
        &self,
        input: &Tensor,
        masks: &MaskSet,
        scratch: &mut ExecScratch,
    ) -> Tensor {
        let ExecScratch {
            outs,
            cols,
            split_conv,
        } = scratch;
        assert_eq!(
            outs.len(),
            self.nodes.len(),
            "scratch built for a different graph"
        );
        assert_eq!(
            outs[self.input].shape(),
            input.shape(),
            "scratch built for a different input shape"
        );
        for (id, node) in self.nodes.iter().enumerate() {
            let (done, rest) = outs.split_at_mut(id);
            eval_node_into(
                node,
                &self.params,
                |j| &done[j],
                input,
                masks,
                &mut rest[0],
                cols,
                *split_conv,
            );
        }
        outs[self.output].clone()
    }

    /// Resume an evaluation-mode pass from node `from` (exclusive),
    /// reusing `prefix` outputs for all nodes `<= from`.
    ///
    /// This is the software analogue of the paper's intermediate-layer
    /// caching: the deterministic prefix is computed once and the
    /// Bayesian suffix re-runs per Monte Carlo sample. Hot loops
    /// (the MCD sampler) should prefer [`Graph::forward_from_with`],
    /// which reuses an [`ExecScratch`] instead of allocating per call.
    ///
    /// # Panics
    ///
    /// Panics if `prefix` does not cover node `from`.
    pub fn forward_from(&self, prefix: &Activations, from: NodeId, masks: &MaskSet) -> Tensor {
        let mut scratch = self.scratch(prefix.outs[self.input].shape());
        self.forward_from_with(prefix, from, masks, &mut scratch)
    }

    /// [`Graph::forward_from`] with caller-provided scratch: the
    /// per-sample suffix re-run allocates nothing.
    ///
    /// Only nodes `> from` are executed; their outputs land in
    /// `scratch`. Nodes `<= from` read from `prefix`.
    ///
    /// # Panics
    ///
    /// Panics if `prefix` does not cover node `from`, or if `scratch`
    /// was built for a different graph or input shape.
    pub fn forward_from_with(
        &self,
        prefix: &Activations,
        from: NodeId,
        masks: &MaskSet,
        scratch: &mut ExecScratch,
    ) -> Tensor {
        assert!(
            prefix.outs.len() > from,
            "prefix does not cover node {from}"
        );
        let ExecScratch {
            outs,
            cols,
            split_conv,
        } = scratch;
        assert_eq!(
            outs.len(),
            self.nodes.len(),
            "scratch built for a different graph"
        );
        if self.output <= from {
            return prefix.outs[self.output].clone();
        }
        let input = &prefix.outs[self.input];
        for (off, node) in self.nodes[from + 1..].iter().enumerate() {
            let id = from + 1 + off;
            let (done, rest) = outs.split_at_mut(id);
            let get = |j: usize| if j <= from { &prefix.outs[j] } else { &done[j] };
            eval_node_into(
                node,
                &self.params,
                get,
                input,
                masks,
                &mut rest[0],
                cols,
                *split_conv,
            );
        }
        outs[self.output].clone()
    }

    /// Workspace for [`Graph::forward_from_stacked`]: stacked output
    /// buffers (batch `samples · input.n`) for every node after `from`,
    /// plus the stacked im2col and fused-GEMM staging buffers sized for
    /// the largest suffix convolution.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0` or the output node is not after `from`.
    pub fn stacked_scratch_after(
        &self,
        input: Shape4,
        from: NodeId,
        samples: usize,
    ) -> StackedScratch {
        assert!(samples > 0, "at least one stacked sample required");
        assert!(
            self.output > from,
            "suffix [{from}+1..] must contain the output node"
        );
        let shapes = self.infer_shapes(input);
        let mut cols_len = 0usize;
        let mut stage_len = 0usize;
        for (id, node) in self.nodes.iter().enumerate().skip(from + 1) {
            if let Op::Conv { in_c, k, .. } = node.op {
                let so = shapes[id];
                let total_cols = samples * so.n * so.h * so.w;
                cols_len = cols_len.max(in_c * k * k * total_cols);
                stage_len = stage_len.max(so.c * total_cols);
            }
        }
        let outs = shapes
            .into_iter()
            .enumerate()
            .map(|(id, s)| {
                if id <= from {
                    Tensor::zeros(Shape4::vec(0, 0))
                } else {
                    Tensor::zeros(s.with_n(samples * s.n))
                }
            })
            .collect();
        StackedScratch {
            outs,
            cols: vec![0.0; cols_len],
            stage: vec![0.0; stage_len],
            rep: vec![None; self.nodes.len()],
            samples,
            from,
        }
    }

    /// The batched-sample fusion walk: resume from node `from`
    /// (exclusive) *once* for all `masks.len()` Monte Carlo samples,
    /// returning the sample-stacked logits `(samples · n, k)` with
    /// sample `s` owning rows `s·n .. (s+1)·n`.
    ///
    /// This is the software analogue of the paper's weight-streaming
    /// dataflow: where [`Graph::forward_from_with`] re-streams every
    /// suffix weight matrix once per sample, this walk stacks the
    /// samples' activations — conv via a sample-stacked im2col buffer
    /// and one `(S·Ho·Wo)`-column [`gemm_stacked`], fully-connected
    /// layers via one row-stacked [`gemm_bt_stacked`] — so each weight
    /// matrix streams once per layer. Per-sample dropout masks are
    /// applied to each sample's item group, and every element's f32
    /// operation sequence is identical to the per-sample walk, so the
    /// stacked logits are *bit-identical* to `masks.len()` independent
    /// [`Graph::forward_from_with`] calls (at any sub-chunking of the
    /// sample list).
    ///
    /// # Panics
    ///
    /// Panics if `masks` is empty, if `prefix` does not cover node
    /// `from`, or if `scratch` was built for a different graph, suffix
    /// boundary or sample count.
    pub fn forward_from_stacked(
        &self,
        prefix: &Activations,
        from: NodeId,
        masks: &[MaskSet],
        scratch: &mut StackedScratch,
    ) -> Tensor {
        assert!(!masks.is_empty(), "at least one sample required");
        assert!(
            prefix.outs.len() > from,
            "prefix does not cover node {from}"
        );
        let StackedScratch {
            outs,
            cols,
            stage,
            rep,
            samples,
            from: built_from,
        } = scratch;
        assert_eq!(
            outs.len(),
            self.nodes.len(),
            "scratch built for a different graph"
        );
        assert_eq!(*built_from, from, "scratch built for a different suffix");
        assert_eq!(
            *samples,
            masks.len(),
            "scratch built for a different sample count"
        );
        let base = prefix.outs[self.input].shape().n;
        // Replicate exactly the prefix outputs the suffix reads (the
        // Bayesian-site input, plus any residual shortcut reaching
        // back across the boundary).
        for node in &self.nodes[from + 1..] {
            for &j in &node.inputs {
                if j <= from && rep[j].is_none() {
                    rep[j] = Some(stack_items(&prefix.outs[j], *samples));
                }
            }
        }
        let input = &prefix.outs[self.input];
        for (off, node) in self.nodes[from + 1..].iter().enumerate() {
            let id = from + 1 + off;
            let (done, rest) = outs.split_at_mut(id);
            let out = &mut rest[0];
            let get = |j: usize| {
                if j <= from {
                    rep[j].as_ref().expect("prefix replica materialized")
                } else {
                    &done[j]
                }
            };
            match &node.op {
                Op::Conv {
                    w,
                    b,
                    k,
                    stride,
                    pad,
                    ..
                } => {
                    conv_forward_stacked_into(
                        get(node.inputs[0]),
                        self.params.get(*w),
                        self.params.get(*b),
                        *k,
                        *stride,
                        *pad,
                        out,
                        cols,
                        stage,
                    );
                }
                Op::Linear { w, b, .. } => {
                    linear_forward_stacked_into(
                        get(node.inputs[0]),
                        self.params.get(*w),
                        self.params.get(*b),
                        *samples,
                        out,
                    );
                }
                Op::McdSite { site, .. } => {
                    let src = get(node.inputs[0]);
                    let item_len = out.shape().item_len();
                    for (si, ms) in masks.iter().enumerate() {
                        let items = si * base..(si + 1) * base;
                        match ms.get(site.0) {
                            // Mask folded into the copy: one pass per
                            // sample group, same values as
                            // copy-then-apply.
                            Some(mask) => {
                                masked_copy_items(src, out, mask, items, &node.name);
                            }
                            None => {
                                let span = items.start * item_len..items.end * item_len;
                                out.as_mut_slice()[span.clone()]
                                    .copy_from_slice(&src.as_slice()[span]);
                            }
                        }
                    }
                }
                // The remaining ops are item-wise (or channel-wise with
                // per-item math), so the stacked batch runs through the
                // ordinary eval kernels unchanged. Masks are handled
                // above; `Op::Input` cannot appear after the prefix.
                _ => {
                    eval_node_into(
                        node,
                        &self.params,
                        get,
                        input,
                        &MaskSet::none(),
                        out,
                        cols,
                        false,
                    );
                }
            }
        }
        outs[self.output].clone()
    }

    /// Training-mode forward pass: BN uses batch statistics and updates
    /// running ones; every intermediate needed by [`Graph::backward`]
    /// is cached.
    pub fn forward_train(&mut self, input: &Tensor, masks: &MaskSet) -> Activations {
        // Split borrows: read-only view for weights, mutable for BN stats.
        // ParamStore is cloned-free: we pass the same store as both views
        // by running with the mutable one.
        let nodes = std::mem::take(&mut self.nodes);
        let mut params = std::mem::take(&mut self.params);
        let acts = {
            let params_ptr = &mut params;
            // `run_forward` only mutates the BN running-stat tensors,
            // which are disjoint from the weights it reads, but the
            // borrow checker cannot see that; give it one mutable view
            // and re-read weights through it.
            run_forward_trainmode(&nodes, params_ptr, input, masks)
        };
        self.nodes = nodes;
        self.params = params;
        acts
    }

    /// Backward pass: accumulates parameter gradients into the store.
    ///
    /// `dlogits` is the gradient of the loss w.r.t. the logits
    /// (from [`crate::cross_entropy`]).
    ///
    /// # Panics
    ///
    /// Panics if `acts` was not produced by a matching
    /// [`Graph::forward_train`] call.
    pub fn backward(&mut self, acts: &Activations, masks: &MaskSet, dlogits: Tensor) {
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[self.output] = Some(dlogits);
        for id in (0..self.nodes.len()).rev() {
            let Some(g) = grads[id].take() else { continue };
            let node = &self.nodes[id];
            match &node.op {
                Op::Input => {}
                Op::Conv {
                    w,
                    b,
                    k,
                    stride,
                    pad,
                    in_c,
                    ..
                } => {
                    let (w, b, k, stride, pad, in_c) = (*w, *b, *k, *stride, *pad, *in_c);
                    let xid = node.inputs[0];
                    let x = &acts.outs[xid];
                    let si = x.shape();
                    let so = g.shape();
                    let (f, ckk, howo) = (so.c, in_c * k * k, so.h * so.w);
                    let mut dx = Tensor::zeros(si);
                    {
                        let wt = self.params.get(w).as_slice().to_vec();
                        let dw = self.params.grad_mut(w);
                        for n in 0..si.n {
                            let cols = im2col(x.item(n), si.c, si.h, si.w, k, stride, pad);
                            // dW += dY · colsᵀ  (cols stored [ckk, howo])
                            gemm_bt(f, howo, ckk, g.item(n), &cols, dw.as_mut_slice());
                            // dcols = Wᵀ · dY
                            let mut dcols = vec![0.0f32; ckk * howo];
                            gemm_at(ckk, f, howo, &wt, g.item(n), &mut dcols);
                            col2im(&dcols, si.c, si.h, si.w, k, stride, pad, dx.item_mut(n));
                        }
                    }
                    {
                        let db = self.params.grad_mut(b);
                        for n in 0..so.n {
                            let gi = g.item(n);
                            for c in 0..f {
                                db.as_mut_slice()[c] +=
                                    gi[c * howo..(c + 1) * howo].iter().sum::<f32>();
                            }
                        }
                    }
                    accumulate(&mut grads, xid, dx);
                }
                Op::Linear { w, b, in_f, out_f } => {
                    let (w, b, in_f, out_f) = (*w, *b, *in_f, *out_f);
                    let xid = node.inputs[0];
                    let x = &acts.outs[xid];
                    let n = x.shape().n;
                    {
                        // dW[out,in] += dYᵀ · X
                        let dw = self.params.grad_mut(w);
                        gemm_at(
                            out_f,
                            n,
                            in_f,
                            g.as_slice(),
                            x.as_slice(),
                            dw.as_mut_slice(),
                        );
                    }
                    {
                        let db = self.params.grad_mut(b);
                        for i in 0..n {
                            add_inplace(db.as_mut_slice(), g.item(i));
                        }
                    }
                    // dX = dY · W
                    let mut dx = Tensor::zeros(x.shape());
                    gemm(
                        n,
                        out_f,
                        in_f,
                        g.as_slice(),
                        self.params.get(w).as_slice(),
                        dx.as_mut_slice(),
                    );
                    accumulate(&mut grads, xid, dx);
                }
                Op::BatchNorm {
                    gamma,
                    beta,
                    channels,
                    ..
                } => {
                    let (gamma, beta, channels) = (*gamma, *beta, *channels);
                    let xid = node.inputs[0];
                    let Aux::Bn { xhat, inv_std } = &acts.aux[id] else {
                        panic!("{}: BN cache missing — not a training pass", node.name)
                    };
                    let s = g.shape();
                    let plane = s.h * s.w;
                    let m = (s.n * plane) as f32;
                    // Channel sums of g and g·xhat.
                    let mut sum_g = vec![0f32; channels];
                    let mut sum_gx = vec![0f32; channels];
                    for n in 0..s.n {
                        let gi = g.item(n);
                        let xh = xhat.item(n);
                        for c in 0..channels {
                            for i in c * plane..(c + 1) * plane {
                                sum_g[c] += gi[i];
                                sum_gx[c] += gi[i] * xh[i];
                            }
                        }
                    }
                    {
                        let dgm = self.params.grad_mut(gamma);
                        add_inplace(dgm.as_mut_slice(), &sum_gx);
                    }
                    {
                        let dbt = self.params.grad_mut(beta);
                        add_inplace(dbt.as_mut_slice(), &sum_g);
                    }
                    let gm = self.params.get(gamma).as_slice().to_vec();
                    let mut dx = Tensor::zeros(s);
                    for n in 0..s.n {
                        let gi = g.item(n);
                        let xh = xhat.item(n);
                        let dxi = dx.item_mut(n);
                        for c in 0..channels {
                            let coef = gm[c] * inv_std[c];
                            let mg = sum_g[c] / m;
                            let mgx = sum_gx[c] / m;
                            for i in c * plane..(c + 1) * plane {
                                dxi[i] = coef * (gi[i] - mg - xh[i] * mgx);
                            }
                        }
                    }
                    accumulate(&mut grads, xid, dx);
                }
                Op::Relu => {
                    let xid = node.inputs[0];
                    let y = &acts.outs[id];
                    let mut dx = g;
                    for (d, &v) in dx.as_mut_slice().iter_mut().zip(y.iter()) {
                        if v <= 0.0 {
                            *d = 0.0;
                        }
                    }
                    accumulate(&mut grads, xid, dx);
                }
                Op::MaxPool { .. } => {
                    let xid = node.inputs[0];
                    let Aux::MaxPool(arg) = &acts.aux[id] else {
                        panic!("{}: maxpool cache missing", node.name)
                    };
                    let dx = max_pool_backward(&g, arg, acts.outs[xid].shape());
                    accumulate(&mut grads, xid, dx);
                }
                Op::AvgPool { k, stride } => {
                    let xid = node.inputs[0];
                    let dx = avg_pool_backward(&g, *k, *stride, acts.outs[xid].shape());
                    accumulate(&mut grads, xid, dx);
                }
                Op::GlobalAvgPool => {
                    let xid = node.inputs[0];
                    let si = acts.outs[xid].shape();
                    let mut dx = Tensor::zeros(si);
                    let inv = 1.0 / (si.h * si.w) as f32;
                    for n in 0..si.n {
                        for c in 0..si.c {
                            let gv = g.at(n, c, 0, 0) * inv;
                            for y in 0..si.h {
                                for x in 0..si.w {
                                    *dx.at_mut(n, c, y, x) = gv;
                                }
                            }
                        }
                    }
                    accumulate(&mut grads, xid, dx);
                }
                Op::Flatten => {
                    let xid = node.inputs[0];
                    let dx = g.reshape(acts.outs[xid].shape());
                    accumulate(&mut grads, xid, dx);
                }
                Op::Add => {
                    let (a, b) = (node.inputs[0], node.inputs[1]);
                    accumulate(&mut grads, a, g.clone());
                    accumulate(&mut grads, b, g);
                }
                Op::McdSite { site, .. } => {
                    let xid = node.inputs[0];
                    let mut dx = g;
                    if let Some(mask) = masks.get(site.0) {
                        apply_mask(&mut dx, mask, &node.name);
                    }
                    accumulate(&mut grads, xid, dx);
                }
            }
        }
    }
}

fn accumulate(grads: &mut [Option<Tensor>], id: usize, g: Tensor) {
    match &mut grads[id] {
        Some(existing) => add_inplace(existing.as_mut_slice(), g.as_slice()),
        slot @ None => *slot = Some(g),
    }
}

/// Training-mode driver: same walk as `run_forward` but BN reads batch
/// statistics and writes running ones through the single mutable view.
fn run_forward_trainmode(
    nodes: &[Node],
    params: &mut ParamStore,
    input: &Tensor,
    masks: &MaskSet,
) -> Activations {
    // Weights are only *read* and BN stats only *written*; doing the
    // reads before the writes per node keeps this single-pass.
    let mut outs: Vec<Tensor> = Vec::with_capacity(nodes.len());
    let mut aux: Vec<Aux> = Vec::with_capacity(nodes.len());
    for node in nodes {
        let mut a = Aux::None;
        let y = match &node.op {
            Op::BatchNorm {
                gamma,
                beta,
                mean,
                var,
                eps,
                momentum,
                ..
            } => {
                let x = &outs[node.inputs[0]];
                let (bm, bv) = bn_batch_stats(x);
                let mom = *momentum;
                {
                    let rm = params.get_mut(*mean);
                    for (r, &v) in rm.as_mut_slice().iter_mut().zip(&bm) {
                        *r = (1.0 - mom) * *r + mom * v;
                    }
                }
                {
                    let rv = params.get_mut(*var);
                    for (r, &v) in rv.as_mut_slice().iter_mut().zip(&bv) {
                        *r = (1.0 - mom) * *r + mom * v;
                    }
                }
                let (y, xhat, inv_std) = bn_apply(
                    x,
                    &bm,
                    &bv,
                    params.get(*gamma).as_slice(),
                    params.get(*beta).as_slice(),
                    *eps,
                );
                a = Aux::Bn { xhat, inv_std };
                y
            }
            _ => {
                // Delegate the non-BN ops to the shared eval-path logic
                // by running a single-node forward.
                let single = std::slice::from_ref(node);
                let mut sub_outs = run_single(single, params, &outs, input, masks, &mut a);
                sub_outs.pop().expect("single node produces one output")
            }
        };
        outs.push(y);
        aux.push(a);
    }
    Activations { outs, aux }
}

/// Execute one non-BN node against already-computed predecessor outputs.
fn run_single(
    nodes: &[Node],
    params: &ParamStore,
    outs: &[Tensor],
    input: &Tensor,
    masks: &MaskSet,
    aux_out: &mut Aux,
) -> Vec<Tensor> {
    let node = &nodes[0];
    let y = match &node.op {
        Op::Input => input.clone(),
        Op::Conv {
            w,
            b,
            k,
            stride,
            pad,
            out_c,
            ..
        } => {
            let x = &outs[node.inputs[0]];
            let si = x.shape();
            let so = Shape4::new(
                si.n,
                *out_c,
                bnn_tensor::conv_out_dim(si.h, *k, *stride, *pad),
                bnn_tensor::conv_out_dim(si.w, *k, *stride, *pad),
            );
            conv_forward(x, params.get(*w), params.get(*b), so, *k, *stride, *pad)
        }
        Op::Linear { w, b, out_f, .. } => linear_forward(
            &outs[node.inputs[0]],
            params.get(*w),
            params.get(*b),
            *out_f,
        ),
        Op::BatchNorm { .. } => unreachable!("BN handled by the training driver"),
        Op::Relu => {
            let mut y = outs[node.inputs[0]].clone();
            relu_inplace(y.as_mut_slice());
            y
        }
        Op::MaxPool { k, stride } => {
            let (y, arg) = max_pool(&outs[node.inputs[0]], *k, *stride);
            *aux_out = Aux::MaxPool(arg);
            y
        }
        Op::AvgPool { k, stride } => avg_pool(&outs[node.inputs[0]], *k, *stride),
        Op::GlobalAvgPool => global_avg_pool(&outs[node.inputs[0]]),
        Op::Flatten => {
            let x = &outs[node.inputs[0]];
            let s = x.shape();
            x.clone().reshape(Shape4::vec(s.n, s.item_len()))
        }
        Op::Add => {
            let mut y = outs[node.inputs[0]].clone();
            add_inplace(y.as_mut_slice(), outs[node.inputs[1]].as_slice());
            y
        }
        Op::McdSite { site, .. } => {
            let mut y = outs[node.inputs[0]].clone();
            if let Some(mask) = masks.get(site.0) {
                apply_mask(&mut y, mask, &node.name);
            }
            y
        }
    };
    vec![y]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn small_net() -> Graph {
        let mut b = GraphBuilder::new("t", 42);
        let x = b.input();
        let c = b.conv(x, 1, 2, 3, 1, 1);
        let bn = b.batch_norm(c, 2);
        let r = b.relu(bn);
        let p = b.max_pool(r, 2, 2);
        let f = b.flatten(p);
        let m = b.mcd(f, 0.25);
        let fc = b.linear(m, 2 * 2 * 2, 3);
        b.finish(fc)
    }

    #[test]
    fn forward_produces_logits() {
        let net = small_net();
        let x = Tensor::full(Shape4::new(2, 1, 4, 4), 0.5);
        let y = net.forward(&x, &MaskSet::none());
        assert_eq!(y.shape(), Shape4::vec(2, 3));
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn forward_deterministic_without_masks() {
        let net = small_net();
        let x = Tensor::full(Shape4::new(1, 1, 4, 4), 0.3);
        let a = net.forward(&x, &MaskSet::none());
        let b = net.forward(&x, &MaskSet::none());
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn mask_zeroes_channels_and_scales_rest() {
        let mut t = Tensor::full(Shape4::new(1, 2, 2, 2), 1.0);
        apply_mask(
            &mut t,
            &Mask {
                keep: vec![true, false],
                scale: 4.0 / 3.0,
            },
            "test",
        );
        assert!(t.item(0)[0..4]
            .iter()
            .all(|&v| (v - 4.0 / 3.0).abs() < 1e-6));
        assert!(t.item(0)[4..8].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn active_mask_changes_output() {
        let net = small_net();
        let x = Tensor::full(Shape4::new(1, 1, 4, 4), 0.5);
        let clean = net.forward(&x, &MaskSet::none());
        let masked = net.forward(
            &x,
            &MaskSet::from_masks(vec![Some(Mask {
                keep: vec![false; 8],
                scale: 4.0 / 3.0,
            })]),
        );
        // All-dropped features => logits equal the bias alone.
        assert!(clean.max_abs_diff(&masked) > 0.0);
    }

    #[test]
    fn train_updates_running_stats() {
        let mut net = small_net();
        let x = Tensor::from_vec(
            Shape4::new(4, 1, 4, 4),
            (0..64).map(|i| (i as f32 / 16.0) - 2.0).collect(),
        );
        let before: Vec<f32> = net
            .params()
            .get(crate::param::ParamId(4)) // running mean of the BN (w,b,gamma,beta,mean,...)
            .as_slice()
            .to_vec();
        let _ = net.forward_train(&x, &MaskSet::none());
        let after: Vec<f32> = net
            .params()
            .get(crate::param::ParamId(4))
            .as_slice()
            .to_vec();
        assert_ne!(before, after, "running mean should move in training mode");
    }

    #[test]
    fn backward_populates_grads() {
        let mut net = small_net();
        let x = Tensor::full(Shape4::new(2, 1, 4, 4), 0.5);
        let acts = net.forward_train(&x, &MaskSet::none());
        let logits = acts.logits(&net).clone();
        let dl = Tensor::full(logits.shape(), 1.0);
        net.backward(&acts, &MaskSet::none(), dl);
        let any_nonzero = net
            .params()
            .ids()
            .any(|id| net.params().grad(id).iter().any(|&g| g != 0.0));
        assert!(any_nonzero, "gradients must flow");
    }

    #[test]
    fn forward_with_scratch_matches_allocating_forward() {
        let net = small_net();
        let x = Tensor::full(Shape4::new(2, 1, 4, 4), 0.5);
        let mut scratch = net.scratch(x.shape());
        let want = net.forward(&x, &MaskSet::none());
        // Run twice through the same scratch: reuse must not leak
        // state between passes.
        for _ in 0..2 {
            let got = net.forward_with(&x, &MaskSet::none(), &mut scratch);
            assert_eq!(got.as_slice(), want.as_slice());
        }
    }

    #[test]
    fn forward_from_with_scratch_matches_forward_from() {
        let net = small_net();
        let x = Tensor::full(Shape4::new(1, 1, 4, 4), 0.4);
        let prefix = net.forward_full(&x, &MaskSet::none());
        let masks = MaskSet::from_masks(vec![Some(Mask {
            keep: vec![true, false, true, true, false, true, true, true],
            scale: 4.0 / 3.0,
        })]);
        // Resume right before the MCD site (node 6 in small_net).
        let from = 5;
        let want = net.forward_from(&prefix, from, &masks);
        let mut scratch = net.scratch(x.shape());
        for _ in 0..2 {
            let got = net.forward_from_with(&prefix, from, &masks, &mut scratch);
            assert_eq!(got.as_slice(), want.as_slice());
        }
        // The suffix-sized scratch (prefix slots are placeholders)
        // must agree too.
        let mut suffix = net.scratch_after(x.shape(), from).serial_conv();
        for _ in 0..2 {
            let got = net.forward_from_with(&prefix, from, &masks, &mut suffix);
            assert_eq!(got.as_slice(), want.as_slice());
        }
    }

    #[test]
    fn forward_prefix_matches_forward_full_and_reuses_buffers() {
        let net = small_net();
        let masks = MaskSet::none();
        let mut cols = Vec::new();
        let mut cache: Option<Activations> = None;
        // Alternate shapes so reuse must reallocate mismatched nodes,
        // then hit the warm path again on the repeat.
        for n in [2usize, 1, 2, 2] {
            let x = Tensor::from_vec(
                Shape4::new(n, 1, 4, 4),
                (0..n * 16).map(|i| (i as f32 / 7.0) - 1.1).collect(),
            );
            let full = net.forward_full(&x, &masks);
            for upto in [0usize, 3, 5] {
                let acts = net.forward_prefix_with(&x, upto, &masks, cache.take(), &mut cols);
                for id in 0..=upto {
                    assert_eq!(
                        acts.output(id).as_slice(),
                        full.output(id).as_slice(),
                        "prefix node {id} (upto {upto}, n {n}) diverged from forward_full"
                    );
                }
                cache = Some(acts);
            }
        }
    }

    #[test]
    fn forward_prefix_cache_resumes_suffix_identically() {
        // The prefix cache must drive forward_from_with exactly like a
        // forward_full cache does.
        let net = small_net();
        let x = Tensor::full(Shape4::new(2, 1, 4, 4), 0.4);
        let masks = MaskSet::from_masks(vec![Some(Mask {
            keep: vec![true, false, true, true, false, true, true, true],
            scale: 4.0 / 3.0,
        })]);
        let from = 5; // right before the MCD site in small_net
        let full = net.forward_full(&x, &MaskSet::none());
        let want = net.forward_from(&full, from, &masks);
        let mut cols = Vec::new();
        let prefix = net.forward_prefix_with(&x, from, &MaskSet::none(), None, &mut cols);
        let mut scratch = net.scratch_after(x.shape(), from).serial_conv();
        let got = net.forward_from_with(&prefix, from, &masks, &mut scratch);
        assert_eq!(got.as_slice(), want.as_slice());
    }

    /// Deterministic per-sample masks for the one site of `small_net`.
    fn site0_masks(samples: usize) -> Vec<MaskSet> {
        (0..samples)
            .map(|s| {
                let keep: Vec<bool> = (0..8).map(|c| (c + s) % 3 != 0).collect();
                MaskSet::from_masks(vec![Some(Mask {
                    keep,
                    scale: 4.0 / 3.0,
                })])
            })
            .collect()
    }

    #[test]
    fn stacked_suffix_bit_identical_to_per_sample_walk() {
        let net = small_net();
        let x = Tensor::from_vec(
            Shape4::new(2, 1, 4, 4),
            (0..32).map(|i| (i as f32 / 10.0) - 1.4).collect(),
        );
        let prefix = net.forward_full(&x, &MaskSet::none());
        let from = 5; // right before the MCD site in small_net
        let masks = site0_masks(3);
        let mut stacked = net.stacked_scratch_after(x.shape(), from, masks.len());
        // Run twice through the same scratch: reuse must not leak.
        for _ in 0..2 {
            let fused = net.forward_from_stacked(&prefix, from, &masks, &mut stacked);
            assert_eq!(fused.shape(), Shape4::vec(3 * 2, 3));
            for (s, ms) in masks.iter().enumerate() {
                let want = net.forward_from(&prefix, from, ms);
                assert_eq!(
                    &fused.as_slice()[s * want.len()..(s + 1) * want.len()],
                    want.as_slice(),
                    "sample {s} diverged from the per-sample walk"
                );
            }
        }
    }

    #[test]
    fn stacked_suffix_covers_convolutions() {
        // A Bayesian site ahead of a conv so the fused walk exercises
        // the stacked im2col + gemm_stacked path (and the replicated
        // graph input).
        let mut b = GraphBuilder::new("conv-suffix", 9);
        let x = b.input();
        let m = b.mcd(x, 0.25);
        let c = b.conv(m, 2, 3, 3, 1, 1);
        let r = b.relu(c);
        let p = b.max_pool(r, 2, 2);
        let f = b.flatten(p);
        let fc = b.linear(f, 3 * 3 * 3, 4);
        let net = b.finish(fc);

        let input = Tensor::from_vec(
            Shape4::new(1, 2, 6, 6),
            (0..72).map(|i| ((i * 7 % 13) as f32 / 6.0) - 1.0).collect(),
        );
        let prefix = net.forward_full(&input, &MaskSet::none());
        let from = 0; // suffix starts at the site itself
        let masks: Vec<MaskSet> = (0..4)
            .map(|s| {
                MaskSet::from_masks(vec![Some(Mask {
                    keep: vec![s % 2 == 0, true],
                    scale: 4.0 / 3.0,
                })])
            })
            .collect();
        let mut stacked = net.stacked_scratch_after(input.shape(), from, masks.len());
        let fused = net.forward_from_stacked(&prefix, from, &masks, &mut stacked);
        for (s, ms) in masks.iter().enumerate() {
            let want = net.forward_from(&prefix, from, ms);
            assert_eq!(
                &fused.as_slice()[s * want.len()..(s + 1) * want.len()],
                want.as_slice(),
                "conv-suffix sample {s} diverged"
            );
        }
    }

    #[test]
    fn stacked_scratch_rebuild_is_chunk_size_strict() {
        let net = small_net();
        let x = Tensor::full(Shape4::new(1, 1, 4, 4), 0.4);
        let prefix = net.forward_full(&x, &MaskSet::none());
        let mut scratch = net.stacked_scratch_after(x.shape(), 5, 2);
        let masks = site0_masks(3);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = net.forward_from_stacked(&prefix, 5, &masks, &mut scratch);
        }));
        assert!(err.is_err(), "sample-count mismatch must panic");
    }

    #[test]
    #[should_panic(expected = "different input shape")]
    fn scratch_rejects_mismatched_input_shape() {
        let net = small_net();
        let mut scratch = net.scratch(Shape4::new(1, 1, 4, 4));
        let x = Tensor::full(Shape4::new(2, 1, 4, 4), 0.5);
        let _ = net.forward_with(&x, &MaskSet::none(), &mut scratch);
    }

    #[test]
    #[should_panic(expected = "drop probability must be in [0, 1)")]
    fn mask_draw_rejects_p_one() {
        // p = 1 would make the kept-channel rescale infinite, which the
        // branch-free fused mask multiply would turn into NaN while the
        // per-sample path writes zeros — reject it at the source.
        let _ = MaskSet::draw(&[true], &[4], 1.0, |c| vec![true; c]);
    }

    #[test]
    fn software_mask_sampling_respects_activity() {
        let mut rng = SoftRng::new(1);
        let ms = MaskSet::sample_software(&[false, true], &[4, 8], 0.25, &mut rng);
        assert!(ms.get(0).is_none());
        let m = ms.get(1).expect("site 1 active");
        assert_eq!(m.keep.len(), 8);
        assert!((m.scale - 4.0 / 3.0).abs() < 1e-6);
    }
}
