//! Forward and backward execution of a [`Graph`] in f32.

use crate::graph::{Graph, Node, NodeId, Op};
use crate::param::ParamStore;
use bnn_rng::SoftRng;
use bnn_tensor::{
    add_inplace, avg_pool, avg_pool_backward, col2im, gemm, gemm_at, gemm_bt, global_avg_pool,
    im2col, max_pool, max_pool_backward, relu_inplace, Shape4, Tensor,
};

/// A channel-wise dropout mask: `keep[c]` keeps channel `c` (scaled by
/// `scale = 1/(1-p)`), otherwise the channel is zeroed.
#[derive(Debug, Clone, PartialEq)]
pub struct Mask {
    /// Keep decision per channel.
    pub keep: Vec<bool>,
    /// Rescale factor applied to kept channels.
    pub scale: f32,
}

/// The masks supplied to one forward pass, indexed by MCD site.
///
/// `None` at a site means the site is inactive (identity), which is how
/// partial Bayesian inference deactivates the first `N - L` sites.
#[derive(Debug, Clone, Default)]
pub struct MaskSet {
    masks: Vec<Option<Mask>>,
}

impl MaskSet {
    /// No active sites — the standard (deterministic) network.
    pub fn none() -> MaskSet {
        MaskSet { masks: Vec::new() }
    }

    /// Build from per-site masks (index = site id).
    pub fn from_masks(masks: Vec<Option<Mask>>) -> MaskSet {
        MaskSet { masks }
    }

    /// Sample software Bernoulli masks for the active sites.
    ///
    /// `active[i]` enables site `i`; `channels[i]` is the mask length
    /// (from [`Graph::site_channels`]); `p` is the drop probability.
    pub fn sample_software(
        active: &[bool],
        channels: &[usize],
        p: f32,
        rng: &mut SoftRng,
    ) -> MaskSet {
        assert_eq!(active.len(), channels.len(), "active/channels length mismatch");
        let scale = 1.0 / (1.0 - p);
        let masks = active
            .iter()
            .zip(channels)
            .map(|(&on, &c)| {
                if on {
                    let keep = (0..c).map(|_| !rng.bernoulli(f64::from(p))).collect();
                    Some(Mask { keep, scale })
                } else {
                    None
                }
            })
            .collect();
        MaskSet { masks }
    }

    /// Mask at `site`, if the site is active.
    pub fn get(&self, site: usize) -> Option<&Mask> {
        self.masks.get(site).and_then(|m| m.as_ref())
    }

    /// Number of sites covered (sites beyond this are inactive).
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Whether no site is covered.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }
}

/// Per-node data cached by a training forward pass.
#[derive(Debug, Clone)]
enum Aux {
    None,
    MaxPool(Vec<u32>),
    Bn { xhat: Tensor, inv_std: Vec<f32> },
}

/// Cached activations of a training-mode forward pass, consumed by
/// [`Graph::backward`].
#[derive(Debug, Clone)]
pub struct Activations {
    outs: Vec<Tensor>,
    aux: Vec<Aux>,
}

impl Activations {
    /// Output tensor of a node.
    pub fn output(&self, node: usize) -> &Tensor {
        &self.outs[node]
    }

    /// The logits (output of the last node executed).
    pub fn logits(&self, graph: &Graph) -> &Tensor {
        &self.outs[graph.output_id()]
    }
}

fn apply_mask(x: &mut Tensor, mask: &Mask, name: &str) {
    let s = x.shape();
    assert_eq!(mask.keep.len(), s.c, "{name}: mask length != channels");
    let plane = s.h * s.w;
    for n in 0..s.n {
        let item = x.item_mut(n);
        for (c, &keep) in mask.keep.iter().enumerate() {
            let sl = &mut item[c * plane..(c + 1) * plane];
            if keep {
                for v in sl {
                    *v *= mask.scale;
                }
            } else {
                sl.fill(0.0);
            }
        }
    }
}

fn conv_forward(
    x: &Tensor,
    w: &Tensor,
    b: &Tensor,
    out_shape: Shape4,
    k: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    let si = x.shape();
    let so = out_shape;
    let mut y = Tensor::zeros(so);
    let (f, ckk, howo) = (so.c, si.c * k * k, so.h * so.w);
    let item_len = so.item_len();
    let one_item = |n: usize, yi: &mut [f32]| {
        let cols = im2col(x.item(n), si.c, si.h, si.w, k, stride, pad);
        gemm(f, ckk, howo, w.as_slice(), &cols, yi);
        for (c, &bias) in b.as_slice().iter().enumerate() {
            for v in &mut yi[c * howo..(c + 1) * howo] {
                *v += bias;
            }
        }
    };
    if si.n >= 4 {
        // Batch items are independent; split across two workers.
        let mid = si.n / 2;
        let (lo, hi) = y.as_mut_slice().split_at_mut(mid * item_len);
        crossbeam::thread::scope(|scope| {
            scope.spawn(|_| {
                for n in 0..mid {
                    one_item(n, &mut lo[n * item_len..(n + 1) * item_len]);
                }
            });
            for n in mid..si.n {
                one_item(n, &mut hi[(n - mid) * item_len..(n - mid + 1) * item_len]);
            }
        })
        .expect("conv worker panicked");
    } else {
        for n in 0..si.n {
            one_item(n, y.item_mut(n));
        }
    }
    y
}

fn linear_forward(x: &Tensor, w: &Tensor, b: &Tensor, out_f: usize) -> Tensor {
    let si = x.shape();
    let in_f = si.item_len();
    let mut y = Tensor::zeros(Shape4::vec(si.n, out_f));
    gemm_bt(si.n, in_f, out_f, x.as_slice(), w.as_slice(), y.as_mut_slice());
    for n in 0..si.n {
        add_inplace(y.item_mut(n), b.as_slice());
    }
    y
}

/// Per-channel batch statistics over (N, H, W).
fn bn_batch_stats(x: &Tensor) -> (Vec<f32>, Vec<f32>) {
    let s = x.shape();
    let plane = s.h * s.w;
    let m = (s.n * plane) as f64;
    let mut mean = vec![0f64; s.c];
    let mut var = vec![0f64; s.c];
    for n in 0..s.n {
        let item = x.item(n);
        for c in 0..s.c {
            for &v in &item[c * plane..(c + 1) * plane] {
                mean[c] += f64::from(v);
            }
        }
    }
    for mc in &mut mean {
        *mc /= m;
    }
    for n in 0..s.n {
        let item = x.item(n);
        for c in 0..s.c {
            for &v in &item[c * plane..(c + 1) * plane] {
                let d = f64::from(v) - mean[c];
                var[c] += d * d;
            }
        }
    }
    for vc in &mut var {
        *vc /= m;
    }
    (mean.into_iter().map(|v| v as f32).collect(), var.into_iter().map(|v| v as f32).collect())
}

fn bn_apply(
    x: &Tensor,
    mean: &[f32],
    var: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) -> (Tensor, Tensor, Vec<f32>) {
    let s = x.shape();
    let plane = s.h * s.w;
    let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
    let mut xhat = Tensor::zeros(s);
    let mut y = Tensor::zeros(s);
    for n in 0..s.n {
        let xi = x.item(n);
        let range = n * s.item_len()..(n + 1) * s.item_len();
        let xh = &mut xhat.as_mut_slice()[range.clone()];
        let yo = &mut y.as_mut_slice()[range];
        for c in 0..s.c {
            let (g, b, mu, is) = (gamma[c], beta[c], mean[c], inv_std[c]);
            for i in c * plane..(c + 1) * plane {
                let h = (xi[i] - mu) * is;
                xh[i] = h;
                yo[i] = g * h + b;
            }
        }
    }
    (y, xhat, inv_std)
}

/// Evaluation-mode driver: BN reads running statistics, nothing mutates.
fn run_forward_eval(
    nodes: &[Node],
    params: &ParamStore,
    input: &Tensor,
    masks: &MaskSet,
) -> Activations {
    let mut outs: Vec<Tensor> = Vec::with_capacity(nodes.len());
    let mut aux: Vec<Aux> = Vec::with_capacity(nodes.len());
    for node in nodes {
        let mut a = Aux::None;
        let y = match &node.op {
            Op::BatchNorm { gamma, beta, mean, var, eps, .. } => {
                let x = &outs[node.inputs[0]];
                let (y, _xhat, _inv_std) = bn_apply(
                    x,
                    params.get(*mean).as_slice(),
                    params.get(*var).as_slice(),
                    params.get(*gamma).as_slice(),
                    params.get(*beta).as_slice(),
                    *eps,
                );
                y
            }
            _ => {
                let single = std::slice::from_ref(node);
                let mut sub = run_single(single, params, &outs, input, masks, &mut a);
                sub.pop().expect("single node produces one output")
            }
        };
        outs.push(y);
        aux.push(a);
    }
    Activations { outs, aux }
}

impl Graph {
    /// Evaluation-mode forward pass (BN uses running statistics).
    ///
    /// Supplying masks makes the active MCD sites stochastic — this is
    /// exactly "MCD at test time". With [`MaskSet::none`] the network
    /// is the deterministic standard NN.
    pub fn forward(&self, input: &Tensor, masks: &MaskSet) -> Tensor {
        let acts = run_forward_eval(&self.nodes, &self.params, input, masks);
        acts.outs.into_iter().nth(self.output).expect("output node exists")
    }

    /// Evaluation-mode forward pass that keeps every node's output.
    ///
    /// Used by software intermediate-layer caching (run the prefix once,
    /// re-run only the Bayesian suffix) and by executor cross-checks.
    pub fn forward_full(&self, input: &Tensor, masks: &MaskSet) -> Activations {
        run_forward_eval(&self.nodes, &self.params, input, masks)
    }

    /// Resume an evaluation-mode pass from node `from` (exclusive),
    /// reusing `prefix` outputs for all nodes `<= from`.
    ///
    /// This is the software analogue of the paper's intermediate-layer
    /// caching: the deterministic prefix is computed once and the
    /// Bayesian suffix re-runs per Monte Carlo sample.
    ///
    /// # Panics
    ///
    /// Panics if `prefix` does not cover node `from`.
    pub fn forward_from(&self, prefix: &Activations, from: NodeId, masks: &MaskSet) -> Tensor {
        assert!(prefix.outs.len() > from, "prefix does not cover node {from}");
        let mut outs: Vec<Tensor> = prefix.outs[..=from].to_vec();
        let input = prefix.outs[self.input].clone();
        for node in &self.nodes[from + 1..] {
            let mut a = Aux::None;
            let y = match &node.op {
                Op::BatchNorm { gamma, beta, mean, var, eps, .. } => {
                    let x = &outs[node.inputs[0]];
                    let (y, _, _) = bn_apply(
                        x,
                        self.params.get(*mean).as_slice(),
                        self.params.get(*var).as_slice(),
                        self.params.get(*gamma).as_slice(),
                        self.params.get(*beta).as_slice(),
                        *eps,
                    );
                    y
                }
                _ => {
                    let single = std::slice::from_ref(node);
                    let mut sub =
                        run_single(single, &self.params, &outs, &input, masks, &mut a);
                    sub.pop().expect("single node produces one output")
                }
            };
            outs.push(y);
        }
        outs.into_iter().nth(self.output).expect("output node exists")
    }

    /// Training-mode forward pass: BN uses batch statistics and updates
    /// running ones; every intermediate needed by [`Graph::backward`]
    /// is cached.
    pub fn forward_train(&mut self, input: &Tensor, masks: &MaskSet) -> Activations {
        // Split borrows: read-only view for weights, mutable for BN stats.
        // ParamStore is cloned-free: we pass the same store as both views
        // by running with the mutable one.
        let nodes = std::mem::take(&mut self.nodes);
        let mut params = std::mem::take(&mut self.params);
        let acts = {
            let params_ptr = &mut params;
            // `run_forward` only mutates the BN running-stat tensors,
            // which are disjoint from the weights it reads, but the
            // borrow checker cannot see that; give it one mutable view
            // and re-read weights through it.
            run_forward_trainmode(&nodes, params_ptr, input, masks)
        };
        self.nodes = nodes;
        self.params = params;
        acts
    }

    /// Backward pass: accumulates parameter gradients into the store.
    ///
    /// `dlogits` is the gradient of the loss w.r.t. the logits
    /// (from [`crate::cross_entropy`]).
    ///
    /// # Panics
    ///
    /// Panics if `acts` was not produced by a matching
    /// [`Graph::forward_train`] call.
    pub fn backward(&mut self, acts: &Activations, masks: &MaskSet, dlogits: Tensor) {
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[self.output] = Some(dlogits);
        for id in (0..self.nodes.len()).rev() {
            let Some(g) = grads[id].take() else { continue };
            let node = &self.nodes[id];
            match &node.op {
                Op::Input => {}
                Op::Conv { w, b, k, stride, pad, in_c, .. } => {
                    let (w, b, k, stride, pad, in_c) = (*w, *b, *k, *stride, *pad, *in_c);
                    let xid = node.inputs[0];
                    let x = &acts.outs[xid];
                    let si = x.shape();
                    let so = g.shape();
                    let (f, ckk, howo) = (so.c, in_c * k * k, so.h * so.w);
                    let mut dx = Tensor::zeros(si);
                    {
                        let wt = self.params.get(w).as_slice().to_vec();
                        let dw = self.params.grad_mut(w);
                        for n in 0..si.n {
                            let cols = im2col(x.item(n), si.c, si.h, si.w, k, stride, pad);
                            // dW += dY · colsᵀ  (cols stored [ckk, howo])
                            gemm_bt(f, howo, ckk, g.item(n), &cols, dw.as_mut_slice());
                            // dcols = Wᵀ · dY
                            let mut dcols = vec![0.0f32; ckk * howo];
                            gemm_at(ckk, f, howo, &wt, g.item(n), &mut dcols);
                            col2im(&dcols, si.c, si.h, si.w, k, stride, pad, dx.item_mut(n));
                        }
                    }
                    {
                        let db = self.params.grad_mut(b);
                        for n in 0..so.n {
                            let gi = g.item(n);
                            for c in 0..f {
                                db.as_mut_slice()[c] += gi[c * howo..(c + 1) * howo]
                                    .iter()
                                    .sum::<f32>();
                            }
                        }
                    }
                    accumulate(&mut grads, xid, dx);
                }
                Op::Linear { w, b, in_f, out_f } => {
                    let (w, b, in_f, out_f) = (*w, *b, *in_f, *out_f);
                    let xid = node.inputs[0];
                    let x = &acts.outs[xid];
                    let n = x.shape().n;
                    {
                        // dW[out,in] += dYᵀ · X
                        let dw = self.params.grad_mut(w);
                        gemm_at(out_f, n, in_f, g.as_slice(), x.as_slice(), dw.as_mut_slice());
                    }
                    {
                        let db = self.params.grad_mut(b);
                        for i in 0..n {
                            add_inplace(db.as_mut_slice(), g.item(i));
                        }
                    }
                    // dX = dY · W
                    let mut dx = Tensor::zeros(x.shape());
                    gemm(
                        n,
                        out_f,
                        in_f,
                        g.as_slice(),
                        self.params.get(w).as_slice(),
                        dx.as_mut_slice(),
                    );
                    accumulate(&mut grads, xid, dx);
                }
                Op::BatchNorm { gamma, beta, channels, .. } => {
                    let (gamma, beta, channels) = (*gamma, *beta, *channels);
                    let xid = node.inputs[0];
                    let Aux::Bn { xhat, inv_std } = &acts.aux[id] else {
                        panic!("{}: BN cache missing — not a training pass", node.name)
                    };
                    let s = g.shape();
                    let plane = s.h * s.w;
                    let m = (s.n * plane) as f32;
                    // Channel sums of g and g·xhat.
                    let mut sum_g = vec![0f32; channels];
                    let mut sum_gx = vec![0f32; channels];
                    for n in 0..s.n {
                        let gi = g.item(n);
                        let xh = xhat.item(n);
                        for c in 0..channels {
                            for i in c * plane..(c + 1) * plane {
                                sum_g[c] += gi[i];
                                sum_gx[c] += gi[i] * xh[i];
                            }
                        }
                    }
                    {
                        let dgm = self.params.grad_mut(gamma);
                        add_inplace(dgm.as_mut_slice(), &sum_gx);
                    }
                    {
                        let dbt = self.params.grad_mut(beta);
                        add_inplace(dbt.as_mut_slice(), &sum_g);
                    }
                    let gm = self.params.get(gamma).as_slice().to_vec();
                    let mut dx = Tensor::zeros(s);
                    for n in 0..s.n {
                        let gi = g.item(n);
                        let xh = xhat.item(n);
                        let dxi = dx.item_mut(n);
                        for c in 0..channels {
                            let coef = gm[c] * inv_std[c];
                            let mg = sum_g[c] / m;
                            let mgx = sum_gx[c] / m;
                            for i in c * plane..(c + 1) * plane {
                                dxi[i] = coef * (gi[i] - mg - xh[i] * mgx);
                            }
                        }
                    }
                    accumulate(&mut grads, xid, dx);
                }
                Op::Relu => {
                    let xid = node.inputs[0];
                    let y = &acts.outs[id];
                    let mut dx = g;
                    for (d, &v) in dx.as_mut_slice().iter_mut().zip(y.iter()) {
                        if v <= 0.0 {
                            *d = 0.0;
                        }
                    }
                    accumulate(&mut grads, xid, dx);
                }
                Op::MaxPool { .. } => {
                    let xid = node.inputs[0];
                    let Aux::MaxPool(arg) = &acts.aux[id] else {
                        panic!("{}: maxpool cache missing", node.name)
                    };
                    let dx = max_pool_backward(&g, arg, acts.outs[xid].shape());
                    accumulate(&mut grads, xid, dx);
                }
                Op::AvgPool { k, stride } => {
                    let xid = node.inputs[0];
                    let dx = avg_pool_backward(&g, *k, *stride, acts.outs[xid].shape());
                    accumulate(&mut grads, xid, dx);
                }
                Op::GlobalAvgPool => {
                    let xid = node.inputs[0];
                    let si = acts.outs[xid].shape();
                    let mut dx = Tensor::zeros(si);
                    let inv = 1.0 / (si.h * si.w) as f32;
                    for n in 0..si.n {
                        for c in 0..si.c {
                            let gv = g.at(n, c, 0, 0) * inv;
                            for y in 0..si.h {
                                for x in 0..si.w {
                                    *dx.at_mut(n, c, y, x) = gv;
                                }
                            }
                        }
                    }
                    accumulate(&mut grads, xid, dx);
                }
                Op::Flatten => {
                    let xid = node.inputs[0];
                    let dx = g.reshape(acts.outs[xid].shape());
                    accumulate(&mut grads, xid, dx);
                }
                Op::Add => {
                    let (a, b) = (node.inputs[0], node.inputs[1]);
                    accumulate(&mut grads, a, g.clone());
                    accumulate(&mut grads, b, g);
                }
                Op::McdSite { site, .. } => {
                    let xid = node.inputs[0];
                    let mut dx = g;
                    if let Some(mask) = masks.get(site.0) {
                        apply_mask(&mut dx, mask, &node.name);
                    }
                    accumulate(&mut grads, xid, dx);
                }
            }
        }
    }
}

fn accumulate(grads: &mut [Option<Tensor>], id: usize, g: Tensor) {
    match &mut grads[id] {
        Some(existing) => add_inplace(existing.as_mut_slice(), g.as_slice()),
        slot @ None => *slot = Some(g),
    }
}

/// Training-mode driver: same walk as `run_forward` but BN reads batch
/// statistics and writes running ones through the single mutable view.
fn run_forward_trainmode(
    nodes: &[Node],
    params: &mut ParamStore,
    input: &Tensor,
    masks: &MaskSet,
) -> Activations {
    // Weights are only *read* and BN stats only *written*; doing the
    // reads before the writes per node keeps this single-pass.
    let mut outs: Vec<Tensor> = Vec::with_capacity(nodes.len());
    let mut aux: Vec<Aux> = Vec::with_capacity(nodes.len());
    for node in nodes {
        let mut a = Aux::None;
        let y = match &node.op {
            Op::BatchNorm { gamma, beta, mean, var, eps, momentum, .. } => {
                let x = &outs[node.inputs[0]];
                let (bm, bv) = bn_batch_stats(x);
                let mom = *momentum;
                {
                    let rm = params.get_mut(*mean);
                    for (r, &v) in rm.as_mut_slice().iter_mut().zip(&bm) {
                        *r = (1.0 - mom) * *r + mom * v;
                    }
                }
                {
                    let rv = params.get_mut(*var);
                    for (r, &v) in rv.as_mut_slice().iter_mut().zip(&bv) {
                        *r = (1.0 - mom) * *r + mom * v;
                    }
                }
                let (y, xhat, inv_std) = bn_apply(
                    x,
                    &bm,
                    &bv,
                    params.get(*gamma).as_slice(),
                    params.get(*beta).as_slice(),
                    *eps,
                );
                a = Aux::Bn { xhat, inv_std };
                y
            }
            _ => {
                // Delegate the non-BN ops to the shared eval-path logic
                // by running a single-node forward.
                let single = std::slice::from_ref(node);
                let mut sub_outs = run_single(single, params, &outs, input, masks, &mut a);
                sub_outs.pop().expect("single node produces one output")
            }
        };
        outs.push(y);
        aux.push(a);
    }
    Activations { outs, aux }
}

/// Execute one non-BN node against already-computed predecessor outputs.
fn run_single(
    nodes: &[Node],
    params: &ParamStore,
    outs: &[Tensor],
    input: &Tensor,
    masks: &MaskSet,
    aux_out: &mut Aux,
) -> Vec<Tensor> {
    let node = &nodes[0];
    let y = match &node.op {
        Op::Input => input.clone(),
        Op::Conv { w, b, k, stride, pad, out_c, .. } => {
            let x = &outs[node.inputs[0]];
            let si = x.shape();
            let so = Shape4::new(
                si.n,
                *out_c,
                bnn_tensor::conv_out_dim(si.h, *k, *stride, *pad),
                bnn_tensor::conv_out_dim(si.w, *k, *stride, *pad),
            );
            conv_forward(x, params.get(*w), params.get(*b), so, *k, *stride, *pad)
        }
        Op::Linear { w, b, out_f, .. } => {
            linear_forward(&outs[node.inputs[0]], params.get(*w), params.get(*b), *out_f)
        }
        Op::BatchNorm { .. } => unreachable!("BN handled by the training driver"),
        Op::Relu => {
            let mut y = outs[node.inputs[0]].clone();
            relu_inplace(y.as_mut_slice());
            y
        }
        Op::MaxPool { k, stride } => {
            let (y, arg) = max_pool(&outs[node.inputs[0]], *k, *stride);
            *aux_out = Aux::MaxPool(arg);
            y
        }
        Op::AvgPool { k, stride } => avg_pool(&outs[node.inputs[0]], *k, *stride),
        Op::GlobalAvgPool => global_avg_pool(&outs[node.inputs[0]]),
        Op::Flatten => {
            let x = &outs[node.inputs[0]];
            let s = x.shape();
            x.clone().reshape(Shape4::vec(s.n, s.item_len()))
        }
        Op::Add => {
            let mut y = outs[node.inputs[0]].clone();
            add_inplace(y.as_mut_slice(), outs[node.inputs[1]].as_slice());
            y
        }
        Op::McdSite { site, .. } => {
            let mut y = outs[node.inputs[0]].clone();
            if let Some(mask) = masks.get(site.0) {
                apply_mask(&mut y, mask, &node.name);
            }
            y
        }
    };
    vec![y]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn small_net() -> Graph {
        let mut b = GraphBuilder::new("t", 42);
        let x = b.input();
        let c = b.conv(x, 1, 2, 3, 1, 1);
        let bn = b.batch_norm(c, 2);
        let r = b.relu(bn);
        let p = b.max_pool(r, 2, 2);
        let f = b.flatten(p);
        let m = b.mcd(f, 0.25);
        let fc = b.linear(m, 2 * 2 * 2, 3);
        b.finish(fc)
    }

    #[test]
    fn forward_produces_logits() {
        let net = small_net();
        let x = Tensor::full(Shape4::new(2, 1, 4, 4), 0.5);
        let y = net.forward(&x, &MaskSet::none());
        assert_eq!(y.shape(), Shape4::vec(2, 3));
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn forward_deterministic_without_masks() {
        let net = small_net();
        let x = Tensor::full(Shape4::new(1, 1, 4, 4), 0.3);
        let a = net.forward(&x, &MaskSet::none());
        let b = net.forward(&x, &MaskSet::none());
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn mask_zeroes_channels_and_scales_rest() {
        let mut t = Tensor::full(Shape4::new(1, 2, 2, 2), 1.0);
        apply_mask(
            &mut t,
            &Mask { keep: vec![true, false], scale: 4.0 / 3.0 },
            "test",
        );
        assert!(t.item(0)[0..4].iter().all(|&v| (v - 4.0 / 3.0).abs() < 1e-6));
        assert!(t.item(0)[4..8].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn active_mask_changes_output() {
        let net = small_net();
        let x = Tensor::full(Shape4::new(1, 1, 4, 4), 0.5);
        let clean = net.forward(&x, &MaskSet::none());
        let masked = net.forward(
            &x,
            &MaskSet::from_masks(vec![Some(Mask {
                keep: vec![false; 8],
                scale: 4.0 / 3.0,
            })]),
        );
        // All-dropped features => logits equal the bias alone.
        assert!(clean.max_abs_diff(&masked) > 0.0);
    }

    #[test]
    fn train_updates_running_stats() {
        let mut net = small_net();
        let x = Tensor::from_vec(
            Shape4::new(4, 1, 4, 4),
            (0..64).map(|i| (i as f32 / 16.0) - 2.0).collect(),
        );
        let before: Vec<f32> = net
            .params()
            .get(crate::param::ParamId(4)) // running mean of the BN (w,b,gamma,beta,mean,...)
            .as_slice()
            .to_vec();
        let _ = net.forward_train(&x, &MaskSet::none());
        let after: Vec<f32> =
            net.params().get(crate::param::ParamId(4)).as_slice().to_vec();
        assert_ne!(before, after, "running mean should move in training mode");
    }

    #[test]
    fn backward_populates_grads() {
        let mut net = small_net();
        let x = Tensor::full(Shape4::new(2, 1, 4, 4), 0.5);
        let acts = net.forward_train(&x, &MaskSet::none());
        let logits = acts.logits(&net).clone();
        let dl = Tensor::full(logits.shape(), 1.0);
        net.backward(&acts, &MaskSet::none(), dl);
        let any_nonzero = net
            .params()
            .ids()
            .any(|id| net.params().grad(id).iter().any(|&g| g != 0.0));
        assert!(any_nonzero, "gradients must flow");
    }

    #[test]
    fn software_mask_sampling_respects_activity() {
        let mut rng = SoftRng::new(1);
        let ms = MaskSet::sample_software(&[false, true], &[4, 8], 0.25, &mut rng);
        assert!(ms.get(0).is_none());
        let m = ms.get(1).expect("site 1 active");
        assert_eq!(m.keep.len(), 8);
        assert!((m.scale - 4.0 / 3.0).abs() < 1e-6);
    }
}
