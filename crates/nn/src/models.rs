//! The paper's evaluation networks.
//!
//! * [`lenet5`] — LeNet-5 for (synthetic) MNIST, `N = 5` weight layers.
//! * [`vgg11`] — channel-reduced VGG-11 for SVHN-like data, `N = 11`.
//! * [`resnet18`] — channel-reduced ResNet-18 for CIFAR-like data,
//!   `N = 18` main-path weight layers (plus three 1×1 downsamples).
//!
//! Every weight layer's input carries an MCD site, so any partial
//! Bayesian configuration `L ∈ {1 .. N}` can be run on the same graph.
//! The paper reduces VGG-11/ResNet-18 channel counts to fit its
//! accelerator memory; the `width_div` / `base` parameters play the
//! same role here (and additionally keep pure-Rust training tractable).

use crate::graph::{Graph, GraphBuilder, NodeId};

/// The paper's MCD dropout probability.
pub const MCD_P: f32 = 0.25;

/// LeNet-5 (paper's MNIST network): two 5×5 conv+BN+ReLU+pool blocks
/// and three fully-connected layers. `img` must be even and ≥ 12.
///
/// # Panics
///
/// Panics if the image geometry does not fit the LeNet-5 pipeline.
pub fn lenet5(classes: usize, in_c: usize, img: usize, seed: u64) -> Graph {
    assert!(
        img >= 12 && img % 2 == 0,
        "lenet5 needs an even image size >= 12"
    );
    let mut b = GraphBuilder::new("lenet5", seed);
    let x = b.input();

    let m0 = b.mcd(x, MCD_P);
    let c1 = b.conv(m0, in_c, 6, 5, 1, 2);
    let bn1 = b.batch_norm(c1, 6);
    let r1 = b.relu(bn1);
    let p1 = b.max_pool(r1, 2, 2); // img/2

    let m1 = b.mcd(p1, MCD_P);
    let c2 = b.conv(m1, 6, 16, 5, 1, 0);
    let bn2 = b.batch_norm(c2, 16);
    let r2 = b.relu(bn2);
    let p2 = b.max_pool(r2, 2, 2); // (img/2 - 4)/2

    let side = (img / 2 - 4) / 2;
    let f = b.flatten(p2);
    let m2 = b.mcd(f, MCD_P);
    let fc1 = b.linear(m2, 16 * side * side, 120);
    let r3 = b.relu(fc1);
    let m3 = b.mcd(r3, MCD_P);
    let fc2 = b.linear(m3, 120, 84);
    let r4 = b.relu(fc2);
    let m4 = b.mcd(r4, MCD_P);
    let fc3 = b.linear(m4, 84, classes);
    b.finish(fc3)
}

/// Channel-reduced VGG-11 (paper's SVHN network): eight 3×3 conv
/// blocks with five max-pools, then three FC layers. Standard VGG-11
/// channels `[64,128,256,256,512,512,512,512]` are divided by
/// `width_div` (the paper "reduced the channel size ... to fit into
/// memory").
///
/// # Panics
///
/// Panics unless `img` is divisible by 32 (five 2× pools).
pub fn vgg11(classes: usize, in_c: usize, img: usize, width_div: usize, seed: u64) -> Graph {
    assert!(img % 32 == 0, "vgg11 needs img divisible by 32");
    assert!(width_div >= 1, "width divisor must be >= 1");
    let ch = |c: usize| (c / width_div).max(2);
    let mut b = GraphBuilder::new("vgg11", seed);
    let x = b.input();

    // (out_channels, pool_after)
    let cfg = [
        (ch(64), true),
        (ch(128), true),
        (ch(256), false),
        (ch(256), true),
        (ch(512), false),
        (ch(512), true),
        (ch(512), false),
        (ch(512), true),
    ];
    let mut cur = x;
    let mut prev_c = in_c;
    for &(c, pool) in &cfg {
        let m = b.mcd(cur, MCD_P);
        let conv = b.conv(m, prev_c, c, 3, 1, 1);
        let bn = b.batch_norm(conv, c);
        let r = b.relu(bn);
        cur = if pool { b.max_pool(r, 2, 2) } else { r };
        prev_c = c;
    }
    // After five pools a 32-divisible image is (img/32)².
    let side = img / 32;
    let feat = prev_c * side * side;
    let f = b.flatten(cur);
    let hidden = ch(512);
    let m = b.mcd(f, MCD_P);
    let fc1 = b.linear(m, feat, hidden);
    let r = b.relu(fc1);
    let m = b.mcd(r, MCD_P);
    let fc2 = b.linear(m, hidden, hidden);
    let r = b.relu(fc2);
    let m = b.mcd(r, MCD_P);
    let fc3 = b.linear(m, hidden, classes);
    b.finish(fc3)
}

/// One ResNet basic block: two 3×3 convs with BN, identity or 1×1
/// projection shortcut, post-add ReLU. MCD sites guard both conv
/// inputs; the projection reads the same masked tensor the first conv
/// does (the mask is applied to the shared feature map, as in the
/// accelerator's dropout unit).
fn basic_block(
    b: &mut GraphBuilder,
    x: NodeId,
    in_c: usize,
    out_c: usize,
    stride: usize,
) -> NodeId {
    let m1 = b.mcd(x, MCD_P);
    let c1 = b.conv(m1, in_c, out_c, 3, stride, 1);
    let bn1 = b.batch_norm(c1, out_c);
    let r1 = b.relu(bn1);
    let m2 = b.mcd(r1, MCD_P);
    let c2 = b.conv(m2, out_c, out_c, 3, 1, 1);
    let bn2 = b.batch_norm(c2, out_c);
    let shortcut = if stride != 1 || in_c != out_c {
        let sc = b.conv(m1, in_c, out_c, 1, stride, 0);
        b.batch_norm(sc, out_c)
    } else {
        x
    };
    let a = b.add(bn2, shortcut);
    b.relu(a)
}

/// Channel-reduced ResNet-18 (paper's CIFAR-10 network): 3×3 stem,
/// four stages of two basic blocks at widths `base·{1,2,4,8}`, global
/// average pool and an FC classifier. `N = 18` MCD sites.
pub fn resnet18(classes: usize, in_c: usize, base: usize, seed: u64) -> Graph {
    assert!(base >= 2, "base width must be >= 2");
    let mut b = GraphBuilder::new("resnet18", seed);
    let x = b.input();

    let m0 = b.mcd(x, MCD_P);
    let c0 = b.conv(m0, in_c, base, 3, 1, 1);
    let bn0 = b.batch_norm(c0, base);
    let mut cur = b.relu(bn0);

    let widths = [base, base * 2, base * 4, base * 8];
    let mut prev = base;
    for (stage, &w) in widths.iter().enumerate() {
        let stride = if stage == 0 { 1 } else { 2 };
        cur = basic_block(&mut b, cur, prev, w, stride);
        cur = basic_block(&mut b, cur, w, w, 1);
        prev = w;
    }

    let g = b.global_avg_pool(cur);
    let f = b.flatten(g);
    let m = b.mcd(f, MCD_P);
    let fc = b.linear(m, prev, classes);
    b.finish(fc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::MaskSet;
    use bnn_tensor::{Shape4, Tensor};

    #[test]
    fn lenet5_shapes_and_sites() {
        let net = lenet5(10, 1, 28, 1);
        assert_eq!(net.n_sites(), 5, "paper: N = 5 weight layers");
        let y = net.forward(&Tensor::zeros(Shape4::new(2, 1, 28, 28)), &MaskSet::none());
        assert_eq!(y.shape(), Shape4::vec(2, 10));
    }

    #[test]
    fn vgg11_shapes_and_sites() {
        let net = vgg11(10, 3, 32, 8, 1);
        assert_eq!(net.n_sites(), 11, "paper: N = 11 weight layers");
        let y = net.forward(&Tensor::zeros(Shape4::new(1, 3, 32, 32)), &MaskSet::none());
        assert_eq!(y.shape(), Shape4::vec(1, 10));
    }

    #[test]
    fn resnet18_shapes_and_sites() {
        let net = resnet18(10, 3, 8, 1);
        assert_eq!(net.n_sites(), 18, "paper: N = 18 main-path weight layers");
        let y = net.forward(&Tensor::zeros(Shape4::new(1, 3, 32, 32)), &MaskSet::none());
        assert_eq!(y.shape(), Shape4::vec(1, 10));
    }

    #[test]
    fn lenet5_classic_feature_size() {
        // 28x28 input must reproduce the classic 400-feature flatten.
        let net = lenet5(10, 1, 28, 1);
        let shapes = net.infer_shapes(Shape4::new(1, 1, 28, 28));
        let flat = shapes
            .iter()
            .find(|s| s.h == 1 && s.w == 1 && s.c == 400)
            .expect("classic LeNet flatten is 400 features");
        assert_eq!(flat.c, 400);
    }

    #[test]
    fn macs_ordering_matches_network_size() {
        let lenet = lenet5(10, 1, 28, 1).macs(Shape4::new(1, 1, 28, 28));
        let vgg = vgg11(10, 3, 32, 8, 1).macs(Shape4::new(1, 3, 32, 32));
        let resnet = resnet18(10, 3, 8, 1).macs(Shape4::new(1, 3, 32, 32));
        assert!(lenet < vgg, "lenet {lenet} < vgg {vgg}");
        assert!(lenet < resnet, "lenet {lenet} < resnet {resnet}");
    }

    #[test]
    fn resnet_projection_stages_change_width() {
        let net = resnet18(10, 3, 8, 1);
        let shapes = net.infer_shapes(Shape4::new(1, 3, 32, 32));
        // Final pre-GAP feature map must be base*8 = 64 channels at 4x4.
        assert!(shapes.iter().any(|s| s.c == 64 && s.h == 4 && s.w == 4));
    }

    #[test]
    fn masked_forward_differs_from_clean() {
        let net = resnet18(10, 3, 8, 3);
        let x = Tensor::full(Shape4::new(1, 3, 32, 32), 0.5);
        let clean = net.forward(&x, &MaskSet::none());
        let channels = net.site_channels(x.shape());
        let mut rng = bnn_rng::SoftRng::new(5);
        let active = vec![true; net.n_sites()];
        let masks = MaskSet::sample_software(&active, &channels, 0.25, &mut rng);
        let noisy = net.forward(&x, &masks);
        assert!(clean.max_abs_diff(&noisy) > 1e-6);
    }
}
