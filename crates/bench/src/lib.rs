//! Shared plumbing for the table/figure regeneration harness.
//!
//! Every bench target (`table1` … `fig6`, `ablations`) prints its
//! result to stdout *and* writes a CSV under `results/` at the
//! workspace root, with the paper's published values alongside the
//! measured ones so EXPERIMENTS.md can be cross-checked mechanically.
//!
//! Budgets honour two environment variables:
//! * `BNN_FAST=1` — shrink training/evaluation budgets (~6× faster);
//! * `BNN_SEED=<u64>` — change the global experiment seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bnn_data::Dataset;
use bnn_framework::{NetKind, TrainedMetricProvider, TrainingBudget};
use std::fs;
use std::path::PathBuf;

/// Global experiment seed (`BNN_SEED`, default 2021 — the paper year).
pub fn seed() -> u64 {
    std::env::var("BNN_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2021)
}

/// Whether the reduced-budget mode is active.
pub fn fast_mode() -> bool {
    std::env::var("BNN_FAST").map(|v| v == "1").unwrap_or(false)
}

/// The `results/` directory at the workspace root.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write a CSV file into `results/`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = results_dir().join(name);
    let mut body = String::from(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    fs::write(&path, body).expect("write csv");
    println!("\n[written {}]", path.display());
}

/// The three paper workloads with their datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// LeNet-5 on synthetic MNIST.
    LeNet5,
    /// VGG-11 (reduced) on synthetic SVHN.
    Vgg11,
    /// ResNet-18 (reduced) on synthetic CIFAR.
    ResNet18,
}

impl Workload {
    /// All three, in the paper's order.
    pub fn all() -> [Workload; 3] {
        [Workload::LeNet5, Workload::Vgg11, Workload::ResNet18]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::LeNet5 => "LeNet-5",
            Workload::Vgg11 => "VGG-11",
            Workload::ResNet18 => "ResNet-18",
        }
    }

    /// The `NetKind` for the framework's providers.
    pub fn kind(&self) -> NetKind {
        match self {
            Workload::LeNet5 => NetKind::LeNet5,
            Workload::Vgg11 => NetKind::Vgg11,
            Workload::ResNet18 => NetKind::ResNet18,
        }
    }

    /// Build the dataset at the bench budget.
    pub fn dataset(&self) -> Dataset {
        let (train, test) = if fast_mode() { (320, 96) } else { (1200, 256) };
        match self {
            Workload::LeNet5 => bnn_data::synth_mnist(train, test, seed()),
            Workload::Vgg11 => bnn_data::synth_svhn(train, test, seed() + 1),
            Workload::ResNet18 => bnn_data::synth_cifar(train, test, seed() + 2),
        }
    }

    /// Training budget for the trained metric provider. The deeper
    /// networks get more epochs (VGG's pooled feature maps make its
    /// epochs cheap; ResNet needs them for the fully-Bayesian configs).
    pub fn budget(&self) -> TrainingBudget {
        if fast_mode() {
            return TrainingBudget {
                epochs: 1,
                batch: 32,
                test_n: 48,
                noise_n: 32,
                s_max: 20,
            };
        }
        let epochs = match self {
            Workload::LeNet5 => 3,
            Workload::Vgg11 => 6,
            Workload::ResNet18 => 5,
        };
        TrainingBudget {
            epochs,
            batch: 32,
            test_n: 96,
            noise_n: 64,
            s_max: 100,
        }
    }

    /// A trained metric provider at the bench budget.
    pub fn provider(&self) -> TrainedMetricProvider {
        TrainedMetricProvider::new(self.kind(), self.dataset(), self.budget(), seed())
    }

    /// The paper's network for this workload (graph form).
    pub fn network(&self) -> bnn_nn::Graph {
        self.kind().build(seed())
    }

    /// Input shape (batch 1).
    pub fn input_shape(&self) -> bnn_tensor::Shape4 {
        match self {
            Workload::LeNet5 => bnn_tensor::Shape4::new(1, 1, 28, 28),
            Workload::Vgg11 | Workload::ResNet18 => bnn_tensor::Shape4::new(1, 3, 32, 32),
        }
    }
}

/// Format a ratio as `x.x×`.
pub fn times(r: f64) -> String {
    format!("{r:.1}x")
}
