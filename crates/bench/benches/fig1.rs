//! Figure 1 — confidence histograms on random-noise input:
//! Bayesian vs standard neural network.

use bnn_bench::{seed, write_csv, Workload};
use bnn_data::gaussian_noise_like;
use bnn_mcd::{avg_predictive_entropy, BayesConfig, McdPredictor, SoftwareMaskSource};
use bnn_nn::{MaskSet, SgdConfig, Trainer};
use bnn_tensor::{softmax_rows, Tensor};

fn confidence_histogram(probs: &Tensor, bins: usize) -> Vec<f64> {
    let mut hist = vec![0.0f64; bins];
    for i in 0..probs.shape().n {
        let conf = probs.item(i)[probs.argmax_item(i)];
        let b = ((f64::from(conf) * bins as f64) as usize).min(bins - 1);
        hist[b] += 1.0;
    }
    let n = probs.shape().n as f64;
    for h in &mut hist {
        *h /= n;
    }
    hist
}

fn main() {
    let w = Workload::LeNet5;
    let ds = w.dataset();
    let epochs = if bnn_bench::fast_mode() { 2 } else { 8 };

    // Two networks trained identically except for MCD: the standard NN
    // (no dropout anywhere) and the Bayesian one (MCD at every site).
    let mut std_net = w.network();
    let mut std_tr = Trainer::new(&std_net, SgdConfig::default(), 0, 0.25, seed());
    let mut bnn_net = w.network();
    let n_sites = bnn_net.n_sites();
    let mut bnn_tr = Trainer::new(&bnn_net, SgdConfig::default(), n_sites, 0.25, seed());
    for e in 0..epochs {
        let (sl, sa) = std_tr.train_epoch(&mut std_net, &ds.train_x, &ds.train_y, 32);
        let (bl, ba) = bnn_tr.train_epoch(&mut bnn_net, &ds.train_x, &ds.train_y, 32);
        println!("epoch {e}: std loss {sl:.3} acc {sa:.3} | bnn loss {bl:.3} acc {ba:.3}");
    }

    let noise_n = if bnn_bench::fast_mode() { 64 } else { 200 };
    let noise = gaussian_noise_like(&ds, noise_n, seed() ^ 0xF16);

    // Standard NN: single deterministic pass.
    let mut std_probs = std_net.forward(&noise, &MaskSet::none());
    let (n, k) = (std_probs.shape().n, std_probs.shape().item_len());
    softmax_rows(std_probs.as_mut_slice(), n, k);

    // BNN: MCD, full network, S = 50.
    let s = if bnn_bench::fast_mode() { 10 } else { 50 };
    let mut src = SoftwareMaskSource::new(seed() ^ 0xB);
    let bnn_probs =
        McdPredictor::new(&bnn_net).predictive(&noise, BayesConfig::new(n_sites, s), &mut src);

    let hs = confidence_histogram(&std_probs, 10);
    let hb = confidence_histogram(&bnn_probs, 10);

    println!("\nFigure 1 — normalized confidence frequency on Gaussian noise\n");
    println!("{:>10} {:>12} {:>12}", "conf bin", "BNN", "standard NN");
    let mut rows = Vec::new();
    for b in 0..10 {
        let lo = b as f64 / 10.0;
        println!(
            "{:>4.1}-{:>4.1} {:>12.3} {:>12.3}",
            lo,
            lo + 0.1,
            hb[b],
            hs[b]
        );
        rows.push(format!("{:.1},{:.4},{:.4}", lo, hb[b], hs[b]));
    }
    let mean_conf = |h: &[f64]| -> f64 {
        h.iter()
            .enumerate()
            .map(|(b, &v)| v * (b as f64 / 10.0 + 0.05))
            .sum()
    };
    println!(
        "\nmean confidence: BNN {:.3} vs standard {:.3} (paper: BNN far less confident)",
        mean_conf(&hb),
        mean_conf(&hs)
    );
    println!(
        "aPE on noise: BNN {:.3} nats vs standard {:.3} nats",
        avg_predictive_entropy(&bnn_probs),
        avg_predictive_entropy(&std_probs)
    );
    write_csv(
        "fig1_confidence_hist.csv",
        "bin_lo,bnn_freq,std_freq",
        &rows,
    );
}
