//! Microbenchmarks of the performance engine this repo's throughput
//! story rests on: the blocked GEMM kernels (64–512 square) and MCD
//! predictive throughput at `S ∈ {10, 100}`, serial vs parallel.
//!
//! Run with `cargo bench --bench mc_parallel`. The MCD pair is the
//! acceptance probe for the sampling engine: the parallel path must
//! agree with the serial one bit-for-bit (asserted here) while being
//! several times faster on a multi-core host.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bnn_mcd::{BayesConfig, McdPredictor, ParallelConfig, SoftwareMaskSource};
use bnn_nn::models;
use bnn_tensor::{gemm, gemm_bt, Shape4, Tensor};

fn fill(n: usize, seed: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let v = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed);
            ((v >> 33) as i32 % 255) as f32 / 128.0
        })
        .collect()
}

fn bench_gemm(c: &mut Criterion) {
    for &dim in &[64usize, 128, 256, 512] {
        let a = fill(dim * dim, 1);
        let b = fill(dim * dim, 2);
        let mut out = vec![0.0f32; dim * dim];
        c.bench_function(&format!("gemm_{dim}x{dim}x{dim}"), |bch| {
            bch.iter(|| {
                out.fill(0.0);
                gemm(dim, dim, dim, &a, &b, &mut out);
                black_box(out[0])
            })
        });
    }
    // The FC-layer shape (B·k dot products) at a LeNet-ish size.
    let (m, k, n) = (32usize, 400usize, 120usize);
    let a = fill(m * k, 3);
    let b = fill(n * k, 4);
    let mut out = vec![0.0f32; m * n];
    c.bench_function("gemm_bt_32x400x120", |bch| {
        bch.iter(|| {
            out.fill(0.0);
            gemm_bt(m, k, n, &a, &b, &mut out);
            black_box(out[0])
        })
    });
}

fn bench_mcd(c: &mut Criterion) {
    let net = models::lenet5(10, 1, 28, 5);
    let x = Tensor::full(Shape4::new(1, 1, 28, 28), 0.25);
    for &s in &[10usize, 100] {
        let cfg = BayesConfig::new(3, s);

        // Cross-check once: parallel must match serial exactly on the
        // same mask stream.
        let serial = McdPredictor::new(&net)
            .with_parallelism(ParallelConfig::serial())
            .predictive(&x, cfg, &mut SoftwareMaskSource::new(7));
        let parallel = McdPredictor::new(&net)
            .with_parallelism(ParallelConfig::max_parallel())
            .predictive(&x, cfg, &mut SoftwareMaskSource::new(7));
        assert_eq!(
            serial.as_slice(),
            parallel.as_slice(),
            "parallel sampling diverged from the serial mask stream"
        );

        c.bench_function(&format!("mcd_predictive_s{s}_serial"), |bch| {
            let pred = McdPredictor::new(&net).with_parallelism(ParallelConfig::serial());
            let mut src = SoftwareMaskSource::new(7);
            bch.iter(|| black_box(pred.predictive(&x, cfg, &mut src)))
        });
        c.bench_function(&format!("mcd_predictive_s{s}_parallel"), |bch| {
            let pred = McdPredictor::new(&net).with_parallelism(ParallelConfig::max_parallel());
            let mut src = SoftwareMaskSource::new(7);
            bch.iter(|| black_box(pred.predictive(&x, cfg, &mut src)))
        });
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_gemm, bench_mcd
}
criterion_main!(benches);
