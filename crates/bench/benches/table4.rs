//! Table IV — comparison with other BNN accelerators (VIBNN, BYNQNet)
//! on throughput, energy efficiency and compute efficiency.
//!
//! Our row runs ResNet-101 with MCD on every layer (L = N), as the
//! paper does; the baselines are the reproduced VIBNN and BYNQNet
//! performance models.

use bnn_accel::{AccelConfig, FpgaDevice, PerfModel, ResourceModel};
use bnn_bench::write_csv;
use bnn_mcd::BayesConfig;
use bnn_nn::arch::resnet101_desc;
use bnn_platforms::{bynqnet::BynqnetPerfModel, vibnn::VibnnPerfModel, AcceleratorSummary};

fn main() {
    let cfg = AccelConfig::paper_default();
    let perf = PerfModel::new(cfg);
    let layers = resnet101_desc();
    let n = layers.iter().filter_map(|l| l.input_site).count();

    // DSPs from the resource model (Table II).
    let rm = ResourceModel::new(FpgaDevice::arria10_sx660());
    let refs: Vec<&[_]> = vec![&layers];
    let usage = rm.estimate(&cfg, &refs);

    let ours = AcceleratorSummary {
        name: "This work (repro)".into(),
        fpga: "Arria 10 SX660".into(),
        clock_mhz: cfg.clock_mhz,
        dsps: usage.dsps,
        power_w: cfg.board_power_w,
        throughput_gops: perf.throughput_gops(&layers, BayesConfig::new(n, 1), true),
    };
    let rows_data = [
        VibnnPerfModel::default().summary(),
        BynqnetPerfModel::default().summary(),
        ours,
    ];

    // Paper Table IV for reference.
    let paper = [
        ("VIBNN [8]", 59.6, 9.75, 0.174),
        ("BYNQNet [10]", 24.22, 8.77, 0.121),
        ("Our work", 1590.0, 33.3, 1.079),
    ];

    println!("Table IV — BNN accelerator comparison (ResNet-101, L = N)\n");
    println!(
        "{:<20} {:<18} {:>8} {:>6} {:>8} {:>10} {:>11} {:>12}",
        "accelerator", "FPGA", "clock", "DSPs", "power", "GOP/s", "GOP/s/W", "GOP/s/DSP"
    );
    let mut rows = Vec::new();
    for (s, p) in rows_data.iter().zip(paper) {
        println!(
            "{:<20} {:<18} {:>8.1} {:>6} {:>8.2} {:>10.1} {:>11.2} {:>12.3}",
            s.name,
            s.fpga,
            s.clock_mhz,
            s.dsps,
            s.power_w,
            s.throughput_gops,
            s.energy_efficiency(),
            s.compute_efficiency()
        );
        println!(
            "{:<20} {:<18} {:>8} {:>6} {:>8} {:>10.1} {:>11.2} {:>12.3}  (paper)",
            "", "", "", "", "", p.1, p.2, p.3
        );
        rows.push(format!(
            "{},{:.2},{},{:.2},{:.2},{:.3},{:.3},{},{},{}",
            s.name,
            s.clock_mhz,
            s.dsps,
            s.power_w,
            s.throughput_gops,
            s.energy_efficiency(),
            s.compute_efficiency(),
            p.1,
            p.2,
            p.3
        ));
    }
    let ours_row = &rows_data[2];
    println!(
        "\nshape checks: energy-efficiency ratio vs VIBNN = {:.1}x (paper ~3.4x), vs BYNQNet = {:.1}x (paper ~3.8x)",
        ours_row.energy_efficiency() / rows_data[0].energy_efficiency(),
        ours_row.energy_efficiency() / rows_data[1].energy_efficiency()
    );
    println!(
        "compute-efficiency ratio vs VIBNN = {:.1}x (paper ~6.2x), vs BYNQNet = {:.1}x (paper ~8.9x)",
        ours_row.compute_efficiency() / rows_data[0].compute_efficiency(),
        ours_row.compute_efficiency() / rows_data[1].compute_efficiency()
    );
    write_csv(
        "table4.csv",
        "accelerator,clock_mhz,dsps,power_w,gops,gops_per_w,gops_per_dsp,paper_gops,paper_gops_per_w,paper_gops_per_dsp",
        &rows,
    );
}
