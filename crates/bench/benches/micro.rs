//! Criterion micro-benchmarks of the performance-critical kernels:
//! LFSR stepping, Bernoulli mask generation, f32 GEMM, the int8 tiled
//! engine and the fixed-point Gaussian samplers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bnn_accel::{AccelConfig, Accelerator};
use bnn_mcd::BayesConfig;
use bnn_nn::models;
use bnn_quant::Quantizer;
use bnn_rng::{BernoulliSampler, BoxMullerFixedSampler, DropProbability, GaussianSampler, Lfsr};
use bnn_tensor::{gemm, Shape4, Tensor};

fn bench_rng(c: &mut Criterion) {
    c.bench_function("lfsr128_step_1k", |b| {
        let mut l = Lfsr::paper_128(0xDEAD_BEEF);
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..1000 {
                acc += u32::from(l.step());
            }
            black_box(acc)
        });
    });
    c.bench_function("bernoulli_mask_64", |b| {
        let mut s = BernoulliSampler::new(DropProbability::quarter(), 64, 64, 7);
        b.iter(|| black_box(s.generate_mask(64)));
    });
    c.bench_function("box_muller_fixed_1k", |b| {
        let mut g = BoxMullerFixedSampler::new(3);
        b.iter(|| black_box(g.sample_n(1000)));
    });
}

fn bench_tensor(c: &mut Criterion) {
    c.bench_function("gemm_64x576x256", |b| {
        let a = vec![0.5f32; 64 * 576];
        let bm = vec![0.25f32; 576 * 256];
        b.iter(|| {
            let mut out = vec![0.0f32; 64 * 256];
            gemm(64, 576, 256, &a, &bm, &mut out);
            black_box(out)
        });
    });
}

fn bench_engine(c: &mut Criterion) {
    // One full int8 LeNet pass on the simulated accelerator.
    let net = models::lenet5(10, 1, 16, 1).fold_batch_norm();
    let calib = Tensor::full(Shape4::new(2, 1, 16, 16), 0.3);
    let qg = Quantizer::new(&net).calibrate(&calib).quantize();
    let accel = Accelerator::new(AccelConfig::paper_default(), &net, &qg, calib.shape());
    let img = calib.select_item(0);
    c.bench_function("accel_lenet16_s3", |b| {
        b.iter(|| black_box(accel.run(&img, BayesConfig::new(2, 3), 9)));
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_rng, bench_tensor, bench_engine
}
criterion_main!(benches);
