//! Ablation studies beyond the paper's tables (DESIGN.md §5):
//!
//! 1. Bernoulli source: bit-exact hardware LFSR pipeline vs software
//!    PRNG — does the gate-network mask statistically alter quality?
//! 2. Parallelism: latency across (P_C, P_F, P_V) splits at a fixed
//!    multiplier budget — why the paper's 64/64/1-scale choice wins.
//! 3. IC speedup surface over the full {L, S} grid.
//! 4. Quantization: f32 vs int8 accuracy per network.

use bnn_accel::{AccelConfig, Accelerator, PerfModel};
use bnn_bench::{seed, write_csv, Workload};
use bnn_mcd::{accuracy, BayesConfig, HardwareMaskSource, McdPredictor, SoftwareMaskSource};
use bnn_nn::{arch::extract_layers, MaskSet, SgdConfig, Trainer};
use bnn_quant::Quantizer;

fn main() {
    ablation_parallelism();
    ablation_ic_surface();
    ablation_sampler_and_quant();
}

fn ablation_parallelism() {
    println!("== Ablation: parallelism split at 4096 multipliers ==\n");
    let w = Workload::ResNet18;
    let net = w.network();
    let layers = extract_layers(&net, w.input_shape());
    let n = net.n_sites();
    let mut rows = Vec::new();
    println!(
        "{:>5} {:>5} {:>4} {:>12} {:>10}",
        "P_C", "P_F", "P_V", "latency[ms]", "util[%]"
    );
    for (pc, pf, pv) in [
        (64usize, 64usize, 1usize),
        (128, 32, 1),
        (32, 128, 1),
        (16, 16, 16),
        (64, 16, 4),
        (16, 64, 4),
        (128, 8, 4),
    ] {
        let cfg = AccelConfig::with_parallelism(pc, pf, pv);
        let perf = PerfModel::new(cfg);
        let t = perf.network_timing(&layers, BayesConfig::new(n, 10), true);
        let util: f64 = t.layers.iter().map(|l| l.utilization).sum::<f64>() / t.layers.len() as f64;
        println!(
            "{:>5} {:>5} {:>4} {:>12.3} {:>10.1}",
            pc,
            pf,
            pv,
            t.latency_ms(&cfg),
            util * 100.0
        );
        rows.push(format!(
            "{pc},{pf},{pv},{:.4},{:.4}",
            t.latency_ms(&cfg),
            util
        ));
    }
    write_csv(
        "ablation_parallelism.csv",
        "pc,pf,pv,latency_ms,mean_util",
        &rows,
    );
}

fn ablation_ic_surface() {
    println!("\n== Ablation: IC speedup surface (ResNet-18) ==\n");
    let w = Workload::ResNet18;
    let net = w.network();
    let layers = extract_layers(&net, w.input_shape());
    let cfg = AccelConfig::paper_default();
    let perf = PerfModel::new(cfg);
    let n = net.n_sites();
    let mut rows = Vec::new();
    print!("{:>6}", "L\\S");
    for s in [3usize, 10, 50, 100] {
        print!("{s:>8}");
    }
    println!();
    for l in BayesConfig::l_domain(n) {
        print!("{l:>6}");
        for s in [3usize, 10, 50, 100] {
            let b = BayesConfig::new(l, s);
            let w_ic = perf.network_timing(&layers, b, true).total_cycles;
            let wo = perf.network_timing(&layers, b, false).total_cycles;
            let sp = wo as f64 / w_ic as f64;
            print!("{sp:>7.1}x");
            rows.push(format!("{l},{s},{sp:.3}"));
        }
        println!();
    }
    write_csv("ablation_ic_surface.csv", "L,S,ic_speedup", &rows);
}

fn ablation_sampler_and_quant() {
    println!("\n== Ablation: mask source (LFSR vs software) and int8 quantization ==\n");
    let w = Workload::LeNet5;
    let ds = w.dataset();
    let mut net = w.network();
    let n = net.n_sites();
    let epochs = if bnn_bench::fast_mode() { 1 } else { 3 };
    let mut trainer = Trainer::new(&net, SgdConfig::default(), n, 0.25, seed());
    for _ in 0..epochs {
        let _ = trainer.train_epoch(&mut net, &ds.train_x, &ds.train_y, 32);
    }

    let test_n = if bnn_bench::fast_mode() { 32 } else { 96 };
    let mut test = bnn_tensor::Tensor::zeros(ds.image_shape().with_n(test_n));
    for i in 0..test_n {
        test.item_mut(i).copy_from_slice(ds.test_x.item(i));
    }
    let labels = &ds.test_y[..test_n];
    let s = if bnn_bench::fast_mode() { 8 } else { 30 };
    let cfg = BayesConfig::new(n, s);
    let pred = McdPredictor::new(&net);

    let mut soft = SoftwareMaskSource::new(seed());
    let acc_soft = accuracy(&pred.predictive(&test, cfg, &mut soft), labels);
    let mut hard = HardwareMaskSource::paper_default(seed());
    let acc_hard = accuracy(&pred.predictive(&test, cfg, &mut hard), labels);
    println!("MCD accuracy, software masks: {acc_soft:.4}");
    println!("MCD accuracy, LFSR hardware masks: {acc_hard:.4}");
    println!("(difference is sampling noise — the gate network is unbiased)");

    // Quantization: f32 vs int8 deterministic accuracy.
    let folded = net.fold_batch_norm();
    let qg = Quantizer::new(&folded).calibrate(&ds.train_x).quantize();
    let f32_logits = folded.forward(&test, &MaskSet::none());
    let int8_logits = qg.forward(&test, &MaskSet::none());
    let acc_f32 = (0..test_n)
        .filter(|&i| f32_logits.argmax_item(i) == labels[i])
        .count() as f64
        / test_n as f64;
    let acc_int8 = (0..test_n)
        .filter(|&i| int8_logits.argmax_item(i) == labels[i])
        .count() as f64
        / test_n as f64;
    println!("\ndeterministic accuracy f32: {acc_f32:.4}, int8: {acc_int8:.4}");

    // And the accelerator agrees with the int8 reference bit-exactly.
    let accel = Accelerator::new(AccelConfig::paper_default(), &folded, &qg, ds.image_shape());
    let img = test.select_item(0);
    let run = accel.run_with_masks(
        &img,
        BayesConfig {
            l: 0,
            s: 1,
            p: 0.25,
        },
        &[MaskSet::none()],
    );
    let reference = qg.forward(&img, &MaskSet::none());
    assert_eq!(run.logits_per_sample[0].as_slice(), reference.as_slice());
    println!("accelerator == int8 reference: bit-exact");

    write_csv(
        "ablation_sampler_quant.csv",
        "metric,value",
        &[
            format!("acc_mcd_software,{acc_soft:.5}"),
            format!("acc_mcd_lfsr,{acc_hard:.5}"),
            format!("acc_f32,{acc_f32:.5}"),
            format!("acc_int8,{acc_int8:.5}"),
        ],
    );
}
