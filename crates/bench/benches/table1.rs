//! Table I — resultant {L, S} configurations of the BNNs under the
//! four optimization modes, with latency (FPGA/CPU/GPU), aPE, ECE and
//! accuracy. Quality metrics come from *trained* networks on the
//! synthetic datasets; latency from the performance models.

use bnn_accel::AccelConfig;
use bnn_bench::{write_csv, Workload};
use bnn_framework::{Explorer, OptMode, Requirements};
use bnn_nn::arch::extract_layers;

/// Paper Table I rows for side-by-side printing:
/// (net, mode, L_desc, S, fpga_ms, cpu_ms, gpu_ms, ape, ece%, acc%).
#[allow(clippy::type_complexity)]
const PAPER: &[(&str, &str, &str, usize, f64, f64, f64, f64, f64, f64)] = &[
    (
        "LeNet-5",
        "Opt-Latency",
        "1",
        3,
        0.42,
        0.67,
        0.24,
        0.63,
        0.25,
        99.27,
    ),
    (
        "LeNet-5",
        "Opt-Accuracy",
        "2N/3",
        100,
        14.32,
        24.69,
        12.87,
        0.75,
        0.13,
        99.39,
    ),
    (
        "LeNet-5",
        "Opt-Uncertainty",
        "N",
        100,
        14.83,
        42.0,
        19.91,
        1.06,
        0.17,
        99.32,
    ),
    (
        "LeNet-5",
        "Opt-Confidence",
        "N",
        9,
        1.29,
        3.68,
        1.68,
        0.98,
        0.10,
        99.31,
    ),
    (
        "VGG-11",
        "Opt-Latency",
        "1",
        3,
        0.57,
        0.95,
        0.68,
        1.38,
        2.8,
        95.38,
    ),
    (
        "VGG-11",
        "Opt-Accuracy",
        "N",
        100,
        57.32,
        186.24,
        88.93,
        1.97,
        2.42,
        96.49,
    ),
    (
        "VGG-11",
        "Opt-Uncertainty",
        "2N/3",
        100,
        42.89,
        110.32,
        59.78,
        2.02,
        0.41,
        96.13,
    ),
    (
        "VGG-11",
        "Opt-Confidence",
        "2N/3",
        100,
        42.89,
        110.32,
        59.78,
        2.02,
        0.41,
        96.13,
    ),
    (
        "ResNet-18",
        "Opt-Latency",
        "1",
        3,
        0.47,
        1.31,
        0.87,
        0.36,
        4.85,
        92.84,
    ),
    (
        "ResNet-18",
        "Opt-Accuracy",
        "1",
        8,
        0.50,
        2.03,
        1.17,
        0.38,
        4.74,
        92.91,
    ),
    (
        "ResNet-18",
        "Opt-Uncertainty",
        "N/2",
        100,
        32.04,
        173.53,
        93.23,
        1.27,
        2.74,
        91.12,
    ),
    (
        "ResNet-18",
        "Opt-Confidence",
        "2N/3",
        3,
        1.20,
        7.66,
        3.93,
        1.05,
        1.08,
        89.99,
    ),
];

fn main() {
    println!("Table I — optimal configurations per mode (trained on synthetic data)");
    println!("paper values in parentheses; absolute quality differs (synthetic data),");
    println!("orderings and latency shapes are the reproduction target\n");

    let mut rows = Vec::new();
    for w in Workload::all() {
        let net = w.network();
        let layers = extract_layers(&net, w.input_shape());
        let explorer = Explorer::new(AccelConfig::paper_default(), layers, net.n_sites());
        let mut provider = w.provider();
        println!("== {} (N = {}) ==", w.name(), net.n_sites());
        println!(
            "{:<16} {:>4} {:>4} {:>9} {:>9} {:>9} {:>7} {:>8} {:>8}",
            "mode", "L", "S", "FPGA[ms]", "CPU[ms]", "GPU[ms]", "aPE", "ECE[%]", "acc[%]"
        );
        for mode in OptMode::all() {
            let r = explorer.explore(&mut provider, mode, &Requirements::none());
            let c = r.selected.expect("unconstrained selection exists");
            let p = PAPER
                .iter()
                .find(|p| p.0 == w.name() && p.1 == mode.label())
                .expect("paper row exists");
            println!(
                "{:<16} {:>4} {:>4} {:>9.2} {:>9.2} {:>9.2} {:>7.2} {:>8.2} {:>8.2}",
                mode.label(),
                c.l,
                c.s,
                c.fpga_ms,
                c.cpu_ms,
                c.gpu_ms,
                c.ape,
                c.ece * 100.0,
                c.accuracy * 100.0
            );
            println!(
                "{:<16} {:>4} {:>4} {:>9.2} {:>9.2} {:>9.2} {:>7.2} {:>8.2} {:>8.2}  (paper)",
                "", p.2, p.3, p.4, p.5, p.6, p.7, p.8, p.9
            );
            rows.push(format!(
                "{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
                w.name(),
                mode.label(),
                c.l,
                c.s,
                c.fpga_ms,
                c.cpu_ms,
                c.gpu_ms,
                c.ape,
                c.ece,
                c.accuracy
            ));
        }
        println!();
    }
    write_csv(
        "table1.csv",
        "network,mode,L,S,fpga_ms,cpu_ms,gpu_ms,ape_nats,ece,accuracy",
        &rows,
    );
}
