//! Cross-backend predictive latency: the four `BayesBackend`
//! substrates (float, fused, int8, simulated accelerator) serving
//! LeNet-5 through the same `Session` protocol at `S ∈ {10, 100}`,
//! each at both the serial engine and full thread fan-out.
//!
//! Run with `cargo bench --bench backends`. This keeps the perf
//! trajectory honest about every serving path, not just the float
//! engine: `session_<backend>_s<S>` is the historical max-parallel
//! datapoint, `session_<backend>_serial_s<S>` isolates the engine
//! without thread fan-out (so per-call fixed overhead at small `S` is
//! visible, and the fused backend's single-chunk fusion is measured
//! at its fullest). The headline number for PR 3 is
//! `session_fused_s100` vs `session_float_s100` — batched-sample GEMM
//! fusion streams each suffix weight matrix once per layer instead of
//! once per sample. The `session_<backend>_pool2_s10` rows (PR 4)
//! fan two sample chunks out over the session's persistent
//! `WorkerPool` at `S = 10`, where fixed per-call cost dominates —
//! the datapoint that tracks the pooled engine's overhead vs the old
//! per-call `thread::scope` spawn. Caveat for reading the fan-out
//! rows (`session_*_s<S>` and `*_pool2_*`): on a single-core
//! container `max_parallel()` collapses to one thread and the pool
//! rows measure pure scheduling overhead, not speedup — compare them
//! against `serial_`, not against each other across hosts. The
//! accelerator's *modelled* hardware latency is printed alongside its
//! simulation wall time.
//!
//! Besides the criterion rows, every backend/mode/S combination is
//! hand-timed over a few iterations and persisted as machine-readable
//! `BENCH_backends.json` at the workspace root (same hand-assembled
//! JSON dialect as `BENCH_serve.json` and `BENCH_net.json`), with the
//! modelled cycle/traffic numbers alongside the measured wall time.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bnn_fpga::accel::{AccelConfig, Accelerator};
use bnn_fpga::mcd::{BayesConfig, ParallelConfig};
use bnn_fpga::nn::models;
use bnn_fpga::quant::Quantizer;
use bnn_fpga::tensor::{Shape4, Tensor};
use bnn_fpga::{Backend, BatchPolicy, Priority, ServeBackend, ServeError, Server, Session};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn bench_backends(c: &mut Criterion) {
    let net = models::lenet5(10, 1, 28, 5).fold_batch_norm();
    let shape = Shape4::new(4, 1, 28, 28);
    let calib = Tensor::full(shape, 0.25);
    let qgraph = Quantizer::new(&net).calibrate(&calib).quantize();
    let accel = Accelerator::new(AccelConfig::default(), &net, &qgraph, shape);
    let x = calib.select_item(0);
    let mut rows = bnn_fpga::net::loadgen::JsonArr::new();

    for &s in &[10usize, 100] {
        let bayes = BayesConfig::new(3, s);
        let mut modes = vec![
            ("", ParallelConfig::max_parallel()),
            ("serial_", ParallelConfig::serial()),
        ];
        if s == 10 {
            // The pooled-engine smoke row: two sample chunks on the
            // session's resident worker, at the S where per-call
            // overhead dominates the predictive.
            modes.push(("pool2_", ParallelConfig::with_threads(2)));
        }
        for (pmode, parallel) in modes {
            let backends: Vec<(&str, Backend)> = vec![
                ("float", Backend::Float),
                ("fused", Backend::Fused),
                ("int8", Backend::Int8(qgraph.clone())),
                ("accel", Backend::Accel(accel.clone())),
            ];
            for (label, backend) in backends {
                let mut session = Session::for_graph(&net)
                    .backend(backend)
                    .bayes(bayes)
                    .parallel(parallel)
                    .seed(7)
                    .build();
                c.bench_function(&format!("session_{label}_{pmode}s{s}"), |bch| {
                    bch.iter(|| black_box(session.predictive(&x)))
                });
                // The persisted row is hand-timed over a few extra
                // iterations: criterion keeps its statistics private,
                // and a short mean is enough for trajectory tracking.
                const JSON_ITERS: u32 = 3;
                let t0 = Instant::now();
                for _ in 0..JSON_ITERS {
                    black_box(session.predictive(&x));
                }
                let mean_us = t0.elapsed().as_micros() as f64 / f64::from(JSON_ITERS);
                let model = session.last_cost().and_then(|cost| cost.model);
                let mut row = bnn_fpga::net::loadgen::JsonObj::new();
                row.field_str("name", &format!("session_{label}_{pmode}s{s}"))
                    .field_str("backend", label)
                    .field_str(
                        "mode",
                        if pmode.is_empty() {
                            "max_parallel"
                        } else {
                            pmode.trim_end_matches('_')
                        },
                    )
                    .field_u64("s", s as u64)
                    .field_u64("iters", u64::from(JSON_ITERS))
                    .field_f64("mean_us", mean_us);
                match model {
                    Some(m) => {
                        row.field_u64("cycles", m.cycles)
                            .field_u64("mem_bytes", m.mem_bytes)
                            .field_f64("modelled_latency_ms", m.latency_ms);
                    }
                    None => {
                        row.field_opt_u64("cycles", None)
                            .field_opt_u64("mem_bytes", None)
                            .field_opt_u64("modelled_latency_ms", None);
                    }
                }
                rows.push_raw(&row.finish());
                if let Some(m) = model {
                    if m.cycles > 0 {
                        println!(
                            "  session_{label}_{pmode}s{s}: modelled hardware latency {:.3} ms \
                             ({} cycles, {:.1} KiB off-chip)",
                            m.latency_ms,
                            m.cycles,
                            m.mem_bytes as f64 / 1024.0
                        );
                    } else {
                        println!(
                            "  session_{label}_{pmode}s{s}: modelled weight traffic {:.1} KiB",
                            m.mem_bytes as f64 / 1024.0
                        );
                    }
                }
            }
        }
    }

    let mut doc = bnn_fpga::net::loadgen::JsonObj::new();
    doc.field_str("bench", "backends")
        .field_raw("rows", &rows.finish());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_backends.json");
    std::fs::write(path, format!("{}\n", doc.finish())).expect("write BENCH_backends.json");
}

/// Closed-loop serving: `clients` threads each submit `PER_CLIENT`
/// single-input requests and wait for every reply before the next
/// (the serving workload the ROADMAP's cross-call-batching lever
/// names). Two arms per client count:
///
/// * `serve_solo_c<N>` — the pre-serve deployment shape: every caller
///   owns a whole fused `Session` per request (cold prefix buffers
///   and stacked scratches, per-call dispatch) and serves itself.
/// * `serve_coalesced_c<N>` — one resident `Server` (fused backend,
///   hot scratches) coalescing the concurrent requests into
///   micro-batches.
///
/// Reported time is per iteration = `clients × PER_CLIENT` requests;
/// divide for per-request cost. At 1 client the server's thread hops
/// are pure overhead; the coalesced arm must win from 4 clients up as
/// prefix-buffer reuse and dispatch amortization kick in.
fn bench_serving(c: &mut Criterion) {
    const PER_CLIENT: usize = 4;
    let net = models::lenet5(10, 1, 28, 5).fold_batch_norm();
    let graph = Arc::new(net.clone());
    let bayes = BayesConfig::new(3, 10);
    let x = Tensor::full(Shape4::new(1, 1, 28, 28), 0.25);

    for &clients in &[1usize, 4, 16] {
        c.bench_function(&format!("serve_solo_c{clients}"), |bch| {
            bch.iter(|| {
                std::thread::scope(|scope| {
                    for client in 0..clients {
                        let net = &net;
                        let x = &x;
                        scope.spawn(move || {
                            for round in 0..PER_CLIENT {
                                let mut session = Session::for_graph(net)
                                    .backend(Backend::Fused)
                                    .bayes(bayes)
                                    .seed((client * PER_CLIENT + round) as u64)
                                    .build();
                                black_box(session.predictive(x));
                            }
                        });
                    }
                });
            })
        });

        // Zero coalescing window: closed-loop clients queue their next
        // request while the dispatcher serves the current micro-batch,
        // so batches form under backlog without holding replies
        // hostage to a timer (a non-zero window pays off for sporadic
        // open-loop traffic, not for saturated closed loops).
        let server = Server::for_graph(Arc::clone(&graph))
            .backend(ServeBackend::Fused)
            .bayes(bayes)
            .policy(BatchPolicy {
                max_batch: 16,
                max_wait: Duration::ZERO,
                queue_cap: 256,
                ..BatchPolicy::default()
            })
            .start();
        c.bench_function(&format!("serve_coalesced_c{clients}"), |bch| {
            bch.iter(|| {
                std::thread::scope(|scope| {
                    for client in 0..clients {
                        let handle = server.handle();
                        let x = x.clone();
                        scope.spawn(move || {
                            for round in 0..PER_CLIENT {
                                let pending = handle.predict_seeded(
                                    x.clone(),
                                    (client * PER_CLIENT + round) as u64,
                                );
                                black_box(pending.wait().expect("served"));
                            }
                        });
                    }
                });
            })
        });
        server.shutdown();
    }
}

/// One measured closed-loop overload pass against the admission
/// scheduler, emitted as machine-readable `BENCH_serve.json` at the
/// workspace root (serde stays stubbed offline, so the JSON is
/// assembled by hand):
///
/// * 2 high-priority closed-loop clients (submit → wait → repeat, no
///   deadline) whose per-request latencies give the p50/p99 numbers —
///   the tail the admission scheduler must keep bounded under flood;
/// * 4 low-priority open-loop flooders with 2 ms queue budgets
///   hammering a 16-slot queue, so the overload counters (rejected /
///   expired / shed) actually move.
///
/// Not a criterion row: percentiles need per-request timestamps, so
/// the pass is measured by hand and both printed and persisted.
fn bench_admission(_c: &mut Criterion) {
    const HIGH_CLIENTS: usize = 2;
    const HIGH_ROUNDS: usize = 24;
    const FLOOD_CLIENTS: usize = 4;
    const FLOOD_ROUNDS: usize = 80;

    let graph = Arc::new(models::lenet5(10, 1, 28, 5).fold_batch_norm());
    let bayes = BayesConfig::new(3, 10);
    let x = Tensor::full(Shape4::new(1, 1, 28, 28), 0.25);
    let server = Server::for_graph(Arc::clone(&graph))
        .backend(ServeBackend::Fused)
        .bayes(bayes)
        .policy(BatchPolicy {
            max_batch: 8,
            max_wait: Duration::ZERO,
            queue_cap: 16,
            ..BatchPolicy::default()
        })
        .start();

    let (latencies, flood_outcomes) = std::thread::scope(|scope| {
        let mut highs = Vec::new();
        for client in 0..HIGH_CLIENTS {
            let handle = server.handle();
            let x = x.clone();
            highs.push(scope.spawn(move || {
                (0..HIGH_ROUNDS)
                    .map(|round| {
                        let start = Instant::now();
                        handle
                            .request(x.clone())
                            .seed((client * HIGH_ROUNDS + round) as u64)
                            .priority(Priority::High)
                            .submit()
                            .wait()
                            .expect("high-priority request served");
                        start.elapsed()
                    })
                    .collect::<Vec<_>>()
            }));
        }
        let mut floods = Vec::new();
        for client in 0..FLOOD_CLIENTS {
            let handle = server.handle();
            let x = x.clone();
            floods.push(scope.spawn(move || {
                let mut turned_away = 0usize;
                let pendings: Vec<_> = (0..FLOOD_ROUNDS)
                    .filter_map(|round| {
                        handle
                            .request(x.clone())
                            .seed((10_000 + client * FLOOD_ROUNDS + round) as u64)
                            .priority(Priority::Low)
                            .deadline(Duration::from_millis(2))
                            .try_submit()
                            .map_err(|_| turned_away += 1)
                            .ok()
                    })
                    .collect();
                let resolved: Vec<_> = pendings.into_iter().map(|p| p.wait()).collect();
                (resolved, turned_away)
            }));
        }
        let mut latencies: Vec<Duration> = highs
            .into_iter()
            .flat_map(|h| h.join().expect("high client survived"))
            .collect();
        latencies.sort();
        let flood_outcomes: Vec<_> = floods
            .into_iter()
            .map(|f| f.join().expect("flood client survived"))
            .collect();
        (latencies, flood_outcomes)
    });

    let mut door_rejected = 0usize;
    for (outcomes, turned_away) in &flood_outcomes {
        door_rejected += turned_away;
        for outcome in outcomes {
            assert!(
                outcome.is_ok()
                    || matches!(
                        outcome,
                        Err(ServeError::Rejected) | Err(ServeError::DeadlineExceeded)
                    ),
                "flood outcome outside the admission contract: {outcome:?}"
            );
        }
    }
    let pct = |q: usize| latencies[(latencies.len() - 1) * q / 100].as_micros();
    let (p50, p99) = (pct(50), pct(99));
    let stats = server.stats();
    server.shutdown();

    println!(
        "  serve_admission: high p50 {p50} us, p99 {p99} us; \
         {} served, {} shed, {} expired, {} rejected ({door_rejected} at the door)",
        stats.served, stats.shed, stats.expired, stats.rejected
    );
    // Same JSON dialect as the load generator's BENCH_net.json, so
    // downstream tooling parses both with one reader. latency_samples
    // records how many measurements back each percentile row.
    let mut doc = bnn_fpga::net::loadgen::JsonObj::new();
    doc.field_str("bench", "serve_admission")
        .field_u64("high_clients", HIGH_CLIENTS as u64)
        .field_u64("high_requests", (HIGH_CLIENTS * HIGH_ROUNDS) as u64)
        .field_u64("flood_clients", FLOOD_CLIENTS as u64)
        .field_u64("flood_requests", (FLOOD_CLIENTS * FLOOD_ROUNDS) as u64)
        .field_u64("latency_samples", latencies.len() as u64)
        .field_u64("high_p50_us", p50 as u64)
        .field_u64("high_p99_us", p99 as u64)
        .field_u64("served", stats.served)
        .field_u64("shed", stats.shed)
        .field_u64("expired", stats.expired)
        .field_u64("failed", stats.failed)
        .field_u64("rejected", stats.rejected);
    let mut json = doc.finish();
    json.push('\n');
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, json).expect("write BENCH_serve.json");
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_backends, bench_serving, bench_admission
}
criterion_main!(benches);
