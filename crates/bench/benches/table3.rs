//! Table III — latency comparison: FPGA with/without intermediate-layer
//! caching vs CPU vs GPU, at {L,S} = {1,100} and {2N/3,50}.

use bnn_accel::{AccelConfig, PerfModel};
use bnn_bench::{write_csv, Workload};
use bnn_mcd::BayesConfig;
use bnn_nn::arch::extract_layers;
use bnn_platforms::PlatformModel;

/// Paper Table III values: (net, l_desc, s, fpga_ic, fpga_no_ic, cpu, gpu).
const PAPER: &[(&str, &str, usize, f64, f64, f64, f64)] = &[
    ("LeNet-5", "1", 100, 13.73, 14.38, 11.17, 5.81),
    ("LeNet-5", "2N/3", 50, 7.16, 7.20, 12.02, 6.07),
    ("VGG-11", "1", 100, 0.76, 57.3, 11.76, 6.33),
    ("VGG-11", "2N/3", 50, 21.52, 28.67, 55.94, 30.09),
    ("ResNet-18", "1", 100, 1.22, 44.97, 13.96, 7.05),
    ("ResNet-18", "2N/3", 50, 18.90, 22.48, 131.41, 65.9),
];

fn main() {
    let cfg = AccelConfig::paper_default();
    let perf = PerfModel::new(cfg);
    let cpu = PlatformModel::i9_9900k();
    let gpu = PlatformModel::rtx_2080_super();

    println!("Table III — latency [ms]: FPGA w/IC | w/o IC | CPU | GPU (paper in parens)\n");
    println!(
        "{:<10} {:>6} {:>4} {:>18} {:>18} {:>18} {:>18}",
        "network", "L", "S", "FPGA w/ IC", "FPGA w/o IC", "CPU", "GPU"
    );
    let mut rows = Vec::new();
    for w in Workload::all() {
        let net = w.network();
        let layers = extract_layers(&net, w.input_shape());
        let n = net.n_sites();
        for (l, l_desc, s) in [(1usize, "1", 100usize), ((2 * n).div_ceil(3), "2N/3", 50)] {
            let bayes = BayesConfig::new(l, s);
            let ic = perf.network_timing(&layers, bayes, true).latency_ms(&cfg);
            let no_ic = perf.network_timing(&layers, bayes, false).latency_ms(&cfg);
            let c = cpu.bayes_latency_ms(&layers, bayes);
            let g = gpu.bayes_latency_ms(&layers, bayes);
            let p = PAPER
                .iter()
                .find(|r| r.0 == w.name() && r.1 == l_desc && r.2 == s)
                .expect("paper row exists");
            println!(
                "{:<10} {:>6} {:>4} {:>8.2} ({:>6.2}) {:>8.2} ({:>6.2}) {:>8.2} ({:>6.2}) {:>8.2} ({:>6.2})",
                w.name(), l_desc, s, ic, p.3, no_ic, p.4, c, p.5, g, p.6
            );
            rows.push(format!(
                "{},{},{},{:.4},{:.4},{:.4},{:.4},{},{},{},{}",
                w.name(),
                l,
                s,
                ic,
                no_ic,
                c,
                g,
                p.3,
                p.4,
                p.5,
                p.6
            ));
        }
    }
    println!("\nshape checks:");
    println!("  - IC speedup at {{1,100}} is large for conv nets, ~1x at {{2N/3,50}}");
    println!("  - FPGA beats CPU/GPU on VGG-11/ResNet-18 (paper: up to 15x/8x)");
    write_csv(
        "table3.csv",
        "network,L,S,fpga_ic_ms,fpga_no_ic_ms,cpu_ms,gpu_ms,paper_ic,paper_no_ic,paper_cpu,paper_gpu",
        &rows,
    );
}
