//! Figure 6 — design space exploration with latency, accuracy and
//! uncertainty constraints for ResNet-18, Opt-Confidence mode.
//!
//! Dumps every candidate point (latency, accuracy, aPE, ECE), the four
//! global optima and the constrained Opt-Confidence selection.

use bnn_accel::AccelConfig;
use bnn_bench::{write_csv, Workload};
use bnn_framework::{Explorer, OptMode, Requirements};
use bnn_nn::arch::extract_layers;

fn main() {
    let w = Workload::ResNet18;
    let net = w.network();
    let layers = extract_layers(&net, w.input_shape());
    let explorer = Explorer::new(AccelConfig::paper_default(), layers, net.n_sites());
    let mut provider = w.provider();

    let candidates = {
        let r = explorer.explore(&mut provider, OptMode::Latency, &Requirements::none());
        r.candidates
    };

    // Global optima per mode.
    println!(
        "Figure 6 — DSE candidates for ResNet-18 ({} points)\n",
        candidates.len()
    );
    for mode in OptMode::all() {
        let best = bnn_framework::select(&candidates, mode, &Requirements::none())
            .expect("non-empty grid");
        println!(
            "global {:<16} -> {{L={}, S={}}}: {:.2} ms, acc {:.3}, aPE {:.3}, ECE {:.4}",
            mode.label(),
            best.l,
            best.s,
            best.fpga_ms,
            best.accuracy,
            best.ape,
            best.ece
        );
    }

    // The paper's constraint box, then Opt-Confidence inside it.
    let med_acc = {
        let mut accs: Vec<f64> = candidates.iter().map(|c| c.accuracy).collect();
        accs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        accs[accs.len() / 2]
    };
    let req = Requirements {
        max_latency_ms: Some(20.0),
        min_accuracy: Some(med_acc),
        min_ape: Some(0.3),
        max_ece: None,
    };
    let sel = bnn_framework::select(&candidates, OptMode::Confidence, &req);
    println!("\nconstraint box: latency <= 20 ms, accuracy >= {med_acc:.3} (median), aPE >= 0.3");
    match sel {
        Some(c) => println!(
            "constrained Opt-Confidence -> {{L={}, S={}}}: {:.2} ms, acc {:.3}, aPE {:.3}, ECE {:.4}",
            c.l, c.s, c.fpga_ms, c.accuracy, c.ape, c.ece
        ),
        None => println!("no feasible point in the box"),
    }
    let feasible = candidates.iter().filter(|c| c.feasible(&req)).count();
    println!("feasible points: {feasible}/{}", candidates.len());

    let rows: Vec<String> = candidates
        .iter()
        .map(|c| {
            format!(
                "{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{}",
                c.l,
                c.s,
                c.fpga_ms,
                c.accuracy,
                c.ape,
                c.ece,
                c.fpga_no_ic_ms,
                u8::from(c.feasible(&req))
            )
        })
        .collect();
    write_csv(
        "fig6_candidates.csv",
        "L,S,fpga_ms,accuracy,ape_nats,ece,fpga_no_ic_ms,feasible",
        &rows,
    );
}
