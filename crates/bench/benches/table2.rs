//! Table II — resource utilization of the accelerator on the
//! Arria 10 SX660 at the paper's P_C=64, P_F=64, P_V=1 configuration.

use bnn_accel::{AccelConfig, FpgaDevice, ResourceModel};
use bnn_bench::{write_csv, Workload};
use bnn_nn::arch::{extract_layers, resnet101_desc};

fn main() {
    let device = FpgaDevice::arria10_sx660();
    let model = ResourceModel::new(device.clone());
    let cfg = AccelConfig::paper_default();

    // Buffers must hold every evaluated network, incl. ResNet-101.
    let mut workloads: Vec<Vec<_>> = Workload::all()
        .iter()
        .map(|w| extract_layers(&w.network(), w.input_shape()))
        .collect();
    workloads.push(resnet101_desc());
    let refs: Vec<&[_]> = workloads.iter().map(|v| v.as_slice()).collect();
    let u = model.estimate(&cfg, &refs);

    // Paper Table II.
    let paper = [
        ("ALMs", 303_913u64, 427_200u64),
        ("Registers", 889_869, 1_708_800),
        ("DSPs", 1_473, 1_518),
        ("M20K", 2_334, 2_713),
    ];
    let ours = [u.alms, u.registers, u.dsps, u.m20k];

    println!(
        "Table II — resource utilization ({} @ P_C=64 P_F=64 P_V=1)\n",
        device.name
    );
    println!(
        "{:<10} {:>12} {:>8} {:>12} {:>8} {:>10}",
        "resource", "paper", "paper%", "model", "model%", "total"
    );
    let mut rows = Vec::new();
    for ((name, pv, total), ov) in paper.iter().zip(ours) {
        println!(
            "{:<10} {:>12} {:>7.0}% {:>12} {:>7.0}% {:>10}",
            name,
            pv,
            100.0 * *pv as f64 / *total as f64,
            ov,
            100.0 * ov as f64 / *total as f64,
            total
        );
        rows.push(format!("{name},{pv},{ov},{total}"));
    }
    println!(
        "\nmodel detail: {} multipliers, {} overflowed to ALMs, {:.2} MiB buffers",
        cfg.multipliers(),
        u.dsp_overflow,
        u.buffer_bytes as f64 / (1024.0 * 1024.0)
    );
    write_csv("table2.csv", "resource,paper_used,model_used,total", &rows);
}
