//! Pooling kernels (max, average, global average) with backward passes.

use crate::im2col::conv_out_dim;
use crate::shape::Shape4;
use crate::tensor::Tensor;

/// Max-pool over `k×k` windows with the given stride.
///
/// Returns the pooled tensor and the flat argmax index (into the input
/// tensor's buffer) per output element, which the backward pass routes
/// gradients through.
///
/// # Panics
///
/// Panics if the geometry is invalid.
pub fn max_pool(x: &Tensor, k: usize, stride: usize) -> (Tensor, Vec<u32>) {
    let s = x.shape();
    let ho = conv_out_dim(s.h, k, stride, 0);
    let wo = conv_out_dim(s.w, k, stride, 0);
    let out_shape = Shape4::new(s.n, s.c, ho, wo);
    let mut out = Tensor::zeros(out_shape);
    let mut arg = vec![0u32; out_shape.len()];
    for n in 0..s.n {
        for c in 0..s.c {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0usize;
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = oy * stride + ky;
                            let ix = ox * stride + kx;
                            if iy < s.h && ix < s.w {
                                let i = s.index(n, c, iy, ix);
                                let v = x.as_slice()[i];
                                if v > best {
                                    best = v;
                                    best_i = i;
                                }
                            }
                        }
                    }
                    let o = out_shape.index(n, c, oy, ox);
                    out.as_mut_slice()[o] = best;
                    arg[o] = best_i as u32;
                }
            }
        }
    }
    (out, arg)
}

/// Max-pool into a caller-provided output tensor, discarding the
/// argmax indices (evaluation-mode scratch-reuse hot path).
///
/// # Panics
///
/// Panics if `out` does not have the pooled output shape.
pub fn max_pool_into(x: &Tensor, k: usize, stride: usize, out: &mut Tensor) {
    let s = x.shape();
    let ho = conv_out_dim(s.h, k, stride, 0);
    let wo = conv_out_dim(s.w, k, stride, 0);
    let out_shape = Shape4::new(s.n, s.c, ho, wo);
    assert_eq!(out.shape(), out_shape, "max_pool_into: bad output shape");
    for n in 0..s.n {
        for c in 0..s.c {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut best = f32::NEG_INFINITY;
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = oy * stride + ky;
                            let ix = ox * stride + kx;
                            if iy < s.h && ix < s.w {
                                best = best.max(x.at(n, c, iy, ix));
                            }
                        }
                    }
                    *out.at_mut(n, c, oy, ox) = best;
                }
            }
        }
    }
}

/// Backward of [`max_pool`]: routes `dy` to the argmax positions.
///
/// # Panics
///
/// Panics if `dy.len() != arg.len()`.
pub fn max_pool_backward(dy: &Tensor, arg: &[u32], input_shape: Shape4) -> Tensor {
    assert_eq!(dy.len(), arg.len(), "gradient/argmax length mismatch");
    let mut dx = Tensor::zeros(input_shape);
    for (g, &i) in dy.iter().zip(arg) {
        dx.as_mut_slice()[i as usize] += *g;
    }
    dx
}

/// Average-pool over `k×k` windows with the given stride.
///
/// # Panics
///
/// Panics if the geometry is invalid.
pub fn avg_pool(x: &Tensor, k: usize, stride: usize) -> Tensor {
    let s = x.shape();
    let ho = conv_out_dim(s.h, k, stride, 0);
    let wo = conv_out_dim(s.w, k, stride, 0);
    let mut out = Tensor::zeros(Shape4::new(s.n, s.c, ho, wo));
    avg_pool_into(x, k, stride, &mut out);
    out
}

/// Average-pool into a caller-provided output tensor.
///
/// # Panics
///
/// Panics if `out` does not have the pooled output shape.
pub fn avg_pool_into(x: &Tensor, k: usize, stride: usize, out: &mut Tensor) {
    let s = x.shape();
    let ho = conv_out_dim(s.h, k, stride, 0);
    let wo = conv_out_dim(s.w, k, stride, 0);
    assert_eq!(
        out.shape(),
        Shape4::new(s.n, s.c, ho, wo),
        "avg_pool_into: bad output shape"
    );
    let inv = 1.0 / (k * k) as f32;
    for n in 0..s.n {
        for c in 0..s.c {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = 0.0f32;
                    for ky in 0..k {
                        for kx in 0..k {
                            acc += x.at(n, c, oy * stride + ky, ox * stride + kx);
                        }
                    }
                    *out.at_mut(n, c, oy, ox) = acc * inv;
                }
            }
        }
    }
}

/// Backward of [`avg_pool`]: spreads each output gradient uniformly
/// over its `k×k` window.
pub fn avg_pool_backward(dy: &Tensor, k: usize, stride: usize, input_shape: Shape4) -> Tensor {
    let mut dx = Tensor::zeros(input_shape);
    let s = dy.shape();
    let inv = 1.0 / (k * k) as f32;
    for n in 0..s.n {
        for c in 0..s.c {
            for oy in 0..s.h {
                for ox in 0..s.w {
                    let g = dy.at(n, c, oy, ox) * inv;
                    for ky in 0..k {
                        for kx in 0..k {
                            *dx.at_mut(n, c, oy * stride + ky, ox * stride + kx) += g;
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Global average pool: `(n, c, h, w) → (n, c, 1, 1)`.
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    let s = x.shape();
    let mut out = Tensor::zeros(Shape4::new(s.n, s.c, 1, 1));
    global_avg_pool_into(x, &mut out);
    out
}

/// Global average pool into a caller-provided `(n, c, 1, 1)` tensor.
///
/// # Panics
///
/// Panics if `out` does not have shape `(n, c, 1, 1)`.
pub fn global_avg_pool_into(x: &Tensor, out: &mut Tensor) {
    let s = x.shape();
    assert_eq!(
        out.shape(),
        Shape4::new(s.n, s.c, 1, 1),
        "global_avg_pool_into: bad shape"
    );
    let inv = 1.0 / (s.h * s.w) as f32;
    let plane = s.h * s.w;
    for n in 0..s.n {
        let item = x.item(n);
        for c in 0..s.c {
            let acc: f32 = item[c * plane..(c + 1) * plane].iter().sum();
            *out.at_mut(n, c, 0, 0) = acc * inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: usize, c: usize, h: usize, w: usize, v: Vec<f32>) -> Tensor {
        Tensor::from_vec(Shape4::new(n, c, h, w), v)
    }

    #[test]
    fn into_variants_match_allocating_kernels() {
        let x = t(
            2,
            2,
            4,
            4,
            (0..64).map(|i| ((i * 7) % 13) as f32 - 6.0).collect(),
        );
        let (want_max, _) = max_pool(&x, 2, 2);
        let mut got = Tensor::zeros(want_max.shape());
        max_pool_into(&x, 2, 2, &mut got);
        assert_eq!(got.as_slice(), want_max.as_slice());

        let want_avg = avg_pool(&x, 2, 2);
        let mut got = Tensor::zeros(want_avg.shape());
        avg_pool_into(&x, 2, 2, &mut got);
        assert_eq!(got.as_slice(), want_avg.as_slice());

        let want_gap = global_avg_pool(&x);
        let mut got = Tensor::zeros(want_gap.shape());
        global_avg_pool_into(&x, &mut got);
        assert_eq!(got.as_slice(), want_gap.as_slice());
    }

    #[test]
    fn max_pool_2x2() {
        let x = t(1, 1, 2, 2, vec![1., 5., 3., 2.]);
        let (y, arg) = max_pool(&x, 2, 2);
        assert_eq!(y.as_slice(), &[5.0]);
        assert_eq!(arg, vec![1]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = t(1, 1, 2, 2, vec![1., 5., 3., 2.]);
        let (_, arg) = max_pool(&x, 2, 2);
        let dy = t(1, 1, 1, 1, vec![10.0]);
        let dx = max_pool_backward(&dy, &arg, x.shape());
        assert_eq!(dx.as_slice(), &[0., 10., 0., 0.]);
    }

    #[test]
    fn avg_pool_2x2() {
        let x = t(1, 1, 2, 2, vec![1., 5., 3., 3.]);
        let y = avg_pool(&x, 2, 2);
        assert_eq!(y.as_slice(), &[3.0]);
    }

    #[test]
    fn avg_pool_backward_spreads() {
        let dy = t(1, 1, 1, 1, vec![8.0]);
        let dx = avg_pool_backward(&dy, 2, 2, Shape4::new(1, 1, 2, 2));
        assert_eq!(dx.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn global_avg_pool_reduces_spatial() {
        let x = t(1, 2, 2, 2, vec![1., 2., 3., 4., 10., 10., 10., 10.]);
        let y = global_avg_pool(&x);
        assert_eq!(y.shape(), Shape4::new(1, 2, 1, 1));
        assert_eq!(y.as_slice(), &[2.5, 10.0]);
    }

    #[test]
    fn max_pool_multichannel_independent() {
        let x = t(1, 2, 2, 2, vec![1., 2., 3., 4., 8., 7., 6., 5.]);
        let (y, _) = max_pool(&x, 2, 2);
        assert_eq!(y.as_slice(), &[4.0, 8.0]);
    }

    #[test]
    fn pool_stride_smaller_than_kernel() {
        // 3x3 input, 2x2 kernel, stride 1 -> 2x2 out (overlapping windows).
        let x = t(1, 1, 3, 3, vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let (y, _) = max_pool(&x, 2, 1);
        assert_eq!(y.as_slice(), &[5., 6., 8., 9.]);
    }
}
