//! Minimal NCHW tensor library underpinning the BNN reproduction.
//!
//! Provides exactly the kernels the rest of the stack needs — nothing
//! more: a dense f32 [`Tensor`] in NCHW layout, row-major [`gemm`],
//! [`im2col`]/[`col2im`] for convolution lowering, pooling kernels and
//! numerically-stable softmax.
//!
//! # Example
//!
//! ```
//! use bnn_tensor::{Tensor, Shape4};
//!
//! let x = Tensor::zeros(Shape4::new(1, 3, 8, 8));
//! assert_eq!(x.len(), 3 * 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gemm;
mod im2col;
mod ops;
mod pool;
mod shape;
mod tensor;

pub use gemm::{gemm, gemm_at, gemm_bt, gemm_bt_stacked, gemm_stacked};
pub use im2col::{col2im, conv_out_dim, im2col, im2col_into, im2col_stacked_into};
pub use ops::{add_inplace, log_softmax_rows, relu_inplace, scale_inplace, softmax_rows};
pub use pool::{
    avg_pool, avg_pool_backward, avg_pool_into, global_avg_pool, global_avg_pool_into, max_pool,
    max_pool_backward, max_pool_into,
};
pub use shape::Shape4;
pub use tensor::Tensor;
