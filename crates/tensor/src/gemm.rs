//! Row-major single-precision GEMM kernels.
//!
//! The training path lowers convolutions to GEMM via im2col, so these
//! three variants (plain, A-transposed, B-transposed) are the entire
//! BLAS surface the stack requires. The loops use the `i-k-j` order so
//! the innermost loop streams both `b` and `c` rows sequentially.

/// `c[m×n] += a[m×k] · b[k×n]` (all row-major).
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "a must be m*k");
    assert_eq!(b.len(), k * n, "b must be k*n");
    assert_eq!(c.len(), m * n, "c must be m*n");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// `c[m×n] += aᵀ · b` where `a` is stored `k×m` row-major.
///
/// Used for weight gradients: `dW = dYᵀ · X` style products.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn gemm_at(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "a must be k*m (transposed)");
    assert_eq!(b.len(), k * n, "b must be k*n");
    assert_eq!(c.len(), m * n, "c must be m*n");
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// `c[m×n] += a · bᵀ` where `b` is stored `n×k` row-major.
///
/// Used for input gradients: `dX = dY · W` with `W` stored `[out, in]`.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn gemm_bt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "a must be m*k");
    assert_eq!(b.len(), n * k, "b must be n*k (transposed)");
    assert_eq!(c.len(), m * n, "c must be m*n");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *cv += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn transpose(rows: usize, cols: usize, x: &[f32]) -> Vec<f32> {
        let mut t = vec![0.0; x.len()];
        for r in 0..rows {
            for c in 0..cols {
                t[c * rows + r] = x[r * cols + c];
            }
        }
        t
    }

    fn fill(n: usize, seed: u64) -> Vec<f32> {
        // Small deterministic pseudo-random values.
        (0..n)
            .map(|i| {
                let v = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed);
                ((v >> 33) as i32 % 17 - 8) as f32 / 4.0
            })
            .collect()
    }

    #[test]
    fn gemm_matches_naive() {
        let (m, k, n) = (5, 7, 4);
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let mut c = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c);
        assert_eq!(c, naive(m, k, n, &a, &b));
    }

    #[test]
    fn gemm_accumulates() {
        let (m, k, n) = (2, 2, 2);
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut c = vec![10.0; 4];
        gemm(m, k, n, &a, &b, &mut c);
        assert_eq!(c, vec![11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn gemm_at_matches_naive() {
        let (m, k, n) = (4, 6, 3);
        let a = fill(m * k, 3); // logical m×k
        let b = fill(k * n, 4);
        let at = transpose(m, k, &a); // stored k×m
        let mut c = vec![0.0; m * n];
        gemm_at(m, k, n, &at, &b, &mut c);
        assert_eq!(c, naive(m, k, n, &a, &b));
    }

    #[test]
    fn gemm_bt_matches_naive() {
        let (m, k, n) = (3, 5, 6);
        let a = fill(m * k, 5);
        let b = fill(k * n, 6); // logical k×n
        let bt = transpose(k, n, &b); // stored n×k
        let mut c = vec![0.0; m * n];
        gemm_bt(m, k, n, &a, &bt, &mut c);
        assert_eq!(c, naive(m, k, n, &a, &b));
    }

    #[test]
    #[should_panic(expected = "a must be m*k")]
    fn gemm_checks_dims() {
        let mut c = vec![0.0; 4];
        gemm(2, 2, 2, &[0.0; 3], &[0.0; 4], &mut c);
    }
}
