//! Row-major single-precision GEMM kernels.
//!
//! The training path lowers convolutions to GEMM via im2col, so these
//! three variants (plain, A-transposed, B-transposed) are the entire
//! BLAS surface the stack requires.
//!
//! The kernels are cache-blocked and register-tiled:
//!
//! * [`gemm`] / [`gemm_at`] split the shared dimension into `KC`
//!   panels and run a `MR×NR` (2×16) micro-kernel whose accumulators
//!   live in registers for the whole panel, with the depth loop
//!   innermost — each loaded `b` vector feeds `MR` multiply-add
//!   streams and the 16-wide accumulator rows autovectorize.
//! * [`gemm_bt`] computes dot products along `k`, so its micro-kernel
//!   keeps 8 partial-sum lanes per output and shares every streamed
//!   `b` chunk between two rows of `a`.
//!
//! Accumulation order therefore differs from the textbook triple
//! loop; callers comparing against a reference should allow the usual
//! f32 tolerance.
//!
//! The previous generation of these kernels skipped zero `a` elements.
//! That branch is gone: on the dense matrices the NN stack produces it
//! cost a compare-and-branch per inner iteration and blocked
//! vectorization. Sparsity is exploited at the tensor level (MCD
//! zeroes whole channels), never inside the GEMM.

/// Rows of `c` per register tile.
const MR: usize = 2;
/// Columns of `c` per register tile (two 8-wide SIMD lanes).
const NR: usize = 16;
/// Depth of the shared dimension per cache panel: `KC` elements of a
/// `b` column stay resident while a register tile accumulates.
const KC: usize = 256;

/// `c[m×n] += a[m×k] · b[k×n]` (all row-major).
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "a must be m*k");
    assert_eq!(b.len(), k * n, "b must be k*n");
    assert_eq!(c.len(), m * n, "c must be m*n");
    gemm_tiled(m, k, n, b, c, |i, p| a[i * k + p]);
}

/// `c[m×n] += aᵀ · b` where `a` is stored `k×m` row-major.
///
/// Used for weight gradients: `dW = dYᵀ · X` style products.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn gemm_at(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "a must be k*m (transposed)");
    assert_eq!(b.len(), k * n, "b must be k*n");
    assert_eq!(c.len(), m * n, "c must be m*n");
    gemm_tiled(m, k, n, b, c, |i, p| a[p * m + i]);
}

/// Shared driver for [`gemm`] and [`gemm_at`]: `a_at(i, p)` abstracts
/// the storage order of `a`, monomorphized per caller so the
/// micro-kernel sees a direct indexed load.
fn gemm_tiled<F: Fn(usize, usize) -> f32>(
    m: usize,
    k: usize,
    n: usize,
    b: &[f32],
    c: &mut [f32],
    a_at: F,
) {
    for pb in (0..k).step_by(KC) {
        let pe = (pb + KC).min(k);
        let mut i = 0;
        while i + MR <= m {
            let mut j = 0;
            while j + NR <= n {
                // The register tile: MR×NR accumulators updated across
                // the whole depth panel before touching c.
                let mut acc = [[0.0f32; NR]; MR];
                for p in pb..pe {
                    let bq: &[f32; NR] = b[p * n + j..p * n + j + NR]
                        .try_into()
                        .expect("NR-sized chunk");
                    for (r, row) in acc.iter_mut().enumerate() {
                        let ar = a_at(i + r, p);
                        for (av, &bv) in row.iter_mut().zip(bq) {
                            *av += ar * bv;
                        }
                    }
                }
                for (r, row) in acc.iter().enumerate() {
                    let crow = &mut c[(i + r) * n + j..(i + r) * n + j + NR];
                    for (cv, &av) in crow.iter_mut().zip(row) {
                        *cv += av;
                    }
                }
                j += NR;
            }
            // Column remainder: scalar columns, still register-resident
            // along the depth panel.
            while j < n {
                let mut acc = [0.0f32; MR];
                for p in pb..pe {
                    let bv = b[p * n + j];
                    for (r, av) in acc.iter_mut().enumerate() {
                        *av += a_at(i + r, p) * bv;
                    }
                }
                for (r, &av) in acc.iter().enumerate() {
                    c[(i + r) * n + j] += av;
                }
                j += 1;
            }
            i += MR;
        }
        // Row remainder: one row, streaming b.
        while i < m {
            let crow = &mut c[i * n..(i + 1) * n];
            for p in pb..pe {
                let av = a_at(i, p);
                let brow = &b[p * n..(p + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
            i += 1;
        }
    }
}

/// Sample-stacked [`gemm`]: `c[m × s·n] += a[m×k] · b[k × s·n]`, where
/// `b` and `c` hold `s` column blocks of `n` columns side by side
/// (block `j` occupies columns `j·n .. (j+1)·n` of every row).
///
/// Operationally this is `gemm(m, k, s·n, ..)`; the entry point exists
/// to *name the contract* the batched-sample fusion relies on: the
/// result is **bit-identical** to `s` independent [`gemm`] calls, one
/// per block. The blocked kernel's per-element accumulation sequence
/// depends only on the element's row (`MR` main block vs. row
/// remainder) and the `KC` depth panels — never on the column tiling —
/// so stacking Monte Carlo samples along the column axis cannot move a
/// single ulp while the `a` operand (the weights) streams once for all
/// `s` blocks instead of once per block. Property-tested against the
/// per-block reference in `tests/properties.rs`.
///
/// # Panics
///
/// Panics if `s == 0` or the slice lengths do not match the stacked
/// dimensions.
pub fn gemm_stacked(m: usize, k: usize, n: usize, s: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(s > 0, "at least one stacked sample required");
    gemm(m, k, s * n, a, b, c);
}

/// Sample-stacked [`gemm_bt`]: `c[s·m × n] += a[s·m × k] · bᵀ`, where
/// `a` and `c` hold `s` row blocks of `m` rows each (`b` is stored
/// `n×k` row-major, as in [`gemm_bt`]).
///
/// Like [`gemm_stacked`], this is operationally `gemm_bt(s·m, k, n,
/// ..)` with a named guarantee: every output element is a dot product
/// whose accumulation sequence depends only on the shared dimension
/// `k`, so the result is **bit-identical** to `s` independent
/// [`gemm_bt`] calls on the row blocks, while the streamed `b` operand
/// (the fully-connected weights) is shared across consecutive stacked
/// rows instead of being re-streamed per block. Property-tested in
/// `tests/properties.rs`.
///
/// # Panics
///
/// Panics if `s == 0` or the slice lengths do not match the stacked
/// dimensions.
pub fn gemm_bt_stacked(
    m: usize,
    k: usize,
    n: usize,
    s: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    assert!(s > 0, "at least one stacked sample required");
    gemm_bt(s * m, k, n, a, b, c);
}

/// Partial-sum lanes per dot product in [`gemm_bt`].
const LANES: usize = 8;
/// `b` rows per [`gemm_bt`] register tile.
const JR: usize = 4;

/// `c[m×n] += a · bᵀ` where `b` is stored `n×k` row-major.
///
/// Used for input gradients (`dX = dY · W` with `W` stored `[out, in]`)
/// and by the fully-connected forward pass. Both operands stream along
/// `k`, so the micro-kernel keeps `LANES` partial sums per output
/// (vectorized, no loop-carried f32 dependency) and shares each
/// streamed `b` chunk between two rows of `a`.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn gemm_bt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "a must be m*k");
    assert_eq!(b.len(), n * k, "b must be n*k (transposed)");
    assert_eq!(c.len(), m * n, "c must be m*n");
    let chunks = k / LANES;
    let mut i = 0;
    while i + 2 <= m {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let mut j = 0;
        while j + JR <= n {
            let mut l0 = [[0.0f32; LANES]; JR];
            let mut l1 = [[0.0f32; LANES]; JR];
            for ch in 0..chunks {
                let span = ch * LANES..(ch + 1) * LANES;
                let av0: &[f32; LANES] = a0[span.clone()].try_into().expect("lane chunk");
                let av1: &[f32; LANES] = a1[span.clone()].try_into().expect("lane chunk");
                for q in 0..JR {
                    let base = (j + q) * k;
                    let bq: &[f32; LANES] = b[base + span.start..base + span.end]
                        .try_into()
                        .expect("lane chunk");
                    for l in 0..LANES {
                        l0[q][l] += av0[l] * bq[l];
                        l1[q][l] += av1[l] * bq[l];
                    }
                }
            }
            for q in 0..JR {
                let (mut s0, mut s1) = (0.0f32, 0.0f32);
                for l in 0..LANES {
                    s0 += l0[q][l];
                    s1 += l1[q][l];
                }
                let brow = &b[(j + q) * k..(j + q + 1) * k];
                for p in chunks * LANES..k {
                    s0 += a0[p] * brow[p];
                    s1 += a1[p] * brow[p];
                }
                c[i * n + j + q] += s0;
                c[(i + 1) * n + j + q] += s1;
            }
            j += JR;
        }
        while j < n {
            let brow = &b[j * k..(j + 1) * k];
            let (s0, s1) = (dot_lanes(a0, brow), dot_lanes(a1, brow));
            c[i * n + j] += s0;
            c[(i + 1) * n + j] += s1;
            j += 1;
        }
        i += 2;
    }
    if i < m {
        let a0 = &a[i * k..(i + 1) * k];
        for j in 0..n {
            c[i * n + j] += dot_lanes(a0, &b[j * k..(j + 1) * k]);
        }
    }
}

/// Lane-parallel dot product (the single-row [`gemm_bt`] path).
#[inline]
fn dot_lanes(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let mut lanes = [0.0f32; LANES];
    let xc = x.chunks_exact(LANES);
    let yc = y.chunks_exact(LANES);
    let (xr, yr) = (xc.remainder(), yc.remainder());
    for (xs, ys) in xc.zip(yc) {
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane += xs[l] * ys[l];
        }
    }
    let mut s: f32 = lanes.iter().sum();
    for (&xv, &yv) in xr.iter().zip(yr) {
        s += xv * yv;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn transpose(rows: usize, cols: usize, x: &[f32]) -> Vec<f32> {
        let mut t = vec![0.0; x.len()];
        for r in 0..rows {
            for c in 0..cols {
                t[c * rows + r] = x[r * cols + c];
            }
        }
        t
    }

    fn fill(n: usize, seed: u64) -> Vec<f32> {
        // Small deterministic pseudo-random values.
        (0..n)
            .map(|i| {
                let v = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed);
                ((v >> 33) as i32 % 17 - 8) as f32 / 4.0
            })
            .collect()
    }

    #[test]
    fn gemm_matches_naive() {
        let (m, k, n) = (5, 7, 4);
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let mut c = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c);
        assert_eq!(c, naive(m, k, n, &a, &b));
    }

    #[test]
    fn gemm_accumulates() {
        let (m, k, n) = (2, 2, 2);
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut c = vec![10.0; 4];
        gemm(m, k, n, &a, &b, &mut c);
        assert_eq!(c, vec![11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn gemm_at_matches_naive() {
        let (m, k, n) = (4, 6, 3);
        let a = fill(m * k, 3); // logical m×k
        let b = fill(k * n, 4);
        let at = transpose(m, k, &a); // stored k×m
        let mut c = vec![0.0; m * n];
        gemm_at(m, k, n, &at, &b, &mut c);
        assert_eq!(c, naive(m, k, n, &a, &b));
    }

    #[test]
    fn gemm_bt_matches_naive() {
        let (m, k, n) = (3, 5, 6);
        let a = fill(m * k, 5);
        let b = fill(k * n, 6); // logical k×n
        let bt = transpose(k, n, &b); // stored n×k
        let mut c = vec![0.0; m * n];
        gemm_bt(m, k, n, &a, &bt, &mut c);
        assert_eq!(c, naive(m, k, n, &a, &b));
    }

    #[test]
    fn blocked_kernels_cross_tile_boundaries() {
        // Shapes straddling the MR/NR/KC/LANES edges: odd sizes, exact
        // multiples, and one-past-a-boundary.
        for &(m, k, n) in &[
            (1, 1, 1),
            (2, 8, 16),
            (5, 3, 9),
            (3, 257, 17),
            (7, 13, 33),
            (6, 300, 50),
        ] {
            let a = fill(m * k, (m * 31 + k) as u64);
            let b = fill(k * n, (n * 17 + k) as u64);
            let want = naive(m, k, n, &a, &b);

            let mut c = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            for (got, want) in c.iter().zip(&want) {
                assert!(
                    (got - want).abs() < 1e-3,
                    "gemm {m}x{k}x{n}: {got} vs {want}"
                );
            }

            let at = transpose(m, k, &a);
            let mut c = vec![0.0; m * n];
            gemm_at(m, k, n, &at, &b, &mut c);
            for (got, want) in c.iter().zip(&want) {
                assert!(
                    (got - want).abs() < 1e-3,
                    "gemm_at {m}x{k}x{n}: {got} vs {want}"
                );
            }

            let bt = transpose(k, n, &b);
            let mut c = vec![0.0; m * n];
            gemm_bt(m, k, n, &a, &bt, &mut c);
            for (got, want) in c.iter().zip(&want) {
                assert!(
                    (got - want).abs() < 1e-3,
                    "gemm_bt {m}x{k}x{n}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "a must be m*k")]
    fn gemm_checks_dims() {
        let mut c = vec![0.0; 4];
        gemm(2, 2, 2, &[0.0; 3], &[0.0; 4], &mut c);
    }

    #[test]
    fn gemm_stacked_matches_per_block_calls() {
        // Ragged everywhere: odd rows (row-remainder path), columns
        // past the NR tile, depth crossing the KC panel.
        let (m, k, n, s) = (3, 300, 19, 4);
        let a = fill(m * k, 11);
        let b = fill(k * s * n, 12);
        let mut fused = vec![0.0; m * s * n];
        gemm_stacked(m, k, n, s, &a, &b, &mut fused);
        for blk in 0..s {
            // Extract block `blk` of b (columns blk*n..(blk+1)*n).
            let mut bb = vec![0.0; k * n];
            for p in 0..k {
                bb[p * n..(p + 1) * n]
                    .copy_from_slice(&b[p * s * n + blk * n..p * s * n + blk * n + n]);
            }
            let mut c = vec![0.0; m * n];
            gemm(m, k, n, &a, &bb, &mut c);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(
                        fused[i * s * n + blk * n + j],
                        c[i * n + j],
                        "block {blk} element ({i},{j}) moved"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_bt_stacked_matches_per_block_calls() {
        let (m, k, n, s) = (3, 45, 7, 5);
        let a = fill(s * m * k, 21);
        let b = fill(n * k, 22); // stored n×k
        let mut fused = vec![0.0; s * m * n];
        gemm_bt_stacked(m, k, n, s, &a, &b, &mut fused);
        for blk in 0..s {
            let mut c = vec![0.0; m * n];
            gemm_bt(m, k, n, &a[blk * m * k..(blk + 1) * m * k], &b, &mut c);
            assert_eq!(
                &fused[blk * m * n..(blk + 1) * m * n],
                &c[..],
                "row block {blk} moved"
            );
        }
    }

    #[test]
    fn stacked_wrappers_are_identity_at_s1() {
        let (m, k, n) = (5, 13, 9);
        let a = fill(m * k, 31);
        let b = fill(k * n, 32);
        let mut c1 = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c1);
        let mut c2 = vec![0.0; m * n];
        gemm_stacked(m, k, n, 1, &a, &b, &mut c2);
        assert_eq!(c1, c2);

        let bt = transpose(k, n, &b);
        let mut d1 = vec![0.0; m * n];
        gemm_bt(m, k, n, &a, &bt, &mut d1);
        let mut d2 = vec![0.0; m * n];
        gemm_bt_stacked(m, k, n, 1, &a, &bt, &mut d2);
        assert_eq!(d1, d2);
    }
}
