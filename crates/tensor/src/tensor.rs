//! Dense f32 tensor in NCHW layout.

use crate::shape::Shape4;
use std::fmt;

/// A dense, heap-allocated f32 tensor in NCHW layout.
///
/// This is a deliberately small type: storage plus indexing plus the
/// handful of reductions the experiments need. All layer arithmetic
/// lives in `bnn-nn`; all integer arithmetic lives in `bnn-quant`.
///
/// # Example
///
/// ```
/// use bnn_tensor::{Tensor, Shape4};
///
/// let mut t = Tensor::zeros(Shape4::new(1, 1, 2, 2));
/// *t.at_mut(0, 0, 1, 1) = 3.0;
/// assert_eq!(t.at(0, 0, 1, 1), 3.0);
/// assert_eq!(t.iter().sum::<f32>(), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape4,
}

impl Tensor {
    /// A tensor of zeros.
    pub fn zeros(shape: Shape4) -> Tensor {
        Tensor {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: Shape4, value: f32) -> Tensor {
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Wrap an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape4, data: Vec<f32>) -> Tensor {
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer length must match shape {shape}"
        );
        Tensor { data, shape }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read element `(n, c, h, w)`.
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.index(n, c, h, w)]
    }

    /// Mutable reference to element `(n, c, h, w)`.
    #[inline]
    pub fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let i = self.shape.index(n, c, h, w);
        &mut self.data[i]
    }

    /// Flat immutable view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterator over elements in layout order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// The contiguous slice holding batch item `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn item(&self, n: usize) -> &[f32] {
        assert!(n < self.shape.n, "batch index {n} out of range");
        let sz = self.shape.item_len();
        &self.data[n * sz..(n + 1) * sz]
    }

    /// Mutable slice of batch item `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn item_mut(&mut self, n: usize) -> &mut [f32] {
        assert!(n < self.shape.n, "batch index {n} out of range");
        let sz = self.shape.item_len();
        &mut self.data[n * sz..(n + 1) * sz]
    }

    /// A new tensor holding only batch item `n` (copy).
    pub fn select_item(&self, n: usize) -> Tensor {
        Tensor::from_vec(self.shape.with_n(1), self.item(n).to_vec())
    }

    /// Reinterpret with a new shape of identical element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: Shape4) -> Tensor {
        assert_eq!(
            self.shape.len(),
            shape.len(),
            "reshape must preserve element count"
        );
        self.shape = shape;
        self
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Mean of all elements (0 for the empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        (self.data.iter().map(|&x| f64::from(x)).sum::<f64>() / self.data.len() as f64) as f32
    }

    /// Population variance of all elements (0 for the empty tensor).
    pub fn variance(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let mean = f64::from(self.mean());
        (self
            .data
            .iter()
            .map(|&x| (f64::from(x) - mean).powi(2))
            .sum::<f64>()
            / self.data.len() as f64) as f32
    }

    /// Minimum element (`+inf` for the empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum element (`-inf` for the empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the largest element of batch item `n` (ties → first).
    pub fn argmax_item(&self, n: usize) -> usize {
        let item = self.item(n);
        let mut best = 0;
        for (i, &v) in item.iter().enumerate() {
            if v > item[best] {
                best = i;
            }
        }
        best
    }

    /// Maximum absolute difference against another tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, …, {:.4}] (mean {:.4})",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1],
                self.mean()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_full_from_vec() {
        let s = Shape4::new(1, 2, 2, 2);
        assert!(Tensor::zeros(s).iter().all(|&x| x == 0.0));
        assert!(Tensor::full(s, 2.5).iter().all(|&x| x == 2.5));
        let t = Tensor::from_vec(s, (0..8).map(|i| i as f32).collect());
        assert_eq!(t.at(0, 1, 1, 1), 7.0);
    }

    #[test]
    #[should_panic(expected = "buffer length must match")]
    fn from_vec_rejects_wrong_len() {
        let _ = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![0.0; 3]);
    }

    #[test]
    fn item_slicing() {
        let s = Shape4::new(2, 1, 2, 1);
        let t = Tensor::from_vec(s, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.item(0), &[1.0, 2.0]);
        assert_eq!(t.item(1), &[3.0, 4.0]);
        let sel = t.select_item(1);
        assert_eq!(sel.shape().n, 1);
        assert_eq!(sel.as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(Shape4::vec(1, 4), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.variance(), 1.25);
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.argmax_item(0), 3);
    }

    #[test]
    fn argmax_ties_prefer_first() {
        let t = Tensor::from_vec(Shape4::vec(1, 3), vec![5.0, 5.0, 1.0]);
        assert_eq!(t.argmax_item(0), 0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape4::new(1, 1, 2, 3), vec![0., 1., 2., 3., 4., 5.]);
        let r = t.clone().reshape(Shape4::vec(1, 6));
        assert_eq!(r.as_slice(), t.as_slice());
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Tensor::from_vec(Shape4::vec(1, 2), vec![1.0, 2.0]);
        let b = Tensor::from_vec(Shape4::vec(1, 2), vec![1.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }

    #[test]
    fn map_inplace_applies() {
        let mut t = Tensor::from_vec(Shape4::vec(1, 3), vec![-1.0, 0.0, 2.0]);
        t.map_inplace(|x| x * 2.0);
        assert_eq!(t.as_slice(), &[-2.0, 0.0, 4.0]);
    }
}
