//! im2col / col2im convolution lowering.
//!
//! A convolution with `F` filters over a `C×H×W` input becomes the
//! GEMM `W[F × C·K·K] · cols[C·K·K × Ho·Wo]`. This mirrors the
//! accelerator's processing-engine dataflow: the `C·K·K` dimension is
//! what the PE's channel parallelism `P_C` tiles, and `Ho·Wo` is what
//! the vector parallelism `P_V` tiles.

/// Output spatial dimension of a convolution/pooling:
/// `floor((in + 2*pad - kernel)/stride) + 1`.
///
/// # Panics
///
/// Panics if `stride == 0` or the kernel does not fit the padded input.
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be non-zero");
    assert!(input + 2 * pad >= kernel, "kernel larger than padded input");
    (input + 2 * pad - kernel) / stride + 1
}

/// Expand one `C×H×W` image into a `[C·K·K, Ho·Wo]` column matrix
/// (row-major). Out-of-bounds (padding) taps contribute zeros.
///
/// # Panics
///
/// Panics if `image.len() != c*h*w` or the geometry is invalid.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    image: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> Vec<f32> {
    let ho = conv_out_dim(h, k, stride, pad);
    let wo = conv_out_dim(w, k, stride, pad);
    let mut cols = vec![0.0f32; c * k * k * ho * wo];
    im2col_into(image, c, h, w, k, stride, pad, &mut cols);
    cols
}

/// [`im2col`] into a caller-provided buffer (scratch-reuse hot path).
///
/// The buffer is fully overwritten, including the zero padding taps,
/// so it can be reused across calls without clearing.
///
/// # Panics
///
/// Panics if `image.len() != c*h*w` or `cols` is not exactly
/// `c*k*k*ho*wo` long.
#[allow(clippy::too_many_arguments)]
pub fn im2col_into(
    image: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    cols: &mut [f32],
) {
    let ho = conv_out_dim(h, k, stride, pad);
    let wo = conv_out_dim(w, k, stride, pad);
    im2col_stacked_into(image, c, h, w, k, stride, pad, cols, ho * wo, 0);
}

/// [`im2col_into`] targeting one column block of a *sample-stacked*
/// column matrix `[C·K·K, total_cols]` (row-major): the image's
/// `[C·K·K, Ho·Wo]` columns land at column offset `col0` of every row.
///
/// This is the buffer builder for batched-sample GEMM fusion: each
/// Monte Carlo sample's (or batch item's) im2col block is written side
/// by side so one [`crate::gemm_stacked`] call covers all of them,
/// streaming the weight matrix once. The written block — including its
/// zero padding taps — is fully overwritten, so the buffer needs no
/// clearing between passes; columns outside the block are untouched.
///
/// # Panics
///
/// Panics if `image.len() != c*h*w`, `cols` is not exactly
/// `c*k*k*total_cols` long, or the block does not fit at `col0`.
#[allow(clippy::too_many_arguments)]
pub fn im2col_stacked_into(
    image: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    cols: &mut [f32],
    total_cols: usize,
    col0: usize,
) {
    assert_eq!(image.len(), c * h * w, "image buffer must be c*h*w");
    let ho = conv_out_dim(h, k, stride, pad);
    let wo = conv_out_dim(w, k, stride, pad);
    let row_len = ho * wo;
    assert!(
        col0 + row_len <= total_cols,
        "column block [{col0}, {}) exceeds the stacked width {total_cols}",
        col0 + row_len
    );
    assert_eq!(
        cols.len(),
        c * k * k * total_cols,
        "cols buffer must match the stacked geometry"
    );
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                let out_row = &mut cols[row * total_cols + col0..row * total_cols + col0 + row_len];
                out_row.fill(0.0);
                for oy in 0..ho {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..wo {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out_row[oy * wo + ox] = image[(ch * h + iy as usize) * w + ix as usize];
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatter-add a `[C·K·K, Ho·Wo]` column matrix
/// back into a `C×H×W` image buffer. Used by the convolution backward
/// pass to accumulate input gradients.
///
/// # Panics
///
/// Panics if buffer sizes do not match the geometry.
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    cols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    image: &mut [f32],
) {
    assert_eq!(image.len(), c * h * w, "image buffer must be c*h*w");
    let ho = conv_out_dim(h, k, stride, pad);
    let wo = conv_out_dim(w, k, stride, pad);
    assert_eq!(
        cols.len(),
        c * k * k * ho * wo,
        "cols buffer must match geometry"
    );
    let row_len = ho * wo;
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                let in_row = &cols[row * row_len..(row + 1) * row_len];
                for oy in 0..ho {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..wo {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        image[(ch * h + iy as usize) * w + ix as usize] += in_row[oy * wo + ox];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dim_formula() {
        assert_eq!(conv_out_dim(32, 3, 1, 1), 32);
        assert_eq!(conv_out_dim(32, 3, 2, 1), 16);
        assert_eq!(conv_out_dim(28, 5, 1, 0), 24);
        assert_eq!(conv_out_dim(4, 2, 2, 0), 2);
    }

    #[test]
    #[should_panic(expected = "stride must be non-zero")]
    fn out_dim_zero_stride_panics() {
        let _ = conv_out_dim(8, 3, 0, 1);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: cols == image.
        let img: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let cols = im2col(&img, 3, 2, 2, 1, 1, 0);
        assert_eq!(cols, img);
    }

    #[test]
    fn im2col_known_3x3() {
        // 1 channel, 3x3 image, 2x2 kernel, stride 1, no pad -> 2x2 out.
        let img = vec![1., 2., 3., 4., 5., 6., 7., 8., 9.];
        let cols = im2col(&img, 1, 3, 3, 2, 1, 0);
        // rows: (ky,kx) = (0,0),(0,1),(1,0),(1,1); cols: out positions.
        assert_eq!(
            cols,
            vec![
                1., 2., 4., 5., // tap (0,0)
                2., 3., 5., 6., // tap (0,1)
                4., 5., 7., 8., // tap (1,0)
                5., 6., 8., 9., // tap (1,1)
            ]
        );
    }

    #[test]
    fn im2col_padding_zeroes_border() {
        let img = vec![1.0; 4]; // 1x2x2
        let cols = im2col(&img, 1, 2, 2, 3, 1, 1);
        // 3x3 kernel with pad 1 on 2x2 -> 2x2 out; corner taps hit padding.
        // tap (0,0) sees the image shifted: out (0,0) reads (-1,-1) -> 0.
        assert_eq!(cols[0], 0.0);
        // centre tap (1,1) reads the true pixels.
        let (ky, kx, row_len) = (1, 1, 4);
        let row = (ky * 3 + kx) * row_len;
        assert_eq!(&cols[row..row + 4], &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        let (c, h, w, k, s, p) = (2, 5, 4, 3, 2, 1);
        let ho = conv_out_dim(h, k, s, p);
        let wo = conv_out_dim(w, k, s, p);
        let x: Vec<f32> = (0..c * h * w)
            .map(|i| ((i * 37 + 11) % 13) as f32 - 6.0)
            .collect();
        let y: Vec<f32> = (0..c * k * k * ho * wo)
            .map(|i| ((i * 53 + 7) % 11) as f32 - 5.0)
            .collect();
        let cols = im2col(&x, c, h, w, k, s, p);
        let lhs: f64 = cols
            .iter()
            .zip(&y)
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum();
        let mut back = vec![0.0f32; c * h * w];
        col2im(&y, c, h, w, k, s, p, &mut back);
        let rhs: f64 = x
            .iter()
            .zip(&back)
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum();
        assert!((lhs - rhs).abs() < 1e-6, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn stacked_im2col_places_blocks_side_by_side() {
        // Two "samples" of a 1×3×3 image, 2×2 kernel: each block of the
        // stacked [4, 2·4] matrix must equal the plain im2col.
        let img_a = vec![1., 2., 3., 4., 5., 6., 7., 8., 9.];
        let img_b: Vec<f32> = img_a.iter().map(|v| v * 10.0).collect();
        let want_a = im2col(&img_a, 1, 3, 3, 2, 1, 0);
        let want_b = im2col(&img_b, 1, 3, 3, 2, 1, 0);
        let (row_len, total) = (4usize, 8usize);
        let mut cols = vec![f32::NAN; 4 * total];
        im2col_stacked_into(&img_a, 1, 3, 3, 2, 1, 0, &mut cols, total, 0);
        im2col_stacked_into(&img_b, 1, 3, 3, 2, 1, 0, &mut cols, total, row_len);
        for r in 0..4 {
            assert_eq!(
                &cols[r * total..r * total + row_len],
                &want_a[r * row_len..(r + 1) * row_len]
            );
            assert_eq!(
                &cols[r * total + row_len..(r + 1) * total],
                &want_b[r * row_len..(r + 1) * row_len]
            );
        }
    }

    #[test]
    fn stacked_im2col_overwrites_padding_taps() {
        // A dirty buffer must come out identical to a fresh one —
        // padding taps are written, not assumed zero.
        let img = vec![1.0; 4]; // 1×2×2, 3×3 kernel, pad 1 → 2×2 out
        let clean = im2col(&img, 1, 2, 2, 3, 1, 1);
        let mut dirty = vec![7.5f32; clean.len()];
        im2col_stacked_into(&img, 1, 2, 2, 3, 1, 1, &mut dirty, 4, 0);
        assert_eq!(dirty, clean);
    }

    #[test]
    fn stride_two_downsamples() {
        let img: Vec<f32> = (0..16).map(|i| i as f32).collect(); // 1x4x4
        let cols = im2col(&img, 1, 4, 4, 2, 2, 0);
        // 2x2 out, tap (0,0) picks rows 0,2 cols 0,2: values 0,2,8,10.
        assert_eq!(&cols[0..4], &[0., 2., 8., 10.]);
    }
}
