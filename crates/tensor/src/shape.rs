//! NCHW shape descriptor.

use std::fmt;

/// Shape of a 4-D tensor in NCHW order (batch, channels, height, width).
///
/// Fully-connected activations use `h = w = 1`; weights of a linear
/// layer use `n = out_features, c = in_features, h = w = 1`, which is
/// exactly how the accelerator treats FC layers (a 1×1 convolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape4 {
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl Shape4 {
    /// Create a shape. Zero-sized dimensions are allowed only for the
    /// empty tensor (all dims zero).
    pub fn new(n: usize, c: usize, h: usize, w: usize) -> Shape4 {
        Shape4 { n, c, h, w }
    }

    /// Shape of a flat feature vector `(n, features, 1, 1)`.
    pub fn vec(n: usize, features: usize) -> Shape4 {
        Shape4 {
            n,
            c: features,
            h: 1,
            w: 1,
        }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Whether the shape holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Elements per batch item.
    pub fn item_len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Linear index of `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any coordinate is out of range.
    #[inline]
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(
            n < self.n && c < self.c && h < self.h && w < self.w,
            "index ({n},{c},{h},{w}) out of bounds for {self}"
        );
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Same shape with a different batch size.
    pub fn with_n(&self, n: usize) -> Shape4 {
        Shape4 { n, ..*self }
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}, {}, {}]", self.n, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_item_len() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.len(), 120);
        assert_eq!(s.item_len(), 60);
        assert!(!s.is_empty());
    }

    #[test]
    fn index_is_row_major_nchw() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.index(0, 0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 0, 1), 1);
        assert_eq!(s.index(0, 0, 1, 0), 5);
        assert_eq!(s.index(0, 1, 0, 0), 20);
        assert_eq!(s.index(1, 0, 0, 0), 60);
        assert_eq!(s.index(1, 2, 3, 4), 119);
    }

    #[test]
    fn vec_shape() {
        let s = Shape4::vec(4, 10);
        assert_eq!(s.len(), 40);
        assert_eq!((s.h, s.w), (1, 1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape4::new(1, 2, 3, 4).to_string(), "[1, 2, 3, 4]");
    }
}
