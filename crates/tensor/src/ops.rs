//! Elementwise and row-wise numeric kernels.

/// ReLU in place.
pub fn relu_inplace(xs: &mut [f32]) {
    for x in xs {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

/// `ys += xs` elementwise (residual shortcut addition).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn add_inplace(ys: &mut [f32], xs: &[f32]) {
    assert_eq!(ys.len(), xs.len(), "length mismatch in add");
    for (y, &x) in ys.iter_mut().zip(xs) {
        *y += x;
    }
}

/// Scale a buffer in place (used for the MCD `1/(1-p)` rescale).
pub fn scale_inplace(xs: &mut [f32], s: f32) {
    for x in xs {
        *x *= s;
    }
}

/// Numerically-stable softmax applied to each row of a `rows × cols`
/// row-major matrix.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`.
pub fn softmax_rows(data: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(data.len(), rows * cols, "matrix size mismatch");
    for r in 0..rows {
        let row = &mut data[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Numerically-stable log-softmax applied row-wise (for NLL loss).
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`.
pub fn log_softmax_rows(data: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(data.len(), rows * cols, "matrix size mismatch");
    for r in 0..rows {
        let row = &mut data[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_sum = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
        for v in row.iter_mut() {
            *v -= log_sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut xs = vec![-1.0, 0.0, 2.0, -0.5];
        relu_inplace(&mut xs);
        assert_eq!(xs, vec![0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn add_accumulates() {
        let mut ys = vec![1.0, 2.0];
        add_inplace(&mut ys, &[10.0, 20.0]);
        assert_eq!(ys, vec![11.0, 22.0]);
    }

    #[test]
    fn scale_scales() {
        let mut xs = vec![3.0, -6.0];
        scale_inplace(&mut xs, 1.0 / 3.0);
        assert_eq!(xs, vec![1.0, -2.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_rows(&mut m, 2, 3);
        for r in 0..2 {
            let s: f32 = m[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(m[2] > m[1] && m[1] > m[0], "softmax must be monotone");
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let mut m = vec![1000.0, 1001.0];
        softmax_rows(&mut m, 1, 2);
        assert!(m.iter().all(|v| v.is_finite()));
        assert!((m[0] + m[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let logits = vec![0.5, -1.0, 2.0];
        let mut a = logits.clone();
        softmax_rows(&mut a, 1, 3);
        let mut b = logits;
        log_softmax_rows(&mut b, 1, 3);
        for (pa, lb) in a.iter().zip(&b) {
            assert!((pa.ln() - lb).abs() < 1e-5);
        }
    }

    #[test]
    fn uniform_logits_give_uniform_softmax() {
        let mut m = vec![4.2; 5];
        softmax_rows(&mut m, 1, 5);
        for v in &m {
            assert!((v - 0.2).abs() < 1e-6);
        }
    }
}
