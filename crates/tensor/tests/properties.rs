//! Property-based tests of the tensor kernels.

use bnn_tensor::{
    col2im, conv_out_dim, gemm, gemm_at, gemm_bt, gemm_bt_stacked, gemm_stacked, im2col,
    im2col_stacked_into, max_pool, max_pool_backward, softmax_rows, Shape4, Tensor,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_is_linear_in_a(
        m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000
    ) {
        let mut rng = bnn_rng_stub(seed);
        let a1: Vec<f32> = (0..m * k).map(|_| rng.next()).collect();
        let a2: Vec<f32> = (0..m * k).map(|_| rng.next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.next()).collect();
        // gemm(a1 + a2, b) == gemm(a1, b) + gemm(a2, b)
        let sum_a: Vec<f32> = a1.iter().zip(&a2).map(|(x, y)| x + y).collect();
        let mut c_sum = vec![0.0; m * n];
        gemm(m, k, n, &sum_a, &b, &mut c_sum);
        let mut c_split = vec![0.0; m * n];
        gemm(m, k, n, &a1, &b, &mut c_split);
        gemm(m, k, n, &a2, &b, &mut c_split);
        for (x, y) in c_sum.iter().zip(&c_split) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn gemm_transpose_variants_agree(
        m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000
    ) {
        let mut rng = bnn_rng_stub(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.next()).collect();
        let mut c = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c);

        // a stored transposed (k×m)
        let mut at = vec![0.0; m * k];
        for i in 0..m { for p in 0..k { at[p * m + i] = a[i * k + p]; } }
        let mut c_at = vec![0.0; m * n];
        gemm_at(m, k, n, &at, &b, &mut c_at);

        // b stored transposed (n×k)
        let mut bt = vec![0.0; k * n];
        for p in 0..k { for j in 0..n { bt[j * k + p] = b[p * n + j]; } }
        let mut c_bt = vec![0.0; m * n];
        gemm_bt(m, k, n, &a, &bt, &mut c_bt);

        for i in 0..m * n {
            prop_assert!((c[i] - c_at[i]).abs() < 1e-4);
            prop_assert!((c[i] - c_bt[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..3, h in 3usize..7, w in 3usize..7,
        k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        seed in 0u64..1000
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let ho = conv_out_dim(h, k, stride, pad);
        let wo = conv_out_dim(w, k, stride, pad);
        let mut rng = bnn_rng_stub(seed);
        let x: Vec<f32> = (0..c * h * w).map(|_| rng.next()).collect();
        let y: Vec<f32> = (0..c * k * k * ho * wo).map(|_| rng.next()).collect();
        let cols = im2col(&x, c, h, w, k, stride, pad);
        let lhs: f64 = cols.iter().zip(&y).map(|(&a, &b)| f64::from(a) * f64::from(b)).sum();
        let mut back = vec![0.0f32; c * h * w];
        col2im(&y, c, h, w, k, stride, pad, &mut back);
        let rhs: f64 = x.iter().zip(&back).map(|(&a, &b)| f64::from(a) * f64::from(b)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-4, "adjoint identity violated: {} vs {}", lhs, rhs);
    }

    #[test]
    fn softmax_rows_are_distributions(rows in 1usize..4, cols in 1usize..8, seed in 0u64..1000) {
        let mut rng = bnn_rng_stub(seed);
        let mut m: Vec<f32> = (0..rows * cols).map(|_| rng.next() * 3.0).collect();
        softmax_rows(&mut m, rows, cols);
        for r in 0..rows {
            let row = &m[r * cols..(r + 1) * cols];
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn max_pool_gradient_conserves_mass(
        c in 1usize..3, hw in 2usize..6, seed in 0u64..1000
    ) {
        // sum(dx) == sum(dy) because each output routes to exactly one input.
        let mut rng = bnn_rng_stub(seed);
        let shape = Shape4::new(1, c, hw * 2, hw * 2);
        let x = Tensor::from_vec(shape, (0..shape.len()).map(|_| rng.next()).collect());
        let (y, arg) = max_pool(&x, 2, 2);
        let dy = Tensor::from_vec(y.shape(), (0..y.len()).map(|_| rng.next()).collect());
        let dx = max_pool_backward(&dy, &arg, shape);
        let sy: f64 = dy.iter().map(|&v| f64::from(v)).sum();
        let sx: f64 = dx.iter().map(|&v| f64::from(v)).sum();
        prop_assert!((sx - sy).abs() < 1e-4);
    }
}

// The blocked/register-tiled GEMM kernels against the textbook triple
// loop, on shapes that are deliberately *not* multiples of the 2×16
// (MR×NR) register tile, the KC depth panel, or gemm_bt's 2×4×8-lane
// tile. Fewer cases than above:
// each one multiplies real matrices.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn blocked_gemm_matches_naive_on_odd_shapes(
        m in 1usize..70, k in 1usize..80, n in 1usize..40, seed in 0u64..1000
    ) {
        let mut rng = bnn_rng_stub(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.next()).collect();
        let mut want = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                want[i * n + j] = acc;
            }
        }

        let mut c = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut c);
        for (got, want) in c.iter().zip(&want) {
            prop_assert!((got - want).abs() < 1e-3, "gemm {}x{}x{}", m, k, n);
        }

        let mut at = vec![0.0f32; m * k];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut c_at = vec![0.0f32; m * n];
        gemm_at(m, k, n, &at, &b, &mut c_at);
        for (got, want) in c_at.iter().zip(&want) {
            prop_assert!((got - want).abs() < 1e-3, "gemm_at {}x{}x{}", m, k, n);
        }

        let mut bt = vec![0.0f32; k * n];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut c_bt = vec![0.0f32; m * n];
        gemm_bt(m, k, n, &a, &bt, &mut c_bt);
        for (got, want) in c_bt.iter().zip(&want) {
            prop_assert!((got - want).abs() < 1e-3, "gemm_bt {}x{}x{}", m, k, n);
        }
    }
}

// The sample-stacked GEMM entry points used by batched-sample fusion:
// the fused `(S·cols)` call must be *bit-identical* (exact f32
// equality, not a tolerance) to `S` independent per-block calls.
// Shapes are random and deliberately ragged — S = 1, odd row counts
// (row-remainder path), column counts off the NR tile, depth crossing
// the KC panel — because the contract is exactly that the tiling may
// not leak into the values.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gemm_stacked_bit_identical_to_independent_gemms(
        m in 1usize..9, k in 1usize..300, n in 1usize..36, s in 1usize..6,
        seed in 0u64..1000
    ) {
        let mut rng = bnn_rng_stub(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.next()).collect();
        let b: Vec<f32> = (0..k * s * n).map(|_| rng.next()).collect();
        let mut fused = vec![0.0f32; m * s * n];
        gemm_stacked(m, k, n, s, &a, &b, &mut fused);
        for blk in 0..s {
            let mut bb = vec![0.0f32; k * n];
            for p in 0..k {
                bb[p * n..(p + 1) * n]
                    .copy_from_slice(&b[p * s * n + blk * n..p * s * n + blk * n + n]);
            }
            let mut want = vec![0.0f32; m * n];
            gemm(m, k, n, &a, &bb, &mut want);
            for i in 0..m {
                for j in 0..n {
                    prop_assert_eq!(
                        fused[i * s * n + blk * n + j].to_bits(),
                        want[i * n + j].to_bits(),
                        "gemm_stacked {}x{}x{} s={} block {} element ({},{}) moved",
                        m, k, n, s, blk, i, j
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_bt_stacked_bit_identical_to_independent_gemms(
        m in 1usize..7, k in 1usize..40, n in 1usize..20, s in 1usize..6,
        seed in 0u64..1000
    ) {
        let mut rng = bnn_rng_stub(seed);
        let a: Vec<f32> = (0..s * m * k).map(|_| rng.next()).collect();
        let b: Vec<f32> = (0..n * k).map(|_| rng.next()).collect(); // stored n×k
        let mut fused = vec![0.0f32; s * m * n];
        gemm_bt_stacked(m, k, n, s, &a, &b, &mut fused);
        for blk in 0..s {
            let mut want = vec![0.0f32; m * n];
            gemm_bt(m, k, n, &a[blk * m * k..(blk + 1) * m * k], &b, &mut want);
            let got = &fused[blk * m * n..(blk + 1) * m * n];
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                prop_assert_eq!(
                    g.to_bits(), w.to_bits(),
                    "gemm_bt_stacked {}x{}x{} s={} block {} flat index {} moved",
                    m, k, n, s, blk, i
                );
            }
        }
    }

    #[test]
    fn stacked_im2col_blocks_match_plain_im2col(
        c in 1usize..3, h in 3usize..8, w in 3usize..8,
        k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        s in 1usize..4, seed in 0u64..1000
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let ho = conv_out_dim(h, k, stride, pad);
        let wo = conv_out_dim(w, k, stride, pad);
        let row_len = ho * wo;
        let total = s * row_len;
        let mut rng = bnn_rng_stub(seed);
        let images: Vec<Vec<f32>> = (0..s)
            .map(|_| (0..c * h * w).map(|_| rng.next()).collect())
            .collect();
        // Dirty buffer: the block writer must not rely on prior zeros.
        let mut cols = vec![9.25f32; c * k * k * total];
        for (blk, img) in images.iter().enumerate() {
            im2col_stacked_into(img, c, h, w, k, stride, pad, &mut cols, total, blk * row_len);
        }
        for (blk, img) in images.iter().enumerate() {
            let want = im2col(img, c, h, w, k, stride, pad);
            for r in 0..c * k * k {
                let got = &cols[r * total + blk * row_len..r * total + (blk + 1) * row_len];
                prop_assert_eq!(
                    got, &want[r * row_len..(r + 1) * row_len],
                    "block {} row {} diverged", blk, r
                );
            }
        }
    }
}

/// Tiny deterministic value source for proptest bodies (keeps the
/// strategies simple while the values stay reproducible per seed).
struct StubRng(u64);

fn bnn_rng_stub(seed: u64) -> StubRng {
    StubRng(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
}

impl StubRng {
    fn next(&mut self) -> f32 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 35) as i32 % 33 - 16) as f32 / 8.0
    }
}
