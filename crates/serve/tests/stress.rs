//! Timeout-guarded stress tests for the serving front door.
//!
//! What these pin down, beyond the bit-identity properties in
//! `coalesce.rs`:
//!
//! * many client threads hammering one server with a *tiny*
//!   coalescing window and a small bounded queue make progress —
//!   blocking submissions, rejections and micro-batch formation all
//!   interleave without deadlock (every body runs under a hard
//!   watchdog deadline, so a wedged queue fails loudly instead of
//!   hanging CI);
//! * shutdown under load is graceful: every accepted request is
//!   served (bit-identically), every request that raced the close
//!   resolves to `Shutdown`, and nothing hangs — including when
//!   queued deadlines expire mid-drain;
//! * a panicking backend fails its own micro-batch, not the server —
//!   later requests are served normally.

use bnn_mcd::{
    predictive_on, BayesConfig, FloatBackend, ParallelConfig, SoftwareMaskSource, WorkerPool,
};
use bnn_nn::{models, Graph};
use bnn_serve::{BatchPolicy, Priority, ServeBackend, ServeError, Server, SubmitError};
use bnn_tensor::{Shape4, Tensor};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Run `body` on a fresh thread and fail the test if it has not
/// finished within `secs` — the deadlock guard for everything below.
fn with_deadline<F: FnOnce() + Send + 'static>(secs: u64, body: F) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => worker.join().expect("stress body panicked"),
        Err(_) => panic!("stress test exceeded {secs}s — server deadlock?"),
    }
}

fn test_net() -> Graph {
    models::lenet5(10, 1, 16, 7)
}

fn request_input(seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
    let data = (0..256)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(Shape4::new(1, 1, 16, 16), data)
}

fn solo(net: &Graph, x: &Tensor, cfg: BayesConfig, seed: u64) -> Tensor {
    let mut backend = FloatBackend::new(net);
    predictive_on(
        &mut backend,
        x,
        cfg,
        &mut SoftwareMaskSource::new(seed),
        ParallelConfig::serial(),
    )
    .0
}

#[test]
fn many_clients_tiny_window_bounded_queue() {
    with_deadline(120, || {
        let net = Arc::new(test_net());
        let cfg = BayesConfig::new(2, 3);
        let server = Server::for_graph(Arc::clone(&net))
            .backend(ServeBackend::Fused)
            .bayes(cfg)
            .parallel(ParallelConfig::with_threads(2).with_batch_threads(2))
            .policy(BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_micros(50),
                queue_cap: 8,
                ..BatchPolicy::default()
            })
            .pool(Arc::new(WorkerPool::new(4)))
            .start();

        // 8 clients × 12 requests through blocking submission (the
        // bounded queue forces real backpressure stalls), plus
        // interleaved try_predict traffic that may be rejected.
        let mut clients = Vec::new();
        for t in 0..8u64 {
            let handle = server.handle();
            clients.push(std::thread::spawn(move || {
                let mut replies = Vec::new();
                for round in 0..12u64 {
                    let seed = t * 1000 + round;
                    let pending = handle.predict_seeded(request_input(seed), seed);
                    if round % 3 == 0 {
                        // Fire-and-maybe-reject traffic on top.
                        match handle.try_predict_seeded(request_input(seed + 500), seed + 500) {
                            Ok(extra) => replies.push((seed + 500, extra.wait())),
                            Err(SubmitError {
                                error: ServeError::Rejected,
                                ..
                            }) => {}
                            Err(other) => {
                                panic!("unexpected rejection during the load phase: {other}")
                            }
                        }
                    }
                    replies.push((seed, pending.wait()));
                }
                replies
            }));
        }
        let mut max_coalesced = 0usize;
        for client in clients {
            for (seed, reply) in client.join().expect("client thread survived") {
                let reply = reply.expect("accepted request must be served");
                let want = solo(&net, &request_input(seed), cfg, seed);
                assert_eq!(
                    reply.probs.as_slice(),
                    want.as_slice(),
                    "request (seed {seed}) diverged under load"
                );
                assert!(reply.coalesced >= 1 && reply.coalesced <= 4);
                max_coalesced = max_coalesced.max(reply.coalesced);
            }
        }
        // With 8 clients on a tiny window, at least *some* micro-batch
        // must actually have coalesced — otherwise this test isn't
        // exercising the path it claims to.
        assert!(
            max_coalesced >= 2,
            "no micro-batch ever coalesced under 8-client load"
        );
        server.shutdown();
    });
}

#[test]
fn shutdown_under_load_drains_accepted_requests() {
    with_deadline(120, || {
        let net = Arc::new(test_net());
        let cfg = BayesConfig::new(2, 2);
        let server = Server::for_graph(Arc::clone(&net))
            .bayes(cfg)
            .policy(BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_micros(50),
                queue_cap: 16,
                ..BatchPolicy::default()
            })
            .start();

        // Clients submit continuously *until they observe the close*;
        // the main thread shuts the server down mid-flight. Every
        // reply must be either the bit-exact served result or a clean
        // `Shutdown` — never a hang, never a wrong answer.
        let mut clients = Vec::new();
        for t in 0..6u64 {
            let handle = server.handle();
            clients.push(std::thread::spawn(move || {
                let mut outcomes = Vec::new();
                let mut round = 0u64;
                loop {
                    let seed = t * 100_000 + round;
                    round += 1;
                    let pending = handle.predict_seeded(request_input(seed), seed);
                    let outcome = pending.wait();
                    let done = matches!(outcome, Err(ServeError::Shutdown));
                    outcomes.push((seed, outcome));
                    if done {
                        break;
                    }
                }
                outcomes
            }));
        }
        // Let some traffic through, then pull the plug. The clients
        // keep submitting until the close lands, so `closed` outcomes
        // are guaranteed; the 30 ms head start guarantees `served`
        // ones.
        std::thread::sleep(Duration::from_millis(30));
        server.shutdown();

        let (mut served, mut closed) = (0usize, 0usize);
        for client in clients {
            for (seed, outcome) in client.join().expect("client thread survived") {
                match outcome {
                    Ok(reply) => {
                        served += 1;
                        let want = solo(&net, &request_input(seed), cfg, seed);
                        assert_eq!(
                            reply.probs.as_slice(),
                            want.as_slice(),
                            "request (seed {seed}) diverged across shutdown"
                        );
                    }
                    Err(ServeError::Shutdown) => closed += 1,
                    Err(other) => {
                        panic!("healthy backend reported {other:?} (seed {seed})")
                    }
                }
            }
        }
        assert!(served > 0, "shutdown raced ahead of every submission");
        assert!(
            closed > 0,
            "every request beat the shutdown — not a race test"
        );
    });
}

#[test]
fn backend_panic_fails_the_batch_not_the_server() {
    with_deadline(60, || {
        let net = Arc::new(test_net());
        let cfg = BayesConfig::new(2, 2);
        let server = Server::for_graph(Arc::clone(&net))
            .bayes(cfg)
            .policy(BatchPolicy {
                max_batch: 2,
                max_wait: Duration::from_micros(50),
                queue_cap: 8,
                ..BatchPolicy::default()
            })
            .start();
        let handle = server.handle();

        // A zero-element input slips past the single-item check but
        // panics inside the engine (shape inference): the injected
        // fault.
        let poison = Tensor::zeros(Shape4::new(1, 0, 0, 0));
        let bad = handle.predict(poison);
        assert_eq!(
            bad.wait().map(|_| ()),
            Err(ServeError::BackendFailed),
            "a panicking micro-batch must fail, not hang"
        );

        // The dispatcher survives and keeps serving.
        let seed = 42u64;
        let reply = handle
            .predict_seeded(request_input(seed), seed)
            .wait()
            .expect("server must survive a poisoned batch");
        let want = solo(&net, &request_input(seed), cfg, seed);
        assert_eq!(reply.probs.as_slice(), want.as_slice());
        server.shutdown();
    });
}

#[test]
fn shutdown_races_expiring_deadlines_without_hanging() {
    with_deadline(120, || {
        let net = Arc::new(test_net());
        // A deliberately slow backend (large S) so the drain takes
        // long enough for queued deadlines to expire mid-drain.
        let cfg = BayesConfig::new(2, 40);
        let server = Server::for_graph(Arc::clone(&net))
            .bayes(cfg)
            .policy(BatchPolicy {
                max_batch: 1,
                max_wait: Duration::ZERO,
                queue_cap: 64,
                ..BatchPolicy::default()
            })
            .start();

        // Clients race deadlines against the shutdown below: each
        // submits a burst of 12 requests *before* waiting on any
        // reply, so the queue holds a mix while the drain runs. Per
        // round the budget is: none (must be served once accepted),
        // zero (expires at the next batch-formation sweep — a
        // deterministic expiry in any build profile, since a request
        // can only be popped after passing the sweep), or a tight
        // 2 ms (genuinely racing the drain; either outcome is legal).
        // Every single handle must resolve to exactly one typed
        // outcome.
        let mut clients = Vec::new();
        for t in 0..6u64 {
            let handle = server.handle();
            clients.push(std::thread::spawn(move || {
                let pendings: Vec<_> = (0..12u64)
                    .map(|round| {
                        let seed = t * 1000 + round;
                        let submission = handle.request(request_input(seed)).seed(seed).priority(
                            if round % 2 == 0 {
                                Priority::Normal
                            } else {
                                Priority::Low
                            },
                        );
                        let submission = match round % 3 {
                            1 => submission.deadline(Duration::ZERO),
                            2 => submission.deadline(Duration::from_millis(2)),
                            _ => submission,
                        };
                        (seed, submission.submit())
                    })
                    .collect();
                pendings
                    .into_iter()
                    .map(|(seed, pending)| (seed, pending.wait()))
                    .collect::<Vec<_>>()
            }));
        }
        std::thread::sleep(Duration::from_millis(10));
        server.shutdown();

        let (mut served, mut expired, mut other) = (0usize, 0usize, 0usize);
        for client in clients {
            for (seed, outcome) in client.join().expect("client thread survived") {
                match outcome {
                    Ok(reply) => {
                        served += 1;
                        let want = solo(&net, &request_input(seed), cfg, seed);
                        assert_eq!(
                            reply.probs.as_slice(),
                            want.as_slice(),
                            "request (seed {seed}) diverged across the deadline race"
                        );
                    }
                    Err(ServeError::DeadlineExceeded) | Err(ServeError::Rejected) => {
                        expired += 1;
                    }
                    Err(ServeError::Shutdown) => other += 1,
                    Err(ServeError::BackendFailed) => {
                        panic!("healthy backend reported BackendFailed (seed {seed})")
                    }
                }
            }
        }
        // The race must actually have produced both kinds of outcome
        // to mean anything: zero-budget requests can never be served
        // (the sweep runs before every batch forms), and each
        // client's first burst entry is accepted before the 10 ms
        // head start elapses, so both counters are structural, not
        // timing-dependent.
        assert!(served > 0, "every deadline expired before any service");
        assert!(
            expired > 0,
            "no deadline expired mid-drain — not a race test"
        );
        let _ = other;
    });
}
