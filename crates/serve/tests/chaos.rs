//! Server-level fault-injection (chaos) suite.
//!
//! The [`ChaosBackend`] wrapper from `bnn-mcd` is threaded through the
//! server via [`ServerBuilder::chaos`]; these tests pin down the
//! containment contract on every substrate:
//!
//! * with `max_batch: 1` and a sequential client, the chaos call
//!   index maps 1:1 onto submission order, so the outcome of every
//!   request is *predicted* by the pure [`fault_at`] schedule — a
//!   scheduled panic fails exactly that request with
//!   [`ServeError::BackendFailed`], nothing else;
//! * every non-faulted request's reply is **bit-identical** to the
//!   fault-free run of the same server (same substrate, same seeds);
//! * the same chaos seed replays the same outcome vector;
//! * delay-only injection under real coalescing perturbs timing but
//!   never bits;
//! * a persistently panicking backend trips the circuit breaker:
//!   in-flight requests fail with `BackendFailed`, later submissions
//!   are rejected at the door with the same error, and shutdown stays
//!   clean.
//!
//! Everything runs under the watchdog from `stress.rs` so a deadlock
//! fails loudly instead of hanging CI.

use bnn_accel::{AccelConfig, Accelerator};
use bnn_mcd::{
    fault_at, predictive_on, BayesConfig, ChaosConfig, Fault, FloatBackend, ParallelConfig,
    SoftwareMaskSource,
};
use bnn_nn::{models, Graph};
use bnn_quant::Quantizer;
use bnn_serve::{BatchPolicy, ServeBackend, ServeError, Server, SubmitError};
use bnn_tensor::{Shape4, Tensor};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Run `body` on a fresh thread and fail the test if it has not
/// finished within `secs` — the deadlock guard for everything below.
fn with_deadline<F: FnOnce() + Send + 'static>(secs: u64, body: F) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => worker.join().expect("chaos body panicked"),
        Err(_) => panic!("chaos test exceeded {secs}s — server deadlock?"),
    }
}

fn request_input(seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
    let data = (0..256)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(Shape4::new(1, 1, 16, 16), data)
}

const N_REQUESTS: usize = 8;

/// Deterministically search out a chaos config whose first
/// `N_REQUESTS` scheduled faults contain at least one `Panic` *and*
/// at least two fault-free calls (so bit-identity is actually
/// checked). Pure in `base`, so the whole test stays replayable.
fn mixed_chaos(base: u64) -> ChaosConfig {
    for k in 0..10_000u64 {
        let cfg = ChaosConfig::new(base.wrapping_add(k), 0.35, 0.35);
        let schedule = cfg.schedule(N_REQUESTS as u64);
        let panics = schedule.iter().filter(|f| **f == Fault::Panic).count();
        let clean = schedule.iter().filter(|f| **f == Fault::None).count();
        if panics >= 1 && clean >= 2 {
            return cfg;
        }
    }
    unreachable!("no mixed fault schedule within 10k candidate seeds");
}

/// Serve `N_REQUESTS` sequentially (one in flight at a time, so with
/// `max_batch: 1` the chaos call index equals the request index) and
/// return each request's typed outcome, with served replies reduced
/// to their probability bytes.
fn run_sequential(
    net: &Arc<Graph>,
    backend: ServeBackend,
    cfg: BayesConfig,
    chaos: Option<ChaosConfig>,
) -> Vec<Result<Vec<f32>, ServeError>> {
    let mut builder = Server::for_graph(Arc::clone(net))
        .backend(backend)
        .bayes(cfg)
        .parallel(ParallelConfig::serial())
        .policy(BatchPolicy {
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_cap: 16,
            ..BatchPolicy::default()
        })
        .breaker_after(usize::MAX);
    if let Some(chaos) = chaos {
        builder = builder.chaos(chaos);
    }
    let server = builder.start();
    let handle = server.handle();
    let outcomes = (0..N_REQUESTS as u64)
        .map(|i| {
            handle
                .predict_seeded(request_input(i), 7000 + i)
                .wait()
                .map(|reply| reply.probs.as_slice().to_vec())
        })
        .collect();
    server.shutdown();
    outcomes
}

/// The containment contract on one substrate: outcomes follow the
/// pure fault schedule, survivors are bit-identical to the fault-free
/// run, and the same chaos seed replays the same outcome vector.
fn assert_chaos_contained(
    net: &Arc<Graph>,
    make_backend: &dyn Fn() -> ServeBackend,
    chaos_base: u64,
) {
    let cfg = BayesConfig::new(2, 3);
    let chaos = mixed_chaos(chaos_base);

    let reference = run_sequential(net, make_backend(), cfg, None);
    let faulted = run_sequential(net, make_backend(), cfg, Some(chaos));
    let replay = run_sequential(net, make_backend(), cfg, Some(chaos));

    for (i, outcome) in faulted.iter().enumerate() {
        match fault_at(&chaos, i as u64) {
            Fault::Panic => assert_eq!(
                outcome.as_ref().err(),
                Some(&ServeError::BackendFailed),
                "request {i}: scheduled panic must fail exactly that request"
            ),
            Fault::Delay | Fault::None => {
                let got = outcome.as_ref().expect("non-faulted request served");
                let want = reference[i].as_ref().expect("fault-free run served all");
                assert_eq!(
                    got, want,
                    "request {i} diverged from the fault-free run under chaos"
                );
            }
        }
    }
    assert_eq!(
        faulted, replay,
        "same chaos seed must replay bit-identically"
    );
}

#[test]
fn chaos_containment_on_software_substrates() {
    with_deadline(120, || {
        let net = Arc::new(models::lenet5(10, 1, 16, 3));
        assert_chaos_contained(&net, &|| ServeBackend::Float, 0xC0A5_0001);
        assert_chaos_contained(&net, &|| ServeBackend::Fused, 0xC0A5_0002);
    });
}

#[test]
fn chaos_containment_on_integer_substrates() {
    with_deadline(180, || {
        let folded = models::lenet5(10, 1, 16, 5).fold_batch_norm();
        // Calibration over a small deterministic batch is enough: the
        // reference and the chaos run share the exact same QGraph.
        let calib_data: Vec<f32> = (0..8u64)
            .flat_map(|i| {
                let x = request_input(100 + i);
                x.as_slice().to_vec()
            })
            .collect();
        let calib = Tensor::from_vec(Shape4::new(8, 1, 16, 16), calib_data);
        let qg = Quantizer::new(&folded).calibrate(&calib).quantize();
        let accel = Accelerator::new(
            AccelConfig::default(),
            &folded,
            &qg,
            Shape4::new(1, 1, 16, 16),
        );
        let net = Arc::new(folded);
        let qg_ref = &qg;
        let accel_ref = &accel;
        assert_chaos_contained(&net, &|| ServeBackend::Int8(qg_ref.clone()), 0xC0A5_0003);
        assert_chaos_contained(
            &net,
            &|| ServeBackend::Accel(accel_ref.clone()),
            0xC0A5_0004,
        );
    });
}

#[test]
fn delay_only_chaos_is_bit_transparent_under_coalescing() {
    with_deadline(120, || {
        let net = Arc::new(models::lenet5(10, 1, 16, 3));
        let cfg = BayesConfig::new(2, 3);
        // Every call delayed, none panicked: timing is perturbed on
        // every micro-batch while the math must stay untouched.
        let chaos = ChaosConfig::new(0xDE1A_F00D, 0.0, 1.0);
        assert!(chaos
            .schedule(24)
            .iter()
            .all(|fault| *fault == Fault::Delay));

        let server = Server::for_graph(Arc::clone(&net))
            .bayes(cfg)
            .policy(BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_millis(2),
                queue_cap: 32,
                ..BatchPolicy::default()
            })
            .chaos(chaos)
            .start();
        let mut clients = Vec::new();
        for t in 0..6u64 {
            let handle = server.handle();
            clients.push(std::thread::spawn(move || {
                (0..4u64)
                    .map(|round| {
                        let seed = t * 1000 + round;
                        (
                            seed,
                            handle.predict_seeded(request_input(seed), seed).wait(),
                        )
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for client in clients {
            for (seed, outcome) in client.join().expect("client thread survived") {
                let reply = outcome.expect("delay-only chaos must not fail requests");
                let want = predictive_on(
                    &mut FloatBackend::new(&net),
                    &request_input(seed),
                    cfg,
                    &mut SoftwareMaskSource::new(seed),
                    ParallelConfig::serial(),
                )
                .0;
                assert_eq!(
                    reply.probs.as_slice(),
                    want.as_slice(),
                    "request (seed {seed}) diverged under delay injection"
                );
            }
        }
        server.shutdown();
    });
}

#[test]
fn persistent_panics_trip_the_breaker_and_fail_fast() {
    with_deadline(60, || {
        let net = Arc::new(models::lenet5(10, 1, 16, 3));
        let server = Server::for_graph(Arc::clone(&net))
            .bayes(BayesConfig::new(2, 2))
            .policy(BatchPolicy {
                max_batch: 1,
                max_wait: Duration::ZERO,
                queue_cap: 8,
                ..BatchPolicy::default()
            })
            // Every single call panics; three strikes trip the breaker.
            .chaos(ChaosConfig::new(7, 1.0, 0.0))
            .breaker_after(3)
            .start();
        let handle = server.handle();

        for i in 0..3u64 {
            assert_eq!(
                handle.predict(request_input(i)).wait().map(|_| ()),
                Err(ServeError::BackendFailed),
                "request {i}: a panicking micro-batch fails its own requests"
            );
        }
        // The third consecutive panic trips the breaker; the flag is
        // set by the dispatcher right after the failing batch, so give
        // it a bounded moment to land.
        while !server.breaker_tripped() {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Fail-fast at the door, for both submission flavours.
        match handle.try_predict(request_input(90)) {
            Err(SubmitError {
                error: ServeError::BackendFailed,
                ..
            }) => {}
            other => panic!("tripped breaker must reject at the door, got {other:?}"),
        }
        assert_eq!(
            handle
                .request(request_input(91))
                .submit()
                .wait()
                .map(|_| ()),
            Err(ServeError::BackendFailed),
            "blocking submission must also fail fast once tripped"
        );
        let stats = server.stats();
        assert!(stats.failed >= 3, "failed={} < 3", stats.failed);
        assert!(stats.rejected >= 2, "rejected={} < 2", stats.rejected);
        server.shutdown();
    });
}
