//! Coalescing-invariance property tests: random interleavings of
//! concurrent requests — varying micro-batch composition, `max_batch`,
//! schedule and pool size — come back **bit-identical** to solo
//! serving, on both the float and the fused backend.
//!
//! Each proptest case starts a fresh [`Server`], submits its requests
//! from one thread per request (so the queue order, and therefore the
//! micro-batch composition, is decided by the OS scheduler — a
//! different interleaving every run), and checks every reply byte
//! against the engine's solo prediction for that request's `(input,
//! seed)` pair. The float backend is always the reference, so fused
//! serving is simultaneously checked against the cross-backend
//! bit-identity contract.

use bnn_mcd::{
    predictive_on, BayesConfig, FloatBackend, ParallelConfig, SoftwareMaskSource, WorkerPool,
};
use bnn_nn::{models, Graph};
use bnn_serve::{BatchPolicy, ServeBackend, Server};
use bnn_tensor::{Shape4, Tensor};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// A deterministic pseudo-random single-item input.
fn request_input(seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let data = (0..256)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(Shape4::new(1, 1, 16, 16), data)
}

/// Ground truth: the solo prediction for `(x, seed)` — a fresh float
/// backend, serial schedule, inline pool.
fn solo(net: &Graph, x: &Tensor, cfg: BayesConfig, seed: u64) -> Tensor {
    let mut backend = FloatBackend::new(net);
    predictive_on(
        &mut backend,
        x,
        cfg,
        &mut SoftwareMaskSource::new(seed),
        ParallelConfig::serial(),
    )
    .0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn concurrent_requests_bit_identical_to_solo_serving(
        case_seed in 0u64..1000,
        n_requests in 1usize..9,
        max_batch in 1usize..6,
        max_wait_us in 0u64..3000,
        threads in 1usize..4,
        batch_threads in 1usize..4,
        pool_large in any::<bool>(),
        fused in any::<bool>(),
        l in 1usize..4,
        s in 1usize..6,
    ) {
        let net = Arc::new(models::lenet5(10, 1, 16, 3));
        let cfg = BayesConfig::new(l, s);
        // The ISSUE's pool sizes {1, 4}.
        let workers = if pool_large { 4 } else { 1 };
        let server = Server::for_graph(Arc::clone(&net))
            .backend(if fused { ServeBackend::Fused } else { ServeBackend::Float })
            .bayes(cfg)
            .parallel(
                ParallelConfig::with_threads(threads).with_batch_threads(batch_threads),
            )
            .policy(BatchPolicy {
                max_batch,
                max_wait: Duration::from_micros(max_wait_us),
                queue_cap: 64,
                ..BatchPolicy::default()
            })
            .pool(Arc::new(WorkerPool::new(workers)))
            .start();

        // One client thread per request: arrival order — and with it
        // every micro-batch's composition — is a fresh random
        // interleaving each case.
        let mut clients = Vec::new();
        for i in 0..n_requests {
            let handle = server.handle();
            let seed = case_seed.wrapping_mul(1000).wrapping_add(i as u64);
            clients.push(std::thread::spawn(move || {
                let pending = handle.predict_seeded(request_input(seed), seed);
                (seed, pending.wait())
            }));
        }
        let mut replies = Vec::new();
        for client in clients {
            replies.push(client.join().expect("client thread survived"));
        }
        server.shutdown();

        for (seed, reply) in replies {
            let reply = reply.expect("request served");
            let want = solo(&net, &request_input(seed), cfg, seed);
            prop_assert_eq!(
                reply.probs.as_slice(),
                want.as_slice(),
                "request (seed {}) diverged from solo serving \
                 (fused={}, max_batch={}, coalesced={}, workers={}, \
                  threads={}, batch_threads={})",
                seed, fused, max_batch, reply.coalesced, workers,
                threads, batch_threads
            );
            prop_assert!(reply.coalesced >= 1 && reply.coalesced <= max_batch.max(1));
            prop_assert_eq!(reply.cost.samples, cfg.s);
        }
    }
}
