//! Admission-control integration tests: priorities, load shedding,
//! deadlines, the adaptive coalescing window and the retry helper,
//! all against a live server (the pure queue mechanics are unit
//! tested inside the crate; these pin the end-to-end behaviour).

use bnn_mcd::{
    predictive_on, BayesConfig, FloatBackend, ParallelConfig, SoftwareMaskSource, WorkerPool,
};
use bnn_nn::{models, Graph};
use bnn_serve::{
    BatchPolicy, Priority, RetryPolicy, ServeBackend, ServeError, Server, SubmitError,
};
use bnn_tensor::{Shape4, Tensor};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run `body` on a fresh thread and fail the test if it has not
/// finished within `secs` — the deadlock guard for everything below.
fn with_deadline<F: FnOnce() + Send + 'static>(secs: u64, body: F) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => worker.join().expect("admission body panicked"),
        Err(_) => panic!("admission test exceeded {secs}s — server deadlock?"),
    }
}

fn test_net() -> Graph {
    models::lenet5(10, 1, 16, 9)
}

fn request_input(seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(13);
    let data = (0..256)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(Shape4::new(1, 1, 16, 16), data)
}

fn solo(net: &Graph, x: &Tensor, cfg: BayesConfig, seed: u64) -> Tensor {
    let mut backend = FloatBackend::new(net);
    predictive_on(
        &mut backend,
        x,
        cfg,
        &mut SoftwareMaskSource::new(seed),
        ParallelConfig::serial(),
    )
    .0
}

/// The deliberately slow per-batch config behind `slow_server`: large
/// `S` on a serial schedule keeps the dispatcher busy for tens of
/// milliseconds per micro-batch.
fn slow_cfg() -> BayesConfig {
    BayesConfig::new(2, 200)
}

/// A server whose dispatcher is busy for a while per micro-batch, so
/// the queue can be filled and inspected deterministically behind it.
fn slow_server(net: &Arc<Graph>, queue_cap: usize) -> Server {
    Server::for_graph(Arc::clone(net))
        .bayes(slow_cfg())
        .parallel(ParallelConfig::serial())
        .pool(Arc::new(WorkerPool::new(0)))
        .policy(BatchPolicy {
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_cap,
            ..BatchPolicy::default()
        })
        .start()
}

#[test]
fn high_priority_sheds_the_youngest_low_request_at_capacity() {
    with_deadline(120, || {
        let net = Arc::new(test_net());
        let server = slow_server(&net, 4);
        let handle = server.handle();

        // Occupy the dispatcher, then give it a moment to pop the
        // blocker off the queue so exactly `queue_cap` slots remain.
        let blocker = handle.predict_seeded(request_input(0), 0);
        while server.queued() > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }

        // Fill the whole queue with low-priority work.
        let lows: Vec<_> = (1..=4u64)
            .map(|i| {
                handle
                    .request(request_input(i))
                    .seed(i)
                    .priority(Priority::Low)
                    .try_submit()
                    .expect("queue has space for the low flood")
            })
            .collect();

        // A same-priority arrival at capacity is refused at the door…
        match handle
            .request(request_input(50))
            .priority(Priority::Low)
            .try_submit()
        {
            Err(SubmitError {
                error: ServeError::Rejected,
                ..
            }) => {}
            other => panic!("equal-priority overflow must be Rejected, got {other:?}"),
        }

        // …but a high-priority arrival shoves out the *youngest* low
        // request instead of being turned away.
        let high = handle
            .request(request_input(60))
            .seed(60)
            .priority(Priority::High)
            .try_submit()
            .expect("high priority must displace low work, not be rejected");
        let victim = lows.last().expect("four low submissions");
        assert_eq!(
            victim.try_wait().map(|outcome| outcome.map(|_| ())),
            Some(Err(ServeError::Rejected)),
            "the shed victim must already hold a Rejected outcome"
        );

        // Everyone else — blocker, surviving lows, the high request —
        // drains to a bit-exact served reply.
        for (seed, pending) in [(0u64, blocker), (60u64, high)]
            .into_iter()
            .chain((1..=3u64).zip(lows.into_iter().take(3)))
        {
            let reply = pending.wait().expect("accepted request drained");
            let want = solo(&net, &request_input(seed), slow_cfg(), seed);
            assert_eq!(reply.probs.as_slice(), want.as_slice(), "seed {seed}");
        }
        let stats = server.stats();
        assert_eq!(stats.shed, 1, "exactly one request was shed");
        assert!(stats.rejected >= 1, "the door turned away the overflow");
        assert_eq!(stats.served, 5, "blocker + 3 lows + 1 high");
        server.shutdown();
    });
}

#[test]
fn queued_deadlines_expire_behind_a_busy_dispatcher() {
    with_deadline(120, || {
        let net = Arc::new(test_net());
        let server = slow_server(&net, 8);
        let handle = server.handle();

        let blocker = handle.predict_seeded(request_input(0), 0);
        while server.queued() > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        // A zero queue budget expires the moment the dispatcher next
        // forms a batch — deterministically, in any build profile
        // (a small-but-nonzero budget raced the blocker batch under
        // release codegen, where S=200 finishes in under 1 ms).
        let doomed = handle
            .request(request_input(1))
            .seed(1)
            .deadline(Duration::ZERO)
            .submit();
        assert_eq!(
            doomed.wait().map(|_| ()),
            Err(ServeError::DeadlineExceeded),
            "a deadline that expires while queued must be reported as such"
        );
        let reply = blocker.wait().expect("the blocker itself is served");
        let want = solo(&net, &request_input(0), slow_cfg(), 0);
        assert_eq!(reply.probs.as_slice(), want.as_slice());
        assert!(server.stats().expired >= 1);
        server.shutdown();
    });
}

#[test]
fn closed_loop_overload_serves_every_high_priority_request() {
    with_deadline(120, || {
        let net = Arc::new(test_net());
        let cfg = BayesConfig::new(2, 12);
        let server = Server::for_graph(Arc::clone(&net))
            .bayes(cfg)
            .policy(BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_micros(100),
                queue_cap: 8,
                ..BatchPolicy::default()
            })
            .start();

        // Two closed-loop high-priority clients (submit, wait, repeat)
        // riding over four open-loop low-priority flooders.
        let mut highs = Vec::new();
        for t in 0..2u64 {
            let handle = server.handle();
            highs.push(std::thread::spawn(move || {
                (0..10u64)
                    .map(|round| {
                        let seed = 10_000 + t * 1000 + round;
                        let start = Instant::now();
                        let outcome = handle
                            .request(request_input(seed))
                            .seed(seed)
                            .priority(Priority::High)
                            .submit()
                            .wait();
                        (seed, outcome, start.elapsed())
                    })
                    .collect::<Vec<_>>()
            }));
        }
        let mut floods = Vec::new();
        for t in 0..4u64 {
            let handle = server.handle();
            floods.push(std::thread::spawn(move || {
                let mut pendings = Vec::new();
                let mut turned_away = 0usize;
                for round in 0..40u64 {
                    let seed = t * 1000 + round;
                    match handle
                        .request(request_input(seed))
                        .seed(seed)
                        .priority(Priority::Low)
                        .try_submit()
                    {
                        Ok(pending) => pendings.push((seed, pending)),
                        Err(SubmitError {
                            error: ServeError::Rejected,
                            ..
                        }) => turned_away += 1,
                        Err(other) => panic!("unexpected flood outcome: {other}"),
                    }
                }
                // Every accepted flood request still resolves to a
                // definite outcome: served bits or a shed Rejection.
                let outcomes: Vec<_> = pendings
                    .into_iter()
                    .map(|(seed, p)| (seed, p.wait()))
                    .collect();
                (outcomes, turned_away)
            }));
        }

        let mut latencies = Vec::new();
        for client in highs {
            for (seed, outcome, latency) in client.join().expect("high client survived") {
                let reply = outcome.expect("every high-priority request is served");
                let want = solo(&net, &request_input(seed), cfg, seed);
                assert_eq!(
                    reply.probs.as_slice(),
                    want.as_slice(),
                    "high-priority request (seed {seed}) diverged under overload"
                );
                latencies.push(latency);
            }
        }
        let mut low_pressure = 0usize;
        for client in floods {
            let (outcomes, turned_away) = client.join().expect("flood client survived");
            low_pressure += turned_away;
            for (seed, outcome) in outcomes {
                match outcome {
                    Ok(reply) => {
                        let want = solo(&net, &request_input(seed), cfg, seed);
                        assert_eq!(reply.probs.as_slice(), want.as_slice(), "seed {seed}");
                    }
                    Err(ServeError::Rejected) => low_pressure += 1,
                    Err(other) => panic!("flood request (seed {seed}) hit {other:?}"),
                }
            }
        }
        assert!(
            low_pressure > 0,
            "160 open-loop floods over an 8-slot queue shed nothing — not an overload test"
        );
        // A *very* generous p99 bound: on a loaded CI box each
        // micro-batch is tens of milliseconds, and high priority skips
        // at most one in-flight batch plus the high queue itself.
        latencies.sort();
        let p99 = latencies[latencies.len() - 1];
        assert!(
            p99 < Duration::from_secs(30),
            "high-priority worst-case latency {p99:?} is unbounded under flood"
        );
        server.shutdown();
    });
}

#[test]
fn adaptive_window_serves_a_lone_request_without_waiting_out_max_wait() {
    with_deadline(60, || {
        let net = Arc::new(test_net());
        let cfg = BayesConfig::new(1, 2);
        let server = Server::for_graph(Arc::clone(&net))
            .bayes(cfg)
            .policy(BatchPolicy {
                max_batch: 8,
                // Pathological hold-open window: a fixed-window server
                // would sit on a lone request for half a minute.
                max_wait: Duration::from_secs(30),
                queue_cap: 8,
                adaptive_window: true,
            })
            .start();
        let handle = server.handle();
        let start = Instant::now();
        let reply = handle
            .predict_seeded(request_input(5), 5)
            .wait()
            .expect("lone request served");
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(5),
            "adaptive window held a lone request for {elapsed:?}"
        );
        let want = solo(&net, &request_input(5), cfg, 5);
        assert_eq!(reply.probs.as_slice(), want.as_slice());
        server.shutdown();
    });
}

#[test]
fn retry_helper_rides_out_a_transiently_full_queue() {
    with_deadline(120, || {
        let net = Arc::new(test_net());
        let server = slow_server(&net, 2);
        let handle = server.handle();

        let blocker = handle.predict_seeded(request_input(0), 0);
        while server.queued() > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        let fillers: Vec<_> = (1..=2u64)
            .map(|i| {
                handle
                    .request(request_input(i))
                    .seed(i)
                    .try_submit()
                    .expect("fill the queue")
            })
            .collect();

        // The queue is full now, but the dispatcher keeps draining it:
        // a patient retry loop must get through without any manual
        // backoff logic in the client.
        let policy = RetryPolicy {
            attempts: 200,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
            seed: 99,
        };
        let pending = policy
            .run(|| handle.try_predict_seeded(request_input(9), 9))
            .expect("retries outlast the transient overload");
        server.shutdown();

        let reply = pending.wait().expect("retried request served");
        let want = solo(&net, &request_input(9), slow_cfg(), 9);
        assert_eq!(reply.probs.as_slice(), want.as_slice());
        for (i, filler) in (1u64..).zip(fillers) {
            let reply = filler.wait().expect("filler served");
            let want = solo(&net, &request_input(i), slow_cfg(), i);
            assert_eq!(reply.probs.as_slice(), want.as_slice());
        }
        blocker.wait().expect("blocker served");
    });
}

#[test]
fn submission_builder_seed_matches_predict_seeded() {
    with_deadline(60, || {
        let net = Arc::new(test_net());
        let cfg = BayesConfig::new(2, 3);
        let server = Server::for_graph(Arc::clone(&net))
            .backend(ServeBackend::Fused)
            .bayes(cfg)
            .start();
        let handle = server.handle();
        let seed = 1234u64;
        let via_builder = handle
            .request(request_input(seed))
            .seed(seed)
            .submit()
            .wait()
            .expect("builder submission served");
        let via_method = handle
            .predict_seeded(request_input(seed), seed)
            .wait()
            .expect("method submission served");
        let want = solo(&net, &request_input(seed), cfg, seed);
        assert_eq!(via_builder.probs.as_slice(), want.as_slice());
        assert_eq!(via_method.probs.as_slice(), want.as_slice());
        server.shutdown();
    });
}
