//! `bnn-serve` — the request-coalescing serving front door.
//!
//! The paper's accelerator earns its throughput by batching Monte
//! Carlo work so weights stream once per layer; the software engine
//! mirrors that (fused chunks, the two-axis pooled schedule). This
//! crate closes the remaining gap for *serving*: concurrent callers
//! each submitting one input no longer own a whole session and pay
//! the dispatch cost alone. A [`Server`] runs one resident dispatcher
//! thread over one hot backend; callers submit through cheap
//! cloneable [`Handle`]s, the dispatcher coalesces queued requests
//! into micro-batches under a [`BatchPolicy`], runs one
//! request-serving engine pass
//! ([`bnn_mcd::serve_requests_pooled`]) over the shared
//! [`WorkerPool`], and hands each caller its own probabilities plus a
//! per-request [`Uncertainty`] summary and [`CostReport`] slice.
//!
//! # Coalescing invariance
//!
//! The load-bearing guarantee: **a request's reply is bit-identical
//! whether it is served alone or coalesced with arbitrary
//! neighbors**, at any pool size, on every backend. Each request
//! carries its own mask-stream seed (derived from the server seed and
//! the request id via [`request_seed`], or pinned explicitly with
//! [`Handle::predict_seeded`]), and the engine derives each request's
//! Monte Carlo masks from that seed alone — never from one serial
//! stream in batch order — so timing, queue depth and neighbor
//! composition cannot move a byte. The conformance harness
//! (`bnn_mcd::conformance`) and this crate's property tests assert
//! exactly that, over the float and fused backends at pool sizes
//! `{1, 4}`.
//!
//! # Backpressure and shutdown
//!
//! The submission queue is bounded ([`BatchPolicy::queue_cap`]):
//! [`Handle::predict`] blocks while the queue is full,
//! [`Handle::try_predict`] returns the input back instead of
//! blocking. [`Server::shutdown`] (and `Drop`) closes the queue,
//! drains every already-accepted request through the normal serving
//! path, and joins the dispatcher — no accepted request is abandoned.
//!
//! # Example
//!
//! ```
//! use bnn_serve::{BatchPolicy, ServeBackend, Server};
//! use bnn_mcd::BayesConfig;
//! use bnn_nn::models;
//! use bnn_tensor::{Shape4, Tensor};
//! use std::sync::Arc;
//!
//! let net = Arc::new(models::lenet5(10, 1, 16, 1));
//! let server = Server::for_graph(net)
//!     .backend(ServeBackend::Fused)
//!     .bayes(BayesConfig::new(2, 5))
//!     .seed(42)
//!     .start();
//! let handle = server.handle();
//! let x = Tensor::full(Shape4::new(1, 1, 16, 16), 0.1);
//! let reply = handle.predict(x).wait().expect("served");
//! let sum: f32 = reply.probs.item(0).iter().sum();
//! assert!((sum - 1.0).abs() < 1e-4);
//! assert!(reply.uncertainty.entropy >= 0.0);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bnn_accel::{AccelBackend, Accelerator};
use bnn_mcd::{
    serve_requests_pooled, BayesBackend, BayesConfig, CostReport, FloatBackend, FusedBackend,
    ParallelConfig, SeededRequest, Uncertainty, WorkerPool,
};
use bnn_nn::Graph;
use bnn_quant::{Int8Backend, QGraph};
use bnn_rng::SoftRng;
use bnn_tensor::Tensor;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the dispatcher forms micro-batches from the request queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Most requests coalesced into one engine pass. `1` disables
    /// coalescing (pure FIFO serving). Normalized to at least 1.
    pub max_batch: usize,
    /// How long the dispatcher holds an under-full batch open for
    /// late arrivals, measured from the *oldest* queued request's
    /// submission — the bound on coalescing-added latency. Zero
    /// serves immediately (batches then form only under backlog).
    /// The window also closes early when the queue reaches
    /// [`BatchPolicy::queue_cap`], since no request can arrive past
    /// the cap until the dispatcher drains.
    pub max_wait: Duration,
    /// Bound on queued (accepted, not yet dispatched) requests: the
    /// backpressure knob. [`Handle::predict`] blocks at the cap,
    /// [`Handle::try_predict`] rejects. Normalized to at least 1.
    pub queue_cap: usize,
}

impl Default for BatchPolicy {
    /// Micro-batches of up to 16, a 200 µs coalescing window, a
    /// 256-request queue.
    fn default() -> BatchPolicy {
        BatchPolicy {
            max_batch: 16,
            max_wait: Duration::from_micros(200),
            queue_cap: 256,
        }
    }
}

impl BatchPolicy {
    fn normalized(mut self) -> BatchPolicy {
        self.max_batch = self.max_batch.max(1);
        self.queue_cap = self.queue_cap.max(1);
        self
    }
}

/// Which execution substrate the server's resident backend runs on
/// (mirrors the session-level `Backend` choice).
pub enum ServeBackend {
    /// f32 software execution (per-sample suffix re-runs).
    Float,
    /// f32 software execution with batched-sample GEMM fusion —
    /// bit-identical to [`ServeBackend::Float`], the fastest software
    /// path at large `S` and the serving default.
    Fused,
    /// int8 integer execution of a quantized graph.
    Int8(QGraph),
    /// The simulated FPGA accelerator.
    Accel(Accelerator),
}

impl std::fmt::Debug for ServeBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServeBackend::Float => "ServeBackend::Float",
            ServeBackend::Fused => "ServeBackend::Fused",
            ServeBackend::Int8(_) => "ServeBackend::Int8(..)",
            ServeBackend::Accel(_) => "ServeBackend::Accel(..)",
        })
    }
}

/// Derive a request's private mask-stream seed from the server seed
/// and the request id.
///
/// One SplitMix64 scramble over `base ^ id·φ64`: consecutive ids get
/// decorrelated streams, and the mapping is a documented pure
/// function so any reply can be reproduced offline
/// (`SoftwareMaskSource::new(request_seed(base, id))`).
pub fn request_seed(base: u64, request_id: u64) -> u64 {
    SoftRng::new(base ^ request_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

/// Why a served request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The server was shut down before this request could be served.
    Closed,
    /// The backend panicked while serving this request's micro-batch
    /// (the dispatcher survives and keeps serving later batches).
    Failed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServeError::Closed => "server closed before the request was served",
            ServeError::Failed => "backend failed while serving the request",
        })
    }
}

impl std::error::Error for ServeError {}

/// Why [`Handle::try_predict`] rejected a submission; the input
/// tensor is handed back for a later retry.
#[derive(Debug)]
pub enum TryPredictError {
    /// The bounded queue is at [`BatchPolicy::queue_cap`].
    Full(Tensor),
    /// The server has been shut down.
    Closed(Tensor),
}

impl std::fmt::Display for TryPredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TryPredictError::Full(_) => "request queue is full",
            TryPredictError::Closed(_) => "server is closed",
        })
    }
}

impl std::error::Error for TryPredictError {}

/// One served prediction, as delivered to the caller.
#[derive(Debug, Clone)]
pub struct Reply {
    /// The request's id (its seed is `request_seed(server_seed, id)`
    /// unless it was pinned with [`Handle::predict_seeded`]).
    pub id: u64,
    /// Predictive probabilities `(1, k)` — bit-identical to serving
    /// this request alone.
    pub probs: Tensor,
    /// Per-request uncertainty summary (max-prob confidence,
    /// predictive entropy, mutual information).
    pub uncertainty: Uncertainty,
    /// This request's slice of the engine cost: its own wall time,
    /// sample count and model cost.
    pub cost: CostReport,
    /// How many requests were coalesced into this request's
    /// micro-batch (including itself) — the observability hook for
    /// tuning [`BatchPolicy`].
    pub coalesced: usize,
}

/// One queued request.
struct Queued {
    x: Tensor,
    seed: u64,
    id: u64,
    enqueued: Instant,
    reply: mpsc::Sender<Result<Reply, ServeError>>,
}

struct QState {
    queue: VecDeque<Queued>,
    closed: bool,
    next_id: u64,
}

struct SharedQ {
    state: Mutex<QState>,
    /// Signals the dispatcher: work arrived, or the server closed.
    work: Condvar,
    /// Signals blocked producers: queue space freed, or closed.
    space: Condvar,
    queue_cap: usize,
    base_seed: u64,
}

/// Lock ignoring poisoning: queue state is only mutated outside
/// serving (backend panics are caught before unwinding here), so a
/// poisoned lock still guards consistent data.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A cheap cloneable submission handle to a running [`Server`].
#[derive(Clone)]
pub struct Handle {
    shared: Arc<SharedQ>,
}

/// A pending reply: the blocking receiver side of one request.
#[derive(Debug)]
pub struct Pending {
    rx: mpsc::Receiver<Result<Reply, ServeError>>,
    id: Option<u64>,
}

impl Pending {
    /// The id the server assigned this request, or `None` if the
    /// submission raced a shutdown and was never accepted (its
    /// [`Pending::wait`] resolves to [`ServeError::Closed`]).
    pub fn id(&self) -> Option<u64> {
        self.id
    }

    /// Block until the reply arrives. A dispatcher that disappears
    /// without answering (shutdown racing the submission) reads as
    /// [`ServeError::Closed`].
    pub fn wait(self) -> Result<Reply, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Non-blocking poll: `None` while the request is still in
    /// flight.
    pub fn try_wait(&self) -> Option<Result<Reply, ServeError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Closed)),
        }
    }
}

impl Handle {
    /// Submit one single-item input, blocking while the queue is at
    /// capacity. The request's mask seed is derived from the server
    /// seed and its id ([`request_seed`]). Returns the blocking
    /// receiver for the reply; a closed server surfaces as
    /// [`ServeError::Closed`] at [`Pending::wait`].
    ///
    /// # Panics
    ///
    /// Panics if `x` is not single-item (`n != 1`) — the front door
    /// serves one input per request; batch datasets go through
    /// `Session::predictive_batched`.
    pub fn predict(&self, x: Tensor) -> Pending {
        self.submit(x, None, true).unwrap_or_else(|err| match err {
            TryPredictError::Full(_) => unreachable!("blocking submit waits on a full queue"),
            TryPredictError::Closed(_) => closed_pending(),
        })
    }

    /// [`Handle::predict`] with an explicit mask-stream seed — the
    /// reproducibility hook (the reply is the bit-identical solo
    /// prediction for `(x, seed)` regardless of coalescing).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not single-item (`n != 1`).
    pub fn predict_seeded(&self, x: Tensor, seed: u64) -> Pending {
        self.submit(x, Some(seed), true)
            .unwrap_or_else(|err| match err {
                TryPredictError::Full(_) => unreachable!("blocking submit waits on a full queue"),
                TryPredictError::Closed(_) => closed_pending(),
            })
    }

    /// Non-blocking submission: rejects (handing the input back)
    /// instead of blocking when the queue is at capacity or the
    /// server is closed.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not single-item (`n != 1`).
    pub fn try_predict(&self, x: Tensor) -> Result<Pending, TryPredictError> {
        self.submit(x, None, false)
    }

    /// [`Handle::try_predict`] with an explicit mask-stream seed.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not single-item (`n != 1`).
    pub fn try_predict_seeded(&self, x: Tensor, seed: u64) -> Result<Pending, TryPredictError> {
        self.submit(x, Some(seed), false)
    }

    fn submit(
        &self,
        x: Tensor,
        seed: Option<u64>,
        block: bool,
    ) -> Result<Pending, TryPredictError> {
        assert_eq!(
            x.shape().n,
            1,
            "serving requests are single-input; got a batch of {}",
            x.shape().n
        );
        let mut st = lock(&self.shared.state);
        loop {
            if st.closed {
                return Err(TryPredictError::Closed(x));
            }
            if st.queue.len() < self.shared.queue_cap {
                let id = st.next_id;
                st.next_id += 1;
                let seed = seed.unwrap_or_else(|| request_seed(self.shared.base_seed, id));
                let (tx, rx) = mpsc::channel();
                st.queue.push_back(Queued {
                    x,
                    seed,
                    id,
                    enqueued: Instant::now(),
                    reply: tx,
                });
                drop(st);
                self.shared.work.notify_all();
                return Ok(Pending { rx, id: Some(id) });
            }
            if !block {
                return Err(TryPredictError::Full(x));
            }
            st = self
                .shared
                .space
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// A [`Pending`] that resolves immediately to [`ServeError::Closed`]
/// (submission raced a shutdown; no id was ever assigned).
fn closed_pending() -> Pending {
    let (tx, rx) = mpsc::channel();
    let _ = tx.send(Err(ServeError::Closed));
    Pending { rx, id: None }
}

/// Builder for a [`Server`]; see [`Server::for_graph`].
pub struct ServerBuilder {
    graph: Arc<Graph>,
    backend: ServeBackend,
    bayes: BayesConfig,
    parallel: ParallelConfig,
    policy: BatchPolicy,
    seed: u64,
    pool: Option<Arc<WorkerPool>>,
}

impl ServerBuilder {
    /// Select the resident execution substrate (default:
    /// [`ServeBackend::Fused`], the fastest software path for the
    /// serving common case of large `S` over single inputs).
    pub fn backend(mut self, backend: ServeBackend) -> ServerBuilder {
        self.backend = backend;
        self
    }

    /// Bayesian configuration `{L, S, p}` served to every request
    /// (default: `L = 1, S = 10, p = 0.25`).
    pub fn bayes(mut self, bayes: BayesConfig) -> ServerBuilder {
        self.bayes = bayes;
        self
    }

    /// The engine schedule each micro-batch runs under:
    /// `batch_threads` fans the coalesced requests out over forked
    /// backends, `threads` splits each request's samples (default:
    /// serial; replies are bit-identical at any setting).
    pub fn parallel(mut self, parallel: ParallelConfig) -> ServerBuilder {
        self.parallel = parallel;
        self
    }

    /// The micro-batching policy (default: [`BatchPolicy::default`]).
    pub fn policy(mut self, policy: BatchPolicy) -> ServerBuilder {
        self.policy = policy;
        self
    }

    /// Base seed for per-request mask-stream derivation
    /// ([`request_seed`]; default 0).
    pub fn seed(mut self, seed: u64) -> ServerBuilder {
        self.seed = seed;
        self
    }

    /// Share an existing [`WorkerPool`] instead of letting the server
    /// create its own (e.g. the pool of a `Session` serving batch
    /// jobs next to this front door).
    pub fn pool(mut self, pool: Arc<WorkerPool>) -> ServerBuilder {
        self.pool = Some(pool);
        self
    }

    /// Start the dispatcher thread and return the running server.
    pub fn start(self) -> Server {
        let policy = self.policy.normalized();
        let parallel = self.parallel.normalized();
        let pool = self
            .pool
            .unwrap_or_else(|| Arc::new(WorkerPool::new(parallel.pool_workers())));
        let shared = Arc::new(SharedQ {
            state: Mutex::new(QState {
                queue: VecDeque::new(),
                closed: false,
                next_id: 0,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            queue_cap: policy.queue_cap,
            base_seed: self.seed,
        });
        let ctx = DispatchCtx {
            shared: Arc::clone(&shared),
            bayes: self.bayes,
            parallel,
            policy,
            pool: Arc::clone(&pool),
        };
        let graph = self.graph;
        let backend = self.backend;
        let dispatcher = std::thread::Builder::new()
            .name("bnn-serve".into())
            .spawn(move || match backend {
                ServeBackend::Float => dispatch(FloatBackend::new(&graph), &ctx),
                ServeBackend::Fused => dispatch(FusedBackend::new(&graph), &ctx),
                ServeBackend::Int8(qgraph) => dispatch(Int8Backend::new(qgraph), &ctx),
                ServeBackend::Accel(accel) => dispatch(AccelBackend::new(accel), &ctx),
            })
            .expect("spawn serve dispatcher");
        Server {
            shared,
            pool,
            dispatcher: Some(dispatcher),
        }
    }
}

/// Everything the dispatcher thread needs besides its backend.
struct DispatchCtx {
    shared: Arc<SharedQ>,
    bayes: BayesConfig,
    parallel: ParallelConfig,
    policy: BatchPolicy,
    pool: Arc<WorkerPool>,
}

/// A running serving front door: one dispatcher thread, one resident
/// backend, one bounded request queue.
///
/// Construct with [`Server::for_graph`]; submit through
/// [`Server::handle`]. Dropping the server shuts it down gracefully
/// (queue closed, accepted requests drained, dispatcher joined).
pub struct Server {
    shared: Arc<SharedQ>,
    pool: Arc<WorkerPool>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Start building a server over a graph (the f32 source of truth;
    /// [`ServeBackend::Int8`] / [`ServeBackend::Accel`] carry their
    /// own compiled artefacts lowered from it).
    pub fn for_graph(graph: Arc<Graph>) -> ServerBuilder {
        ServerBuilder {
            graph,
            backend: ServeBackend::Fused,
            bayes: BayesConfig::new(1, 10),
            parallel: ParallelConfig::default(),
            policy: BatchPolicy::default(),
            seed: 0,
            pool: None,
        }
    }

    /// A new submission handle (cheap; clone freely across client
    /// threads).
    pub fn handle(&self) -> Handle {
        Handle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The server's worker pool (shareable with sessions).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Requests currently queued — accepted but not yet taken into a
    /// micro-batch (in-flight batches are not counted). An
    /// observability hook for load shedding and tests.
    pub fn queued(&self) -> usize {
        lock(&self.shared.state).queue.len()
    }

    /// Graceful shutdown: close the queue (new submissions fail
    /// [`ServeError::Closed`]), serve every already-accepted request,
    /// and join the dispatcher.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.closed = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            // The dispatcher only exits through its drain path; a join
            // error would mean it panicked outside the per-batch
            // catch_unwind, in which case waiting callers resolve to
            // Closed through their dropped channels.
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = lock(&self.shared.state);
        f.debug_struct("Server")
            .field("queued", &st.queue.len())
            .field("closed", &st.closed)
            .field("next_id", &st.next_id)
            .field("pool_workers", &self.pool.workers())
            .finish()
    }
}

/// Dispatcher body: form micro-batches until the closed queue drains.
fn dispatch<B: BayesBackend + Send>(mut backend: B, ctx: &DispatchCtx) {
    while let Some(batch) = next_batch(&ctx.shared, &ctx.policy) {
        serve_batch(&mut backend, batch, ctx);
    }
}

/// Pop the next micro-batch: block for work, then hold the batch open
/// for late arrivals up to `max_wait` from the oldest request (unless
/// the batch fills, the server is draining, or the queue reaches its
/// cap — at the cap no producer can enqueue until we drain, so
/// further waiting would be pure dead time for every queued request
/// *and* every backpressure-blocked producer). Returns `None` when
/// the queue is closed and empty.
fn next_batch(shared: &SharedQ, policy: &BatchPolicy) -> Option<Vec<Queued>> {
    // The size past which this batch cannot grow while we hold the
    // window open.
    let full = policy.max_batch.min(shared.queue_cap);
    let mut st = lock(&shared.state);
    loop {
        if !st.queue.is_empty() {
            break;
        }
        if st.closed {
            return None;
        }
        st = shared
            .work
            .wait(st)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    if !policy.max_wait.is_zero() {
        while !st.closed && st.queue.len() < full {
            // Remaining window, derived from elapsed time instead of a
            // materialized deadline `Instant`: `enqueued + max_wait`
            // would overflow (and panic the dispatcher) for huge
            // `max_wait` values like `Duration::MAX` ("hold until
            // full").
            let oldest = st.queue.front().expect("queue non-empty").enqueued;
            let remaining = policy.max_wait.saturating_sub(oldest.elapsed());
            if remaining.is_zero() {
                break;
            }
            // Each wait is capped so the underlying timed-wait never
            // sees an astronomical duration either; the loop re-derives
            // the remainder, so a capped timeout just re-checks.
            let step = remaining.min(Duration::from_secs(3600));
            st = shared
                .work
                .wait_timeout(st, step)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }
    let take = st.queue.len().min(policy.max_batch);
    let batch: Vec<Queued> = st.queue.drain(..take).collect();
    drop(st);
    shared.space.notify_all();
    Some(batch)
}

/// Serve one micro-batch through the request-coalescing engine pass
/// and deliver each caller its reply. A backend panic fails the
/// batch's requests ([`ServeError::Failed`]) but not the dispatcher.
fn serve_batch<B: BayesBackend + Send>(backend: &mut B, batch: Vec<Queued>, ctx: &DispatchCtx) {
    let coalesced = batch.len();
    let requests: Vec<SeededRequest<'_>> = batch
        .iter()
        .map(|q| SeededRequest {
            x: &q.x,
            seed: q.seed,
        })
        .collect();
    let served = catch_unwind(AssertUnwindSafe(|| {
        serve_requests_pooled(backend, &requests, ctx.bayes, ctx.parallel, &ctx.pool)
    }));
    drop(requests);
    match served {
        Ok(outs) => {
            for (q, out) in batch.into_iter().zip(outs) {
                let uncertainty = Uncertainty::summarize(&out.probs, &out.passes, 0);
                let _ = q.reply.send(Ok(Reply {
                    id: q.id,
                    probs: out.probs,
                    uncertainty,
                    cost: out.cost,
                    coalesced,
                }));
            }
        }
        Err(_) => {
            for q in batch {
                let _ = q.reply.send(Err(ServeError::Failed));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_mcd::{predictive_on, SoftwareMaskSource};
    use bnn_nn::models;
    use bnn_tensor::Shape4;

    fn test_net() -> Graph {
        models::lenet5(10, 1, 16, 5)
    }

    fn test_input(fill: f32) -> Tensor {
        Tensor::full(Shape4::new(1, 1, 16, 16), fill)
    }

    /// Solo reference: the bit-exact prediction for `(x, seed)`.
    fn solo(net: &Graph, x: &Tensor, cfg: BayesConfig, seed: u64) -> Tensor {
        let mut backend = FloatBackend::new(net);
        predictive_on(
            &mut backend,
            x,
            cfg,
            &mut SoftwareMaskSource::new(seed),
            ParallelConfig::serial(),
        )
        .0
    }

    #[test]
    fn served_reply_matches_solo_prediction() {
        let net = Arc::new(test_net());
        let cfg = BayesConfig::new(2, 6);
        let server = Server::for_graph(Arc::clone(&net))
            .backend(ServeBackend::Fused)
            .bayes(cfg)
            .seed(9)
            .start();
        let handle = server.handle();
        let x = test_input(0.2);
        let reply = handle
            .predict_seeded(x.clone(), 1234)
            .wait()
            .expect("served");
        let want = solo(&net, &x, cfg, 1234);
        assert_eq!(reply.probs.as_slice(), want.as_slice());
        assert_eq!(reply.cost.samples, cfg.s);
        assert!(reply.coalesced >= 1);
        // Uncertainty summary is consistent with the probabilities.
        let (pred, conf) = bnn_mcd::uncertainty::max_prob(reply.probs.item(0));
        assert_eq!(reply.uncertainty.predicted, pred);
        assert_eq!(reply.uncertainty.confidence, conf);
        server.shutdown();
    }

    #[test]
    fn auto_seeds_follow_the_documented_derivation() {
        let net = Arc::new(test_net());
        let cfg = BayesConfig::new(2, 4);
        let base = 77u64;
        let server = Server::for_graph(Arc::clone(&net))
            .bayes(cfg)
            .seed(base)
            .start();
        let handle = server.handle();
        let x = test_input(0.1);
        let pending = handle.predict(x.clone());
        let id = pending.id().expect("accepted submissions carry an id");
        let reply = pending.wait().expect("served");
        assert_eq!(reply.id, id);
        let want = solo(&net, &x, cfg, request_seed(base, id));
        assert_eq!(
            reply.probs.as_slice(),
            want.as_slice(),
            "auto-derived seed must be reproducible offline"
        );
        server.shutdown();
    }

    #[test]
    fn coalescing_window_holds_until_shutdown_drains() {
        let net = Arc::new(test_net());
        // max_batch 3 with a long window and a roomy queue: the
        // dispatcher holds the under-full batch open (2 < 3 and the
        // cap is far), so the two requests deterministically coalesce
        // when shutdown closes the window and drains.
        let server = Server::for_graph(Arc::clone(&net))
            .bayes(BayesConfig::new(1, 2))
            .policy(BatchPolicy {
                max_batch: 3,
                max_wait: Duration::from_secs(30),
                queue_cap: 8,
            })
            .start();
        let handle = server.handle();
        let a = handle.predict_seeded(test_input(0.1), 1);
        let b = handle.predict_seeded(test_input(0.2), 2);
        server.shutdown();
        let ra = a.wait().expect("drained on shutdown");
        let rb = b.wait().expect("drained on shutdown");
        assert_eq!(ra.coalesced, 2);
        assert_eq!(rb.coalesced, 2);
        assert_eq!(
            ra.probs.as_slice(),
            solo(&net, &test_input(0.1), BayesConfig::new(1, 2), 1).as_slice()
        );
        assert_eq!(
            rb.probs.as_slice(),
            solo(&net, &test_input(0.2), BayesConfig::new(1, 2), 2).as_slice()
        );
    }

    #[test]
    fn window_closes_at_queue_cap_instead_of_stalling() {
        let net = Arc::new(test_net());
        // queue_cap 2 below max_batch 3: once two requests are queued
        // the batch cannot grow (no producer can enqueue until a
        // drain), so the dispatcher must serve immediately instead of
        // sleeping out the absurd 1-hour window. A stall here trips
        // the surrounding test timeout; the replies prove both were
        // served as one batch.
        let server = Server::for_graph(Arc::clone(&net))
            .bayes(BayesConfig::new(1, 2))
            .policy(BatchPolicy {
                max_batch: 3,
                max_wait: Duration::from_secs(3600),
                queue_cap: 2,
            })
            .start();
        let handle = server.handle();
        let a = handle.predict_seeded(test_input(0.1), 1);
        let b = handle.predict_seeded(test_input(0.2), 2);
        let ra = a.wait().expect("served");
        let rb = b.wait().expect("served");
        assert!(ra.coalesced <= 2 && rb.coalesced <= 2);
        assert_eq!(
            ra.probs.as_slice(),
            solo(&net, &test_input(0.1), BayesConfig::new(1, 2), 1).as_slice()
        );
        server.shutdown();
        assert_eq!(rb.id, 1);
    }

    #[test]
    fn astronomical_max_wait_means_hold_until_full() {
        let net = Arc::new(test_net());
        // `Duration::MAX` as "hold the batch open until it fills":
        // must not overflow the dispatcher's deadline arithmetic. The
        // window closes on fill for the pair, and shutdown drains the
        // straggler.
        let cfg = BayesConfig::new(1, 2);
        let server = Server::for_graph(Arc::clone(&net))
            .bayes(cfg)
            .policy(BatchPolicy {
                max_batch: 2,
                max_wait: Duration::MAX,
                queue_cap: 8,
            })
            .start();
        let handle = server.handle();
        let a = handle.predict_seeded(test_input(0.1), 1);
        let b = handle.predict_seeded(test_input(0.2), 2);
        let ra = a.wait().expect("batch filled");
        let rb = b.wait().expect("batch filled");
        assert!(ra.coalesced <= 2 && rb.coalesced <= 2);
        assert_eq!(
            ra.probs.as_slice(),
            solo(&net, &test_input(0.1), cfg, 1).as_slice()
        );
        let straggler = handle.predict_seeded(test_input(0.3), 3);
        server.shutdown();
        let rc = straggler.wait().expect("drained on shutdown");
        assert_eq!(
            rc.probs.as_slice(),
            solo(&net, &test_input(0.3), cfg, 3).as_slice()
        );
    }

    #[test]
    fn backpressure_rejects_while_dispatcher_is_busy() {
        let net = Arc::new(test_net());
        // A slow micro-batch (large S) occupies the dispatcher; the
        // bounded queue then fills behind it and try_predict must
        // reject, handing the input back.
        let cfg = BayesConfig::new(1, 800);
        let server = Server::for_graph(Arc::clone(&net))
            .bayes(cfg)
            .policy(BatchPolicy {
                max_batch: 2,
                max_wait: Duration::ZERO,
                queue_cap: 2,
            })
            .start();
        let handle = server.handle();
        let a = handle.predict_seeded(test_input(0.1), 1);
        // Wait until the dispatcher has taken the first request into
        // its (long-running) batch, then fill the queue behind it.
        while server.queued() > 0 {
            std::thread::yield_now();
        }
        let b = handle.predict_seeded(test_input(0.2), 2);
        let c = handle.predict_seeded(test_input(0.3), 3);
        match handle.try_predict(test_input(0.4)) {
            Err(TryPredictError::Full(x)) => assert_eq!(x.shape().n, 1),
            other => panic!("expected Full, got {other:?}"),
        }
        // Everything accepted is served bit-exactly once the backlog
        // drains.
        for (pending, fill, seed) in [(a, 0.1f32, 1u64), (b, 0.2, 2), (c, 0.3, 3)] {
            let reply = pending.wait().expect("served");
            assert_eq!(
                reply.probs.as_slice(),
                solo(&net, &test_input(fill), cfg, seed).as_slice()
            );
        }
        server.shutdown();
    }

    #[test]
    fn submissions_after_shutdown_resolve_closed() {
        let net = Arc::new(test_net());
        let server = Server::for_graph(net).bayes(BayesConfig::new(1, 2)).start();
        let handle = server.handle();
        server.shutdown();
        assert_eq!(
            handle.predict(test_input(0.1)).wait().map(|_| ()),
            Err(ServeError::Closed)
        );
        match handle.try_predict(test_input(0.1)) {
            Err(TryPredictError::Closed(x)) => assert_eq!(x.shape().n, 1),
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "single-input")]
    fn multi_item_submissions_are_rejected() {
        let net = Arc::new(test_net());
        let server = Server::for_graph(net).start();
        let handle = server.handle();
        let _ = handle.predict(Tensor::zeros(Shape4::new(2, 1, 16, 16)));
    }
}
