//! `bnn-serve` — the request-coalescing serving front door.
//!
//! The paper's accelerator earns its throughput by batching Monte
//! Carlo work so weights stream once per layer; the software engine
//! mirrors that (fused chunks, the two-axis pooled schedule). This
//! crate closes the remaining gap for *serving*: concurrent callers
//! each submitting one input no longer own a whole session and pay
//! the dispatch cost alone. A [`Server`] runs one resident dispatcher
//! thread over one hot backend; callers submit through cheap
//! cloneable [`Handle`]s, the dispatcher coalesces queued requests
//! into micro-batches under a [`BatchPolicy`], runs one
//! request-serving engine pass
//! ([`bnn_mcd::serve_requests_pooled`]) over the shared
//! [`WorkerPool`], and hands each caller its own probabilities plus a
//! per-request [`Uncertainty`] summary and [`CostReport`] slice.
//!
//! # Coalescing invariance
//!
//! The load-bearing guarantee: **a request's reply is bit-identical
//! whether it is served alone or coalesced with arbitrary
//! neighbors**, at any pool size, on every backend. Each request
//! carries its own mask-stream seed (derived from the server seed and
//! the request id via [`request_seed`], or pinned explicitly with
//! [`Handle::predict_seeded`]), and the engine derives each request's
//! Monte Carlo masks from that seed alone — never from one serial
//! stream in batch order — so timing, queue depth and neighbor
//! composition cannot move a byte. The conformance harness
//! (`bnn_mcd::conformance`) and this crate's property tests assert
//! exactly that, over the float and fused backends at pool sizes
//! `{1, 4}`.
//!
//! # Admission control
//!
//! Every submission carries a [`Priority`] (default
//! [`Priority::Normal`]) and, optionally, a deadline — set both
//! through the [`Handle::request`] builder. The dispatcher dequeues
//! strictly by priority class (High before Normal before Low, FIFO
//! within a class), and the bounded queue
//! ([`BatchPolicy::queue_cap`]) sheds load by priority: when a
//! submission arrives at a full queue, the *youngest request of the
//! lowest class strictly below it* is evicted and resolved
//! [`ServeError::Rejected`] — so low-priority work absorbs overload
//! while high-priority latency stays bounded by the queue depth.
//! Submissions that find no lower-priority victim block
//! ([`Handle::predict`]) or are themselves rejected with the input
//! handed back ([`Handle::try_predict`]; pair it with
//! [`RetryPolicy`], the jittered-backoff retry helper). A queued
//! request whose deadline passes before it is taken into a
//! micro-batch resolves [`ServeError::DeadlineExceeded`] instead of
//! silently aging in place.
//!
//! # Failure containment
//!
//! Every request resolves with a definite outcome — a [`Reply`] or a
//! typed [`ServeError`] — never a hang. A backend panic is
//! quarantined to its own micro-batch: its requests resolve
//! [`ServeError::BackendFailed`], the dispatcher survives. After
//! `breaker_after` *consecutive* micro-batch panics
//! ([`ServerBuilder::breaker_after`]) the per-server circuit breaker
//! trips: queued work is failed fast with `BackendFailed` and new
//! submissions are rejected at the door instead of accepting doomed
//! work ([`Server::breaker_tripped`] observes the state).
//! [`Server::shutdown`] (and `Drop`) closes the queue, drains every
//! already-accepted request through the normal serving path
//! (deadlines still honoured mid-drain), and joins the dispatcher.
//! All of it is provoked on demand, deterministically, by the chaos
//! harness: [`ServerBuilder::chaos`] wraps the resident backend in
//! [`bnn_mcd::ChaosBackend`], injecting seeded panics and delays on a
//! replayable schedule. [`Server::stats`] exposes the admission
//! counters (served / shed / expired / failed / rejected).
//!
//! # Example
//!
//! ```
//! use bnn_serve::{BatchPolicy, ServeBackend, Server};
//! use bnn_mcd::BayesConfig;
//! use bnn_nn::models;
//! use bnn_tensor::{Shape4, Tensor};
//! use std::sync::Arc;
//!
//! let net = Arc::new(models::lenet5(10, 1, 16, 1));
//! let server = Server::for_graph(net)
//!     .backend(ServeBackend::Fused)
//!     .bayes(BayesConfig::new(2, 5))
//!     .seed(42)
//!     .start();
//! let handle = server.handle();
//! let x = Tensor::full(Shape4::new(1, 1, 16, 16), 0.1);
//! let reply = handle.predict(x).wait().expect("served");
//! let sum: f32 = reply.probs.item(0).iter().sum();
//! assert!((sum - 1.0).abs() < 1e-4);
//! assert!(reply.uncertainty.entropy >= 0.0);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bnn_accel::{AccelBackend, Accelerator};
use bnn_mcd::{
    serve_requests_pooled, BayesBackend, BayesConfig, ChaosBackend, ChaosConfig, CostReport,
    FloatBackend, FusedBackend, ParallelConfig, SeededRequest, Uncertainty, WorkerPool,
};
use bnn_nn::Graph;
use bnn_quant::{Int8Backend, QGraph};
use bnn_rng::SoftRng;
use bnn_tensor::Tensor;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the dispatcher forms micro-batches from the request queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Most requests coalesced into one engine pass. `1` disables
    /// coalescing (pure FIFO serving). Normalized to at least 1.
    pub max_batch: usize,
    /// How long the dispatcher holds an under-full batch open for
    /// late arrivals, measured from the *oldest* queued request's
    /// submission — the bound on coalescing-added latency. Zero
    /// serves immediately (batches then form only under backlog).
    /// The window also closes early when the queue reaches
    /// [`BatchPolicy::queue_cap`], since no request can arrive past
    /// the cap until the dispatcher drains.
    pub max_wait: Duration,
    /// Bound on queued (accepted, not yet dispatched) requests: the
    /// backpressure knob. [`Handle::predict`] blocks at the cap,
    /// [`Handle::try_predict`] rejects — and an arriving submission
    /// sheds the youngest strictly-lower-priority queued request
    /// first (resolved [`ServeError::Rejected`]). Normalized to at
    /// least 1.
    pub queue_cap: usize,
    /// Opt-in adaptive coalescing window: the dispatcher tracks an
    /// EMA of request inter-arrival gaps and *collapses the window to
    /// zero when traffic is sparse* (estimated gap longer than
    /// [`BatchPolicy::max_wait`], or no history yet), so a lone
    /// request is served immediately instead of waiting out the full
    /// fixed window. Dense traffic (gap within the window) keeps the
    /// configured `max_wait` and coalesces as usual. Off by default:
    /// the fixed window is the deterministic choice (and some
    /// workloads rely on "hold until full" semantics).
    pub adaptive_window: bool,
}

impl Default for BatchPolicy {
    /// Micro-batches of up to 16, a fixed 200 µs coalescing window, a
    /// 256-request queue.
    fn default() -> BatchPolicy {
        BatchPolicy {
            max_batch: 16,
            max_wait: Duration::from_micros(200),
            queue_cap: 256,
            adaptive_window: false,
        }
    }
}

impl BatchPolicy {
    fn normalized(mut self) -> BatchPolicy {
        self.max_batch = self.max_batch.max(1);
        self.queue_cap = self.queue_cap.max(1);
        self
    }
}

/// Which execution substrate the server's resident backend runs on
/// (mirrors the session-level `Backend` choice).
pub enum ServeBackend {
    /// f32 software execution (per-sample suffix re-runs).
    Float,
    /// f32 software execution with batched-sample GEMM fusion —
    /// bit-identical to [`ServeBackend::Float`], the fastest software
    /// path at large `S` and the serving default.
    Fused,
    /// int8 integer execution of a quantized graph.
    Int8(QGraph),
    /// The simulated FPGA accelerator.
    Accel(Accelerator),
}

impl std::fmt::Debug for ServeBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServeBackend::Float => "ServeBackend::Float",
            ServeBackend::Fused => "ServeBackend::Fused",
            ServeBackend::Int8(_) => "ServeBackend::Int8(..)",
            ServeBackend::Accel(_) => "ServeBackend::Accel(..)",
        })
    }
}

/// Derive a request's private mask-stream seed from the server seed
/// and the request id.
///
/// One SplitMix64 scramble over `base ^ id·φ64`: consecutive ids get
/// decorrelated streams, and the mapping is a documented pure
/// function so any reply can be reproduced offline
/// (`SoftwareMaskSource::new(request_seed(base, id))`).
pub fn request_seed(base: u64, request_id: u64) -> u64 {
    SoftRng::new(base ^ request_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

/// A request's admission class. Ordered: `Low < Normal < High`. The
/// dispatcher dequeues higher classes first (FIFO within a class),
/// and at queue saturation an arriving submission sheds the youngest
/// queued request of the lowest class *strictly below* its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Sheddable background work — first to go under overload.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Latency-sensitive work: served first, never shed by arrivals
    /// (nothing outranks it).
    High,
}

/// The number of priority classes (one queue per class).
const PRIORITIES: usize = 3;

impl Priority {
    fn index(self) -> usize {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }
}

/// Why a request failed — the definite-outcome taxonomy: every
/// accepted request resolves with a [`Reply`] or exactly one of
/// these, never a hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// Shed by admission control: the queue was at
    /// [`BatchPolicy::queue_cap`] and this request was (or would have
    /// been) the lowest-priority work. Retryable — see
    /// [`RetryPolicy`].
    Rejected,
    /// The request's deadline passed while it was still queued; it
    /// was resolved at batch-formation time instead of silently
    /// aging.
    DeadlineExceeded,
    /// The backend panicked while serving this request's micro-batch
    /// (quarantined: the dispatcher survives), or the circuit breaker
    /// was already tripped and the request was failed fast.
    BackendFailed,
    /// The server was shut down before this request could be served.
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServeError::Rejected => "request shed by admission control (queue at capacity)",
            ServeError::DeadlineExceeded => "request deadline passed while queued",
            ServeError::BackendFailed => "backend failed while serving the request",
            ServeError::Shutdown => "server shut down before the request was served",
        })
    }
}

impl std::error::Error for ServeError {}

/// A rejected submission: the typed reason plus the input tensor,
/// handed back so the caller can retry without re-building it.
#[derive(Debug)]
pub struct SubmitError {
    /// Why the submission was not accepted ([`ServeError::Rejected`],
    /// [`ServeError::Shutdown`], or — breaker tripped —
    /// [`ServeError::BackendFailed`]).
    pub error: ServeError,
    /// The input, returned to the caller.
    pub input: Tensor,
}

impl SubmitError {
    /// Recover the input tensor for a retry.
    pub fn into_input(self) -> Tensor {
        self.input
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "submission rejected: {}", self.error)
    }
}

impl std::error::Error for SubmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Client-side jittered exponential backoff for
/// [`ServeError::Rejected`] submissions.
///
/// Deterministic (the jitter stream derives from
/// [`RetryPolicy::seed`]): the same policy replays the same backoff
/// schedule. Only `Rejected` is retried — `Shutdown` and
/// `BackendFailed` are not transient and surface immediately.
///
/// ```no_run
/// # use bnn_serve::{RetryPolicy, Handle};
/// # use bnn_tensor::Tensor;
/// # fn demo(handle: &Handle, x: Tensor) {
/// let reply = RetryPolicy::default()
///     .run(|| handle.try_predict(x.clone()))
///     .expect("accepted within the retry budget")
///     .wait();
/// # let _ = reply;
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (including the first; normalized to at least 1).
    pub attempts: usize,
    /// Backoff before the first retry; doubles per retry.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
    /// Seed of the jitter stream (each sleep is scaled by a uniform
    /// factor in `[0.5, 1.5)`).
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// 4 attempts, 200 µs base, 20 ms cap.
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_micros(200),
            cap: Duration::from_millis(20),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Run `attempt` until it succeeds, fails with a non-retryable
    /// error, or the attempt budget is spent (the last
    /// [`SubmitError`] is returned).
    pub fn run<T>(
        &self,
        mut attempt: impl FnMut() -> Result<T, SubmitError>,
    ) -> Result<T, SubmitError> {
        let mut rng = SoftRng::new(self.seed);
        let mut backoff = self.base.min(self.cap);
        for _ in 1..self.attempts.max(1) {
            match attempt() {
                Err(e) if e.error == ServeError::Rejected => {
                    let jitter = 0.5 + rng.next_f64();
                    std::thread::sleep(backoff.mul_f64(jitter).min(self.cap));
                    backoff = backoff.saturating_mul(2).min(self.cap);
                }
                other => return other,
            }
        }
        attempt()
    }
}

/// A point-in-time snapshot of a server's admission counters
/// ([`Server::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests served with a [`Reply`].
    pub served: u64,
    /// Queued requests evicted by a higher-priority arrival
    /// (resolved [`ServeError::Rejected`]).
    pub shed: u64,
    /// Queued requests whose deadline passed (resolved
    /// [`ServeError::DeadlineExceeded`]).
    pub expired: u64,
    /// Requests failed by a backend panic or the tripped breaker
    /// (resolved [`ServeError::BackendFailed`]).
    pub failed: u64,
    /// Submissions rejected at the door (non-blocking submit at
    /// capacity, or any submit after the breaker tripped).
    pub rejected: u64,
    /// **Gauge** (not monotonic): requests accepted into the queue
    /// but not yet taken into a micro-batch. Updated under the same
    /// lock as the queues themselves, so a snapshot is consistent
    /// with the queue state that produced it.
    pub queued: u64,
    /// **Gauge** (not monotonic): requests taken into a micro-batch
    /// whose replies have not yet been delivered. Incremented under
    /// the queue lock at batch formation; decremented — like the
    /// monotonic counters — *before* reply delivery, so a woken
    /// waiter never reads a stale in-flight count for its own
    /// request.
    pub in_flight: u64,
}

/// One served prediction, as delivered to the caller.
#[derive(Debug, Clone)]
pub struct Reply {
    /// The request's id (its seed is `request_seed(server_seed, id)`
    /// unless it was pinned with [`Handle::predict_seeded`]).
    pub id: u64,
    /// Predictive probabilities `(1, k)` — bit-identical to serving
    /// this request alone.
    pub probs: Tensor,
    /// Per-request uncertainty summary (max-prob confidence,
    /// predictive entropy, mutual information).
    pub uncertainty: Uncertainty,
    /// This request's slice of the engine cost: its own wall time,
    /// sample count and model cost.
    pub cost: CostReport,
    /// How many requests were coalesced into this request's
    /// micro-batch (including itself) — the observability hook for
    /// tuning [`BatchPolicy`].
    pub coalesced: usize,
}

/// One queued request.
struct Queued {
    x: Tensor,
    seed: u64,
    id: u64,
    enqueued: Instant,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Result<Reply, ServeError>>,
    /// Root trace span this request nests under (0 = untraced). The
    /// dispatcher parents its queue-wait / batch-form / compute /
    /// write spans here, so a drained trace reconstructs the
    /// request's full cross-layer timeline.
    trace: u64,
}

/// EMA smoothing factor for the arrival-gap tracker (the adaptive
/// window's traffic estimate): each new gap contributes a quarter.
const GAP_EMA: f64 = 0.25;

/// Cap on any *single* dispatcher condvar sleep while a batch window
/// is held open — an hour, far beyond any sane coalescing window.
///
/// The cap exists only to keep the OS timed-wait away from
/// astronomical durations like `Duration::MAX` ("hold until full"),
/// which platforms may reject or saturate unpredictably. It is safe
/// because the window-wait loop **re-derives the remaining window
/// from scratch after every wake** — from `oldest.elapsed()` and the
/// current adaptive arrival estimate — and every event that should
/// close the window early (a new submission, shutdown, a breaker
/// trip) notifies the `work` condvar. A capped timeout therefore just
/// re-checks and sleeps again; a collapsed adaptive window or a
/// filled batch is observed at the very next wake, never after a
/// stale remainder.
const WINDOW_WAIT_STEP_CAP: Duration = Duration::from_secs(3600);

struct QState {
    /// One FIFO per priority class, indexed by [`Priority::index`]
    /// (0 = Low).
    queues: [VecDeque<Queued>; PRIORITIES],
    closed: bool,
    /// Circuit breaker state: once tripped, queued work is failed
    /// fast and new submissions are rejected at the door.
    tripped: bool,
    next_id: u64,
    /// When the most recent submission arrived.
    last_arrival: Option<Instant>,
    /// EMA of submission inter-arrival gaps, in seconds (`None` until
    /// two submissions have arrived). Feeds [`effective_wait`].
    arrival_gap: Option<f64>,
}

impl QState {
    fn len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Submission instant of the oldest queued request (across all
    /// classes) — the coalescing window is measured from it.
    fn oldest(&self) -> Option<Instant> {
        self.queues
            .iter()
            .filter_map(|q| q.front())
            .map(|q| q.enqueued)
            .min()
    }

    /// The earliest queued deadline — bounds the dispatcher's waits
    /// so expiry resolves promptly.
    fn nearest_deadline(&self) -> Option<Instant> {
        self.queues
            .iter()
            .flatten()
            .filter_map(|q| q.deadline)
            .min()
    }

    /// Dequeue the next request: highest class first, FIFO within.
    fn pop_highest(&mut self) -> Option<Queued> {
        self.queues.iter_mut().rev().find_map(VecDeque::pop_front)
    }

    /// Evict the youngest queued request of the lowest non-empty
    /// class strictly below `incoming` (the load-shedding victim), if
    /// any.
    fn shed_below(&mut self, incoming: Priority) -> Option<Queued> {
        self.queues[..incoming.index()]
            .iter_mut()
            .find(|q| !q.is_empty())?
            .pop_back()
    }
}

/// Monotonic admission counters plus the two backlog gauges, written
/// lock-free from both sides of the queue; [`ServeStats`] is their
/// snapshot. The gauges (`queued`, `in_flight`) are only ever bumped
/// while the queue lock is held, so they track the queues exactly.
#[derive(Default)]
struct Counters {
    served: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    queued: AtomicU64,
    in_flight: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }

    fn drop_gauge(counter: &AtomicU64, by: u64) {
        counter.fetch_sub(by, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ServeStats {
        ServeStats {
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
        }
    }
}

struct SharedQ {
    state: Mutex<QState>,
    /// Signals the dispatcher: work arrived, or the server closed.
    work: Condvar,
    /// Signals blocked producers: queue space freed, or closed.
    space: Condvar,
    queue_cap: usize,
    base_seed: u64,
    /// Mirror of [`BatchPolicy::adaptive_window`]: when off, the
    /// submission path skips the arrival-gap EMA bookkeeping entirely
    /// (nothing reads the estimate), so fixed-window serving pays no
    /// tracker cost.
    adaptive_window: bool,
    counters: Counters,
}

/// Lock ignoring poisoning: queue state is only mutated outside
/// serving (backend panics are caught before unwinding here), so a
/// poisoned lock still guards consistent data.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A cheap cloneable submission handle to a running [`Server`].
#[derive(Clone)]
pub struct Handle {
    shared: Arc<SharedQ>,
}

/// A pending reply: the blocking receiver side of one request.
#[derive(Debug)]
pub struct Pending {
    rx: mpsc::Receiver<Result<Reply, ServeError>>,
    id: Option<u64>,
}

impl Pending {
    /// The id the server assigned this request, or `None` if the
    /// submission was never accepted (its [`Pending::wait`] resolves
    /// to the typed rejection, e.g. [`ServeError::Shutdown`]).
    pub fn id(&self) -> Option<u64> {
        self.id
    }

    /// Block until the outcome arrives. A dispatcher that disappears
    /// without answering (shutdown racing the submission) reads as
    /// [`ServeError::Shutdown`].
    pub fn wait(self) -> Result<Reply, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }

    /// Non-blocking poll: `None` while the request is still in
    /// flight.
    pub fn try_wait(&self) -> Option<Result<Reply, ServeError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Shutdown)),
        }
    }
}

impl Handle {
    /// Snapshot of the server's admission counters and backlog
    /// gauges — the same numbers as [`Server::stats`], readable from
    /// any handle (a status endpoint typically only holds a handle).
    pub fn stats(&self) -> ServeStats {
        self.shared.counters.snapshot()
    }

    /// Start building a submission for one single-item input: set
    /// [`Submission::priority`], [`Submission::deadline`] and
    /// [`Submission::seed`], then [`Submission::submit`] (blocking)
    /// or [`Submission::try_submit`] (non-blocking). The convenience
    /// methods below are shorthands over this builder.
    pub fn request(&self, x: Tensor) -> Submission<'_> {
        Submission {
            handle: self,
            x,
            priority: Priority::Normal,
            deadline: None,
            seed: None,
            trace: 0,
        }
    }

    /// Submit one single-item input at [`Priority::Normal`], blocking
    /// while the queue is at capacity. The request's mask seed is
    /// derived from the server seed and its id ([`request_seed`]).
    /// Returns the blocking receiver for the outcome; a closed server
    /// surfaces as [`ServeError::Shutdown`] at [`Pending::wait`], a
    /// tripped breaker as [`ServeError::BackendFailed`].
    ///
    /// # Panics
    ///
    /// Panics if `x` is not single-item (`n != 1`) — the front door
    /// serves one input per request; batch datasets go through
    /// `Session::predictive_batched`.
    pub fn predict(&self, x: Tensor) -> Pending {
        self.request(x).submit()
    }

    /// [`Handle::predict`] with an explicit mask-stream seed — the
    /// reproducibility hook (the reply is the bit-identical solo
    /// prediction for `(x, seed)` regardless of coalescing).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not single-item (`n != 1`).
    pub fn predict_seeded(&self, x: Tensor, seed: u64) -> Pending {
        self.request(x).seed(seed).submit()
    }

    /// Non-blocking submission at [`Priority::Normal`]: rejects
    /// (handing the input back in the [`SubmitError`]) instead of
    /// blocking when the queue is at capacity with no lower-priority
    /// victim to shed, or the server is closed or tripped.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not single-item (`n != 1`).
    pub fn try_predict(&self, x: Tensor) -> Result<Pending, SubmitError> {
        self.request(x).try_submit()
    }

    /// [`Handle::try_predict`] with an explicit mask-stream seed.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not single-item (`n != 1`).
    pub fn try_predict_seeded(&self, x: Tensor, seed: u64) -> Result<Pending, SubmitError> {
        self.request(x).seed(seed).try_submit()
    }

    fn submit(
        &self,
        x: Tensor,
        seed: Option<u64>,
        priority: Priority,
        deadline: Option<Duration>,
        trace: u64,
        block: bool,
    ) -> Result<Pending, SubmitError> {
        assert_eq!(
            x.shape().n,
            1,
            "serving requests are single-input; got a batch of {}",
            x.shape().n
        );
        let shared = &self.shared;
        let mut st = lock(&shared.state);
        loop {
            if st.closed {
                return Err(SubmitError {
                    error: ServeError::Shutdown,
                    input: x,
                });
            }
            if st.tripped {
                // Breaker tripped: fail fast instead of accepting
                // doomed work.
                Counters::bump(&shared.counters.rejected, 1);
                return Err(SubmitError {
                    error: ServeError::BackendFailed,
                    input: x,
                });
            }
            if st.len() >= shared.queue_cap {
                if let Some(victim) = st.shed_below(priority) {
                    // Shed the youngest strictly-lower-priority
                    // request to admit this one. Counter and gauge
                    // move before the victim learns its fate.
                    Counters::bump(&shared.counters.shed, 1);
                    Counters::drop_gauge(&shared.counters.queued, 1);
                    let _ = victim.reply.send(Err(ServeError::Rejected));
                } else if block {
                    st = shared
                        .space
                        .wait(st)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    continue;
                } else {
                    Counters::bump(&shared.counters.rejected, 1);
                    return Err(SubmitError {
                        error: ServeError::Rejected,
                        input: x,
                    });
                }
            }
            // One wall-clock read per submission, shared by the
            // arrival tracker, the enqueue timestamp and the deadline
            // derivation below.
            let now = Instant::now();
            if shared.adaptive_window {
                // The EMA only feeds `effective_wait`, which ignores
                // it under a fixed window — don't pay the bookkeeping
                // unless the policy actually reads the estimate.
                if let Some(prev) = st.last_arrival {
                    let gap = now.duration_since(prev).as_secs_f64();
                    st.arrival_gap = Some(match st.arrival_gap {
                        Some(ema) => ema + GAP_EMA * (gap - ema),
                        None => gap,
                    });
                }
                st.last_arrival = Some(now);
            }
            let id = st.next_id;
            st.next_id += 1;
            let seed = seed.unwrap_or_else(|| request_seed(shared.base_seed, id));
            // `checked_add`: an astronomical deadline (`Duration::MAX`
            // as "no deadline, really") must not panic — it simply
            // never expires.
            let deadline = deadline.and_then(|d| now.checked_add(d));
            let (tx, rx) = mpsc::channel();
            st.queues[priority.index()].push_back(Queued {
                x,
                seed,
                id,
                enqueued: now,
                deadline,
                reply: tx,
                trace,
            });
            Counters::bump(&shared.counters.queued, 1);
            drop(st);
            shared.work.notify_all();
            return Ok(Pending { rx, id: Some(id) });
        }
    }
}

/// An in-flight submission builder; see [`Handle::request`].
pub struct Submission<'h> {
    handle: &'h Handle,
    x: Tensor,
    priority: Priority,
    deadline: Option<Duration>,
    seed: Option<u64>,
    trace: u64,
}

impl Submission<'_> {
    /// Set the admission class (default [`Priority::Normal`]).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Give the request a queue deadline, measured from submission:
    /// if it is still queued when the deadline passes, it resolves
    /// [`ServeError::DeadlineExceeded`] instead of being served.
    /// (A request already taken into a micro-batch is served to
    /// completion — deadlines bound *queue* time, not service time.)
    pub fn deadline(mut self, after: Duration) -> Self {
        self.deadline = Some(after);
        self
    }

    /// Pin the request's mask-stream seed (default: derived via
    /// [`request_seed`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Attach a root trace span id (from [`bnn_trace::new_span`]):
    /// the dispatcher's queue-wait / batch-form / compute / write
    /// spans for this request parent under it. 0 (the default) means
    /// untraced — spans still record while tracing is enabled, just
    /// parentless. Trace ids never influence the reply.
    pub fn trace(mut self, span: u64) -> Self {
        self.trace = span;
        self
    }

    /// Submit, blocking while the queue is at capacity with nothing
    /// to shed. Non-queue rejections (shutdown, tripped breaker)
    /// come back as an immediately-resolved [`Pending`].
    pub fn submit(self) -> Pending {
        match self.handle.submit(
            self.x,
            self.seed,
            self.priority,
            self.deadline,
            self.trace,
            true,
        ) {
            Ok(pending) => pending,
            Err(err) => resolved_pending(err.error),
        }
    }

    /// Submit without blocking: a full queue with no lower-priority
    /// victim rejects with [`ServeError::Rejected`] and the input
    /// handed back.
    pub fn try_submit(self) -> Result<Pending, SubmitError> {
        self.handle.submit(
            self.x,
            self.seed,
            self.priority,
            self.deadline,
            self.trace,
            false,
        )
    }
}

/// A [`Pending`] that resolves immediately to `error` (the submission
/// was never accepted; no id was assigned).
fn resolved_pending(error: ServeError) -> Pending {
    let (tx, rx) = mpsc::channel();
    let _ = tx.send(Err(error));
    Pending { rx, id: None }
}

/// Builder for a [`Server`]; see [`Server::for_graph`].
pub struct ServerBuilder {
    graph: Arc<Graph>,
    backend: ServeBackend,
    bayes: BayesConfig,
    parallel: ParallelConfig,
    policy: BatchPolicy,
    seed: u64,
    pool: Option<Arc<WorkerPool>>,
    breaker_after: usize,
    chaos: Option<ChaosConfig>,
}

impl ServerBuilder {
    /// Select the resident execution substrate (default:
    /// [`ServeBackend::Fused`], the fastest software path for the
    /// serving common case of large `S` over single inputs).
    pub fn backend(mut self, backend: ServeBackend) -> ServerBuilder {
        self.backend = backend;
        self
    }

    /// Bayesian configuration `{L, S, p}` served to every request
    /// (default: `L = 1, S = 10, p = 0.25`).
    pub fn bayes(mut self, bayes: BayesConfig) -> ServerBuilder {
        self.bayes = bayes;
        self
    }

    /// The engine schedule each micro-batch runs under:
    /// `batch_threads` fans the coalesced requests out over forked
    /// backends, `threads` splits each request's samples (default:
    /// serial; replies are bit-identical at any setting).
    pub fn parallel(mut self, parallel: ParallelConfig) -> ServerBuilder {
        self.parallel = parallel;
        self
    }

    /// The micro-batching policy (default: [`BatchPolicy::default`]).
    pub fn policy(mut self, policy: BatchPolicy) -> ServerBuilder {
        self.policy = policy;
        self
    }

    /// Base seed for per-request mask-stream derivation
    /// ([`request_seed`]; default 0).
    pub fn seed(mut self, seed: u64) -> ServerBuilder {
        self.seed = seed;
        self
    }

    /// Share an existing [`WorkerPool`] instead of letting the server
    /// create its own (e.g. the pool of a `Session` serving batch
    /// jobs next to this front door).
    pub fn pool(mut self, pool: Arc<WorkerPool>) -> ServerBuilder {
        self.pool = Some(pool);
        self
    }

    /// Trip the circuit breaker after this many *consecutive*
    /// micro-batch panics (default 8; normalized to at least 1; a
    /// successful batch resets the count; `usize::MAX` effectively
    /// disables the breaker). Once tripped, queued requests are
    /// failed fast with [`ServeError::BackendFailed`] and new
    /// submissions are rejected at the door.
    pub fn breaker_after(mut self, consecutive_panics: usize) -> ServerBuilder {
        self.breaker_after = consecutive_panics;
        self
    }

    /// Wrap the resident backend in a [`ChaosBackend`] injecting
    /// seeded panics and delays per `chaos` — the deterministic
    /// fault-injection hook the chaos suite drives. Not for
    /// production serving.
    pub fn chaos(mut self, chaos: ChaosConfig) -> ServerBuilder {
        self.chaos = Some(chaos);
        self
    }

    /// Start the dispatcher thread and return the running server.
    pub fn start(self) -> Server {
        let policy = self.policy.normalized();
        let parallel = self.parallel.normalized();
        let pool = self
            .pool
            .unwrap_or_else(|| Arc::new(WorkerPool::new(parallel.pool_workers())));
        let shared = Arc::new(SharedQ {
            state: Mutex::new(QState {
                queues: Default::default(),
                closed: false,
                tripped: false,
                next_id: 0,
                last_arrival: None,
                arrival_gap: None,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            queue_cap: policy.queue_cap,
            base_seed: self.seed,
            adaptive_window: policy.adaptive_window,
            counters: Counters::default(),
        });
        let ctx = DispatchCtx {
            shared: Arc::clone(&shared),
            bayes: self.bayes,
            parallel,
            policy,
            pool: Arc::clone(&pool),
            breaker_after: self.breaker_after.max(1),
        };
        let graph = self.graph;
        let backend = self.backend;
        let backend_name = match &backend {
            ServeBackend::Float => "float",
            ServeBackend::Fused => "fused",
            ServeBackend::Int8(_) => "int8",
            ServeBackend::Accel(_) => "accel",
        };
        let chaos = self.chaos;
        // audit:allow(concurrency) one resident dispatcher thread per Server — an owner loop, not data-parallel fan-out (which routes through WorkerPool).
        let dispatcher = std::thread::Builder::new()
            .name("bnn-serve".into())
            .spawn(move || match backend {
                ServeBackend::Float => launch(FloatBackend::new(&graph), chaos, &ctx),
                ServeBackend::Fused => launch(FusedBackend::new(&graph), chaos, &ctx),
                ServeBackend::Int8(qgraph) => launch(Int8Backend::new(qgraph), chaos, &ctx),
                ServeBackend::Accel(accel) => launch(AccelBackend::new(accel), chaos, &ctx),
            })
            // audit:allow(panic) OS thread creation at Server construction: no dispatcher exists yet to field requests, so there is no typed reply path — failing the build loudly is the only option.
            .expect("spawn serve dispatcher");
        Server {
            shared,
            pool,
            dispatcher: Some(dispatcher),
            backend_name,
        }
    }
}

/// Everything the dispatcher thread needs besides its backend.
struct DispatchCtx {
    shared: Arc<SharedQ>,
    bayes: BayesConfig,
    parallel: ParallelConfig,
    policy: BatchPolicy,
    pool: Arc<WorkerPool>,
    /// Consecutive micro-batch panics that trip the breaker.
    breaker_after: usize,
}

/// Enter the dispatcher, optionally under chaos fault injection (one
/// generic wrapping point for every substrate).
fn launch<B: BayesBackend + Send>(backend: B, chaos: Option<ChaosConfig>, ctx: &DispatchCtx) {
    match chaos {
        Some(cfg) => dispatch(ChaosBackend::new(backend, cfg), ctx),
        None => dispatch(backend, ctx),
    }
}

/// A running serving front door: one dispatcher thread, one resident
/// backend, one bounded request queue.
///
/// Construct with [`Server::for_graph`]; submit through
/// [`Server::handle`]. Dropping the server shuts it down gracefully
/// (queue closed, accepted requests drained, dispatcher joined).
pub struct Server {
    shared: Arc<SharedQ>,
    pool: Arc<WorkerPool>,
    dispatcher: Option<JoinHandle<()>>,
    backend_name: &'static str,
}

impl Server {
    /// Start building a server over a graph (the f32 source of truth;
    /// [`ServeBackend::Int8`] / [`ServeBackend::Accel`] carry their
    /// own compiled artefacts lowered from it).
    pub fn for_graph(graph: Arc<Graph>) -> ServerBuilder {
        ServerBuilder {
            graph,
            backend: ServeBackend::Fused,
            bayes: BayesConfig::new(1, 10),
            parallel: ParallelConfig::default(),
            policy: BatchPolicy::default(),
            seed: 0,
            pool: None,
            breaker_after: 8,
            chaos: None,
        }
    }

    /// A new submission handle (cheap; clone freely across client
    /// threads).
    pub fn handle(&self) -> Handle {
        Handle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The server's worker pool (shareable with sessions).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Requests currently queued — accepted but not yet taken into a
    /// micro-batch (in-flight batches are not counted). An
    /// observability hook for load shedding and tests.
    pub fn queued(&self) -> usize {
        lock(&self.shared.state).len()
    }

    /// Snapshot of the admission counters (served / shed / expired /
    /// failed / rejected since start) and the backlog gauges
    /// (queued / in-flight right now).
    pub fn stats(&self) -> ServeStats {
        self.shared.counters.snapshot()
    }

    /// The base seed auto-derived request mask streams spring from
    /// ([`request_seed`]`(base_seed, id)`) — exposed so a wire layer
    /// can echo the effective seed of any reply it forwards.
    pub fn base_seed(&self) -> u64 {
        self.shared.base_seed
    }

    /// Name of the resident execution substrate (`"float"`,
    /// `"fused"`, `"int8"` or `"accel"` — the same names the
    /// session-level API reports).
    pub fn backend_name(&self) -> &'static str {
        self.backend_name
    }

    /// Whether the circuit breaker has tripped (the server now fails
    /// fast; see [`ServerBuilder::breaker_after`]).
    pub fn breaker_tripped(&self) -> bool {
        lock(&self.shared.state).tripped
    }

    /// Drain every thread's buffered trace spans as a Chrome
    /// trace-event JSON document (loadable at `chrome://tracing` or
    /// Perfetto) — the in-process counterpart of the net layer's
    /// `GET /trace`. Empty `traceEvents` unless tracing is enabled
    /// ([`bnn_trace::set_enabled`]); draining clears the rings, so
    /// consecutive calls partition the span stream.
    pub fn drain_trace(&self) -> String {
        bnn_trace::drain_chrome_json()
    }

    /// Graceful shutdown: close the queue (new submissions fail
    /// [`ServeError::Shutdown`]), serve every already-accepted
    /// request (queue deadlines still honoured mid-drain), and join
    /// the dispatcher.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.closed = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            // The dispatcher only exits through its drain path; a join
            // error would mean it panicked outside the per-batch
            // catch_unwind, in which case waiting callers resolve to
            // Shutdown through their dropped channels.
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = lock(&self.shared.state);
        f.debug_struct("Server")
            .field("queued", &st.len())
            .field("closed", &st.closed)
            .field("tripped", &st.tripped)
            .field("next_id", &st.next_id)
            .field("pool_workers", &self.pool.workers())
            .finish()
    }
}

/// Dispatcher body: form micro-batches until the closed queue drains,
/// counting consecutive batch panics into the circuit breaker.
fn dispatch<B: BayesBackend + Send>(mut backend: B, ctx: &DispatchCtx) {
    let mut consecutive_panics = 0usize;
    while let Some(batch) = next_batch(&ctx.shared, &ctx.policy) {
        if serve_batch(&mut backend, batch, ctx) {
            consecutive_panics = 0;
        } else {
            consecutive_panics += 1;
            if consecutive_panics >= ctx.breaker_after {
                trip_breaker(&ctx.shared);
            }
        }
    }
}

/// Trip the circuit breaker: queued and future work now fails fast.
/// Both condvars are notified — the dispatcher must wake to drain the
/// queue with `BackendFailed`, and backpressure-blocked producers
/// must wake to be rejected.
fn trip_breaker(shared: &SharedQ) {
    lock(&shared.state).tripped = true;
    shared.work.notify_all();
    shared.space.notify_all();
}

/// Resolve every queued request whose deadline has passed with
/// [`ServeError::DeadlineExceeded`]; returns how many expired.
fn expire_overdue(st: &mut QState, shared: &SharedQ) -> usize {
    let now = Instant::now();
    // Bump the counter *before* delivering any reply: a waiter woken
    // by its `DeadlineExceeded` may read `Server::stats()` immediately.
    let mut overdue = Vec::new();
    for queue in st.queues.iter_mut() {
        queue.retain(|q| {
            if q.deadline.is_some_and(|d| d <= now) {
                overdue.push(q.reply.clone());
                false
            } else {
                true
            }
        });
    }
    let expired = overdue.len();
    if expired > 0 {
        Counters::bump(&shared.counters.expired, expired as u64);
        Counters::drop_gauge(&shared.counters.queued, expired as u64);
        for reply in overdue {
            let _ = reply.send(Err(ServeError::DeadlineExceeded));
        }
        shared.space.notify_all();
    }
    expired
}

/// Fail-fast drain after the breaker tripped: every queued request
/// resolves [`ServeError::BackendFailed`] immediately.
fn fail_queued(st: &mut QState, shared: &SharedQ) {
    // Counter first, replies second: a woken waiter may read
    // `Server::stats()` immediately (same ordering as `serve_batch`
    // and `expire_overdue`).
    let dropped: Vec<_> = st
        .queues
        .iter_mut()
        .flat_map(|queue| queue.drain(..))
        .collect();
    if !dropped.is_empty() {
        Counters::bump(&shared.counters.failed, dropped.len() as u64);
        Counters::drop_gauge(&shared.counters.queued, dropped.len() as u64);
        for q in dropped {
            let _ = q.reply.send(Err(ServeError::BackendFailed));
        }
        shared.space.notify_all();
    }
}

/// The coalescing window the dispatcher holds this batch open for:
/// the fixed [`BatchPolicy::max_wait`], unless the adaptive window is
/// enabled and traffic is sparse — estimated inter-arrival gap longer
/// than the window itself (or no estimate yet, the cold-start case) —
/// in which case holding the batch open cannot plausibly attract a
/// coalescing partner and the window collapses to zero.
fn effective_wait(policy: &BatchPolicy, arrival_gap: Option<f64>) -> Duration {
    if !policy.adaptive_window {
        return policy.max_wait;
    }
    match arrival_gap {
        Some(gap) if gap <= policy.max_wait.as_secs_f64() => policy.max_wait,
        _ => Duration::ZERO,
    }
}

/// Pop the next micro-batch: block for work, expire overdue requests,
/// then hold the batch open for late arrivals up to the effective
/// window from the oldest request (unless the batch fills, the server
/// is draining or tripped, or the queue reaches its cap — at the cap
/// no producer can enqueue until we drain, so further waiting would
/// be pure dead time for every queued request *and* every
/// backpressure-blocked producer). Requests are dequeued highest
/// priority first, FIFO within a class. Returns `None` when the queue
/// is closed and empty.
fn next_batch(shared: &SharedQ, policy: &BatchPolicy) -> Option<Vec<Queued>> {
    // The size past which this batch cannot grow while we hold the
    // window open.
    let full = policy.max_batch.min(shared.queue_cap);
    let mut st = lock(&shared.state);
    'accept: loop {
        // Admission sweep: get a non-empty, non-tripped queue (or
        // exit once closed and drained).
        loop {
            if st.tripped {
                fail_queued(&mut st, shared);
            }
            expire_overdue(&mut st, shared);
            if !st.is_empty() && !st.tripped {
                break;
            }
            if st.closed && st.is_empty() {
                return None;
            }
            st = shared
                .work
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if !policy.max_wait.is_zero() {
            while !st.closed && !st.tripped && st.len() < full {
                // Remaining window, derived from elapsed time instead
                // of a materialized deadline `Instant`: `enqueued +
                // max_wait` would overflow (and panic the dispatcher)
                // for huge `max_wait` values like `Duration::MAX`
                // ("hold until full"). Re-evaluated each iteration so
                // a fresh arrival-rate estimate can collapse an
                // adaptive window mid-hold.
                let window = effective_wait(policy, st.arrival_gap);
                // The loop guard keeps the queue non-empty here, but a
                // dispatcher panic is never the right failure mode:
                // treat an empty queue as a closed window.
                let Some(oldest) = st.oldest() else { break };
                let remaining = window.saturating_sub(oldest.elapsed());
                if remaining.is_zero() {
                    break;
                }
                // Each wait is capped ([`WINDOW_WAIT_STEP_CAP`]) and
                // bounded by the earliest queued deadline so expiry
                // resolves promptly; the loop re-derives the
                // remainder, so a capped timeout just re-checks.
                let mut step = remaining.min(WINDOW_WAIT_STEP_CAP);
                if let Some(deadline) = st.nearest_deadline() {
                    step = step.min(deadline.saturating_duration_since(Instant::now()));
                }
                st = shared
                    .work
                    .wait_timeout(st, step)
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0;
                expire_overdue(&mut st, shared);
                if st.is_empty() {
                    // Everything expired out from under the window.
                    continue 'accept;
                }
            }
            if st.tripped || st.is_empty() {
                continue 'accept;
            }
        }
        let take = st.len().min(policy.max_batch);
        let mut batch = Vec::with_capacity(take);
        while batch.len() < take {
            // `take` is bounded by `len`, so the queue can't run dry
            // mid-drain; if it somehow did, serving a short batch
            // still beats panicking the dispatcher.
            let Some(req) = st.pop_highest() else { break };
            batch.push(req);
        }
        // Gauge handoff under the queue lock: the popped requests
        // leave `queued` and enter `in_flight` atomically with the
        // queue mutation, so the two gauges never double-count a
        // request between them.
        Counters::drop_gauge(&shared.counters.queued, batch.len() as u64);
        Counters::bump(&shared.counters.in_flight, batch.len() as u64);
        drop(st);
        shared.space.notify_all();
        if bnn_trace::enabled() {
            // Queue-wait spans, recorded outside the queue lock: one
            // per dequeued request, spanning enqueue to dequeue.
            let now = bnn_trace::clock::now_us();
            for q in &batch {
                let dur = q.enqueued.elapsed().as_micros() as u64;
                bnn_trace::record(
                    bnn_trace::Stage::QueueWait,
                    bnn_trace::new_span(),
                    q.trace,
                    now.saturating_sub(dur),
                    dur,
                    0,
                );
            }
        }
        return Some(batch);
    }
}

/// Serve one micro-batch through the request-coalescing engine pass
/// and deliver each caller its reply. A backend panic fails the
/// batch's requests ([`ServeError::BackendFailed`]) but not the
/// dispatcher. Returns whether the batch was served cleanly (the
/// breaker counts the `false`s).
fn serve_batch<B: BayesBackend + Send>(
    backend: &mut B,
    batch: Vec<Queued>,
    ctx: &DispatchCtx,
) -> bool {
    let coalesced = batch.len();
    let form_start = bnn_trace::start();
    let requests: Vec<SeededRequest<'_>> = batch
        .iter()
        .map(|q| SeededRequest {
            x: &q.x,
            seed: q.seed,
        })
        .collect();
    let compute_start = bnn_trace::start();
    if let (Some(f0), Some(c0)) = (form_start, compute_start) {
        // Batch-form spans: dequeue to compute start, one per
        // request, carrying the coalesce size as payload.
        for q in &batch {
            bnn_trace::record(
                bnn_trace::Stage::BatchForm,
                bnn_trace::new_span(),
                q.trace,
                f0,
                c0.saturating_sub(f0),
                coalesced as u64,
            );
        }
    }
    let served = catch_unwind(AssertUnwindSafe(|| {
        serve_requests_pooled(backend, &requests, ctx.bayes, ctx.parallel, &ctx.pool)
    }));
    drop(requests);
    if let Some(c0) = compute_start {
        // Compute spans: the engine pass serving this micro-batch,
        // one per coalesced request (same interval, distinct roots).
        let now = bnn_trace::clock::now_us();
        for q in &batch {
            bnn_trace::record(
                bnn_trace::Stage::Compute,
                bnn_trace::new_span(),
                q.trace,
                c0,
                now.saturating_sub(c0),
                coalesced as u64,
            );
        }
    }
    match served {
        Ok(outs) => {
            // Counter and gauge move before any reply is delivered
            // (a woken waiter may read `Server::stats()` immediately).
            Counters::bump(&ctx.shared.counters.served, coalesced as u64);
            Counters::drop_gauge(&ctx.shared.counters.in_flight, coalesced as u64);
            for (q, out) in batch.into_iter().zip(outs) {
                let uncertainty = Uncertainty::summarize(&out.probs, &out.passes, 0);
                let write_start = bnn_trace::start();
                let trace = q.trace;
                let _ = q.reply.send(Ok(Reply {
                    id: q.id,
                    probs: out.probs,
                    uncertainty,
                    cost: out.cost,
                    coalesced,
                }));
                bnn_trace::finish(write_start, bnn_trace::Stage::Write, trace, 0);
            }
            true
        }
        Err(_) => {
            Counters::bump(&ctx.shared.counters.failed, coalesced as u64);
            Counters::drop_gauge(&ctx.shared.counters.in_flight, coalesced as u64);
            for q in batch {
                let _ = q.reply.send(Err(ServeError::BackendFailed));
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_mcd::{predictive_on, SoftwareMaskSource};
    use bnn_nn::models;
    use bnn_tensor::Shape4;

    fn test_net() -> Graph {
        models::lenet5(10, 1, 16, 5)
    }

    fn test_input(fill: f32) -> Tensor {
        Tensor::full(Shape4::new(1, 1, 16, 16), fill)
    }

    /// Solo reference: the bit-exact prediction for `(x, seed)`.
    fn solo(net: &Graph, x: &Tensor, cfg: BayesConfig, seed: u64) -> Tensor {
        let mut backend = FloatBackend::new(net);
        predictive_on(
            &mut backend,
            x,
            cfg,
            &mut SoftwareMaskSource::new(seed),
            ParallelConfig::serial(),
        )
        .0
    }

    #[test]
    fn served_reply_matches_solo_prediction() {
        let net = Arc::new(test_net());
        let cfg = BayesConfig::new(2, 6);
        let server = Server::for_graph(Arc::clone(&net))
            .backend(ServeBackend::Fused)
            .bayes(cfg)
            .seed(9)
            .start();
        let handle = server.handle();
        let x = test_input(0.2);
        let reply = handle
            .predict_seeded(x.clone(), 1234)
            .wait()
            .expect("served");
        let want = solo(&net, &x, cfg, 1234);
        assert_eq!(reply.probs.as_slice(), want.as_slice());
        assert_eq!(reply.cost.samples, cfg.s);
        assert!(reply.coalesced >= 1);
        // Uncertainty summary is consistent with the probabilities.
        let (pred, conf) = bnn_mcd::uncertainty::max_prob(reply.probs.item(0));
        assert_eq!(reply.uncertainty.predicted, pred);
        assert_eq!(reply.uncertainty.confidence, conf);
        server.shutdown();
    }

    #[test]
    fn auto_seeds_follow_the_documented_derivation() {
        let net = Arc::new(test_net());
        let cfg = BayesConfig::new(2, 4);
        let base = 77u64;
        let server = Server::for_graph(Arc::clone(&net))
            .bayes(cfg)
            .seed(base)
            .start();
        let handle = server.handle();
        let x = test_input(0.1);
        let pending = handle.predict(x.clone());
        let id = pending.id().expect("accepted submissions carry an id");
        let reply = pending.wait().expect("served");
        assert_eq!(reply.id, id);
        let want = solo(&net, &x, cfg, request_seed(base, id));
        assert_eq!(
            reply.probs.as_slice(),
            want.as_slice(),
            "auto-derived seed must be reproducible offline"
        );
        server.shutdown();
    }

    #[test]
    fn coalescing_window_holds_until_shutdown_drains() {
        let net = Arc::new(test_net());
        // max_batch 3 with a long window and a roomy queue: the
        // dispatcher holds the under-full batch open (2 < 3 and the
        // cap is far), so the two requests deterministically coalesce
        // when shutdown closes the window and drains.
        let server = Server::for_graph(Arc::clone(&net))
            .bayes(BayesConfig::new(1, 2))
            .policy(BatchPolicy {
                max_batch: 3,
                max_wait: Duration::from_secs(30),
                queue_cap: 8,
                ..BatchPolicy::default()
            })
            .start();
        let handle = server.handle();
        let a = handle.predict_seeded(test_input(0.1), 1);
        let b = handle.predict_seeded(test_input(0.2), 2);
        server.shutdown();
        let ra = a.wait().expect("drained on shutdown");
        let rb = b.wait().expect("drained on shutdown");
        assert_eq!(ra.coalesced, 2);
        assert_eq!(rb.coalesced, 2);
        assert_eq!(
            ra.probs.as_slice(),
            solo(&net, &test_input(0.1), BayesConfig::new(1, 2), 1).as_slice()
        );
        assert_eq!(
            rb.probs.as_slice(),
            solo(&net, &test_input(0.2), BayesConfig::new(1, 2), 2).as_slice()
        );
    }

    #[test]
    fn window_closes_at_queue_cap_instead_of_stalling() {
        let net = Arc::new(test_net());
        // queue_cap 2 below max_batch 3: once two requests are queued
        // the batch cannot grow (no producer can enqueue until a
        // drain), so the dispatcher must serve immediately instead of
        // sleeping out the absurd 1-hour window. A stall here trips
        // the surrounding test timeout; the replies prove both were
        // served as one batch.
        let server = Server::for_graph(Arc::clone(&net))
            .bayes(BayesConfig::new(1, 2))
            .policy(BatchPolicy {
                max_batch: 3,
                max_wait: Duration::from_secs(3600),
                queue_cap: 2,
                ..BatchPolicy::default()
            })
            .start();
        let handle = server.handle();
        let a = handle.predict_seeded(test_input(0.1), 1);
        let b = handle.predict_seeded(test_input(0.2), 2);
        let ra = a.wait().expect("served");
        let rb = b.wait().expect("served");
        assert!(ra.coalesced <= 2 && rb.coalesced <= 2);
        assert_eq!(
            ra.probs.as_slice(),
            solo(&net, &test_input(0.1), BayesConfig::new(1, 2), 1).as_slice()
        );
        server.shutdown();
        assert_eq!(rb.id, 1);
    }

    #[test]
    fn astronomical_max_wait_means_hold_until_full() {
        let net = Arc::new(test_net());
        // `Duration::MAX` as "hold the batch open until it fills":
        // must not overflow the dispatcher's deadline arithmetic. The
        // window closes on fill for the pair, and shutdown drains the
        // straggler.
        let cfg = BayesConfig::new(1, 2);
        let server = Server::for_graph(Arc::clone(&net))
            .bayes(cfg)
            .policy(BatchPolicy {
                max_batch: 2,
                max_wait: Duration::MAX,
                queue_cap: 8,
                ..BatchPolicy::default()
            })
            .start();
        let handle = server.handle();
        let a = handle.predict_seeded(test_input(0.1), 1);
        let b = handle.predict_seeded(test_input(0.2), 2);
        let ra = a.wait().expect("batch filled");
        let rb = b.wait().expect("batch filled");
        assert!(ra.coalesced <= 2 && rb.coalesced <= 2);
        assert_eq!(
            ra.probs.as_slice(),
            solo(&net, &test_input(0.1), cfg, 1).as_slice()
        );
        let straggler = handle.predict_seeded(test_input(0.3), 3);
        server.shutdown();
        let rc = straggler.wait().expect("drained on shutdown");
        assert_eq!(
            rc.probs.as_slice(),
            solo(&net, &test_input(0.3), cfg, 3).as_slice()
        );
    }

    #[test]
    fn backpressure_rejects_while_dispatcher_is_busy() {
        let net = Arc::new(test_net());
        // A slow micro-batch (large S) occupies the dispatcher; the
        // bounded queue then fills behind it and try_predict must
        // reject, handing the input back.
        let cfg = BayesConfig::new(1, 800);
        let server = Server::for_graph(Arc::clone(&net))
            .bayes(cfg)
            .policy(BatchPolicy {
                max_batch: 2,
                max_wait: Duration::ZERO,
                queue_cap: 2,
                ..BatchPolicy::default()
            })
            .start();
        let handle = server.handle();
        let a = handle.predict_seeded(test_input(0.1), 1);
        // Wait until the dispatcher has taken the first request into
        // its (long-running) batch, then fill the queue behind it.
        while server.queued() > 0 {
            std::thread::yield_now();
        }
        let b = handle.predict_seeded(test_input(0.2), 2);
        let c = handle.predict_seeded(test_input(0.3), 3);
        match handle.try_predict(test_input(0.4)) {
            Err(SubmitError {
                error: ServeError::Rejected,
                input,
            }) => assert_eq!(input.shape().n, 1),
            other => panic!("expected Rejected, got {other:?}"),
        }
        // Everything accepted is served bit-exactly once the backlog
        // drains.
        for (pending, fill, seed) in [(a, 0.1f32, 1u64), (b, 0.2, 2), (c, 0.3, 3)] {
            let reply = pending.wait().expect("served");
            assert_eq!(
                reply.probs.as_slice(),
                solo(&net, &test_input(fill), cfg, seed).as_slice()
            );
        }
        server.shutdown();
    }

    #[test]
    fn submissions_after_shutdown_resolve_closed() {
        let net = Arc::new(test_net());
        let server = Server::for_graph(net).bayes(BayesConfig::new(1, 2)).start();
        let handle = server.handle();
        server.shutdown();
        assert_eq!(
            handle.predict(test_input(0.1)).wait().map(|_| ()),
            Err(ServeError::Shutdown)
        );
        match handle.try_predict(test_input(0.1)) {
            Err(SubmitError {
                error: ServeError::Shutdown,
                input,
            }) => assert_eq!(input.shape().n, 1),
            other => panic!("expected Shutdown, got {other:?}"),
        }
    }

    #[test]
    fn effective_wait_gates_on_the_arrival_estimate() {
        let fixed = BatchPolicy {
            max_wait: Duration::from_millis(5),
            ..BatchPolicy::default()
        };
        // Adaptive off: the estimate is ignored.
        assert_eq!(effective_wait(&fixed, None), fixed.max_wait);
        assert_eq!(effective_wait(&fixed, Some(100.0)), fixed.max_wait);
        let adaptive = BatchPolicy {
            adaptive_window: true,
            ..fixed
        };
        // Cold start and sparse traffic collapse the window; dense
        // traffic keeps it.
        assert_eq!(effective_wait(&adaptive, None), Duration::ZERO);
        assert_eq!(effective_wait(&adaptive, Some(10.0)), Duration::ZERO);
        assert_eq!(effective_wait(&adaptive, Some(0.000_1)), adaptive.max_wait);
        // `Duration::MAX` as the window must not panic the gate.
        let hold_until_full = BatchPolicy {
            adaptive_window: true,
            max_wait: Duration::MAX,
            ..BatchPolicy::default()
        };
        assert_eq!(
            effective_wait(&hold_until_full, Some(3600.0)),
            Duration::MAX
        );
    }

    #[test]
    fn priority_orders_and_sheds_below() {
        assert!(Priority::Low < Priority::Normal && Priority::Normal < Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
        let mut st = QState {
            queues: Default::default(),
            closed: false,
            tripped: false,
            next_id: 0,
            last_arrival: None,
            arrival_gap: None,
        };
        let queued = |id: u64| {
            let (tx, _rx) = mpsc::channel();
            Queued {
                x: Tensor::zeros(bnn_tensor::Shape4::new(1, 1, 1, 1)),
                seed: 0,
                id,
                enqueued: Instant::now(),
                deadline: None,
                reply: tx,
                trace: 0,
            }
        };
        st.queues[Priority::Low.index()].push_back(queued(0));
        st.queues[Priority::Low.index()].push_back(queued(1));
        st.queues[Priority::Normal.index()].push_back(queued(2));
        st.queues[Priority::High.index()].push_back(queued(3));
        // High outranks nothing above it; shedding takes the
        // *youngest* of the *lowest* class strictly below.
        assert_eq!(st.shed_below(Priority::High).map(|q| q.id), Some(1));
        assert_eq!(st.shed_below(Priority::Low).map(|q| q.id), None);
        // Dequeue order: High, then Normal, then the remaining Low.
        let order: Vec<u64> = std::iter::from_fn(|| st.pop_highest().map(|q| q.id)).collect();
        assert_eq!(order, vec![3, 2, 0]);
    }

    #[test]
    fn retry_policy_retries_rejected_only() {
        let policy = RetryPolicy {
            attempts: 4,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(50),
            seed: 7,
        };
        // Rejected twice, then accepted: three attempts total.
        let mut calls = 0;
        let out = policy.run(|| {
            calls += 1;
            if calls < 3 {
                Err(SubmitError {
                    error: ServeError::Rejected,
                    input: Tensor::zeros(bnn_tensor::Shape4::new(1, 1, 1, 1)),
                })
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out.unwrap(), 3);
        // Rejected forever: the budget is spent, the last error
        // surfaces.
        let mut calls = 0;
        let out: Result<(), _> = policy.run(|| {
            calls += 1;
            Err(SubmitError {
                error: ServeError::Rejected,
                input: Tensor::zeros(bnn_tensor::Shape4::new(1, 1, 1, 1)),
            })
        });
        assert_eq!(calls, 4);
        assert_eq!(out.unwrap_err().error, ServeError::Rejected);
        // Non-retryable errors surface immediately.
        let mut calls = 0;
        let out: Result<(), _> = policy.run(|| {
            calls += 1;
            Err(SubmitError {
                error: ServeError::Shutdown,
                input: Tensor::zeros(bnn_tensor::Shape4::new(1, 1, 1, 1)),
            })
        });
        assert_eq!(calls, 1);
        assert_eq!(out.unwrap_err().error, ServeError::Shutdown);
    }

    #[test]
    fn serve_errors_are_std_errors() {
        use std::error::Error;
        let submit = SubmitError {
            error: ServeError::Rejected,
            input: Tensor::zeros(bnn_tensor::Shape4::new(1, 1, 1, 1)),
        };
        assert!(submit.to_string().contains("admission control"));
        assert_eq!(
            submit.source().map(|s| s.to_string()),
            Some(ServeError::Rejected.to_string())
        );
        assert_eq!(submit.into_input().shape().n, 1);
        for err in [
            ServeError::Rejected,
            ServeError::DeadlineExceeded,
            ServeError::BackendFailed,
            ServeError::Shutdown,
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    /// Regression for the window-wait step cap: with the adaptive
    /// window enabled, a collapse of the arrival estimate *mid-hold*
    /// must wake the dispatcher promptly — the loop re-derives the
    /// effective window on every condvar wake rather than sleeping
    /// out the remainder it computed before the collapse. Drives
    /// `next_batch` directly so the collapse is injected
    /// deterministically (in live serving the estimate only moves on
    /// a submission, which also notifies `work`).
    #[test]
    fn adaptive_collapse_mid_hold_wakes_dispatcher() {
        let policy = BatchPolicy {
            max_batch: 8,
            // Far longer than the test watchdog: if the dispatcher
            // sleeps out the pre-collapse remainder, the recv below
            // times out and the test fails.
            max_wait: Duration::from_secs(600),
            queue_cap: 64,
            adaptive_window: true,
        }
        .normalized();
        let shared = Arc::new(SharedQ {
            state: Mutex::new(QState {
                queues: Default::default(),
                closed: false,
                tripped: false,
                next_id: 0,
                last_arrival: None,
                // Dense-traffic estimate: the window starts held open.
                arrival_gap: Some(1e-6),
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            queue_cap: policy.queue_cap,
            base_seed: 0,
            adaptive_window: true,
            counters: Counters::default(),
        });
        let (reply_tx, _reply_rx) = mpsc::channel();
        {
            let mut st = lock(&shared.state);
            st.queues[Priority::Normal.index()].push_back(Queued {
                x: Tensor::zeros(Shape4::new(1, 1, 1, 1)),
                seed: 0,
                id: 0,
                enqueued: Instant::now(),
                deadline: None,
                reply: reply_tx,
                trace: 0,
            });
        }
        let dispatcher_shared = Arc::clone(&shared);
        let (batch_tx, batch_rx) = mpsc::channel();
        let dispatcher = std::thread::spawn(move || {
            let batch = next_batch(&dispatcher_shared, &policy);
            let _ = batch_tx.send(batch.map(|b| b.len()));
        });
        // The dispatcher is holding the window open: no batch yet.
        assert_eq!(
            batch_rx.recv_timeout(Duration::from_millis(200)),
            Err(mpsc::RecvTimeoutError::Timeout),
            "window should be held open under a dense arrival estimate"
        );
        // Collapse the estimate mid-hold (sparse traffic) and wake
        // the dispatcher, exactly as a submission would.
        {
            let mut st = lock(&shared.state);
            st.arrival_gap = Some(1e9);
        }
        shared.work.notify_all();
        assert_eq!(
            batch_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("dispatcher must wake promptly on collapse, not sleep out the remainder"),
            Some(1)
        );
        dispatcher.join().expect("dispatcher thread");
    }

    #[test]
    fn stats_gauges_track_queue_and_flight() {
        let net = Arc::new(test_net());
        // A slow micro-batch (large S) pins the dispatcher while we
        // inspect the gauges behind it.
        let cfg = BayesConfig::new(1, 800);
        let server = Server::for_graph(Arc::clone(&net))
            .bayes(cfg)
            .policy(BatchPolicy {
                max_batch: 1,
                max_wait: Duration::ZERO,
                queue_cap: 8,
                ..BatchPolicy::default()
            })
            .start();
        let handle = server.handle();
        let a = handle.predict_seeded(test_input(0.1), 1);
        // Wait for the dispatcher to take request `a` in flight.
        while server.stats().in_flight == 0 {
            std::thread::yield_now();
        }
        let b = handle.predict_seeded(test_input(0.2), 2);
        let c = handle.predict_seeded(test_input(0.3), 3);
        let stats = server.stats();
        assert_eq!(stats.queued, 2, "b and c wait behind the slow batch");
        assert_eq!(stats.in_flight, 1, "a is being served");
        // Handles read the same counters.
        assert_eq!(handle.stats().queued, 2);
        for pending in [a, b, c] {
            pending.wait().expect("served");
        }
        let quiesced = server.stats();
        assert_eq!(quiesced.served, 3);
        assert_eq!(quiesced.queued, 0, "gauges return to zero at quiesce");
        assert_eq!(quiesced.in_flight, 0);
        server.shutdown();
    }

    #[test]
    fn fixed_window_skips_arrival_tracking() {
        let net = Arc::new(test_net());
        let server = Server::for_graph(net).bayes(BayesConfig::new(1, 2)).start();
        let handle = server.handle();
        handle.predict(test_input(0.1)).wait().expect("served");
        handle.predict(test_input(0.2)).wait().expect("served");
        let st = lock(&server.shared.state);
        assert_eq!(
            st.last_arrival, None,
            "fixed-window servers must not pay the arrival tracker"
        );
        assert_eq!(st.arrival_gap, None);
        drop(st);
        server.shutdown();
    }

    #[test]
    #[should_panic(expected = "single-input")]
    fn multi_item_submissions_are_rejected() {
        let net = Arc::new(test_net());
        let server = Server::for_graph(net).start();
        let handle = server.handle();
        let _ = handle.predict(Tensor::zeros(Shape4::new(2, 1, 16, 16)));
    }
}
