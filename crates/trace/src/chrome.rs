//! Chrome trace-event rendering: drained spans become a JSON document
//! loadable at `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! Every span renders as one complete event (`"ph":"X"`) with µs
//! timestamps from the shared trace epoch, `pid` 1 and the recording
//! thread's stable ring id as `tid`, so each thread gets its own
//! track and nested stages stack visually by time. The span id,
//! parent id and stage payload ride along in `args` for scripted
//! consumers (the span-nesting test reconstructs trees from them).

use crate::{JsonArr, JsonObj, ThreadTrace};

/// Render drained thread traces as a Chrome trace-event JSON document:
/// `{"traceEvents":[...],"displayTimeUnit":"ms"}`.
pub fn chrome_trace_json(threads: &[ThreadTrace]) -> String {
    let mut events = JsonArr::new();
    for thread in threads {
        for ev in &thread.events {
            let mut args = JsonObj::new();
            args.field_u64("span", ev.span_id)
                .field_u64("parent", ev.parent)
                .field_u64("meta", ev.meta);
            let mut obj = JsonObj::new();
            obj.field_str("name", ev.stage.name())
                .field_str("cat", "bnn")
                .field_str("ph", "X")
                .field_u64("ts", ev.t_start_us)
                .field_u64("dur", ev.dur_us)
                .field_u64("pid", 1)
                .field_u64("tid", u64::from(thread.tid))
                .field_raw("args", &args.finish());
            events.push_raw(&obj.finish());
        }
    }
    let mut root = JsonObj::new();
    root.field_raw("traceEvents", &events.finish())
        .field_str("displayTimeUnit", "ms");
    root.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, Stage};

    #[test]
    fn renders_complete_events_with_span_args() {
        let threads = vec![ThreadTrace {
            tid: 3,
            events: vec![
                Event {
                    span_id: 10,
                    parent: 0,
                    stage: Stage::Request,
                    t_start_us: 1000,
                    dur_us: 250,
                    meta: 0,
                },
                Event {
                    span_id: 11,
                    parent: 10,
                    stage: Stage::Compute,
                    t_start_us: 1050,
                    dur_us: 100,
                    meta: 4,
                },
            ],
        }];
        let doc = chrome_trace_json(&threads);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"name\":\"request\""));
        assert!(doc.contains("\"name\":\"compute\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ts\":1050"));
        assert!(doc.contains("\"tid\":3"));
        assert!(doc.contains("\"args\":{\"span\":11,\"parent\":10,\"meta\":4}"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn empty_drain_is_still_a_valid_document() {
        let doc = chrome_trace_json(&[]);
        assert_eq!(doc, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }
}
