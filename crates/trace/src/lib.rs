//! **bnn-trace** — low-overhead, dependency-free request tracing for
//! the serving stack.
//!
//! A request's life crosses four crates: `bnn-net` decodes and admits
//! it, `bnn-serve` queues and coalesces it, `bnn-mcd` computes it, and
//! `bnn-net` writes the reply. This crate is the one place they all
//! report to: a span recorder cheap enough to leave compiled into
//! every hot path.
//!
//! # Design
//!
//! * **One atomic gate.** Disabled tracing — the default — costs a
//!   single `Relaxed` load per instrumentation site ([`enabled`]).
//!   Nothing else runs: no clock reads, no allocation, no locks. The
//!   conformance suite pins that replies are bit-identical with
//!   tracing on or off; the gate is why "off" is also *free*.
//! * **Per-thread bounded rings.** Each recording thread owns a ring
//!   of [`RING_CAP`] [`Event`]s; when full, the oldest event is
//!   overwritten. Recording never blocks on another thread's ring and
//!   never grows without bound — a tracer that can stall or OOM the
//!   hot path is worse than no tracer.
//! * **Spans, not logs.** An event is `{span_id, parent, stage,
//!   t_start_us, dur_us, meta}`. The net layer allocates one root span
//!   per request ([`new_span`]) and threads its id through admission,
//!   the serve queue and the reply writer, so a drained trace
//!   reconstructs the request's full decode → admission → queue-wait →
//!   batch-form → compute → write timeline. Engine-internal spans
//!   (prepare/forward/per-chunk) are recorded parentless — they line
//!   up on their worker-thread track by time.
//! * **Two export surfaces.** [`drain_chrome_json`] renders the rings
//!   as Chrome trace-event JSON (load it at `chrome://tracing` or
//!   [ui.perfetto.dev](https://ui.perfetto.dev)); [`stage_histograms`]
//!   exposes per-stage log2 latency histograms ([`LogHistogram`],
//!   folded O(1) at record time) for Prometheus-style `/metrics`
//!   exposition via [`metrics`].
//!
//! # Determinism boundary
//!
//! Span timestamps are wall-clock by definition, which the `bnn-audit`
//! determinism rule bans from engine crates. The entire clock intake
//! is therefore confined to [`clock`] — one waived `Instant::now`
//! site — and instrumented crates consume only the monotonic µs it
//! hands out. Trace data is telemetry: it never feeds computation, so
//! "same seed, same reply" survives tracing verbatim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod clock;
mod hist;
pub mod metrics;

pub use hist::{
    bucket_bounds, bucket_of, push_json_str, JsonArr, JsonObj, LogHistogram, LOG2_BUCKETS,
};

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Capacity of each per-thread event ring. When a thread records more
/// than this between drains, the oldest events are overwritten — the
/// hot path never blocks and never allocates past the ring.
pub const RING_CAP: usize = 4096;

/// The instrumented stages of a request's life, in pipeline order.
///
/// `Request` is the root span (whole wire round-trip, net layer);
/// everything else nests under it by `parent` id except the engine
/// stages (`Prepare`/`Forward`/`Chunk`), which are recorded parentless
/// on their worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Whole request: first frame byte in to last reply byte out.
    Request,
    /// Wire frame decode (`bnn-net`).
    Decode,
    /// Tenant gate + priority ceiling (`bnn-net`).
    Admission,
    /// Queue submission, including any blocking backpressure wait.
    Submit,
    /// Enqueue to dequeue: time spent waiting in the serve queue.
    QueueWait,
    /// Dequeue to compute start: micro-batch assembly overhead.
    BatchForm,
    /// The engine call serving this request's micro-batch.
    Compute,
    /// Backend input preparation (im2col, quantize, DMA model).
    Prepare,
    /// Monte-Carlo sample sweep over the prepared input.
    Forward,
    /// One sample chunk inside a `WorkerPool` task.
    Chunk,
    /// Pipelined writer waiting for this reply to resolve.
    WriterWait,
    /// Reply encode + socket write.
    Write,
}

impl Stage {
    /// Every stage, in pipeline order (the `/metrics` row order).
    pub const ALL: [Stage; 12] = [
        Stage::Request,
        Stage::Decode,
        Stage::Admission,
        Stage::Submit,
        Stage::QueueWait,
        Stage::BatchForm,
        Stage::Compute,
        Stage::Prepare,
        Stage::Forward,
        Stage::Chunk,
        Stage::WriterWait,
        Stage::Write,
    ];

    /// Stable lowercase name (Chrome event name, `/metrics` label).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Request => "request",
            Stage::Decode => "decode",
            Stage::Admission => "admission",
            Stage::Submit => "submit",
            Stage::QueueWait => "queue_wait",
            Stage::BatchForm => "batch_form",
            Stage::Compute => "compute",
            Stage::Prepare => "prepare",
            Stage::Forward => "forward",
            Stage::Chunk => "chunk",
            Stage::WriterWait => "writer_wait",
            Stage::Write => "write",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// This span's id (0 only for spans recorded while disabled —
    /// those are dropped before they reach a ring).
    pub span_id: u64,
    /// Enclosing span id, 0 for roots and engine-internal spans.
    pub parent: u64,
    /// Which pipeline stage this span measures.
    pub stage: Stage,
    /// Start, µs since the shared trace epoch ([`clock::now_us`]).
    pub t_start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Stage-specific payload (batch size, frame bytes, chunk samples).
    pub meta: u64,
}

/// One thread's drained events, oldest first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadTrace {
    /// Stable per-thread track id (registration order, from 1).
    pub tid: u32,
    /// Events still in the ring at drain time, oldest first.
    pub events: Vec<Event>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

struct Ring {
    tid: u32,
    events: Vec<Event>,
    next: usize,
}

impl Ring {
    fn push(&mut self, ev: Event) {
        if self.events.len() < RING_CAP {
            self.events.push(ev);
        } else {
            // Full: overwrite the oldest slot. Eviction is the
            // bounded-memory guarantee — recording never blocks.
            self.events[self.next] = ev;
        }
        self.next = (self.next + 1) % RING_CAP;
    }

    fn drain_ordered(&mut self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.events.len());
        if self.events.len() == RING_CAP {
            out.extend_from_slice(&self.events[self.next..]);
            out.extend_from_slice(&self.events[..self.next]);
        } else {
            out.extend_from_slice(&self.events);
        }
        self.events.clear();
        self.next = 0;
        out
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn stage_hists() -> &'static Vec<Mutex<LogHistogram>> {
    static HISTS: OnceLock<Vec<Mutex<LogHistogram>>> = OnceLock::new();
    HISTS.get_or_init(|| {
        Stage::ALL
            .iter()
            .map(|_| Mutex::new(LogHistogram::new()))
            .collect()
    })
}

// Poisoning policy for every lock below: trace state is pure
// telemetry and each critical section is a handful of copies, so a
// panicking recorder cannot leave it mid-invariant — recover the
// guard and keep going rather than propagate.
fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    static LOCAL: Arc<Mutex<Ring>> = {
        let ring = Arc::new(Mutex::new(Ring {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Vec::new(),
            next: 0,
        }));
        relock(registry()).push(Arc::clone(&ring));
        ring
    };
}

/// Whether tracing is on. One `Relaxed` atomic load — this is the
/// whole cost of a disabled instrumentation site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn tracing on or off, process-wide. Spans already in rings stay
/// until drained; span-id allocation keeps counting across toggles.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Allocate a fresh span id, or 0 (the "untraced" sentinel) while
/// disabled. Ids are process-unique and never reused.
#[inline]
pub fn new_span() -> u64 {
    if enabled() {
        NEXT_SPAN.fetch_add(1, Ordering::Relaxed)
    } else {
        0
    }
}

/// Start-of-span marker: the current trace clock when tracing is on,
/// `None` when off (so the disabled path never reads the clock).
#[inline]
pub fn start() -> Option<u64> {
    enabled().then(clock::now_us)
}

/// Close a span begun with [`start`]: records `[t0, now)` under a
/// fresh span id. No-op when `started` is `None`.
pub fn finish(started: Option<u64>, stage: Stage, parent: u64, meta: u64) {
    if let Some(t0) = started {
        let dur = clock::now_us().saturating_sub(t0);
        record(stage, new_span(), parent, t0, dur, meta);
    }
}

/// Record one fully-formed span. No-op while disabled. Folds the
/// duration into the stage's histogram and appends to the calling
/// thread's ring (evicting the oldest event when full).
pub fn record(stage: Stage, span_id: u64, parent: u64, t_start_us: u64, dur_us: u64, meta: u64) {
    if !enabled() {
        return;
    }
    relock(&stage_hists()[stage.index()]).record(dur_us);
    LOCAL.with(|ring| {
        relock(ring).push(Event {
            span_id,
            parent,
            stage,
            t_start_us,
            dur_us,
            meta,
        });
    });
}

/// Take every thread's buffered events (oldest first per thread),
/// clearing the rings. Thread tracks appear in registration order.
/// Stage histograms are *not* cleared — see [`reset`].
pub fn drain() -> Vec<ThreadTrace> {
    let rings: Vec<Arc<Mutex<Ring>>> = relock(registry()).iter().map(Arc::clone).collect();
    let mut out = Vec::with_capacity(rings.len());
    for ring in rings {
        let mut guard = relock(&ring);
        let events = guard.drain_ordered();
        let tid = guard.tid;
        drop(guard);
        if !events.is_empty() {
            out.push(ThreadTrace { tid, events });
        }
    }
    out
}

/// Drain every ring and render the result as Chrome trace-event JSON
/// (see [`chrome::chrome_trace_json`]).
pub fn drain_chrome_json() -> String {
    chrome::chrome_trace_json(&drain())
}

/// Snapshot the per-stage duration histograms, in [`Stage::ALL`]
/// order. Histograms accumulate from process start (or the last
/// [`reset`]) regardless of ring eviction.
pub fn stage_histograms() -> Vec<(Stage, LogHistogram)> {
    Stage::ALL
        .iter()
        .map(|&stage| (stage, relock(&stage_hists()[stage.index()]).clone()))
        .collect()
}

/// Clear all rings and stage histograms (test isolation; span ids
/// keep counting so ids never repeat within a process).
pub fn reset() {
    for ring in relock(registry()).iter() {
        let mut guard = relock(ring);
        guard.events.clear();
        guard.next = 0;
    }
    for hist in stage_hists() {
        *relock(hist) = LogHistogram::new();
    }
}

#[cfg(test)]
mod tests {
    // The enabled-flag is process-global and the test harness runs
    // threads concurrently, so every test that toggles it serializes
    // on this lock (poisoning: into_inner — a failed test must not
    // cascade).
    use super::*;

    fn flag_guard() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let _g = flag_guard();
        set_enabled(false);
        reset();
        assert_eq!(new_span(), 0);
        assert_eq!(start(), None);
        record(Stage::Compute, 1, 0, 0, 10, 0);
        finish(None, Stage::Compute, 0, 0);
        assert!(drain().is_empty());
        assert!(stage_histograms().iter().all(|(_, h)| h.total() == 0));
    }

    #[test]
    fn spans_round_trip_through_drain_and_histograms() {
        let _g = flag_guard();
        set_enabled(true);
        reset();
        let root = new_span();
        assert!(root > 0);
        record(Stage::Request, root, 0, 100, 50, 0);
        let child = new_span();
        assert!(child > root);
        record(Stage::Compute, child, root, 110, 30, 4);
        let threads = drain();
        set_enabled(false);
        let events: Vec<Event> = threads.into_iter().flat_map(|t| t.events).collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].stage, Stage::Request);
        assert_eq!(events[1].parent, root);
        assert_eq!(events[1].meta, 4);
        // Second drain is empty; histograms survive the drain.
        assert!(drain().is_empty());
        let hists = stage_histograms();
        let compute = hists.iter().find(|(s, _)| *s == Stage::Compute).unwrap();
        assert_eq!(compute.1.total(), 1);
        assert_eq!(compute.1.max_us(), Some(30));
    }

    #[test]
    fn full_ring_evicts_oldest_without_blocking() {
        let _g = flag_guard();
        set_enabled(true);
        reset();
        let extra = 7;
        for i in 0..(RING_CAP + extra) as u64 {
            record(Stage::Chunk, i + 1, 0, i, 1, 0);
        }
        let threads = drain();
        set_enabled(false);
        let mine: Vec<Event> = threads.into_iter().flat_map(|t| t.events).collect();
        assert_eq!(mine.len(), RING_CAP, "ring stays bounded");
        // Oldest `extra` events were evicted; order is preserved.
        assert_eq!(mine[0].span_id, extra as u64 + 1);
        assert_eq!(mine[RING_CAP - 1].span_id, (RING_CAP + extra) as u64);
        assert!(mine.windows(2).all(|w| w[0].span_id < w[1].span_id));
    }

    #[test]
    fn start_finish_measures_a_nonnegative_span() {
        let _g = flag_guard();
        set_enabled(true);
        reset();
        let t0 = start();
        assert!(t0.is_some());
        finish(t0, Stage::Decode, 0, 9);
        let threads = drain();
        set_enabled(false);
        let ev = threads
            .into_iter()
            .flat_map(|t| t.events)
            .find(|e| e.stage == Stage::Decode)
            .unwrap();
        assert_eq!(ev.meta, 9);
        assert!(ev.span_id > 0);
    }

    #[test]
    fn stage_names_are_unique_and_ordered() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 12);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12, "duplicate stage name");
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }
}
