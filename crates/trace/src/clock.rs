//! The tracer's single wall-clock intake.
//!
//! `bnn-trace` sits inside the determinism audit scope — spans measure
//! real time by definition, but that time must never feed computed
//! values, so the clock read is confined to this one module and waived
//! at exactly one site. Everything else in the crate (and in the
//! crates that record spans through it) works in the monotonic µs this
//! module hands out, keeping `Instant::now` tokens out of the engine
//! crates entirely.

use std::sync::OnceLock;
use std::time::Instant;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    // audit:allow(determinism) the tracer's one clock intake: span timestamps are telemetry and never feed computed values, so replies stay bit-identical with tracing on or off.
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic microseconds since the process's first trace-clock read.
///
/// All span timestamps share this epoch, so events recorded on
/// different threads order correctly in one Chrome trace timeline.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::now_us;

    #[test]
    fn clock_is_monotonic_from_a_shared_epoch() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a, "monotonic: {a} then {b}");
        // The epoch is first-read: early reads sit near zero, far from
        // any absolute wall-clock representation.
        assert!(a < 60_000_000, "epoch is process-local, got {a}");
    }
}
