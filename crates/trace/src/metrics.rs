//! Prometheus-style text exposition (version 0.0.4) for the
//! `GET /metrics` endpoint: counters, gauges and log2-bucketed
//! histograms rendered with cumulative `le` buckets.
//!
//! The log2 buckets of [`LogHistogram`] map directly onto Prometheus
//! histogram semantics: each non-empty bucket emits one cumulative
//! `_bucket{le="<inclusive upper bound>"}` sample, the open-ended top
//! bucket folds into the mandatory `le="+Inf"` line, and `_sum` /
//! `_count` carry the exact tallies the histogram already keeps.

use crate::{bucket_bounds, LogHistogram};

fn label_block(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Append a `# HELP` + `# TYPE` header for one metric family.
pub fn push_header(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Append one counter/gauge sample line.
pub fn push_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    out.push_str(&format!("{name}{} {value}\n", label_block(labels, None)));
}

/// Append one histogram series (`_bucket` lines, `_sum`, `_count`)
/// for a [`LogHistogram`]. Empty buckets are skipped — cumulative
/// `le` semantics make them redundant — and the `le="+Inf"` line is
/// always present, so an empty histogram still exposes its zero
/// count.
pub fn push_histogram(out: &mut String, name: &str, labels: &[(&str, &str)], hist: &LogHistogram) {
    let mut cum = 0u64;
    for (i, &count) in hist.buckets().iter().enumerate() {
        if count == 0 {
            continue;
        }
        let (_, hi) = bucket_bounds(i);
        if hi == u64::MAX {
            // The open-ended top bucket is exactly the +Inf line below.
            break;
        }
        cum += count;
        let lb = label_block(labels, Some(("le", &hi.to_string())));
        out.push_str(&format!("{name}_bucket{lb} {cum}\n"));
    }
    let inf = label_block(labels, Some(("le", "+Inf")));
    out.push_str(&format!("{name}_bucket{inf} {}\n", hist.total()));
    let plain = label_block(labels, None);
    out.push_str(&format!("{name}_sum{plain} {}\n", hist.sum_us()));
    out.push_str(&format!("{name}_count{plain} {}\n", hist.total()));
}

/// Append every non-empty per-stage duration histogram from the
/// global recorder as one metric family labelled by stage name.
/// Stages that never recorded are omitted rather than exposed as
/// empty series.
pub fn push_stage_histograms(out: &mut String, name: &str) {
    let hists = crate::stage_histograms();
    if hists.iter().all(|(_, h)| h.total() == 0) {
        return;
    }
    push_header(
        out,
        name,
        "histogram",
        "per-stage span duration in microseconds (tracing must be enabled)",
    );
    for (stage, hist) in &hists {
        if hist.total() == 0 {
            continue;
        }
        push_histogram(out, name, &[("stage", stage.name())], hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_exposition_is_cumulative_and_exact() {
        let mut h = LogHistogram::new();
        for us in [1u64, 1, 3, 3, 3, 100] {
            h.record(us);
        }
        let mut out = String::new();
        push_histogram(&mut out, "lat_us", &[("stage", "compute")], &h);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines,
            vec![
                "lat_us_bucket{stage=\"compute\",le=\"1\"} 2",
                "lat_us_bucket{stage=\"compute\",le=\"3\"} 5",
                "lat_us_bucket{stage=\"compute\",le=\"127\"} 6",
                "lat_us_bucket{stage=\"compute\",le=\"+Inf\"} 6",
                "lat_us_sum{stage=\"compute\"} 111",
                "lat_us_count{stage=\"compute\"} 6",
            ]
        );
    }

    #[test]
    fn unlabelled_empty_histogram_still_exposes_count() {
        let h = LogHistogram::new();
        let mut out = String::new();
        push_histogram(&mut out, "lat_us", &[], &h);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines,
            vec![
                "lat_us_bucket{le=\"+Inf\"} 0",
                "lat_us_sum 0",
                "lat_us_count 0",
            ]
        );
    }

    #[test]
    fn samples_and_headers_render_plain() {
        let mut out = String::new();
        push_header(&mut out, "served_total", "counter", "served replies");
        push_sample(&mut out, "served_total", &[("outcome", "ok")], 7);
        push_sample(&mut out, "up", &[], 1);
        assert_eq!(
            out,
            "# HELP served_total served replies\n# TYPE served_total counter\n\
             served_total{outcome=\"ok\"} 7\nup 1\n"
        );
    }
}
