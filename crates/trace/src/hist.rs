//! Log2-bucketed latency histograms and the incremental JSON writers
//! shared by every trajectory snapshot (`BENCH_net.json`,
//! `BENCH_serve.json`, `BENCH_backends.json`) and export surface
//! (`GET /metrics`, `GET /trace`).
//!
//! Both lived in `bnn_net::loadgen` until the tracer needed them below
//! the net crate; `bnn_net::loadgen` re-exports them, so existing
//! callers keep compiling unchanged.

/// Number of log2 latency buckets: bucket 0 holds 0 µs, bucket `i`
/// (1-based) holds `[2^(i-1), 2^i)` µs, and the last bucket holds
/// everything from `2^39` µs (~9 minutes) up.
pub const LOG2_BUCKETS: usize = 41;

/// Bucket index of one observation (µs).
pub fn bucket_of(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(LOG2_BUCKETS - 1)
    }
}

/// Inclusive value bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else if i >= LOG2_BUCKETS - 1 {
        (1u64 << (LOG2_BUCKETS - 2), u64::MAX)
    } else {
        (1u64 << (i - 1), (1u64 << i) - 1)
    }
}

/// A log2-bucketed latency histogram with exact min/max/mean and
/// interpolated percentiles. Merging is exact (bucket-wise sums), so
/// per-connection histograms fold into per-class and overall rows
/// without holding every sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; LOG2_BUCKETS],
    total: u64,
    min_us: u64,
    max_us: u64,
    sum_us: u128,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: [0; LOG2_BUCKETS],
            total: 0,
            min_us: u64::MAX,
            max_us: 0,
            sum_us: 0,
        }
    }

    /// Fold in one latency observation (µs).
    pub fn record(&mut self, us: u64) {
        self.buckets[bucket_of(us)] += 1;
        self.total += 1;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
        self.sum_us += u128::from(us);
    }

    /// Fold another histogram into this one (exact).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets) {
            *mine += theirs;
        }
        self.total += other.total;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
        self.sum_us += other.sum_us;
    }

    /// Observations folded in so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bucket counts (see [`bucket_bounds`] for the value ranges).
    pub fn buckets(&self) -> &[u64; LOG2_BUCKETS] {
        &self.buckets
    }

    /// Exact sum of every observation (µs).
    pub fn sum_us(&self) -> u128 {
        self.sum_us
    }

    /// Smallest observation, `None` when empty.
    pub fn min_us(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min_us)
    }

    /// Largest observation, `None` when empty.
    pub fn max_us(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max_us)
    }

    /// Arithmetic mean, `None` when empty.
    pub fn mean_us(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum_us as f64 / self.total as f64)
    }

    /// Nearest-rank percentile in per-mille (p50 → 500, p99 → 990,
    /// p99.9 → 999), linearly interpolated inside the hit bucket and
    /// clamped to the observed [min, max]. `None` when empty.
    pub fn percentile_per_mille(&self, pm: u32) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let pm = u64::from(pm.min(1000));
        // ceil(pm/1000 * total), clamped to [1, total], 1-indexed.
        let rank = (pm * self.total).div_ceil(1000).clamp(1, self.total);
        let mut cum = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if cum + count >= rank {
                let (lo, hi) = bucket_bounds(i);
                let within = (rank - cum - 1) as f64 / count as f64;
                let span = (hi - lo) as f64;
                let value = lo.saturating_add((span * within) as u64);
                return Some(value.clamp(self.min_us, self.max_us));
            }
            cum += count;
        }
        // Unreachable while counts sum to `total`; fall back to max.
        Some(self.max_us)
    }
}

/// Append a JSON-escaped string literal (with quotes) to `out`.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental JSON object writer — the shared dialect for
/// `BENCH_net.json` and `BENCH_serve.json`: stable key order (fields
/// appear in call order), floats with three decimals, non-finite
/// floats rendered as `0.000`, absent optionals as `null`.
#[derive(Debug, Clone)]
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl Default for JsonObj {
    fn default() -> JsonObj {
        JsonObj::new()
    }
}

impl JsonObj {
    /// Start an empty object.
    pub fn new() -> JsonObj {
        JsonObj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        push_json_str(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Add an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, v: u64) -> &mut JsonObj {
        self.key(key);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a float field, three decimals; non-finite renders `0.000`.
    pub fn field_f64(&mut self, key: &str, v: f64) -> &mut JsonObj {
        self.key(key);
        if v.is_finite() {
            self.buf.push_str(&format!("{v:.3}"));
        } else {
            self.buf.push_str("0.000");
        }
        self
    }

    /// Add a string field (escaped).
    pub fn field_str(&mut self, key: &str, v: &str) -> &mut JsonObj {
        self.key(key);
        push_json_str(&mut self.buf, v);
        self
    }

    /// Add a boolean field.
    pub fn field_bool(&mut self, key: &str, v: bool) -> &mut JsonObj {
        self.key(key);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add an optional integer field (`null` when absent).
    pub fn field_opt_u64(&mut self, key: &str, v: Option<u64>) -> &mut JsonObj {
        self.key(key);
        match v {
            Some(v) => self.buf.push_str(&v.to_string()),
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Add a pre-rendered JSON value (nested object or array).
    pub fn field_raw(&mut self, key: &str, raw: &str) -> &mut JsonObj {
        self.key(key);
        self.buf.push_str(raw);
        self
    }

    /// Close the object and return the rendered document.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Incremental JSON array writer, companion to [`JsonObj`].
#[derive(Debug, Clone)]
pub struct JsonArr {
    buf: String,
    first: bool,
}

impl Default for JsonArr {
    fn default() -> JsonArr {
        JsonArr::new()
    }
}

impl JsonArr {
    /// Start an empty array.
    pub fn new() -> JsonArr {
        JsonArr {
            buf: String::from("["),
            first: true,
        }
    }

    /// Append a pre-rendered JSON value.
    pub fn push_raw(&mut self, raw: &str) -> &mut JsonArr {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push_str(raw);
        self
    }

    /// Close the array and return the rendered text.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_percentiles() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), LOG2_BUCKETS - 1);

        let mut hist = LogHistogram::new();
        assert_eq!(hist.percentile_per_mille(500), None);
        for us in 1..=1000u64 {
            hist.record(us);
        }
        assert_eq!(hist.total(), 1000);
        assert_eq!(hist.min_us(), Some(1));
        assert_eq!(hist.max_us(), Some(1000));
        let p50 = hist.percentile_per_mille(500).unwrap();
        let p99 = hist.percentile_per_mille(990).unwrap();
        let p999 = hist.percentile_per_mille(999).unwrap();
        // Log2 buckets: interpolated answers land within the hit
        // bucket, so bound them rather than demand exact ranks.
        assert!((256..=512).contains(&p50), "p50 {p50}");
        assert!((512..=1000).contains(&p99), "p99 {p99}");
        assert!(p99 <= p999 && p999 <= 1000, "p999 {p999}");
        assert!((hist.mean_us().unwrap() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_is_exact() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut folded = LogHistogram::new();
        for us in [3u64, 17, 900, 40_000] {
            a.record(us);
            folded.record(us);
        }
        for us in [0u64, 5, 123_456] {
            b.record(us);
            folded.record(us);
        }
        a.merge(&b);
        assert_eq!(a, folded);
    }

    #[test]
    fn single_value_histogram_pins_every_percentile() {
        let mut hist = LogHistogram::new();
        for _ in 0..64 {
            hist.record(777);
        }
        for pm in [1, 500, 990, 999, 1000] {
            assert_eq!(hist.percentile_per_mille(pm), Some(777));
        }
    }

    #[test]
    fn bucket_bounds_partition_the_u64_line() {
        let mut next = 0u64;
        for i in 0..LOG2_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, next, "bucket {i} starts where {} ended", i.max(1) - 1);
            assert!(hi >= lo);
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
            if hi == u64::MAX {
                assert_eq!(i, LOG2_BUCKETS - 1);
                return;
            }
            next = hi + 1;
        }
    }

    #[test]
    fn json_writers_render_valid_documents() {
        let mut inner = JsonObj::new();
        inner.field_u64("count", 3).field_opt_u64("p50_us", None);
        let inner = inner.finish();
        let mut arr = JsonArr::new();
        arr.push_raw(&inner).push_raw("42");
        let arr = arr.finish();
        let mut obj = JsonObj::new();
        obj.field_str("name", "a \"quoted\"\nkey")
            .field_f64("rate", 1234.5678)
            .field_f64("bad", f64::NAN)
            .field_bool("ok", true)
            .field_raw("rows", &arr);
        let doc = obj.finish();
        assert_eq!(
            doc,
            "{\"name\":\"a \\\"quoted\\\"\\u000akey\",\"rate\":1234.568,\
             \"bad\":0.000,\"ok\":true,\"rows\":[{\"count\":3,\"p50_us\":null},42]}"
        );
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}
