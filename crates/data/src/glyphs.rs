//! 7×5 bitmap glyphs for the digits 0-9 (classic dot-matrix font).

/// Row-major 7×5 bitmaps; `1` marks an inked cell.
pub const DIGITS: [[u8; 35]; 10] = [
    // 0
    [
        0, 1, 1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 1, 1, 1, 0, 1, 0, 1, 1, 1, 0, 0, 1, 1, 0, 0, 0, 1,
        0, 1, 1, 1, 0,
    ],
    // 1
    [
        0, 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0,
        0, 1, 1, 1, 0,
    ],
    // 2
    [
        0, 1, 1, 1, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0,
        1, 1, 1, 1, 1,
    ],
    // 3
    [
        0, 1, 1, 1, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 1, 1, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 1,
        0, 1, 1, 1, 0,
    ],
    // 4
    [
        0, 0, 0, 1, 0, 0, 0, 1, 1, 0, 0, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1, 1, 1, 1, 1, 0, 0, 0, 1, 0,
        0, 0, 0, 1, 0,
    ],
    // 5
    [
        1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 1, 0, 0, 0, 1,
        0, 1, 1, 1, 0,
    ],
    // 6
    [
        0, 0, 1, 1, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 1, 1, 1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1,
        0, 1, 1, 1, 0,
    ],
    // 7
    [
        1, 1, 1, 1, 1, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0,
        0, 1, 0, 0, 0,
    ],
    // 8
    [
        0, 1, 1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1,
        0, 1, 1, 1, 0,
    ],
    // 9
    [
        0, 1, 1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0,
        0, 1, 1, 0, 0,
    ],
];

/// Bilinear sample of a glyph at continuous coordinates
/// `(u, v) ∈ [0,1]²` (outside → 0).
pub fn sample(digit: usize, u: f32, v: f32) -> f32 {
    if !(0.0..1.0).contains(&u) || !(0.0..1.0).contains(&v) {
        return 0.0;
    }
    let g = &DIGITS[digit];
    let x = u * 4.0; // 5 columns
    let y = v * 6.0; // 7 rows
    let (x0, y0) = (x.floor() as usize, y.floor() as usize);
    let (fx, fy) = (x - x0 as f32, y - y0 as f32);
    let at = |r: usize, c: usize| -> f32 {
        if r < 7 && c < 5 {
            f32::from(g[r * 5 + c])
        } else {
            0.0
        }
    };
    let top = at(y0, x0) * (1.0 - fx) + at(y0, x0 + 1) * fx;
    let bot = at(y0 + 1, x0) * (1.0 - fx) + at(y0 + 1, x0 + 1) * fx;
    top * (1.0 - fy) + bot * fy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::needless_range_loop)] // a/b index two glyphs at once
    fn glyphs_are_distinct() {
        for a in 0..10 {
            for b in (a + 1)..10 {
                assert_ne!(DIGITS[a], DIGITS[b], "digits {a} and {b} identical");
            }
        }
    }

    #[test]
    fn glyphs_have_reasonable_ink() {
        for (d, g) in DIGITS.iter().enumerate() {
            let ink: u32 = g.iter().map(|&v| u32::from(v)).sum();
            assert!((7..=20).contains(&ink), "digit {d} ink {ink} out of range");
        }
    }

    #[test]
    fn sample_interpolates() {
        // Centre of digit 1's stem is inked.
        assert!(sample(1, 0.5, 0.5) > 0.5);
        // Far corner outside the glyph is empty.
        assert_eq!(sample(1, 1.5, 0.5), 0.0);
        assert_eq!(sample(1, 0.5, -0.1), 0.0);
    }

    #[test]
    fn sample_is_continuous_between_cells() {
        let a = sample(8, 0.49, 0.5);
        let b = sample(8, 0.51, 0.5);
        assert!((a - b).abs() < 0.3, "bilinear sampling should be smooth");
    }
}
