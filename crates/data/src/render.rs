//! Digit rendering with geometric and photometric jitter.

use crate::glyphs;
use bnn_rng::SoftRng;

/// Style knobs for grey digit rendering.
#[derive(Debug, Clone, Copy)]
pub struct DigitStyle {
    /// Max rotation (radians).
    pub rot: f32,
    /// Scale jitter around the nominal glyph size.
    pub scale_jitter: f32,
    /// Max translation in pixels.
    pub shift: f32,
    /// Additive Gaussian pixel noise std.
    pub noise: f32,
}

impl DigitStyle {
    /// The easy (MNIST-like) style.
    pub fn grey_easy() -> DigitStyle {
        DigitStyle {
            rot: 0.15,
            scale_jitter: 0.12,
            shift: 2.5,
            noise: 0.08,
        }
    }
}

/// Render a grey digit into a `img×img` single-channel buffer in
/// `[0, 1]`.
pub fn draw_digit(class: usize, rng: &mut SoftRng, out: &mut [f32], img: usize, st: DigitStyle) {
    debug_assert_eq!(out.len(), img * img);
    let rot = rng.range_f32(-st.rot, st.rot);
    let scale = 0.62 * (1.0 + rng.range_f32(-st.scale_jitter, st.scale_jitter));
    let (sx, sy) = (
        rng.range_f32(-st.shift, st.shift),
        rng.range_f32(-st.shift, st.shift),
    );
    let (cos, sin) = (rot.cos(), rot.sin());
    let c = img as f32 / 2.0;
    let half = scale * img as f32 / 2.0;
    for y in 0..img {
        for x in 0..img {
            // Map pixel to glyph space via inverse affine.
            let px = x as f32 - c - sx;
            let py = y as f32 - c - sy;
            let gx = (cos * px + sin * py) / (half * 0.78) / 2.0 + 0.5; // aspect 5/7 ≈ 0.71
            let gy = (-sin * px + cos * py) / half / 2.0 + 0.5;
            let ink = glyphs::sample(class, gx, gy);
            let v = ink * rng.range_f32(0.85, 1.0) + rng.normal_f32(0.0, st.noise);
            out[y * img + x] = v.clamp(0.0, 1.0);
        }
    }
}

/// Render a colored digit over a colored background into a 3-channel
/// `img×img` buffer (SVHN-like: photometric variation + clutter).
pub fn draw_digit_color(class: usize, rng: &mut SoftRng, out: &mut [f32], img: usize) {
    debug_assert_eq!(out.len(), 3 * img * img);
    let plane = img * img;
    // Background and foreground colors with guaranteed contrast.
    let bg = [
        rng.next_f32() * 0.6,
        rng.next_f32() * 0.6,
        rng.next_f32() * 0.6,
    ];
    let mut fg = [
        0.4 + rng.next_f32() * 0.6,
        0.4 + rng.next_f32() * 0.6,
        0.4 + rng.next_f32() * 0.6,
    ];
    // Ensure at least one strongly-contrasting channel.
    let k = rng.next_below(3);
    fg[k] = (bg[k] + 0.55).min(1.0);

    let st = DigitStyle {
        rot: 0.22,
        scale_jitter: 0.18,
        shift: 3.5,
        noise: 0.0,
    };
    let mut ink = vec![0.0f32; plane];
    draw_digit(class, rng, &mut ink, img, st);

    // Horizontal brightness gradient (street-lighting feel).
    let grad = rng.range_f32(-0.25, 0.25);
    for y in 0..img {
        for x in 0..img {
            let i = y * img + x;
            let a = ink[i];
            let light = 1.0 + grad * (x as f32 / img as f32 - 0.5);
            for ch in 0..3 {
                let v = (bg[ch] * (1.0 - a) + fg[ch] * a) * light + rng.normal_f32(0.0, 0.12);
                out[ch * plane + i] = v.clamp(0.0, 1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grey_digit_in_unit_range() {
        let mut rng = SoftRng::new(1);
        let mut buf = vec![0.0f32; 28 * 28];
        draw_digit(7, &mut rng, &mut buf, 28, DigitStyle::grey_easy());
        assert!(buf.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(buf.iter().any(|&v| v > 0.5), "some ink must be visible");
    }

    #[test]
    fn color_digit_has_three_planes() {
        let mut rng = SoftRng::new(2);
        let mut buf = vec![0.0f32; 3 * 32 * 32];
        draw_digit_color(4, &mut rng, &mut buf, 32);
        assert!(buf.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Channels must differ (colored, not grey).
        let p = 32 * 32;
        assert_ne!(&buf[0..p], &buf[p..2 * p]);
    }

    #[test]
    fn different_classes_render_differently() {
        // Same RNG stream position → differences come from the glyph.
        let mut a = vec![0.0f32; 28 * 28];
        let mut b = vec![0.0f32; 28 * 28];
        draw_digit(0, &mut SoftRng::new(3), &mut a, 28, DigitStyle::grey_easy());
        draw_digit(1, &mut SoftRng::new(3), &mut b, 28, DigitStyle::grey_easy());
        assert_ne!(a, b);
    }
}
