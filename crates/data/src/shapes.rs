//! Textured-shape rendering for the CIFAR-like family.
//!
//! Ten shape classes with heavy appearance variation: random colors,
//! textures, position/scale jitter and strong pixel noise, making this
//! the hardest of the three synthetic families.

use bnn_rng::SoftRng;

/// Signed distance-ish membership of pixel `(x, y)` (centred, in
/// `[-1, 1]²`) in shape `class`.
fn inside(class: usize, x: f32, y: f32) -> bool {
    let r2 = x * x + y * y;
    match class {
        0 => r2 < 0.55,                                          // disc
        1 => r2 < 0.6 && r2 > 0.22,                              // ring
        2 => x.abs() < 0.62 && y.abs() < 0.62,                   // square
        3 => y > -0.6 && y < 0.55 && x.abs() < (y + 0.62) * 0.6, // triangle
        4 => x.abs() < 0.22 || y.abs() < 0.22,                   // cross
        5 => (y * 4.7).sin() > 0.0,                              // horizontal stripes
        6 => (x * 4.7).sin() > 0.0,                              // vertical stripes
        7 => ((x * 4.0).sin() * (y * 4.0).sin()) > 0.0,          // checker
        8 => (x + y).abs() < 0.3,                                // diagonal bar
        9 => ((x * 2.5).sin() + (y * 2.5).cos()) > 0.35,         // blob field
        _ => unreachable!("ten shape classes"),
    }
}

/// Render one textured shape into a 3-channel `img×img` buffer in
/// `[0, 1]`.
pub fn draw_shape(class: usize, rng: &mut SoftRng, out: &mut [f32], img: usize) {
    debug_assert_eq!(out.len(), 3 * img * img);
    let plane = img * img;
    let bg = [
        rng.next_f32() * 0.7,
        rng.next_f32() * 0.7,
        rng.next_f32() * 0.7,
    ];
    let mut fg = [rng.next_f32(), rng.next_f32(), rng.next_f32()];
    let k = rng.next_below(3);
    fg[k] = (bg[k] + 0.5).min(1.0);

    let rot = rng.range_f32(-0.5, 0.5);
    let (cos, sin) = (rot.cos(), rot.sin());
    let scale = rng.range_f32(0.7, 1.15);
    let (sx, sy) = (rng.range_f32(-0.25, 0.25), rng.range_f32(-0.25, 0.25));
    // Texture frequency/phase for the foreground.
    let tf = rng.range_f32(2.0, 6.0);
    let tp = rng.range_f32(0.0, std::f32::consts::TAU);
    let noise = 0.16f32;

    let c = img as f32 / 2.0;
    for yy in 0..img {
        for xx in 0..img {
            let ux = (xx as f32 - c) / c / scale - sx;
            let uy = (yy as f32 - c) / c / scale - sy;
            let (rx, ry) = (cos * ux + sin * uy, -sin * ux + cos * uy);
            let i = yy * img + xx;
            let is_fg = inside(class, rx, ry);
            let tex = 0.85 + 0.15 * (tf * rx + tp).sin() * (tf * ry).cos();
            for ch in 0..3 {
                let base = if is_fg { fg[ch] * tex } else { bg[ch] };
                out[ch * plane + i] = (base + rng.normal_f32(0.0, noise)).clamp(0.0, 1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_render_in_unit_range() {
        let mut rng = SoftRng::new(4);
        for class in 0..10 {
            let mut buf = vec![0.0f32; 3 * 32 * 32];
            draw_shape(class, &mut rng, &mut buf, 32);
            assert!(
                buf.iter().all(|&v| (0.0..=1.0).contains(&v)),
                "class {class}"
            );
        }
    }

    #[test]
    fn shape_masks_are_distinct() {
        // Count membership grid differences between classes.
        for a in 0..10 {
            for b in (a + 1)..10 {
                let mut diff = 0;
                for yi in 0..16 {
                    for xi in 0..16 {
                        let x = (xi as f32 / 8.0) - 1.0;
                        let y = (yi as f32 / 8.0) - 1.0;
                        if inside(a, x, y) != inside(b, x, y) {
                            diff += 1;
                        }
                    }
                }
                assert!(
                    diff > 10,
                    "classes {a} and {b} are nearly identical ({diff})"
                );
            }
        }
    }

    #[test]
    fn rendering_is_instance_varied() {
        let mut rng = SoftRng::new(5);
        let mut a = vec![0.0f32; 3 * 32 * 32];
        let mut b = vec![0.0f32; 3 * 32 * 32];
        draw_shape(0, &mut rng, &mut a, 32);
        draw_shape(0, &mut rng, &mut b, 32);
        assert_ne!(a, b);
    }
}
