//! Seeded synthetic image-classification datasets of increasing
//! difficulty, standing in for MNIST, SVHN and CIFAR-10.
//!
//! The paper's algorithmic claims are *trends* over the Bayesian
//! configuration (accuracy/aPE/ECE orderings as `L` and `S` vary), so
//! the reproduction needs datasets that (a) a small CNN can actually
//! learn, (b) have controllable difficulty so the MNIST < SVHN <
//! CIFAR-10 ordering is preserved, and (c) are generated
//! deterministically from a seed with no downloads. Three procedural
//! families provide that:
//!
//! * [`synth_mnist`] — 1×28×28 grey digit glyphs with light jitter.
//! * [`synth_svhn`] — 3×32×32 colored digits over colored backgrounds
//!   with brightness jitter and moderate noise.
//! * [`synth_cifar`] — 3×32×32 textured shapes with heavy appearance
//!   variation — the hardest family.
//!
//! [`gaussian_noise_like`] generates the out-of-distribution probe the
//! paper uses for uncertainty evaluation: pixel noise with the mean and
//! variance of the training data.
//!
//! # Example
//!
//! ```
//! use bnn_data::synth_mnist;
//!
//! let ds = synth_mnist(128, 32, 7);
//! assert_eq!(ds.train_x.shape().n, 128);
//! assert_eq!(ds.classes, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod glyphs;
mod render;
mod shapes;

use bnn_rng::SoftRng;
use bnn_tensor::{Shape4, Tensor};

/// A train/test split of labelled images, standardized to zero mean and
/// unit variance with the raw statistics retained.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Family name ("synth-mnist", ...).
    pub name: String,
    /// Training images (standardized).
    pub train_x: Tensor,
    /// Training labels.
    pub train_y: Vec<usize>,
    /// Test images (standardized).
    pub test_x: Tensor,
    /// Test labels.
    pub test_y: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
    /// Mean of the raw (pre-standardization) training pixels.
    pub raw_mean: f32,
    /// Std of the raw training pixels.
    pub raw_std: f32,
}

impl Dataset {
    /// Image shape of a single example.
    pub fn image_shape(&self) -> Shape4 {
        self.train_x.shape().with_n(1)
    }
}

fn standardize(train: &mut Tensor, test: &mut Tensor) -> (f32, f32) {
    let mean = train.mean();
    let std = train.variance().sqrt().max(1e-6);
    let f = |x: f32| (x - mean) / std;
    train.map_inplace(f);
    test.map_inplace(f);
    (mean, std)
}

fn build(
    name: &str,
    classes: usize,
    shape1: Shape4,
    train_n: usize,
    test_n: usize,
    seed: u64,
    mut gen: impl FnMut(usize, &mut SoftRng, &mut [f32]),
) -> Dataset {
    assert!(
        train_n > 0 && test_n > 0,
        "dataset split sizes must be non-zero"
    );
    let mut rng = SoftRng::new(seed);
    let mut make = |n: usize, rng: &mut SoftRng| {
        let shape = shape1.with_n(n);
        let mut x = Tensor::zeros(shape);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let class = rng.next_below(classes);
            gen(class, rng, x.item_mut(i));
            y.push(class);
        }
        (x, y)
    };
    let (mut train_x, train_y) = make(train_n, &mut rng);
    let (mut test_x, test_y) = make(test_n, &mut rng);
    let (raw_mean, raw_std) = standardize(&mut train_x, &mut test_x);
    Dataset {
        name: name.to_string(),
        train_x,
        train_y,
        test_x,
        test_y,
        classes: 10,
        raw_mean,
        raw_std,
    }
}

/// MNIST stand-in: 1×28×28 grey digit glyphs, light geometric jitter,
/// low pixel noise. The easiest family.
pub fn synth_mnist(train_n: usize, test_n: usize, seed: u64) -> Dataset {
    build(
        "synth-mnist",
        10,
        Shape4::new(1, 1, 28, 28),
        train_n,
        test_n,
        seed,
        |class, rng, out| {
            render::draw_digit(class, rng, out, 28, render::DigitStyle::grey_easy());
        },
    )
}

/// SVHN stand-in: 3×32×32 colored digits on colored backgrounds with
/// brightness jitter and moderate noise. Medium difficulty.
pub fn synth_svhn(train_n: usize, test_n: usize, seed: u64) -> Dataset {
    build(
        "synth-svhn",
        10,
        Shape4::new(1, 3, 32, 32),
        train_n,
        test_n,
        seed,
        |class, rng, out| {
            render::draw_digit_color(class, rng, out, 32);
        },
    )
}

/// CIFAR-10 stand-in: 3×32×32 textured shapes with heavy appearance
/// variation and noise. The hardest family.
pub fn synth_cifar(train_n: usize, test_n: usize, seed: u64) -> Dataset {
    build(
        "synth-cifar",
        10,
        Shape4::new(1, 3, 32, 32),
        train_n,
        test_n,
        seed,
        |class, rng, out| {
            shapes::draw_shape(class, rng, out, 32);
        },
    )
}

/// The paper's OOD probe: Gaussian pixel noise with the mean and
/// variance of the dataset's training pixels, passed through the same
/// standardization — i.e. `N(0, 1)` in network input space.
pub fn gaussian_noise_like(ds: &Dataset, n: usize, seed: u64) -> Tensor {
    let shape = ds.image_shape().with_n(n);
    let mut rng = SoftRng::new(seed);
    let mut x = Tensor::zeros(shape);
    for v in x.as_mut_slice() {
        // Raw-space noise N(raw_mean, raw_std²), then standardize.
        let raw = rng.normal_f32(ds.raw_mean, ds.raw_std);
        *v = (raw - ds.raw_mean) / ds.raw_std;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_are_reproducible() {
        let a = synth_mnist(16, 8, 3);
        let b = synth_mnist(16, 8, 3);
        assert_eq!(a.train_x.as_slice(), b.train_x.as_slice());
        assert_eq!(a.train_y, b.train_y);
    }

    #[test]
    fn different_seeds_differ() {
        let a = synth_mnist(16, 8, 3);
        let b = synth_mnist(16, 8, 4);
        assert_ne!(a.train_x.as_slice(), b.train_x.as_slice());
    }

    #[test]
    fn standardization_is_applied() {
        let ds = synth_svhn(64, 16, 5);
        assert!(ds.train_x.mean().abs() < 0.05, "train mean ~ 0");
        assert!((ds.train_x.variance() - 1.0).abs() < 0.1, "train var ~ 1");
    }

    #[test]
    fn labels_cover_classes() {
        let ds = synth_cifar(200, 50, 6);
        let mut seen = [false; 10];
        for &y in &ds.train_y {
            seen[y] = true;
        }
        assert!(seen.iter().all(|&s| s), "200 draws should hit every class");
    }

    #[test]
    fn same_class_images_differ() {
        let ds = synth_mnist(64, 8, 9);
        let i = ds.train_y.iter().position(|&y| y == 3);
        let j = ds.train_y.iter().rposition(|&y| y == 3);
        if let (Some(i), Some(j)) = (i, j) {
            if i != j {
                assert_ne!(
                    ds.train_x.item(i),
                    ds.train_x.item(j),
                    "jitter must vary instances"
                );
            }
        }
    }

    #[test]
    fn noise_probe_matches_input_space() {
        let ds = synth_mnist(64, 16, 2);
        let noise = gaussian_noise_like(&ds, 32, 11);
        assert_eq!(noise.shape(), ds.image_shape().with_n(32));
        assert!(noise.mean().abs() < 0.1);
        assert!((noise.variance() - 1.0).abs() < 0.15);
    }

    #[test]
    fn shapes_match_families() {
        assert_eq!(
            synth_mnist(4, 2, 1).image_shape(),
            Shape4::new(1, 1, 28, 28)
        );
        assert_eq!(synth_svhn(4, 2, 1).image_shape(), Shape4::new(1, 3, 32, 32));
        assert_eq!(
            synth_cifar(4, 2, 1).image_shape(),
            Shape4::new(1, 3, 32, 32)
        );
    }
}
