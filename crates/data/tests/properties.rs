//! Property-based tests of the synthetic dataset generators.

use bnn_data::{gaussian_noise_like, synth_cifar, synth_mnist, synth_svhn};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every family: deterministic per seed, labels in range, finite
    /// standardized pixels.
    #[test]
    fn generator_invariants(seed in 0u64..5000, family in 0u8..3) {
        let make = |s| match family {
            0 => synth_mnist(24, 8, s),
            1 => synth_svhn(24, 8, s),
            _ => synth_cifar(24, 8, s),
        };
        let a = make(seed);
        let b = make(seed);
        prop_assert_eq!(a.train_x.as_slice(), b.train_x.as_slice());
        prop_assert_eq!(&a.train_y, &b.train_y);
        prop_assert!(a.train_y.iter().all(|&y| y < a.classes));
        prop_assert!(a.test_y.iter().all(|&y| y < a.classes));
        prop_assert!(a.train_x.iter().all(|v| v.is_finite()));
        prop_assert!(a.raw_std > 0.0);
    }

    /// The OOD noise probe matches the dataset's image shape and is
    /// roughly standard-normal in network input space.
    #[test]
    fn noise_probe_shape_and_moments(seed in 0u64..5000) {
        let ds = synth_mnist(48, 16, seed);
        let noise = gaussian_noise_like(&ds, 24, seed ^ 1);
        prop_assert_eq!(noise.shape().c, 1);
        prop_assert_eq!((noise.shape().h, noise.shape().w), (28, 28));
        prop_assert!(noise.mean().abs() < 0.2);
        prop_assert!((noise.variance() - 1.0).abs() < 0.3);
    }
}
