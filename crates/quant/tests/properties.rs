//! Property-based tests of the quantization arithmetic.

use bnn_quant::{quantize_multiplier, QParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fixed-point apply matches floating multiplication within one ULP
    /// of the output integer, for any representable multiplier.
    #[test]
    fn fixed_mul_matches_float(
        m in 1e-6f64..16.0,
        acc in -2_000_000i32..2_000_000
    ) {
        let fm = quantize_multiplier(m);
        let expected = (f64::from(acc) * m).round();
        let got = f64::from(fm.apply(acc));
        prop_assert!((got - expected).abs() <= 1.0,
            "m={} acc={}: got {} expected {}", m, acc, got, expected);
    }

    /// apply is odd: f(-x) == -f(x) (round-half-away symmetry).
    #[test]
    fn fixed_mul_is_odd(m in 1e-5f64..4.0, acc in 0i32..1_000_000) {
        let fm = quantize_multiplier(m);
        prop_assert_eq!(fm.apply(-acc), -fm.apply(acc));
    }

    /// Quantize→dequantize error is bounded by half a step, and the
    /// zero point represents exactly 0.
    #[test]
    fn qparams_roundtrip(lo in -100.0f32..0.0, hi in 0.01f32..100.0, x in -100.0f32..100.0) {
        let q = QParams::from_range(lo, hi);
        prop_assert!((q.dequantize(q.quantize(0.0))).abs() < 1e-5, "zero exact");
        let x_clamped = x.clamp(lo.min(0.0), hi.max(0.0));
        let err = (q.dequantize(q.quantize(x_clamped)) - x_clamped).abs();
        prop_assert!(err <= q.scale * 0.51 + 1e-6, "err {} scale {}", err, q.scale);
    }

    /// Quantization is monotone: x <= y implies q(x) <= q(y).
    #[test]
    fn quantize_monotone(a in -50.0f32..50.0, b in -50.0f32..50.0) {
        let q = QParams::from_range(-50.0, 50.0);
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.quantize(x) <= q.quantize(y));
    }
}
