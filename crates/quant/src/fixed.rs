//! Fixed-point requantization arithmetic.
//!
//! A real-valued multiplier `m ∈ (0, 1)` (e.g. `s_x·s_w/s_y`) is
//! represented as `m = m0 · 2^(-31-shift)` with `m0 ∈ [2^30, 2^31)`,
//! exactly the scheme of Jacob et al. and of TFLite kernels: one 32×32
//! multiply, a rounding right shift — cheap in DSP blocks.

/// A positive fixed-point multiplier `m0 · 2^(-31-shift)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedMul {
    /// Normalised mantissa in `[2^30, 2^31)` (or 0 for multiplier 0).
    pub m0: i32,
    /// Extra right shift beyond the implicit 31.
    pub shift: i32,
}

impl FixedMul {
    /// The identity multiplier (×1).
    pub fn one() -> FixedMul {
        // 1.0 = 2^31/2^31 needs m0 = 2^31 which overflows; use
        // m0 = 2^30, shift = -1.
        FixedMul {
            m0: 1 << 30,
            shift: -1,
        }
    }

    /// Apply to an i32 accumulator with round-to-nearest (ties away
    /// from zero), returning the scaled value.
    pub fn apply(&self, acc: i32) -> i32 {
        let prod = i64::from(acc) * i64::from(self.m0);
        let total_shift = 31 + self.shift;
        debug_assert!((1..63).contains(&total_shift), "shift out of range");
        // Round half away from zero on the magnitude, reapply the sign.
        let mag = prod.unsigned_abs();
        let r = (mag + (1u64 << (total_shift - 1))) >> total_shift;
        if prod < 0 {
            -(r as i64) as i32
        } else {
            r as i32
        }
    }

    /// The represented real value.
    pub fn value(&self) -> f64 {
        f64::from(self.m0) * (2f64).powi(-31 - self.shift)
    }
}

/// Convert a real multiplier in `(0, 1]`-ish range to fixed point.
///
/// # Panics
///
/// Panics if `m` is not finite and positive, or too small/large to
/// represent (`2^-24 < m < 2^6` is accepted, far wider than any
/// requantization ratio arising from 8-bit scales).
pub fn quantize_multiplier(m: f64) -> FixedMul {
    assert!(
        m.is_finite() && m > 0.0,
        "multiplier must be positive, got {m}"
    );
    assert!(
        m > 2f64.powi(-24) && m < 64.0,
        "multiplier {m} out of supported range"
    );
    // Normalise to [0.5, 1) · 2^e.
    let mut shift = 0i32;
    let mut frac = m;
    while frac >= 1.0 {
        frac /= 2.0;
        shift -= 1;
    }
    while frac < 0.5 {
        frac *= 2.0;
        shift += 1;
    }
    let mut m0 = (frac * 2f64.powi(31)).round() as i64;
    if m0 == 1i64 << 31 {
        m0 >>= 1;
        shift -= 1;
    }
    FixedMul {
        m0: m0 as i32,
        shift,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_roundtrip_precision() {
        for &m in &[
            0.3301f64,
            0.0042,
            0.99,
            1.0,
            1.3333333,
            7.5,
            0.5,
            2.0_f64.powi(-20),
        ] {
            if m <= 2f64.powi(-24) {
                continue;
            }
            let fm = quantize_multiplier(m);
            let rel = (fm.value() - m).abs() / m;
            assert!(rel < 1e-8, "m {m}: value {} rel err {rel}", fm.value());
        }
    }

    #[test]
    fn apply_matches_float_rounding() {
        let fm = quantize_multiplier(0.0123);
        for &acc in &[
            0i32,
            1,
            -1,
            127,
            -128,
            100_000,
            -100_000,
            2_000_000,
            i32::MAX / 4,
        ] {
            let expected = (f64::from(acc) * 0.0123).round() as i32;
            let got = fm.apply(acc);
            assert!(
                (got - expected).abs() <= 1,
                "acc {acc}: got {got}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn one_is_identity() {
        let fm = FixedMul::one();
        for &acc in &[0i32, 5, -7, 32000, -32000, 1_000_000] {
            assert_eq!(fm.apply(acc), acc);
        }
    }

    #[test]
    fn four_thirds_dropout_scale() {
        // The DU's 1/(1-0.25) rescale.
        let fm = quantize_multiplier(4.0 / 3.0);
        assert_eq!(fm.apply(96), 128);
        assert_eq!(fm.apply(-96), -128);
        assert_eq!(fm.apply(3), 4);
    }

    #[test]
    fn rounding_is_nearest() {
        let fm = quantize_multiplier(0.5);
        assert_eq!(fm.apply(3), 2, "1.5 rounds away from zero to 2");
        assert_eq!(fm.apply(-3), -2, "-1.5 rounds away from zero");
        assert_eq!(fm.apply(4), 2);
        assert_eq!(fm.apply(5), 3, "2.5 -> 3");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_multiplier_rejected() {
        let _ = quantize_multiplier(0.0);
    }
}
