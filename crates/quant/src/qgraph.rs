//! The quantized graph and its integer reference executor.

use crate::fixed::FixedMul;
use bnn_nn::MaskSet;
use bnn_tensor::{conv_out_dim, Shape4, Tensor};

/// Affine quantization parameters of an activation tensor:
/// `real = scale · (q − zero)`, `q ∈ [0, 255]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QParams {
    /// Step size.
    pub scale: f32,
    /// Zero point (the u8 code representing real 0).
    pub zero: i32,
}

impl QParams {
    /// Derive parameters from a calibrated real range; the range is
    /// widened to include 0 so zero padding is exactly representable.
    pub fn from_range(min: f32, max: f32) -> QParams {
        let lo = min.min(0.0);
        let hi = max.max(0.0).max(lo + 1e-6);
        let scale = (hi - lo) / 255.0;
        let zero = (-lo / scale).round().clamp(0.0, 255.0) as i32;
        QParams { scale, zero }
    }

    /// Quantize one real value.
    pub fn quantize(&self, x: f32) -> u8 {
        ((x / self.scale).round() as i32 + self.zero).clamp(0, 255) as u8
    }

    /// Dequantize one code.
    pub fn dequantize(&self, q: u8) -> f32 {
        (i32::from(q) - self.zero) as f32 * self.scale
    }
}

/// A u8 activation tensor in NCHW layout.
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    /// Raw codes.
    pub data: Vec<u8>,
    /// Shape.
    pub shape: Shape4,
}

impl QTensor {
    /// Zero-filled (code 0, *not* real zero) tensor.
    pub fn zeros(shape: Shape4) -> QTensor {
        QTensor {
            data: vec![0; shape.len()],
            shape,
        }
    }

    /// Slice of one batch item.
    pub fn item(&self, n: usize) -> &[u8] {
        let sz = self.shape.item_len();
        &self.data[n * sz..(n + 1) * sz]
    }

    /// Mutable slice of one batch item.
    pub fn item_mut(&mut self, n: usize) -> &mut [u8] {
        let sz = self.shape.item_len();
        &mut self.data[n * sz..(n + 1) * sz]
    }
}

/// Quantized operations. Weight layers carry their integer parameters
/// inline (the accelerator's compiler reads them to fill its buffers).
#[derive(Debug, Clone)]
pub enum QNodeOp {
    /// Graph input.
    Input,
    /// Quantized convolution with per-output-channel requantization.
    Conv {
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Kernel.
        k: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
        /// i8 weights `[out_c, in_c·k·k]` row-major.
        w: Vec<i8>,
        /// i32 bias per output channel (scale `s_x·s_w,c`).
        bias: Vec<i32>,
        /// Per-channel requantization multiplier `s_x·s_w,c / s_y`.
        requant: Vec<FixedMul>,
        /// Input zero point.
        zx: i32,
        /// Output zero point.
        zy: i32,
    },
    /// Quantized fully-connected layer.
    Linear {
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
        /// i8 weights `[out_f, in_f]`.
        w: Vec<i8>,
        /// i32 bias.
        bias: Vec<i32>,
        /// Per-output requantization multipliers.
        requant: Vec<FixedMul>,
        /// Input zero point.
        zx: i32,
        /// Output zero point.
        zy: i32,
    },
    /// ReLU: clamp at the zero point.
    Relu {
        /// Zero point of the (shared) input/output scale.
        z: i32,
    },
    /// Max pooling (order-preserving on u8).
    MaxPool {
        /// Window.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Average pooling with round-to-nearest integer division.
    AvgPool {
        /// Window.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling.
    GlobalAvgPool,
    /// Flatten.
    Flatten,
    /// Residual addition: both inputs rescaled to the output scale.
    Add {
        /// `s_a / s_y`.
        ma: FixedMul,
        /// `s_b / s_y`.
        mb: FixedMul,
        /// Zero point of input a.
        za: i32,
        /// Zero point of input b.
        zb: i32,
        /// Output zero point.
        zy: i32,
    },
    /// MCD dropout site: multiplexer + fixed-point `1/(1-p)` rescale.
    McdSite {
        /// Site index (mask selector).
        site: usize,
        /// Fixed-point `1/(1-p)`.
        mul: FixedMul,
        /// Zero point (dropped channels are set to it).
        z: i32,
    },
}

/// A quantized node.
#[derive(Debug, Clone)]
pub struct QNode {
    /// Operation.
    pub op: QNodeOp,
    /// Producer nodes.
    pub inputs: Vec<usize>,
    /// Name carried over from the f32 graph.
    pub name: String,
}

/// A fully-quantized network ready for integer execution.
#[derive(Debug, Clone)]
pub struct QGraph {
    pub(crate) nodes: Vec<QNode>,
    pub(crate) input: usize,
    pub(crate) output: usize,
    pub(crate) n_sites: usize,
    pub(crate) input_q: QParams,
    pub(crate) output_q: QParams,
    pub(crate) name: String,
}

impl QGraph {
    /// Nodes in topological order.
    pub fn nodes(&self) -> &[QNode] {
        &self.nodes
    }

    /// Input node id.
    pub fn input_id(&self) -> usize {
        self.input
    }

    /// Output node id.
    pub fn output_id(&self) -> usize {
        self.output
    }

    /// Number of MCD sites.
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Input quantization parameters.
    pub fn input_qparams(&self) -> QParams {
        self.input_q
    }

    /// Output (logits) quantization parameters.
    pub fn output_qparams(&self) -> QParams {
        self.output_q
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Output shape of every node for an input shape (the integer
    /// mirror of `bnn_nn::Graph::infer_shapes`).
    ///
    /// # Panics
    ///
    /// Panics if the graph is malformed (construction bug).
    pub fn infer_shapes(&self, input: Shape4) -> Vec<Shape4> {
        let mut shapes: Vec<Shape4> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let s = qnode_out_shape(node, input, |id| shapes[id]);
            shapes.push(s);
        }
        shapes
    }

    /// Channel count seen by each MCD site for a given input shape
    /// (the mask length the Bernoulli sampler must produce).
    pub fn site_channels(&self, input: Shape4) -> Vec<usize> {
        let shapes = self.infer_shapes(input);
        let mut out = vec![0usize; self.n_sites];
        for (id, node) in self.nodes.iter().enumerate() {
            if let QNodeOp::McdSite { site, .. } = &node.op {
                out[*site] = shapes[id].c;
            }
        }
        out
    }

    /// Number of output classes `K` for a given input shape.
    pub fn output_classes(&self, input: Shape4) -> usize {
        self.infer_shapes(input)[self.output].item_len()
    }

    /// First node of the Bayesian suffix for a set of active sites:
    /// the earliest [`QNodeOp::McdSite`] whose site is active, or
    /// `nodes.len()` when none is (fully deterministic execution).
    ///
    /// Both the int8 backend and the accelerator simulator split their
    /// intermediate-layer caching here, so the two substrates cannot
    /// disagree on the prefix/suffix boundary.
    pub fn suffix_split(&self, active: &[bool]) -> usize {
        self.nodes
            .iter()
            .position(|n| match n.op {
                QNodeOp::McdSite { site, .. } => active.get(site).copied().unwrap_or(false),
                _ => false,
            })
            .unwrap_or(self.nodes.len())
    }

    /// Quantize a real-valued input batch.
    pub fn quantize_input(&self, x: &Tensor) -> QTensor {
        let mut q = QTensor::zeros(x.shape());
        for (qv, &xv) in q.data.iter_mut().zip(x.iter()) {
            *qv = self.input_q.quantize(xv);
        }
        q
    }

    /// Dequantize logits.
    pub fn dequantize_output(&self, q: &QTensor) -> Tensor {
        let data = q
            .data
            .iter()
            .map(|&v| self.output_q.dequantize(v))
            .collect();
        Tensor::from_vec(q.shape, data)
    }

    /// Integer forward pass returning dequantized logits.
    pub fn forward(&self, x: &Tensor, masks: &MaskSet) -> Tensor {
        let outs = self.forward_trace(&self.quantize_input(x), masks);
        self.dequantize_output(&outs[self.output])
    }

    /// Integer forward pass returning every node's u8 output
    /// (the accelerator simulator cross-checks against this trace).
    pub fn forward_trace(&self, input: &QTensor, masks: &MaskSet) -> Vec<QTensor> {
        let mut outs: Vec<QTensor> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let y = exec_qnode(node, &outs, input, masks);
            outs.push(y);
        }
        outs
    }
}

/// Output shape of one quantized node given its predecessors' shapes.
fn qnode_out_shape(node: &QNode, input: Shape4, get: impl Fn(usize) -> Shape4) -> Shape4 {
    let of = |i: usize| get(node.inputs[i]);
    match &node.op {
        QNodeOp::Input => input,
        QNodeOp::Conv {
            out_c,
            k,
            stride,
            pad,
            ..
        } => {
            let s = of(0);
            Shape4::new(
                s.n,
                *out_c,
                conv_out_dim(s.h, *k, *stride, *pad),
                conv_out_dim(s.w, *k, *stride, *pad),
            )
        }
        QNodeOp::Linear { out_f, .. } => Shape4::vec(of(0).n, *out_f),
        QNodeOp::Relu { .. } | QNodeOp::McdSite { .. } | QNodeOp::Add { .. } => of(0),
        QNodeOp::MaxPool { k, stride } | QNodeOp::AvgPool { k, stride } => {
            let s = of(0);
            Shape4::new(
                s.n,
                s.c,
                conv_out_dim(s.h, *k, *stride, 0),
                conv_out_dim(s.w, *k, *stride, 0),
            )
        }
        QNodeOp::GlobalAvgPool => {
            let s = of(0);
            Shape4::new(s.n, s.c, 1, 1)
        }
        QNodeOp::Flatten => {
            let s = of(0);
            Shape4::vec(s.n, s.item_len())
        }
    }
}

/// Execute one quantized node against its predecessors' outputs.
///
/// Exposed so the accelerator simulator can reuse the functional-unit
/// ops (ReLU/pool/add/dropout) while supplying its own tiled matrix
/// kernels.
pub fn exec_qnode(node: &QNode, outs: &[QTensor], input: &QTensor, masks: &MaskSet) -> QTensor {
    match &node.op {
        QNodeOp::Input => input.clone(),
        QNodeOp::Conv {
            in_c,
            out_c,
            k,
            stride,
            pad,
            w,
            bias,
            requant,
            zx,
            zy,
        } => {
            let x = &outs[node.inputs[0]];
            qconv(
                x, *in_c, *out_c, *k, *stride, *pad, w, bias, requant, *zx, *zy,
            )
        }
        QNodeOp::Linear {
            in_f,
            out_f,
            w,
            bias,
            requant,
            zx,
            zy,
        } => {
            let x = &outs[node.inputs[0]];
            qlinear(x, *in_f, *out_f, w, bias, requant, *zx, *zy)
        }
        QNodeOp::Relu { z } => {
            let x = &outs[node.inputs[0]];
            let z8 = (*z).clamp(0, 255) as u8;
            QTensor {
                data: x.data.iter().map(|&v| v.max(z8)).collect(),
                shape: x.shape,
            }
        }
        QNodeOp::MaxPool { k, stride } => qmaxpool(&outs[node.inputs[0]], *k, *stride),
        QNodeOp::AvgPool { k, stride } => qavgpool(&outs[node.inputs[0]], *k, *stride),
        QNodeOp::GlobalAvgPool => qgap(&outs[node.inputs[0]]),
        QNodeOp::Flatten => {
            let x = &outs[node.inputs[0]];
            QTensor {
                data: x.data.clone(),
                shape: Shape4::vec(x.shape.n, x.shape.item_len()),
            }
        }
        QNodeOp::Add { ma, mb, za, zb, zy } => {
            let a = &outs[node.inputs[0]];
            let b = &outs[node.inputs[1]];
            let data = a
                .data
                .iter()
                .zip(&b.data)
                .map(|(&qa, &qb)| {
                    let va = ma.apply(i32::from(qa) - za);
                    let vb = mb.apply(i32::from(qb) - zb);
                    (va + vb + zy).clamp(0, 255) as u8
                })
                .collect();
            QTensor {
                data,
                shape: a.shape,
            }
        }
        QNodeOp::McdSite { site, mul, z } => {
            let x = &outs[node.inputs[0]];
            let mut y = x.clone();
            if let Some(mask) = masks.get(*site) {
                apply_qmask(&mut y, &mask.keep, *mul, *z, &node.name);
            }
            y
        }
    }
}

/// The dropout unit's integer behaviour: dropped channels are set to
/// the zero point; kept channels are rescaled by the fixed-point
/// `1/(1-p)` multiplier around the zero point.
pub fn apply_qmask(x: &mut QTensor, keep: &[bool], mul: FixedMul, z: i32, name: &str) {
    let s = x.shape;
    assert_eq!(keep.len(), s.c, "{name}: mask length != channels");
    let plane = s.h * s.w;
    for n in 0..s.n {
        let item = x.item_mut(n);
        for (c, &kept) in keep.iter().enumerate() {
            let sl = &mut item[c * plane..(c + 1) * plane];
            if kept {
                for v in sl {
                    *v = (z + mul.apply(i32::from(*v) - z)).clamp(0, 255) as u8;
                }
            } else {
                sl.fill(z.clamp(0, 255) as u8);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn qconv(
    x: &QTensor,
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    w: &[i8],
    bias: &[i32],
    requant: &[FixedMul],
    zx: i32,
    zy: i32,
) -> QTensor {
    let s = x.shape;
    debug_assert_eq!(s.c, in_c, "channel mismatch");
    let ho = conv_out_dim(s.h, k, stride, pad);
    let wo = conv_out_dim(s.w, k, stride, pad);
    let mut y = QTensor::zeros(Shape4::new(s.n, out_c, ho, wo));
    let ckk = in_c * k * k;
    for n in 0..s.n {
        let xi = x.item(n);
        let yi = y.item_mut(n);
        for f in 0..out_c {
            let wrow = &w[f * ckk..(f + 1) * ckk];
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = bias[f];
                    for c in 0..in_c {
                        for ky in 0..k {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= s.h as isize {
                                // Padding contributes (zx - zx) * w = 0.
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= s.w as isize {
                                    continue;
                                }
                                let xv =
                                    i32::from(xi[(c * s.h + iy as usize) * s.w + ix as usize]) - zx;
                                let wv = i32::from(wrow[(c * k + ky) * k + kx]);
                                acc += xv * wv;
                            }
                        }
                    }
                    let q = (zy + requant[f].apply(acc)).clamp(0, 255) as u8;
                    yi[(f * ho + oy) * wo + ox] = q;
                }
            }
        }
    }
    y
}

#[allow(clippy::too_many_arguments)]
fn qlinear(
    x: &QTensor,
    in_f: usize,
    out_f: usize,
    w: &[i8],
    bias: &[i32],
    requant: &[FixedMul],
    zx: i32,
    zy: i32,
) -> QTensor {
    let s = x.shape;
    debug_assert_eq!(s.item_len(), in_f, "feature mismatch");
    let mut y = QTensor::zeros(Shape4::vec(s.n, out_f));
    for n in 0..s.n {
        let xi = x.item(n);
        let yi = y.item_mut(n);
        for f in 0..out_f {
            let wrow = &w[f * in_f..(f + 1) * in_f];
            let mut acc = bias[f];
            for (j, &wv) in wrow.iter().enumerate() {
                acc += (i32::from(xi[j]) - zx) * i32::from(wv);
            }
            yi[f] = (zy + requant[f].apply(acc)).clamp(0, 255) as u8;
        }
    }
    y
}

fn qmaxpool(x: &QTensor, k: usize, stride: usize) -> QTensor {
    let s = x.shape;
    let ho = conv_out_dim(s.h, k, stride, 0);
    let wo = conv_out_dim(s.w, k, stride, 0);
    let mut y = QTensor::zeros(Shape4::new(s.n, s.c, ho, wo));
    for n in 0..s.n {
        let xi = x.item(n);
        let yi = y.item_mut(n);
        for c in 0..s.c {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut best = 0u8;
                    for ky in 0..k {
                        for kx in 0..k {
                            let v = xi[(c * s.h + oy * stride + ky) * s.w + ox * stride + kx];
                            best = best.max(v);
                        }
                    }
                    yi[(c * ho + oy) * wo + ox] = best;
                }
            }
        }
    }
    y
}

fn qavgpool(x: &QTensor, k: usize, stride: usize) -> QTensor {
    let s = x.shape;
    let ho = conv_out_dim(s.h, k, stride, 0);
    let wo = conv_out_dim(s.w, k, stride, 0);
    let mut y = QTensor::zeros(Shape4::new(s.n, s.c, ho, wo));
    let div = (k * k) as u32;
    for n in 0..s.n {
        let xi = x.item(n);
        let yi = y.item_mut(n);
        for c in 0..s.c {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut sum = 0u32;
                    for ky in 0..k {
                        for kx in 0..k {
                            sum += u32::from(
                                xi[(c * s.h + oy * stride + ky) * s.w + ox * stride + kx],
                            );
                        }
                    }
                    yi[(c * ho + oy) * wo + ox] = ((sum + div / 2) / div) as u8;
                }
            }
        }
    }
    y
}

fn qgap(x: &QTensor) -> QTensor {
    let s = x.shape;
    let mut y = QTensor::zeros(Shape4::new(s.n, s.c, 1, 1));
    let div = (s.h * s.w) as u32;
    for n in 0..s.n {
        let xi = x.item(n);
        let yi = y.item_mut(n);
        for c in 0..s.c {
            let sum: u32 = xi[c * s.h * s.w..(c + 1) * s.h * s.w]
                .iter()
                .map(|&v| u32::from(v))
                .sum();
            yi[c] = ((sum + div / 2) / div) as u8;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::quantize_multiplier;

    #[test]
    fn qparams_cover_zero() {
        let q = QParams::from_range(0.5, 2.0); // range widened to [0, 2]
        assert_eq!(q.quantize(0.0), q.zero as u8);
        let q2 = QParams::from_range(-1.0, 1.0);
        let z = q2.zero as u8;
        assert_eq!(q2.quantize(0.0), z);
        assert!((q2.dequantize(z)).abs() < 1e-6);
    }

    #[test]
    fn qparams_roundtrip_error_bounded() {
        let q = QParams::from_range(-3.0, 3.0);
        for i in 0..100 {
            let x = -3.0 + 6.0 * (i as f32) / 99.0;
            let err = (q.dequantize(q.quantize(x)) - x).abs();
            assert!(err <= q.scale * 0.5 + 1e-6, "x {x}: err {err}");
        }
    }

    #[test]
    fn qmask_sets_dropped_channels_to_zero_point() {
        let mut t = QTensor {
            data: vec![200, 200, 10, 10],
            shape: Shape4::new(1, 2, 1, 2),
        };
        apply_qmask(
            &mut t,
            &[false, true],
            quantize_multiplier(4.0 / 3.0),
            128,
            "t",
        );
        assert_eq!(&t.data[0..2], &[128, 128], "dropped -> zero point");
        // kept: 128 + (10-128)*4/3 = 128 - 157.33 -> clamp 0.
        assert_eq!(&t.data[2..4], &[0, 0]);
    }

    #[test]
    fn qmaxpool_takes_max() {
        let t = QTensor {
            data: vec![1, 9, 3, 4],
            shape: Shape4::new(1, 1, 2, 2),
        };
        let y = qmaxpool(&t, 2, 2);
        assert_eq!(y.data, vec![9]);
    }

    #[test]
    fn qavgpool_rounds_to_nearest() {
        let t = QTensor {
            data: vec![1, 2, 3, 5],
            shape: Shape4::new(1, 1, 2, 2),
        };
        let y = qavgpool(&t, 2, 2);
        assert_eq!(y.data, vec![3], "11/4 = 2.75 -> 3");
    }

    #[test]
    fn qconv_padding_is_zero_point_neutral() {
        // Single 1x1 input, 3x3 kernel of ones, pad 1: only the centre
        // tap sees data; padding must contribute nothing.
        let x = QTensor {
            data: vec![130],
            shape: Shape4::new(1, 1, 1, 1),
        };
        let w = vec![1i8; 9];
        let bias = vec![0i32];
        let requant = vec![FixedMul::one()];
        let y = qconv(&x, 1, 1, 3, 1, 1, &w, &bias, &requant, 128, 0);
        // acc = (130-128)*1 = 2 (centre tap only), zy=0 -> q=2.
        assert_eq!(y.data, vec![2]);
    }
}
