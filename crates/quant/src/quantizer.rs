//! Calibration and lowering from a BN-folded f32 [`Graph`] to a
//! [`QGraph`].

use crate::fixed::{quantize_multiplier, FixedMul};
use crate::qgraph::{QGraph, QNode, QNodeOp, QParams};
use bnn_nn::{Graph, MaskSet, Op};
use bnn_rng::SoftRng;
use bnn_tensor::Tensor;

/// Post-training quantizer: records activation ranges over calibration
/// data, then lowers the graph to integers.
///
/// The input graph must be BN-free (run
/// [`Graph::fold_batch_norm`] first); the constructor enforces this.
#[derive(Debug)]
pub struct Quantizer<'g> {
    graph: &'g Graph,
    ranges: Vec<(f32, f32)>,
    calibrated: bool,
}

impl<'g> Quantizer<'g> {
    /// Create a quantizer.
    ///
    /// # Panics
    ///
    /// Panics if the graph still contains BatchNorm nodes.
    pub fn new(graph: &'g Graph) -> Quantizer<'g> {
        assert!(
            !graph
                .nodes()
                .iter()
                .any(|n| matches!(n.op, Op::BatchNorm { .. })),
            "quantizer requires a BN-folded graph (call fold_batch_norm first)"
        );
        Quantizer {
            graph,
            ranges: vec![(f32::INFINITY, f32::NEG_INFINITY); graph.nodes().len()],
            calibrated: false,
        }
    }

    /// Record activation ranges over a calibration batch.
    ///
    /// Three passes are run: one deterministic and two with full-MCD
    /// masks, so the `1/(1-p)` rescale of Bayesian inference lies
    /// inside every calibrated range. Can be called repeatedly with
    /// more batches.
    pub fn calibrate(&mut self, xs: &Tensor) -> &mut Self {
        let clean = MaskSet::none();
        self.record(xs, &clean);
        let n = self.graph.n_sites();
        let channels = self.graph.site_channels(xs.shape());
        let mut rng = SoftRng::new(0xCA11_B8A7E);
        let all_active = vec![true; n];
        for _ in 0..2 {
            let masks = MaskSet::sample_software(&all_active, &channels, 0.25, &mut rng);
            self.record(xs, &masks);
        }
        self.calibrated = true;
        self
    }

    fn record(&mut self, xs: &Tensor, masks: &MaskSet) {
        let acts = self.graph.forward_full(xs, masks);
        for (id, range) in self.ranges.iter_mut().enumerate() {
            let out = acts.output(id);
            range.0 = range.0.min(out.min());
            range.1 = range.1.max(out.max());
        }
    }

    /// Lower to a quantized graph.
    ///
    /// # Panics
    ///
    /// Panics if [`Quantizer::calibrate`] has not been called.
    pub fn quantize(&self) -> QGraph {
        assert!(self.calibrated, "calibrate() must run before quantize()");
        let nodes = self.graph.nodes();
        let params = self.graph.params();

        // Activation qparams per node. Shape-preserving ops share their
        // input's parameters so ReLU/pool/flatten/dropout stay pure
        // integer ops without rescaling.
        let mut qp: Vec<QParams> = Vec::with_capacity(nodes.len());
        for (id, node) in nodes.iter().enumerate() {
            let own = || {
                let (lo, hi) = self.ranges[id];
                QParams::from_range(lo, hi)
            };
            let p = match node.op {
                Op::Relu
                | Op::MaxPool { .. }
                | Op::AvgPool { .. }
                | Op::GlobalAvgPool
                | Op::Flatten
                | Op::McdSite { .. } => qp[node.inputs[0]],
                _ => own(),
            };
            qp.push(p);
        }

        let mut qnodes: Vec<QNode> = Vec::with_capacity(nodes.len());
        for (id, node) in nodes.iter().enumerate() {
            let op = match &node.op {
                Op::Input => QNodeOp::Input,
                Op::Conv {
                    w,
                    b,
                    in_c,
                    out_c,
                    k,
                    stride,
                    pad,
                } => {
                    let (wq, bq, rq) = quantize_weights(
                        params.get(*w).as_slice(),
                        params.get(*b).as_slice(),
                        *out_c,
                        qp[node.inputs[0]],
                        qp[id],
                    );
                    QNodeOp::Conv {
                        in_c: *in_c,
                        out_c: *out_c,
                        k: *k,
                        stride: *stride,
                        pad: *pad,
                        w: wq,
                        bias: bq,
                        requant: rq,
                        zx: qp[node.inputs[0]].zero,
                        zy: qp[id].zero,
                    }
                }
                Op::Linear { w, b, in_f, out_f } => {
                    let (wq, bq, rq) = quantize_weights(
                        params.get(*w).as_slice(),
                        params.get(*b).as_slice(),
                        *out_f,
                        qp[node.inputs[0]],
                        qp[id],
                    );
                    QNodeOp::Linear {
                        in_f: *in_f,
                        out_f: *out_f,
                        w: wq,
                        bias: bq,
                        requant: rq,
                        zx: qp[node.inputs[0]].zero,
                        zy: qp[id].zero,
                    }
                }
                Op::BatchNorm { .. } => unreachable!("graph is BN-folded"),
                Op::Relu => QNodeOp::Relu { z: qp[id].zero },
                Op::MaxPool { k, stride } => QNodeOp::MaxPool {
                    k: *k,
                    stride: *stride,
                },
                Op::AvgPool { k, stride } => QNodeOp::AvgPool {
                    k: *k,
                    stride: *stride,
                },
                Op::GlobalAvgPool => QNodeOp::GlobalAvgPool,
                Op::Flatten => QNodeOp::Flatten,
                Op::Add => {
                    let a = qp[node.inputs[0]];
                    let b = qp[node.inputs[1]];
                    let y = qp[id];
                    QNodeOp::Add {
                        ma: quantize_multiplier(f64::from(a.scale / y.scale)),
                        mb: quantize_multiplier(f64::from(b.scale / y.scale)),
                        za: a.zero,
                        zb: b.zero,
                        zy: y.zero,
                    }
                }
                Op::McdSite { site, p } => QNodeOp::McdSite {
                    site: site.0,
                    mul: quantize_multiplier(1.0 / (1.0 - f64::from(*p))),
                    z: qp[id].zero,
                },
            };
            qnodes.push(QNode {
                op,
                inputs: node.inputs.clone(),
                name: node.name.clone(),
            });
        }

        QGraph {
            nodes: qnodes,
            input: self.graph.input_id(),
            output: self.graph.output_id(),
            n_sites: self.graph.n_sites(),
            input_q: qp[self.graph.input_id()],
            output_q: qp[self.graph.output_id()],
            name: format!("{}-int8", self.graph.name()),
        }
    }
}

/// Symmetric per-output-channel weight quantization plus bias and
/// requantization multipliers.
fn quantize_weights(
    w: &[f32],
    b: &[f32],
    out_ch: usize,
    x_q: QParams,
    y_q: QParams,
) -> (Vec<i8>, Vec<i32>, Vec<FixedMul>) {
    let per_ch = w.len() / out_ch;
    let mut wq = vec![0i8; w.len()];
    let mut bq = vec![0i32; out_ch];
    let mut rq = Vec::with_capacity(out_ch);
    for c in 0..out_ch {
        let row = &w[c * per_ch..(c + 1) * per_ch];
        let absmax = row.iter().fold(1e-8f32, |m, &v| m.max(v.abs()));
        let sw = absmax / 127.0;
        for (dst, &src) in wq[c * per_ch..(c + 1) * per_ch].iter_mut().zip(row) {
            *dst = (src / sw).round().clamp(-127.0, 127.0) as i8;
        }
        bq[c] = (b[c] / (x_q.scale * sw)).round() as i32;
        rq.push(quantize_multiplier(f64::from(x_q.scale * sw / y_q.scale)));
    }
    (wq, bq, rq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_nn::models;
    use bnn_tensor::Shape4;

    fn calib_input(shape: Shape4, seed: u64) -> Tensor {
        let mut rng = SoftRng::new(seed);
        Tensor::from_vec(
            shape,
            (0..shape.len()).map(|_| rng.normal_f32(0.0, 1.0)).collect(),
        )
    }

    #[test]
    fn quantized_forward_tracks_f32() {
        let net = models::lenet5(10, 1, 16, 3).fold_batch_norm();
        let xs = calib_input(Shape4::new(8, 1, 16, 16), 1);
        let q = Quantizer::new(&net).calibrate(&xs).quantize();
        let probe = calib_input(Shape4::new(4, 1, 16, 16), 2);
        let yf = net.forward(&probe, &MaskSet::none());
        let yq = q.forward(&probe, &MaskSet::none());
        // Logit-space agreement: max error well under the logit spread.
        let spread = yf.max() - yf.min();
        let err = yf.max_abs_diff(&yq);
        assert!(
            err < 0.15 * spread.max(1.0),
            "int8 error {err} vs spread {spread}"
        );
    }

    #[test]
    fn quantized_argmax_mostly_agrees() {
        let net = models::resnet18(10, 3, 4, 5).fold_batch_norm();
        let xs = calib_input(Shape4::new(6, 3, 16, 16), 3);
        let q = Quantizer::new(&net).calibrate(&xs).quantize();
        let probe = calib_input(Shape4::new(6, 3, 16, 16), 4);
        let yf = net.forward(&probe, &MaskSet::none());
        let yq = q.forward(&probe, &MaskSet::none());
        let agree = (0..6)
            .filter(|&i| yf.argmax_item(i) == yq.argmax_item(i))
            .count();
        assert!(agree >= 4, "argmax agreement {agree}/6 too low");
    }

    #[test]
    #[should_panic(expected = "BN-folded")]
    fn rejects_unfolded_graph() {
        let net = models::lenet5(10, 1, 16, 3);
        let _ = Quantizer::new(&net);
    }

    #[test]
    #[should_panic(expected = "calibrate")]
    fn rejects_uncalibrated_quantize() {
        let net = models::lenet5(10, 1, 16, 3).fold_batch_norm();
        let _ = Quantizer::new(&net).quantize();
    }

    #[test]
    fn masked_quantized_forward_runs() {
        let net = models::lenet5(10, 1, 16, 3).fold_batch_norm();
        let xs = calib_input(Shape4::new(4, 1, 16, 16), 1);
        let q = Quantizer::new(&net).calibrate(&xs).quantize();
        let channels = net.site_channels(xs.shape());
        let mut rng = SoftRng::new(9);
        let masks = MaskSet::sample_software(&vec![true; net.n_sites()], &channels, 0.25, &mut rng);
        let y = q.forward(&xs, &masks);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn weight_quantization_is_per_channel() {
        // Two output channels with very different magnitudes must get
        // different scales (small channel keeps resolution).
        let w = vec![10.0, -10.0, 0.01, -0.01];
        let b = vec![0.0, 0.0];
        let (wq, _bq, rq) = quantize_weights(
            &w,
            &b,
            2,
            QParams {
                scale: 0.1,
                zero: 0,
            },
            QParams {
                scale: 0.1,
                zero: 0,
            },
        );
        assert_eq!(&wq[0..2], &[127, -127]);
        assert_eq!(&wq[2..4], &[127, -127], "small channel uses its own scale");
        assert!(rq[0].value() > rq[1].value());
    }
}
