//! 8-bit linear quantization (Jacob et al., CVPR'18) and an int8
//! reference executor.
//!
//! The paper's accelerator computes in 8-bit precision ("the 8-bit
//! linear quantization (ref. 21) is applied on the trained models", two
//! multipliers per DSP). This crate provides the deployment pipeline:
//!
//! 1. [`Quantizer::calibrate`] — record per-node activation ranges of a
//!    BN-folded f32 graph over calibration data (with MCD masks, so the
//!    `1/(1-p)` rescale is inside the calibrated range),
//! 2. [`Quantizer::quantize`] — lower to a [`QGraph`]: u8 asymmetric
//!    activations, i8 symmetric per-output-channel weights, i32 bias
//!    and accumulators, fixed-point requantization multipliers,
//! 3. [`QGraph::forward`] — bit-exact integer execution, including the
//!    dropout unit's fixed-point `1/(1-p)` multiplier.
//!
//! The accelerator simulator (`bnn-accel`) executes the *same*
//! [`QGraph`], so "simulator output == reference output" is a
//! bit-exactness test, not an approximation check.
//!
//! # Example
//!
//! ```
//! use bnn_nn::{models, MaskSet};
//! use bnn_quant::Quantizer;
//! use bnn_tensor::{Shape4, Tensor};
//!
//! let net = models::lenet5(10, 1, 16, 1).fold_batch_norm();
//! let calib = Tensor::zeros(Shape4::new(4, 1, 16, 16));
//! let qgraph = Quantizer::new(&net).calibrate(&calib).quantize();
//! let logits = qgraph.forward(&calib, &MaskSet::none());
//! assert_eq!(logits.shape().c, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod fixed;
mod qgraph;
mod quantizer;

pub use backend::{IcRunner, Int8Backend};
pub use fixed::{quantize_multiplier, FixedMul};
pub use qgraph::{apply_qmask, exec_qnode, QGraph, QNode, QNodeOp, QParams, QTensor};
pub use quantizer::Quantizer;
