//! The int8 [`BayesBackend`]: integer execution of a [`QGraph`] with
//! quantize/dequantize at the boundary.
//!
//! `prepare` quantizes the input once and runs the deterministic
//! prefix (every node before the first active MCD site) through the
//! integer reference executor — the same intermediate-layer caching
//! the accelerator applies. Each Monte Carlo pass then re-runs only
//! the Bayesian suffix, dequantizes the logits and softmaxes them, so
//! the generic engine in `bnn-mcd` can average int8 samples exactly
//! like float ones.

use crate::qgraph::{exec_qnode, QGraph, QNode, QTensor};
use bnn_mcd::{BayesBackend, BayesConfig, ModelCost};
use bnn_nn::MaskSet;
use bnn_tensor::{softmax_rows, Shape4, Tensor};

/// Intermediate-layer-caching runner over a [`QGraph`], parameterized
/// by the per-node executor.
///
/// Both integer substrates — the reference int8 backend here (via
/// [`exec_qnode`]) and the accelerator backend in `bnn-accel` (via
/// its tiled PE stations) — share this one implementation of the IC
/// protocol: quantize the input once, run the deterministic prefix
/// once, then per Monte Carlo pass truncate a per-worker scratch back
/// to the suffix boundary and re-run only the suffix, dequantizing
/// and softmaxing the logits. Keeping the protocol in one place is
/// what makes "accel is bit-identical to int8 under the same masks" a
/// property of the node executors alone.
#[derive(Debug, Clone)]
pub struct IcRunner {
    /// Quantized input batch.
    input: QTensor,
    /// Node outputs of the deterministic prefix (`nodes[..split]`).
    prefix: Vec<QTensor>,
    /// First node of the Bayesian suffix (`nodes.len()` when the run
    /// is fully deterministic).
    split: usize,
}

impl IcRunner {
    /// Quantize `x` and execute the deterministic prefix with `exec`.
    pub fn prepare(
        qgraph: &QGraph,
        x: &Tensor,
        active: &[bool],
        mut exec: impl FnMut(&QNode, &[QTensor], &QTensor, &MaskSet) -> QTensor,
    ) -> IcRunner {
        let input = qgraph.quantize_input(x);
        let split = qgraph.suffix_split(active);
        let empty = MaskSet::none();
        let mut prefix: Vec<QTensor> = Vec::with_capacity(split);
        for node in &qgraph.nodes()[..split] {
            let y = exec(node, &prefix, &input, &empty);
            prefix.push(y);
        }
        IcRunner {
            input,
            prefix,
            split,
        }
    }

    /// A per-worker scratch: the prefix is cloned once per worker, not
    /// once per sample.
    pub fn scratch(&self) -> Vec<QTensor> {
        self.prefix.clone()
    }

    /// One Monte Carlo pass: truncate `outs` back to the suffix
    /// boundary (suffix execution never mutates prefix entries),
    /// re-run the suffix with `exec`, and return softmaxed
    /// dequantized probabilities.
    pub fn forward(
        &self,
        qgraph: &QGraph,
        masks: &MaskSet,
        outs: &mut Vec<QTensor>,
        mut exec: impl FnMut(&QNode, &[QTensor], &QTensor, &MaskSet) -> QTensor,
    ) -> Tensor {
        outs.truncate(self.split);
        for node in &qgraph.nodes()[self.split..] {
            let y = exec(node, outs, &self.input, masks);
            outs.push(y);
        }
        let mut logits = qgraph.dequantize_output(&outs[qgraph.output_id()]);
        let s = logits.shape();
        let (rows, cols) = (s.n, s.item_len());
        softmax_rows(logits.as_mut_slice(), rows, cols);
        logits
    }
}

/// Int8 execution substrate over a quantized graph.
///
/// The graph is held behind an `Arc`: it is immutable at serving
/// time, so [`BayesBackend::fork`] (batch-axis parallelism) and
/// `Clone` are pointer bumps, not weight copies.
#[derive(Debug, Clone)]
pub struct Int8Backend {
    qgraph: std::sync::Arc<QGraph>,
    prepared: Option<IcRunner>,
}

impl Int8Backend {
    /// Create a backend owning a quantized graph.
    pub fn new(qgraph: QGraph) -> Int8Backend {
        Int8Backend {
            qgraph: std::sync::Arc::new(qgraph),
            prepared: None,
        }
    }

    /// The wrapped quantized graph.
    pub fn qgraph(&self) -> &QGraph {
        &self.qgraph
    }

    fn prepared(&self) -> &IcRunner {
        self.prepared
            .as_ref()
            .expect("Int8Backend::prepare not called")
    }
}

impl BayesBackend for Int8Backend {
    type Scratch = Vec<QTensor>;

    fn name(&self) -> &'static str {
        "int8"
    }

    fn n_sites(&self) -> usize {
        self.qgraph.n_sites()
    }

    fn site_channels(&self, input: Shape4) -> Vec<usize> {
        self.qgraph.site_channels(input)
    }

    fn output_classes(&self, input: Shape4) -> usize {
        self.qgraph.output_classes(input)
    }

    fn prepare(&mut self, x: &Tensor, active: &[bool]) {
        self.prepared = Some(IcRunner::prepare(&self.qgraph, x, active, exec_qnode));
    }

    fn make_scratch(&self) -> Vec<QTensor> {
        self.prepared().scratch()
    }

    fn forward(&self, masks: &MaskSet, outs: &mut Vec<QTensor>) -> Tensor {
        self.prepared()
            .forward(&self.qgraph, masks, outs, exec_qnode)
    }

    fn model_cost(&self, _bayes: BayesConfig) -> Option<ModelCost> {
        None
    }

    fn fork(&self) -> Option<Self> {
        // The quantized graph is immutable at serving time, so a fork
        // shares it (an Arc bump, no weight copy) and computes
        // bit-identically — which is what batch-axis parallelism in
        // the generic engine requires.
        Some(Int8Backend {
            qgraph: std::sync::Arc::clone(&self.qgraph),
            prepared: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Quantizer;
    use bnn_mcd::{predictive_on, sample_probs_on, MaskSource, ParallelConfig, SoftwareMaskSource};
    use bnn_nn::models;
    use bnn_rng::SoftRng;

    fn setup() -> (Int8Backend, Tensor) {
        let net = models::lenet5(10, 1, 16, 3).fold_batch_norm();
        let mut rng = SoftRng::new(5);
        let shape = Shape4::new(2, 1, 16, 16);
        let calib = Tensor::from_vec(
            shape,
            (0..shape.len()).map(|_| rng.normal_f32(0.0, 1.0)).collect(),
        );
        let qg = Quantizer::new(&net).calibrate(&calib).quantize();
        (Int8Backend::new(qg), calib)
    }

    #[test]
    fn int8_suffix_reuse_matches_full_integer_forward() {
        let (mut backend, x) = setup();
        let cfg = BayesConfig::new(2, 3);
        let mut src_a = SoftwareMaskSource::new(7);
        let mut src_b = SoftwareMaskSource::new(7);
        let passes = sample_probs_on(&mut backend, &x, cfg, &mut src_a, ParallelConfig::serial());

        // Reference: the full integer forward with the same masks.
        let active = bnn_mcd::active_sites(backend.n_sites(), cfg.l);
        let channels = backend.site_channels(x.shape());
        for pass in &passes {
            let masks = src_b.next_masks(&active, &channels, cfg.p);
            let mut reference = backend.qgraph().forward(&x, &masks);
            let s = reference.shape();
            softmax_rows(reference.as_mut_slice(), s.n, s.item_len());
            assert_eq!(
                pass.as_slice(),
                reference.as_slice(),
                "int8 IC path must be bit-exact against the reference executor"
            );
        }
    }

    #[test]
    fn int8_predictive_rows_are_distributions() {
        let (mut backend, x) = setup();
        let mut src = SoftwareMaskSource::new(1);
        let (probs, cost) = predictive_on(
            &mut backend,
            &x,
            BayesConfig::new(3, 4),
            &mut src,
            ParallelConfig::with_threads(2),
        );
        for i in 0..x.shape().n {
            let s: f32 = probs.item(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
        assert!(cost.model.is_none());
    }

    #[test]
    fn qgraph_geometry_matches_float_graph() {
        let net = models::lenet5(10, 1, 16, 3).fold_batch_norm();
        let calib = Tensor::zeros(Shape4::new(2, 1, 16, 16));
        let qg = Quantizer::new(&net).calibrate(&calib).quantize();
        let shape = calib.shape();
        assert_eq!(qg.site_channels(shape), net.site_channels(shape));
        assert_eq!(qg.output_classes(shape), 10);
    }
}
