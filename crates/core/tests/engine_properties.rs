//! Property test: the tiled accelerator engine is bit-exact against
//! the int8 reference executor for *randomly generated* networks, mask
//! patterns and parallelism configurations — not just the hand-picked
//! models.

use bnn_accel::{AccelConfig, Accelerator};
use bnn_mcd::BayesConfig;
use bnn_nn::{Graph, GraphBuilder, MaskSet};
use bnn_quant::Quantizer;
use bnn_rng::SoftRng;
use bnn_tensor::{Shape4, Tensor};
use proptest::prelude::*;

/// Build a random small conv/pool/fc network from a recipe of choices.
fn random_net(
    seed: u64,
    conv_blocks: usize,
    widths: &[usize],
    kernel: usize,
    use_pool: bool,
    residual: bool,
) -> (Graph, Shape4) {
    let img = 8usize;
    let in_c = 2usize;
    let mut b = GraphBuilder::new("prop", seed);
    let x = b.input();
    let mut cur = x;
    let mut c_in = in_c;
    let mut hw = img;
    for i in 0..conv_blocks {
        let c_out = widths[i % widths.len()];
        let m = b.mcd(cur, 0.25);
        let conv = b.conv(m, c_in, c_out, kernel, 1, kernel / 2);
        let bn = b.batch_norm(conv, c_out);
        let r = b.relu(bn);
        cur = if residual && c_in == c_out && kernel % 2 == 1 {
            // Identity-shaped residual: add the masked block input.
            b.add(r, m)
        } else {
            r
        };
        if use_pool && hw >= 4 && i + 1 < conv_blocks {
            cur = b.max_pool(cur, 2, 2);
            hw /= 2;
        }
        c_in = c_out;
    }
    let g = b.global_avg_pool(cur);
    let f = b.flatten(g);
    let m = b.mcd(f, 0.25);
    let fc = b.linear(m, c_in, 4);
    (b.finish(fc), Shape4::new(1, in_c, img, img))
}

proptest! {
    // Each case trains nothing and runs tiny tensors; keep the count
    // moderate so the suite stays fast in debug CI.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_bit_exact_on_random_networks(
        seed in 0u64..10_000,
        conv_blocks in 1usize..4,
        w0 in 2usize..7,
        w1 in 2usize..7,
        kernel in prop_oneof![Just(1usize), Just(3usize)],
        use_pool in any::<bool>(),
        residual in any::<bool>(),
        pc in prop_oneof![Just(4usize), Just(16), Just(64)],
        pf in prop_oneof![Just(4usize), Just(32)],
        pv in prop_oneof![Just(1usize), Just(8)],
    ) {
        let (net, input_shape) = random_net(seed, conv_blocks, &[w0, w1], kernel, use_pool, residual);
        let folded = net.fold_batch_norm();

        // Random calibration data and probe image.
        let mut rng = SoftRng::new(seed ^ 0xCAFE);
        let calib_shape = input_shape.with_n(3);
        let calib = Tensor::from_vec(
            calib_shape,
            (0..calib_shape.len()).map(|_| rng.normal_f32(0.0, 1.0)).collect(),
        );
        let qg = Quantizer::new(&folded).calibrate(&calib).quantize();
        let accel = Accelerator::new(
            AccelConfig::with_parallelism(pc, pf, pv),
            &folded,
            &qg,
            input_shape,
        );

        // Random full-MCD masks.
        let channels = folded.site_channels(input_shape);
        let active = vec![true; folded.n_sites()];
        let masks = MaskSet::sample_software(&active, &channels, 0.25, &mut rng);

        let img = calib.select_item(0);
        let run = accel.run_with_masks(
            &img,
            BayesConfig { l: folded.n_sites(), s: 1, p: 0.25 },
            std::slice::from_ref(&masks),
        );
        let reference = qg.forward(&img, &masks);
        prop_assert_eq!(
            run.logits_per_sample[0].as_slice(),
            reference.as_slice(),
            "random net (blocks={}, k={}, pool={}, res={}) diverged at ({},{},{})",
            conv_blocks, kernel, use_pool, residual, pc, pf, pv
        );
    }

    #[test]
    fn ic_invariant_on_random_networks(
        seed in 0u64..10_000,
        l in 1usize..4,
        s in 1usize..4,
    ) {
        // Prefix caching never changes the per-sample logits.
        let (net, input_shape) = random_net(seed, 2, &[3, 5], 3, true, false);
        let folded = net.fold_batch_norm();
        let mut rng = SoftRng::new(seed ^ 0x1C);
        let calib_shape = input_shape.with_n(2);
        let calib = Tensor::from_vec(
            calib_shape,
            (0..calib_shape.len()).map(|_| rng.normal_f32(0.0, 1.0)).collect(),
        );
        let qg = Quantizer::new(&folded).calibrate(&calib).quantize();
        let accel =
            Accelerator::new(AccelConfig::paper_default(), &folded, &qg, input_shape);

        let channels = folded.site_channels(input_shape);
        let active = bnn_mcd::active_sites(folded.n_sites(), l);
        let mask_sets: Vec<MaskSet> = (0..s)
            .map(|_| MaskSet::sample_software(&active, &channels, 0.25, &mut rng))
            .collect();
        let img = calib.select_item(1);
        let run = accel.run_with_masks(&img, BayesConfig { l, s, p: 0.25 }, &mask_sets);
        for (i, masks) in mask_sets.iter().enumerate() {
            let full = qg.forward(&img, masks);
            prop_assert_eq!(run.logits_per_sample[i].as_slice(), full.as_slice());
        }
    }
}
