//! Cycle-approximate, functionally bit-exact simulator of the DAC'21
//! FPGA accelerator for Monte Carlo Dropout Bayesian neural networks.
//!
//! This crate is the reproduction's *primary contribution*: a Rust
//! model of the paper's hardware (Figure 2) detailed enough to
//! regenerate every hardware number in the evaluation.
//!
//! Components, mirroring the paper's architecture:
//!
//! * [`AccelConfig`] — the `P_C` / `P_F` / `P_V` parallelism knobs,
//!   clock, DDR interface and board power.
//! * [`ResourceModel`] — the Section IV-B resource model (DSP, M20K,
//!   plus calibrated ALM/register estimates) against an
//!   [`FpgaDevice`] budget (Arria 10 SX660 built in) → Table II.
//! * [`PerfModel`] — the per-layer cycle model: tiled matrix-engine
//!   compute overlapped with double-buffered DDR transfers, per-layer
//!   control overhead, intermediate-layer caching (IC) → Tables I/III,
//!   throughput for Table IV.
//! * [`Accelerator`] — the functional neural network engine: executes
//!   a quantized [`bnn_quant::QGraph`] with hardware loop tiling, the
//!   FU chain (BN folded → ReLU → pool → shortcut) and a dropout unit
//!   driven by the bit-exact LFSR Bernoulli sampler. Its outputs are
//!   bit-identical to the `bnn-quant` reference executor — tested, not
//!   assumed.
//! * [`pe_clocked`] — a small clocked model of one processing-unit
//!   tile that cross-validates the analytic cycle formula.
//!
//! # Example
//!
//! ```
//! use bnn_accel::{Accelerator, AccelConfig};
//! use bnn_mcd::BayesConfig;
//! use bnn_nn::models;
//! use bnn_quant::Quantizer;
//! use bnn_tensor::{Shape4, Tensor};
//!
//! let net = models::lenet5(10, 1, 16, 1).fold_batch_norm();
//! let calib = Tensor::zeros(Shape4::new(2, 1, 16, 16));
//! let qg = Quantizer::new(&net).calibrate(&calib).quantize();
//! let accel = Accelerator::new(AccelConfig::paper_default(), &net, &qg, calib.shape());
//! let run = accel.run(&calib.select_item(0), BayesConfig::new(2, 3), 7);
//! assert_eq!(run.predictive.shape().c, 10);
//! assert!(run.timing.total_cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod config;
mod engine;
pub mod pe_clocked;
mod perf;
mod resource;

pub use backend::AccelBackend;
pub use config::{AccelConfig, DdrConfig};
pub use engine::{AccelRun, Accelerator, MemTraffic};
pub use perf::{LayerTiming, NetworkTiming, PerfModel};
pub use resource::{FpgaDevice, ResourceModel, ResourceUsage};
