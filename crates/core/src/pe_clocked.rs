//! A clocked model of one processing-unit MAC module: `P_C`
//! multipliers feeding a pipelined binary adder tree with an
//! accumulator at the root.
//!
//! This is not used on the fast path — it exists to *cross-validate*
//! the analytic cycle formula in [`crate::PerfModel`]: for a reduction
//! of length `R` the module must take `ceil(R/P_C) + log2(P_C) + 1`
//! cycles and produce the exact dot product. The tests pin both.

/// One pipelined MAC module.
#[derive(Debug)]
pub struct MacModule {
    pc: usize,
    /// Adder-tree pipeline: stage `s` holds the partial sums emitted
    /// `s` cycles ago (stage 0 = multiplier outputs).
    stages: Vec<Vec<i64>>,
    acc: i64,
    cycles: u64,
}

impl MacModule {
    /// Create a module with `pc` multipliers (`pc` must be a power of
    /// two, as in the RTL adder tree).
    ///
    /// # Panics
    ///
    /// Panics if `pc` is not a power of two.
    pub fn new(pc: usize) -> MacModule {
        assert!(
            pc.is_power_of_two(),
            "adder tree needs a power-of-two width"
        );
        let depth = pc.ilog2() as usize;
        MacModule {
            pc,
            stages: vec![Vec::new(); depth + 1],
            acc: 0,
            cycles: 0,
        }
    }

    /// Clock one cycle: feed up to `pc` operand pairs (shorter slices
    /// model a partially-filled final tile; missing lanes contribute 0).
    ///
    /// # Panics
    ///
    /// Panics if more than `pc` pairs are supplied.
    pub fn clock(&mut self, xs: &[i32], ws: &[i32]) {
        assert!(
            xs.len() <= self.pc && ws.len() == xs.len(),
            "tile wider than the module"
        );
        // Stage 0: multiplier outputs.
        let mut level: Vec<i64> = xs
            .iter()
            .zip(ws)
            .map(|(&x, &w)| i64::from(x) * i64::from(w))
            .collect();
        level.resize(self.pc, 0);
        // Shift the pipeline from the root back so each stage's data
        // advances exactly one level per cycle.
        for s in (1..self.stages.len()).rev() {
            let prev = std::mem::take(&mut self.stages[s - 1]);
            let reduced: Vec<i64> = prev.chunks(2).map(|c| c.iter().sum()).collect();
            if s == self.stages.len() - 1 {
                // Root: a single value drops into the accumulator.
                if let Some(&v) = reduced.first() {
                    self.acc += v;
                }
                self.stages[s] = Vec::new();
            } else {
                self.stages[s] = reduced;
            }
        }
        self.stages[0] = level;
        self.cycles += 1;
    }

    /// Clock with no new operands (pipeline drain).
    pub fn drain_cycle(&mut self) {
        self.clock(&[], &[]);
    }

    /// Accumulated dot product so far.
    pub fn accumulator(&self) -> i64 {
        self.acc
    }

    /// Cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Run a full reduction: stream `xs·ws` through the module and
    /// drain; returns `(dot, cycles)`.
    ///
    /// # Panics
    ///
    /// Panics if the operand slices differ in length.
    pub fn run_reduction(pc: usize, xs: &[i32], ws: &[i32]) -> (i64, u64) {
        assert_eq!(xs.len(), ws.len(), "operand length mismatch");
        let mut m = MacModule::new(pc);
        for (cx, cw) in xs.chunks(pc).zip(ws.chunks(pc)) {
            m.clock(cx, cw);
        }
        // Drain the adder tree (depth log2(pc)) plus the root
        // accumulate cycle... the root writes during the shift, so
        // exactly `depth` drain cycles empty the pipe.
        for _ in 0..pc.ilog2() {
            m.drain_cycle();
        }
        (m.accumulator(), m.cycles())
    }
}

/// The analytic cycle count the performance model assumes for one
/// reduction of length `r` on a `pc`-wide module.
pub fn analytic_cycles(pc: usize, r: usize) -> u64 {
    (r as u64).div_ceil(pc as u64) + u64::from(pc.ilog2())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot(xs: &[i32], ws: &[i32]) -> i64 {
        xs.iter()
            .zip(ws)
            .map(|(&a, &b)| i64::from(a) * i64::from(b))
            .sum()
    }

    fn operands(n: usize, seed: i32) -> (Vec<i32>, Vec<i32>) {
        let xs: Vec<i32> = (0..n)
            .map(|i| ((i as i32 * 31 + seed) % 255) - 127)
            .collect();
        let ws: Vec<i32> = (0..n)
            .map(|i| ((i as i32 * 17 + seed * 3) % 255) - 127)
            .collect();
        (xs, ws)
    }

    #[test]
    fn exact_dot_product_multiple_of_pc() {
        let (xs, ws) = operands(64, 5);
        let (got, _) = MacModule::run_reduction(16, &xs, &ws);
        assert_eq!(got, dot(&xs, &ws));
    }

    #[test]
    fn exact_dot_product_ragged_tail() {
        let (xs, ws) = operands(37, 9); // 37 = 2*16 + 5
        let (got, _) = MacModule::run_reduction(16, &xs, &ws);
        assert_eq!(got, dot(&xs, &ws));
    }

    #[test]
    fn cycle_count_matches_analytic_formula() {
        for (pc, r) in [
            (8usize, 8usize),
            (8, 64),
            (16, 37),
            (64, 576),
            (64, 64),
            (4, 1),
        ] {
            let (xs, ws) = operands(r, 3);
            let (_, cycles) = MacModule::run_reduction(pc, &xs, &ws);
            assert_eq!(
                cycles,
                analytic_cycles(pc, r),
                "pc={pc} r={r}: clocked {cycles} vs analytic {}",
                analytic_cycles(pc, r)
            );
        }
    }

    #[test]
    fn negative_values_accumulate_correctly() {
        let xs = vec![-128, 127, -1, 1];
        let ws = vec![127, 127, -127, -127];
        let (got, _) = MacModule::run_reduction(4, &xs, &ws);
        assert_eq!(got, dot(&xs, &ws));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let _ = MacModule::new(6);
    }
}
