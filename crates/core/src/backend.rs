//! The accelerator [`BayesBackend`]: the simulated FPGA as an
//! execution substrate for the generic Monte Carlo engine.
//!
//! `prepare` quantizes the image and runs the deterministic prefix
//! once through the tiled PE stations (hardware intermediate-layer
//! caching); each Monte Carlo pass re-runs only the Bayesian suffix.
//! Outputs are bit-identical to [`Accelerator::run_with_masks`] given
//! the same mask stream — the backend is a per-sample view of the
//! same engine, not a reimplementation.
//!
//! Unlike the CPU backends, [`BayesBackend::model_cost`] is populated:
//! every predictive run through a `Session` reports the analytic
//! cycle count, latency at the configured clock, and off-chip traffic
//! of the corresponding hardware execution.

use crate::engine::Accelerator;
use bnn_mcd::{BayesBackend, BayesConfig, ModelCost};
use bnn_nn::MaskSet;
use bnn_quant::{IcRunner, QTensor};
use bnn_tensor::{Shape4, Tensor};

/// The simulated accelerator as a Bayesian execution substrate.
///
/// The compiled accelerator is held behind an `Arc`: it is read-only
/// during execution (the PE stations take `&self`), so
/// [`BayesBackend::fork`] (batch-axis parallelism) and `Clone` are
/// pointer bumps, not copies of the compiled model.
#[derive(Debug, Clone)]
pub struct AccelBackend {
    accel: std::sync::Arc<Accelerator>,
    prepared: Option<IcRunner>,
}

impl AccelBackend {
    /// Create a backend over a compiled accelerator instance.
    pub fn new(accel: Accelerator) -> AccelBackend {
        AccelBackend {
            accel: std::sync::Arc::new(accel),
            prepared: None,
        }
    }

    /// The wrapped accelerator.
    pub fn accelerator(&self) -> &Accelerator {
        &self.accel
    }

    fn prepared(&self) -> &IcRunner {
        self.prepared
            .as_ref()
            .expect("AccelBackend::prepare not called")
    }
}

impl BayesBackend for AccelBackend {
    type Scratch = Vec<QTensor>;

    fn name(&self) -> &'static str {
        "accel"
    }

    fn n_sites(&self) -> usize {
        self.accel.qgraph.n_sites()
    }

    fn site_channels(&self, _input: Shape4) -> Vec<usize> {
        self.accel.site_channels.clone()
    }

    fn output_classes(&self, input: Shape4) -> usize {
        self.accel.qgraph.output_classes(input.with_n(1))
    }

    fn prepare(&mut self, x: &Tensor, active: &[bool]) {
        assert_eq!(
            x.shape().n,
            1,
            "the accelerator processes one image at a time (use batch = 1)"
        );
        // The shared IC runner with the tiled PE stations as the node
        // executor — the only difference from the int8 backend.
        self.prepared = Some(IcRunner::prepare(
            &self.accel.qgraph,
            x,
            active,
            |node, outs, input, masks| self.accel.exec_station(node, outs, input, masks),
        ));
    }

    fn make_scratch(&self) -> Vec<QTensor> {
        self.prepared().scratch()
    }

    fn forward(&self, masks: &MaskSet, outs: &mut Vec<QTensor>) -> Tensor {
        self.prepared().forward(
            &self.accel.qgraph,
            masks,
            outs,
            |node, outs, input, masks| self.accel.exec_station(node, outs, input, masks),
        )
    }

    fn model_cost(&self, bayes: BayesConfig) -> Option<ModelCost> {
        let timing = self.accel.timing(bayes);
        let traffic = self.accel.traffic_model(bayes);
        Some(ModelCost {
            cycles: timing.total_cycles,
            latency_ms: timing.latency_ms(self.accel.config()),
            mem_bytes: traffic.total(),
        })
    }

    fn fork(&self) -> Option<Self> {
        // Forks share the compiled instance (an Arc bump) and
        // simulate bit-identically; batch-axis parallelism in the
        // generic engine forks one backend per batch worker.
        Some(AccelBackend {
            accel: std::sync::Arc::clone(&self.accel),
            prepared: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccelConfig;
    use bnn_mcd::{predictive_on, sample_probs_on, MaskSource, ParallelConfig, SoftwareMaskSource};
    use bnn_nn::models;
    use bnn_quant::Quantizer;
    use bnn_rng::SoftRng;
    use bnn_tensor::softmax_rows;

    fn setup() -> (AccelBackend, Tensor) {
        let net = models::lenet5(10, 1, 16, 8).fold_batch_norm();
        let mut rng = SoftRng::new(21);
        let shape = Shape4::new(4, 1, 16, 16);
        let calib = Tensor::from_vec(
            shape,
            (0..shape.len()).map(|_| rng.normal_f32(0.0, 1.0)).collect(),
        );
        let qg = Quantizer::new(&net).calibrate(&calib).quantize();
        let accel = Accelerator::new(AccelConfig::paper_default(), &net, &qg, calib.shape());
        (AccelBackend::new(accel), calib.select_item(0))
    }

    #[test]
    fn backend_matches_run_with_masks() {
        let (mut backend, img) = setup();
        let cfg = BayesConfig::new(2, 3);
        let active = bnn_mcd::active_sites(backend.n_sites(), cfg.l);
        let channels = backend.site_channels(img.shape());
        let mut src = SoftwareMaskSource::new(13);
        let mask_sets: Vec<MaskSet> = (0..cfg.s)
            .map(|_| src.next_masks(&active, &channels, cfg.p))
            .collect();

        let run = backend.accelerator().run_with_masks(&img, cfg, &mask_sets);
        let mut src2 = SoftwareMaskSource::new(13);
        let passes = sample_probs_on(&mut backend, &img, cfg, &mut src2, ParallelConfig::serial());
        for (pass, logits) in passes.iter().zip(&run.logits_per_sample) {
            let mut reference = logits.clone();
            let s = reference.shape();
            softmax_rows(reference.as_mut_slice(), s.n, s.item_len());
            assert_eq!(
                pass.as_slice(),
                reference.as_slice(),
                "backend diverged from the monolithic engine"
            );
        }
    }

    #[test]
    fn backend_reports_hardware_cost() {
        let (mut backend, img) = setup();
        let cfg = BayesConfig::new(2, 4);
        let mut src = SoftwareMaskSource::new(2);
        let (probs, cost) =
            predictive_on(&mut backend, &img, cfg, &mut src, ParallelConfig::serial());
        let sum: f32 = probs.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        let model = cost.model.expect("accelerator must report model cost");
        assert!(model.cycles > 0);
        assert!(model.latency_ms > 0.0);
        assert!(model.mem_bytes > 0);
        // The reported cost equals the monolithic engine's.
        let run = backend.accelerator().run(&img, cfg, 1);
        assert_eq!(model.cycles, run.timing.total_cycles);
        assert_eq!(model.mem_bytes, run.traffic.total());
    }

    #[test]
    #[should_panic(expected = "one image at a time")]
    fn backend_rejects_batches() {
        let (mut backend, img) = setup();
        let mut batch = Tensor::zeros(Shape4::new(2, 1, 16, 16));
        batch.item_mut(0).copy_from_slice(img.as_slice());
        batch.item_mut(1).copy_from_slice(img.as_slice());
        let mut src = SoftwareMaskSource::new(2);
        let _ = sample_probs_on(
            &mut backend,
            &batch,
            BayesConfig::new(1, 1),
            &mut src,
            ParallelConfig::serial(),
        );
    }
}
