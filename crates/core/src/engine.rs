//! The functional neural network engine: executes a quantized graph
//! exactly as the hardware would — tiled matrix arithmetic, the FU
//! chain, a dropout unit fed by the LFSR Bernoulli sampler, and
//! intermediate-layer caching across Monte Carlo samples.

use crate::config::AccelConfig;
use crate::perf::{NetworkTiming, PerfModel};
use bnn_mcd::{active_sites, BayesConfig};
use bnn_nn::arch::{extract_layers, LayerDesc};
use bnn_nn::{Graph, MaskSet};
use bnn_quant::{exec_qnode, QGraph, QNodeOp, QTensor};
use bnn_rng::{BernoulliSampler, DropProbability, SamplerStats};
use bnn_tensor::{conv_out_dim, softmax_rows, Shape4, Tensor};

/// Off-chip traffic of one complete `{L, S}` prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemTraffic {
    /// Weight bytes streamed from DDR.
    pub weight_bytes: u64,
    /// Activation bytes read from DDR.
    pub input_bytes: u64,
    /// Activation bytes written to DDR.
    pub output_bytes: u64,
}

impl MemTraffic {
    /// Total bytes moved.
    pub fn total(&self) -> u64 {
        self.weight_bytes + self.input_bytes + self.output_bytes
    }
}

/// Result of running the accelerator on one image.
#[derive(Debug, Clone)]
pub struct AccelRun {
    /// Dequantized logits of each Monte Carlo sample.
    pub logits_per_sample: Vec<Tensor>,
    /// Predictive distribution (mean of per-sample softmax), `(1, k)`.
    pub predictive: Tensor,
    /// Cycle-level timing (from the performance model).
    pub timing: NetworkTiming,
    /// Off-chip traffic.
    pub traffic: MemTraffic,
    /// Bernoulli-sampler statistics after the run.
    pub sampler: SamplerStats,
}

/// The accelerator simulator bound to one compiled network.
#[derive(Debug, Clone)]
pub struct Accelerator {
    cfg: AccelConfig,
    pub(crate) qgraph: QGraph,
    layers: Vec<LayerDesc>,
    /// Mask length per MCD site.
    pub(crate) site_channels: Vec<usize>,
    /// desc index per qgraph node id (weight nodes only).
    desc_of_node: Vec<Option<usize>>,
}

impl Accelerator {
    /// Compile an accelerator instance from a BN-folded f32 graph and
    /// its quantization.
    ///
    /// # Panics
    ///
    /// Panics if the graph/qgraph pair is inconsistent (different
    /// lowering) or the configuration is invalid.
    pub fn new(
        cfg: AccelConfig,
        folded: &Graph,
        qgraph: &QGraph,
        input_shape: Shape4,
    ) -> Accelerator {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid accelerator config: {e}"));
        assert_eq!(
            folded.nodes().len(),
            qgraph.nodes().len(),
            "graph/qgraph node count mismatch — quantize the same folded graph"
        );
        let layers = extract_layers(folded, input_shape.with_n(1));
        let mut desc_of_node = vec![None; qgraph.nodes().len()];
        let mut next = 0usize;
        for (id, node) in qgraph.nodes().iter().enumerate() {
            if matches!(node.op, QNodeOp::Conv { .. } | QNodeOp::Linear { .. }) {
                desc_of_node[id] = Some(next);
                next += 1;
            }
        }
        assert_eq!(next, layers.len(), "fused layer extraction out of sync");
        let site_channels = folded.site_channels(input_shape.with_n(1));
        Accelerator {
            cfg,
            qgraph: qgraph.clone(),
            layers,
            site_channels,
            desc_of_node,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// Fused layer descriptors (execution order).
    pub fn layers(&self) -> &[LayerDesc] {
        &self.layers
    }

    /// Run one image through the `{L, S}` Bayesian prediction with the
    /// hardware Bernoulli sampler seeded from `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `image` has batch size 1 (the paper evaluates at
    /// batch 1).
    pub fn run(&self, image: &Tensor, bayes: BayesConfig, seed: u64) -> AccelRun {
        assert_eq!(
            image.shape().n,
            1,
            "the accelerator processes one image at a time"
        );
        let p = DropProbability::quarter();
        assert!(
            (f64::from(bayes.p) - p.value()).abs() < 1e-9,
            "hardware sampler implements p = 0.25; got {}",
            bayes.p
        );
        let mut sampler = BernoulliSampler::new(p, self.cfg.pf, self.cfg.fifo_depth, seed);
        let active = active_sites(self.qgraph.n_sites(), bayes.l);
        // Same helper as the software/hardware mask sources, so the
        // on-chip sampler cannot disagree on which sites are Bayesian.
        let mask_sets: Vec<MaskSet> = (0..bayes.s)
            .map(|_| {
                bnn_mcd::draw_site_masks(&active, &self.site_channels, bayes.p, |ch| {
                    sampler.generate_mask(ch)
                })
            })
            .collect();
        let mut run = self.run_with_masks(image, bayes, &mask_sets);
        run.sampler = sampler.stats();
        run
    }

    /// Deterministic variant: run with externally-supplied per-sample
    /// masks (used by the bit-exactness tests and by the framework's
    /// software/hardware cross-checks).
    ///
    /// # Panics
    ///
    /// Panics if `mask_sets.len() != bayes.s`.
    pub fn run_with_masks(
        &self,
        image: &Tensor,
        bayes: BayesConfig,
        mask_sets: &[MaskSet],
    ) -> AccelRun {
        assert_eq!(
            mask_sets.len(),
            bayes.s,
            "one mask set per Monte Carlo sample"
        );
        let input = self.qgraph.quantize_input(image);
        let nodes = self.qgraph.nodes();
        let active = active_sites(self.qgraph.n_sites(), bayes.l);
        let split = self.suffix_split(&active);

        // Prefix: executed once, like hardware with IC enabled.
        let empty = MaskSet::none();
        let mut prefix_outs: Vec<QTensor> = Vec::with_capacity(split);
        for node in &nodes[..split] {
            let y = self.exec_station(node, &prefix_outs, &input, &empty);
            prefix_outs.push(y);
        }

        // Suffix: once per Monte Carlo sample with fresh masks.
        let mut logits_per_sample = Vec::with_capacity(bayes.s);
        for masks in mask_sets {
            let mut outs = prefix_outs.clone();
            for node in &nodes[split..] {
                let y = self.exec_station(node, &outs, &input, masks);
                outs.push(y);
            }
            let logits = self
                .qgraph
                .dequantize_output(&outs[self.qgraph.output_id()]);
            logits_per_sample.push(logits);
        }

        // Predictive distribution.
        let k = logits_per_sample[0].shape().item_len();
        let mut acc = Tensor::zeros(Shape4::vec(1, k));
        for l in &logits_per_sample {
            let mut p = l.clone();
            softmax_rows(p.as_mut_slice(), 1, k);
            bnn_tensor::add_inplace(acc.as_mut_slice(), p.as_slice());
        }
        let inv = 1.0 / bayes.s as f32;
        acc.map_inplace(|v| v * inv);

        // Timing and traffic from the analytic models (same split).
        let timing = self.timing(bayes);
        let traffic = self.traffic(bayes, split);

        AccelRun {
            logits_per_sample,
            predictive: acc,
            timing,
            traffic,
            sampler: SamplerStats {
                cycles: 0,
                bits_produced: 0,
                bits_dropped: 0,
                fifo_occupancy: 0,
                fifo_high_water: 0,
                stall_cycles: 0,
            },
        }
    }

    /// First node of the Bayesian suffix for a set of active sites
    /// (`nodes.len()` when no site is active — fully deterministic).
    /// Shared with the int8 backend via [`QGraph::suffix_split`].
    pub(crate) fn suffix_split(&self, active: &[bool]) -> usize {
        self.qgraph.suffix_split(active)
    }

    /// Cycle-level timing of a `{L, S}` prediction with IC enabled
    /// (the same analytic model [`Accelerator::run`] reports).
    pub fn timing(&self, bayes: BayesConfig) -> NetworkTiming {
        PerfModel::new(self.cfg).network_timing(&self.layers, bayes, true)
    }

    /// Modelled off-chip traffic of a `{L, S}` prediction with IC.
    pub fn traffic_model(&self, bayes: BayesConfig) -> MemTraffic {
        let active = active_sites(self.qgraph.n_sites(), bayes.l);
        self.traffic(bayes, self.suffix_split(&active))
    }

    /// Execute one station: matrix ops go through the tiled PE path,
    /// everything else through the shared FU implementations.
    pub(crate) fn exec_station(
        &self,
        node: &bnn_quant::QNode,
        outs: &[QTensor],
        input: &QTensor,
        masks: &MaskSet,
    ) -> QTensor {
        match &node.op {
            QNodeOp::Conv {
                in_c,
                out_c,
                k,
                stride,
                pad,
                w,
                bias,
                requant,
                zx,
                zy,
            } => tiled_conv(
                &self.cfg,
                &outs[node.inputs[0]],
                *in_c,
                *out_c,
                *k,
                *stride,
                *pad,
                w,
                bias,
                requant,
                *zx,
                *zy,
            ),
            QNodeOp::Linear {
                in_f,
                out_f,
                w,
                bias,
                requant,
                zx,
                zy,
            } => tiled_linear(
                &self.cfg,
                &outs[node.inputs[0]],
                *in_f,
                *out_f,
                w,
                bias,
                requant,
                *zx,
                *zy,
            ),
            _ => exec_qnode(node, outs, input, masks),
        }
    }

    /// Off-chip traffic for a `{L,S}` run with IC, split at node id
    /// `split` (first Bayesian site).
    fn traffic(&self, bayes: BayesConfig, split: usize) -> MemTraffic {
        let dw = self.cfg.dw_bytes;
        let mut t = MemTraffic::default();
        for (id, desc_idx) in self.desc_of_node.iter().enumerate() {
            let Some(di) = *desc_idx else { continue };
            let d = &self.layers[di];
            let invocations = if id < split { 1 } else { bayes.s as u64 };
            t.weight_bytes += d.weight_bytes(dw) * invocations;
            // The pinned IC boundary input is the first suffix layer's
            // input: loaded once, reused S times.
            let first_suffix_layer = self
                .desc_of_node
                .iter()
                .enumerate()
                .find(|(nid, d)| *nid >= split && d.is_some())
                .map(|(nid, _)| nid);
            let pinned = Some(id) == first_suffix_layer;
            let input_loads = if pinned { 1 } else { invocations };
            t.input_bytes += d.input_bytes(dw) * input_loads;
            t.output_bytes += d.output_bytes(dw) * invocations;
        }
        t
    }
}

/// Tiled integer convolution: the PE loop nest
/// (filter tiles of `P_F`) × (pixel tiles of `P_V`) × (reduction tiles
/// of `P_C` over `C·K²`). Integer accumulation is associative, so the
/// result is bit-exact against the reference executor while the loop
/// structure mirrors the RTL schedule.
#[allow(clippy::too_many_arguments)]
fn tiled_conv(
    cfg: &AccelConfig,
    x: &QTensor,
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    w: &[i8],
    bias: &[i32],
    requant: &[bnn_quant::FixedMul],
    zx: i32,
    zy: i32,
) -> QTensor {
    let s = x.shape;
    let ho = conv_out_dim(s.h, k, stride, pad);
    let wo = conv_out_dim(s.w, k, stride, pad);
    let mut y = QTensor::zeros(Shape4::new(s.n, out_c, ho, wo));
    let red = in_c * k * k;
    let (pf, pv, pc) = (cfg.pf, cfg.pv, cfg.pc);
    let pixels = ho * wo;

    // Gather the im2col reduction vector for one output pixel lazily.
    let tap = |xi: &[u8], r: usize, oy: usize, ox: usize| -> i32 {
        let c = r / (k * k);
        let ky = (r / k) % k;
        let kx = r % k;
        let iy = (oy * stride + ky) as isize - pad as isize;
        let ix = (ox * stride + kx) as isize - pad as isize;
        if iy < 0 || iy >= s.h as isize || ix < 0 || ix >= s.w as isize {
            zx // padding reads the zero point: (zx - zx) * w = 0
        } else {
            i32::from(xi[(c * s.h + iy as usize) * s.w + ix as usize])
        }
    };

    for n in 0..s.n {
        let xi = x.item(n);
        let yi = y.item_mut(n);
        for f0 in (0..out_c).step_by(pf) {
            for px0 in (0..pixels).step_by(pv) {
                // One PE invocation: PF × PV accumulators.
                for f in f0..(f0 + pf).min(out_c) {
                    let wrow = &w[f * red..(f + 1) * red];
                    for px in px0..(px0 + pv).min(pixels) {
                        let (oy, ox) = (px / wo, px % wo);
                        let mut acc = bias[f];
                        // Reduction streamed through PC-wide tiles.
                        for r0 in (0..red).step_by(pc) {
                            let mut tree = 0i32; // adder-tree partial
                            let re = (r0 + pc).min(red);
                            for (r, &wv) in wrow.iter().enumerate().take(re).skip(r0) {
                                tree += (tap(xi, r, oy, ox) - zx) * i32::from(wv);
                            }
                            acc += tree;
                        }
                        yi[(f * ho + oy) * wo + ox] =
                            (zy + requant[f].apply(acc)).clamp(0, 255) as u8;
                    }
                }
            }
        }
    }
    y
}

/// Tiled integer FC layer (a 1×1 convolution on a 1×1 feature map).
#[allow(clippy::too_many_arguments)]
fn tiled_linear(
    cfg: &AccelConfig,
    x: &QTensor,
    in_f: usize,
    out_f: usize,
    w: &[i8],
    bias: &[i32],
    requant: &[bnn_quant::FixedMul],
    zx: i32,
    zy: i32,
) -> QTensor {
    let s = x.shape;
    debug_assert_eq!(s.item_len(), in_f, "feature mismatch");
    let mut y = QTensor::zeros(Shape4::vec(s.n, out_f));
    let (pf, pc) = (cfg.pf, cfg.pc);
    for n in 0..s.n {
        let xi = x.item(n);
        let yi = y.item_mut(n);
        for f0 in (0..out_f).step_by(pf) {
            for f in f0..(f0 + pf).min(out_f) {
                let wrow = &w[f * in_f..(f + 1) * in_f];
                let mut acc = bias[f];
                for r0 in (0..in_f).step_by(pc) {
                    let mut tree = 0i32;
                    for r in r0..(r0 + pc).min(in_f) {
                        tree += (i32::from(xi[r]) - zx) * i32::from(wrow[r]);
                    }
                    acc += tree;
                }
                yi[f] = (zy + requant[f].apply(acc)).clamp(0, 255) as u8;
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_nn::models;
    use bnn_quant::Quantizer;
    use bnn_rng::SoftRng;

    fn setup(seed: u64) -> (Graph, QGraph, Tensor) {
        let net = models::lenet5(10, 1, 16, seed).fold_batch_norm();
        let mut rng = SoftRng::new(seed);
        let shape = Shape4::new(4, 1, 16, 16);
        let calib = Tensor::from_vec(
            shape,
            (0..shape.len()).map(|_| rng.normal_f32(0.0, 1.0)).collect(),
        );
        let qg = Quantizer::new(&net).calibrate(&calib).quantize();
        (net, qg, calib)
    }

    #[test]
    fn engine_bit_exact_vs_reference_deterministic() {
        let (net, qg, calib) = setup(1);
        let accel = Accelerator::new(AccelConfig::paper_default(), &net, &qg, calib.shape());
        let img = calib.select_item(0);
        let run = accel.run_with_masks(
            &img,
            BayesConfig {
                l: 0,
                s: 1,
                p: 0.25,
            },
            &[MaskSet::none()],
        );
        let reference = qg.forward(&img, &MaskSet::none());
        assert_eq!(
            run.logits_per_sample[0].as_slice(),
            reference.as_slice(),
            "tiled engine must be bit-exact against the reference executor"
        );
    }

    #[test]
    fn engine_bit_exact_with_masks_all_parallelisms() {
        let (net, qg, calib) = setup(2);
        let img = calib.select_item(1);
        let channels = net.site_channels(img.shape());
        let mut rng = SoftRng::new(77);
        let active = vec![true; net.n_sites()];
        let masks = MaskSet::sample_software(&active, &channels, 0.25, &mut rng);
        let reference = qg.forward(&img, &masks);
        for (pc, pf, pv) in [(8, 8, 1), (64, 64, 1), (16, 32, 4), (128, 128, 16)] {
            let accel = Accelerator::new(
                AccelConfig::with_parallelism(pc, pf, pv),
                &net,
                &qg,
                calib.shape(),
            );
            let run = accel.run_with_masks(
                &img,
                BayesConfig {
                    l: net.n_sites(),
                    s: 1,
                    p: 0.25,
                },
                std::slice::from_ref(&masks),
            );
            assert_eq!(
                run.logits_per_sample[0].as_slice(),
                reference.as_slice(),
                "parallelism ({pc},{pf},{pv}) changed the result"
            );
        }
    }

    #[test]
    fn ic_suffix_reuse_matches_full_execution() {
        // Running the suffix S times from the cached prefix must equal
        // running the whole network per sample.
        let (net, qg, calib) = setup(3);
        let accel = Accelerator::new(AccelConfig::paper_default(), &net, &qg, calib.shape());
        let img = calib.select_item(2);
        let cfg = BayesConfig::new(2, 3);
        let channels = net.site_channels(img.shape());
        let mut rng = SoftRng::new(5);
        let active = bnn_mcd::active_sites(net.n_sites(), cfg.l);
        let mask_sets: Vec<MaskSet> = (0..cfg.s)
            .map(|_| MaskSet::sample_software(&active, &channels, 0.25, &mut rng))
            .collect();
        let run = accel.run_with_masks(&img, cfg, &mask_sets);
        for (s, masks) in mask_sets.iter().enumerate() {
            let reference = qg.forward(&img, masks);
            assert_eq!(
                run.logits_per_sample[s].as_slice(),
                reference.as_slice(),
                "sample {s} diverged"
            );
        }
    }

    #[test]
    fn hardware_sampler_run_is_reproducible() {
        let (net, qg, calib) = setup(4);
        let accel = Accelerator::new(AccelConfig::paper_default(), &net, &qg, calib.shape());
        let img = calib.select_item(0);
        let a = accel.run(&img, BayesConfig::new(3, 4), 99);
        let b = accel.run(&img, BayesConfig::new(3, 4), 99);
        assert_eq!(a.predictive.as_slice(), b.predictive.as_slice());
        let c = accel.run(&img, BayesConfig::new(3, 4), 100);
        assert_ne!(a.predictive.as_slice(), c.predictive.as_slice());
    }

    #[test]
    fn predictive_is_distribution() {
        let (net, qg, calib) = setup(5);
        let accel = Accelerator::new(AccelConfig::paper_default(), &net, &qg, calib.shape());
        let run = accel.run(&calib.select_item(3), BayesConfig::new(5, 5), 11);
        let sum: f32 = run.predictive.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert_eq!(run.logits_per_sample.len(), 5);
    }

    #[test]
    fn traffic_scales_with_s_only_in_suffix() {
        let (net, qg, calib) = setup(6);
        let accel = Accelerator::new(AccelConfig::paper_default(), &net, &qg, calib.shape());
        let img = calib.select_item(0);
        let t1 = accel.run(&img, BayesConfig::new(1, 1), 1).traffic;
        let t10 = accel.run(&img, BayesConfig::new(1, 10), 1).traffic;
        // L=1: only the last FC re-runs; its weights re-stream per pass.
        assert!(t10.weight_bytes > t1.weight_bytes);
        let fc_bytes = 84 * 10; // last layer of LeNet-5 (84 -> 10)
        assert_eq!(t10.weight_bytes - t1.weight_bytes, 9 * fc_bytes);
        // The pinned IC input is loaded once regardless of S.
        assert_eq!(t10.input_bytes, t1.input_bytes);
    }

    #[test]
    fn sampler_stats_populated_by_run() {
        let (net, qg, calib) = setup(7);
        let accel = Accelerator::new(AccelConfig::paper_default(), &net, &qg, calib.shape());
        let run = accel.run(&calib.select_item(0), BayesConfig::new(5, 3), 42);
        assert!(
            run.sampler.bits_produced > 0,
            "sampler must have produced mask bits"
        );
        let rate = run.sampler.bits_dropped as f64 / run.sampler.bits_produced as f64;
        assert!((0.0..=0.6).contains(&rate));
    }
}
