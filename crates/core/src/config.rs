//! Accelerator configuration: parallelism, clock, memory interface.

use serde::{Deserialize, Serialize};

/// Off-chip DDR interface model.
///
/// Transfers are modelled as `setup + bytes / bytes_per_cycle`:
/// a DMA configuration cost followed by streaming at the effective
/// (not peak) bandwidth. The defaults correspond to one 64-bit
/// DDR4-2400 channel (19.2 GB/s peak) at 75% sequential-burst
/// efficiency when clocked against the 225 MHz fabric — 64 bytes per
/// fabric cycle (weight streaming is long sequential bursts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdrConfig {
    /// Effective bytes transferred per fabric cycle.
    pub bytes_per_cycle: f64,
    /// DMA setup cost per transfer, in cycles.
    pub setup_cycles: u64,
}

impl Default for DdrConfig {
    fn default() -> Self {
        DdrConfig {
            bytes_per_cycle: 64.0,
            setup_cycles: 300,
        }
    }
}

impl DdrConfig {
    /// Cycles to move `bytes` in one streaming transfer.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        self.setup_cycles + (bytes as f64 / self.bytes_per_cycle).ceil() as u64
    }
}

/// Full accelerator configuration (paper Section III/V-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccelConfig {
    /// Channel parallelism `P_C` (multipliers per MAC module).
    pub pc: usize,
    /// Filter parallelism `P_F` (processing units).
    pub pf: usize,
    /// Vector parallelism `P_V` (MAC modules per PU).
    pub pv: usize,
    /// Fabric clock in MHz.
    pub clock_mhz: f64,
    /// Activation/weight data width in bytes (8-bit → 1).
    pub dw_bytes: usize,
    /// DDR interface.
    pub ddr: DdrConfig,
    /// Bernoulli-sampler FIFO depth `D` (words of `P_F` bits).
    pub fifo_depth: usize,
    /// Per-layer control overhead in cycles (command issue, pipeline
    /// drain between layers).
    pub layer_overhead_cycles: u64,
    /// Total board power in watts (paper: 45 W measured).
    pub board_power_w: f64,
}

impl Default for AccelConfig {
    /// [`AccelConfig::paper_default`] — the synthesised configuration,
    /// so the config composes in builder APIs like the other public
    /// config structs ([`Default`] on `ParallelConfig`, `DdrConfig`).
    fn default() -> AccelConfig {
        AccelConfig::paper_default()
    }
}

impl AccelConfig {
    /// The paper's synthesised configuration:
    /// `P_C = 64, P_F = 64, P_V = 1` at 225 MHz, 8-bit data, 45 W.
    pub fn paper_default() -> AccelConfig {
        AccelConfig {
            pc: 64,
            pf: 64,
            pv: 1,
            clock_mhz: 225.0,
            dw_bytes: 1,
            ddr: DdrConfig::default(),
            fifo_depth: 64,
            layer_overhead_cycles: 500,
            board_power_w: 45.0,
        }
    }

    /// Same architecture with different parallelism (for the DSE).
    pub fn with_parallelism(pc: usize, pf: usize, pv: usize) -> AccelConfig {
        AccelConfig {
            pc,
            pf,
            pv,
            ..AccelConfig::paper_default()
        }
    }

    /// The framework's hardware design space (paper Section IV-A):
    /// `P_C, P_F ∈ {8,16,32,64,128}`, `P_V ∈ {1,4,8,16}`.
    pub fn design_space() -> Vec<AccelConfig> {
        let dom_cf = [8usize, 16, 32, 64, 128];
        let dom_v = [1usize, 4, 8, 16];
        let mut out = Vec::new();
        for &pc in &dom_cf {
            for &pf in &dom_cf {
                for &pv in &dom_v {
                    out.push(AccelConfig::with_parallelism(pc, pf, pv));
                }
            }
        }
        out
    }

    /// Total multipliers in the PE array.
    pub fn multipliers(&self) -> usize {
        self.pc * self.pf * self.pv
    }

    /// Peak throughput in GOP/s (2 ops per MAC).
    pub fn peak_gops(&self) -> f64 {
        2.0 * self.multipliers() as f64 * self.clock_mhz / 1e3
    }

    /// Convert cycles to milliseconds at the configured clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz * 1e3)
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.pc == 0 || self.pf == 0 || self.pv == 0 {
            return Err("parallelism degrees must be non-zero".into());
        }
        if !(self.clock_mhz.is_finite() && self.clock_mhz > 0.0) {
            return Err("clock must be positive".into());
        }
        if self.dw_bytes == 0 {
            return Err("data width must be non-zero".into());
        }
        if self.fifo_depth == 0 {
            return Err("FIFO depth must be non-zero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_peak_matches_hand_calc() {
        let c = AccelConfig::paper_default();
        assert_eq!(c.multipliers(), 4096);
        // 4096 MACs * 2 ops * 225 MHz = 1843.2 GOP/s.
        assert!((c.peak_gops() - 1843.2).abs() < 0.1);
    }

    #[test]
    fn design_space_size() {
        assert_eq!(AccelConfig::design_space().len(), 5 * 5 * 4);
    }

    #[test]
    fn cycles_to_ms_at_225mhz() {
        let c = AccelConfig::paper_default();
        assert!((c.cycles_to_ms(225_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ddr_transfer_includes_setup() {
        let d = DdrConfig {
            bytes_per_cycle: 32.0,
            setup_cycles: 300,
        };
        assert_eq!(d.transfer_cycles(0), 0);
        assert_eq!(d.transfer_cycles(32), 301);
        assert_eq!(d.transfer_cycles(3200), 400);
        let default = DdrConfig::default();
        assert_eq!(default.transfer_cycles(6400), 400);
    }

    #[test]
    fn validation_catches_zeroes() {
        let mut c = AccelConfig::paper_default();
        c.pc = 0;
        assert!(c.validate().is_err());
        assert!(AccelConfig::paper_default().validate().is_ok());
    }
}
