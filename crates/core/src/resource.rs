//! The paper's resource model (Section IV-B) with calibrated
//! ALM/register estimates — regenerates Table II.
//!
//! Analytic parts straight from the paper:
//!
//! * `DSP = P_C · P_F · P_V / 2` (two 8-bit multipliers per DSP),
//! * `MEM_in = max_i(C_i · H_i · W_i) · DW`,
//! * `MEM_weight = max_i(C_i · K_i²) · P_F · DW`,
//! * `MEM_FIFO = D · P_F · DW`.
//!
//! Two effects the paper reports but does not model are added here and
//! documented as calibrated constants: (1) the stated `P_C = P_F = 64,
//! P_V = 1` configuration needs 2048 DSPs but the SX660 offers 1518 —
//! the synthesis overflowed multipliers into ALM logic (hence 97% DSP
//! *and* 71% ALM usage), modelled by [`ResourceUsage::dsp_overflow`];
//! (2) buffers are double-buffered and M20K packing is imperfect.

use crate::config::AccelConfig;
use bnn_nn::arch::LayerDesc;
use serde::{Deserialize, Serialize};

/// An FPGA resource budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaDevice {
    /// Device name.
    pub name: String,
    /// Adaptive logic modules.
    pub alms: u64,
    /// Flip-flops.
    pub registers: u64,
    /// DSP blocks.
    pub dsps: u64,
    /// M20K memory blocks.
    pub m20k_blocks: u64,
    /// Fraction of DSPs usable by the datapath (placement/clocking
    /// losses; calibrated so 1518 → 1473 as in Table II).
    pub dsp_usable_frac: f64,
}

impl FpgaDevice {
    /// Intel Arria 10 SX660 (the paper's platform).
    pub fn arria10_sx660() -> FpgaDevice {
        FpgaDevice {
            name: "Arria 10 SX660".into(),
            alms: 427_200,
            registers: 1_708_800,
            dsps: 1_518,
            m20k_blocks: 2_713,
            dsp_usable_frac: 0.97,
        }
    }

    /// Intel Cyclone V 5CGTFD9E5F35C7 (VIBNN's platform).
    pub fn cyclone_v() -> FpgaDevice {
        FpgaDevice {
            name: "Cyclone V 5CGTFD9E5F35C7".into(),
            alms: 113_560,
            registers: 227_120,
            dsps: 342,
            m20k_blocks: 1_220,
            dsp_usable_frac: 1.0,
        }
    }

    /// Xilinx Zynq XC7Z020 (BYNQNet's platform; BRAM18 halves mapped to
    /// an M20K-equivalent count).
    pub fn zynq_7020() -> FpgaDevice {
        FpgaDevice {
            name: "Zynq XC7Z020".into(),
            alms: 53_200,
            registers: 106_400,
            dsps: 220,
            m20k_blocks: 280,
            dsp_usable_frac: 1.0,
        }
    }

    /// DSPs actually available to the datapath.
    pub fn usable_dsps(&self) -> u64 {
        (self.dsps as f64 * self.dsp_usable_frac).floor() as u64
    }
}

/// Estimated resource usage of a configuration for a set of networks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// DSP blocks consumed.
    pub dsps: u64,
    /// 8-bit multipliers that did not fit in DSPs and were built from
    /// ALMs.
    pub dsp_overflow: u64,
    /// ALMs consumed (datapath + control + overflow multipliers).
    pub alms: u64,
    /// Registers consumed.
    pub registers: u64,
    /// M20K blocks consumed.
    pub m20k: u64,
    /// On-chip buffer bytes (input + weight + FIFO + output).
    pub buffer_bytes: u64,
}

/// Calibrated per-element area constants (documented in DESIGN.md).
const ALM_BASE: u64 = 30_000; // controller, DMA, AXI plumbing
const ALM_PER_MAC: u64 = 40; // accumulate/adder-tree share per multiplier
const ALM_PER_FU_LANE: u64 = 300; // BN/ReLU/Pool/SC chain per PF lane
const ALM_PER_OVERFLOW_MULT: u64 = 80; // 8x8 multiplier built in logic
const REG_BASE: u64 = 70_000;
const REG_PER_MAC: u64 = 200;
const M20K_BITS: u64 = 20_480;
const M20K_PACKING: f64 = 0.8;

/// The resource model.
#[derive(Debug, Clone)]
pub struct ResourceModel {
    device: FpgaDevice,
}

impl ResourceModel {
    /// Create a model against a device budget.
    pub fn new(device: FpgaDevice) -> ResourceModel {
        ResourceModel { device }
    }

    /// The device budget.
    pub fn device(&self) -> &FpgaDevice {
        &self.device
    }

    /// Estimate usage of `cfg` when it must support every network in
    /// `workloads` (the buffer sizing takes the max over all layers of
    /// all networks, as the paper's `max_i` formulas do).
    pub fn estimate(&self, cfg: &AccelConfig, workloads: &[&[LayerDesc]]) -> ResourceUsage {
        let mults = cfg.multipliers() as u64;
        let dsp_needed = mults.div_ceil(2);
        let dsp_avail = self.device.usable_dsps();
        let (dsps, overflow_mults) = if dsp_needed <= dsp_avail {
            (dsp_needed, 0)
        } else {
            (dsp_avail, (dsp_needed - dsp_avail) * 2)
        };

        let dw = cfg.dw_bytes as u64;
        // MEM_in = max(C_i * H_i * W_i) * DW — the layer-by-layer input
        // buffer, which is also the IC pin buffer.
        let mem_in = workloads
            .iter()
            .flat_map(|ls| ls.iter())
            .map(|l| (l.in_c * l.in_h * l.in_w) as u64 * dw)
            .max()
            .unwrap_or(0);
        // MEM_weight = max(C_i * K_i^2) * P_F * DW.
        let mem_w = workloads
            .iter()
            .flat_map(|ls| ls.iter())
            .map(|l| (l.in_c * l.k * l.k) as u64 * cfg.pf as u64 * dw)
            .max()
            .unwrap_or(0);
        // Output buffer: matrix-engine tile output before DDR writeback,
        // sized like the input buffer (stored outputs).
        let mem_out = workloads
            .iter()
            .flat_map(|ls| ls.iter())
            .map(|l| (l.out_c * l.stored_h * l.stored_w) as u64 * dw)
            .max()
            .unwrap_or(0);
        let mem_fifo = (cfg.fifo_depth * cfg.pf) as u64 * dw / 8;
        // Input/weight are double-buffered (load next while computing).
        let buffer_bytes = 2 * mem_in + 2 * mem_w + mem_out + mem_fifo;
        let m20k = ((buffer_bytes * 8) as f64 / (M20K_BITS as f64 * M20K_PACKING)).ceil() as u64;

        let alms = ALM_BASE
            + ALM_PER_MAC * mults
            + ALM_PER_FU_LANE * (cfg.pf * cfg.pv) as u64
            + ALM_PER_OVERFLOW_MULT * overflow_mults;
        let registers = REG_BASE + REG_PER_MAC * mults;

        ResourceUsage {
            dsps,
            dsp_overflow: overflow_mults,
            alms,
            registers,
            m20k,
            buffer_bytes,
        }
    }

    /// Whether the estimated usage fits the device.
    pub fn fits(&self, usage: &ResourceUsage) -> bool {
        usage.dsps <= self.device.usable_dsps()
            && usage.alms <= self.device.alms
            && usage.registers <= self.device.registers
            && usage.m20k <= self.device.m20k_blocks
    }

    /// Estimate and check in one step.
    pub fn check(&self, cfg: &AccelConfig, workloads: &[&[LayerDesc]]) -> (ResourceUsage, bool) {
        let u = self.estimate(cfg, workloads);
        let ok = self.fits(&u);
        (u, ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_nn::arch::{extract_layers, resnet101_desc};
    use bnn_nn::models;
    use bnn_tensor::Shape4;

    fn paper_workloads() -> Vec<Vec<LayerDesc>> {
        vec![
            extract_layers(&models::lenet5(10, 1, 28, 1), Shape4::new(1, 1, 28, 28)),
            extract_layers(&models::vgg11(10, 3, 32, 8, 1), Shape4::new(1, 3, 32, 32)),
            extract_layers(&models::resnet18(10, 3, 16, 1), Shape4::new(1, 3, 32, 32)),
            resnet101_desc(),
        ]
    }

    #[test]
    fn paper_config_dsp_overflow_matches_table2() {
        let model = ResourceModel::new(FpgaDevice::arria10_sx660());
        let wl = paper_workloads();
        let refs: Vec<&[LayerDesc]> = wl.iter().map(|v| v.as_slice()).collect();
        let u = model.estimate(&AccelConfig::paper_default(), &refs);
        // 64*64*1/2 = 2048 needed, 1472 usable: DSPs saturate ~Table II's 1473.
        assert!((1465..=1480).contains(&u.dsps), "dsps {}", u.dsps);
        assert!(u.dsp_overflow > 1000, "overflow mults {}", u.dsp_overflow);
    }

    #[test]
    fn paper_config_alm_register_in_table2_ballpark() {
        let model = ResourceModel::new(FpgaDevice::arria10_sx660());
        let wl = paper_workloads();
        let refs: Vec<&[LayerDesc]> = wl.iter().map(|v| v.as_slice()).collect();
        let u = model.estimate(&AccelConfig::paper_default(), &refs);
        // Table II: 303,913 ALMs (71%), 889,869 registers (52%).
        let alm_frac = u.alms as f64 / 427_200.0;
        let reg_frac = u.registers as f64 / 1_708_800.0;
        assert!((0.5..=0.9).contains(&alm_frac), "ALM fraction {alm_frac}");
        assert!(
            (0.35..=0.7).contains(&reg_frac),
            "register fraction {reg_frac}"
        );
    }

    #[test]
    fn m20k_usage_dominated_by_resnet101_maps() {
        let model = ResourceModel::new(FpgaDevice::arria10_sx660());
        let wl = paper_workloads();
        let refs: Vec<&[LayerDesc]> = wl.iter().map(|v| v.as_slice()).collect();
        let u = model.estimate(&AccelConfig::paper_default(), &refs);
        // Table II: 2334 blocks (86%). The model should land in the
        // right regime (over half the device, under the budget).
        assert!(u.m20k > 1_300 && u.m20k <= 2_713, "m20k {}", u.m20k);
    }

    #[test]
    fn small_config_fits_small_device() {
        let model = ResourceModel::new(FpgaDevice::zynq_7020());
        let wl = [extract_layers(
            &models::lenet5(10, 1, 28, 1),
            Shape4::new(1, 1, 28, 28),
        )];
        let refs: Vec<&[LayerDesc]> = wl.iter().map(|v| v.as_slice()).collect();
        let (_, fits_small) = model.check(&AccelConfig::with_parallelism(8, 8, 1), &refs);
        assert!(fits_small, "8x8x1 must fit a Zynq 7020");
        let (_, fits_big) = model.check(&AccelConfig::with_parallelism(128, 128, 16), &refs);
        assert!(!fits_big, "128x128x16 cannot fit a Zynq 7020");
    }

    #[test]
    fn usage_monotone_in_parallelism() {
        let model = ResourceModel::new(FpgaDevice::arria10_sx660());
        let wl = paper_workloads();
        let refs: Vec<&[LayerDesc]> = wl.iter().map(|v| v.as_slice()).collect();
        let small = model.estimate(&AccelConfig::with_parallelism(16, 16, 1), &refs);
        let big = model.estimate(&AccelConfig::with_parallelism(64, 64, 1), &refs);
        assert!(big.alms > small.alms);
        assert!(big.dsps >= small.dsps);
        assert!(big.m20k >= small.m20k);
    }
}
