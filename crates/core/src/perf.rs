//! The per-layer cycle model and network latency estimation
//! (Tables I, III and IV).
//!
//! Per fused layer the matrix engine needs
//!
//! ```text
//! compute = ceil(F / P_F) · ceil(Ho·Wo / P_V) · ceil(C·K² / P_C) + fill
//! ```
//!
//! cycles (the `C·K²` reduction is streamed through the `P_C`-wide
//! multiplier/adder-tree, im2col-style, so shallow early layers do not
//! strand the channel lanes), while the memory interface streams
//! weights (every invocation — they never persist on chip), the input
//! feature map (unless pinned by IC) and the stored output. Compute
//! and transfer are double-buffered, so a layer costs
//! `max(compute, memory) + overhead`.
//!
//! A partial-Bayesian run `{L, S}` executes the deterministic prefix
//! once and the Bayesian suffix `S` times when IC is enabled, and the
//! whole network `S` times otherwise (paper Figure 4).

use crate::config::AccelConfig;
use bnn_mcd::BayesConfig;
use bnn_nn::arch::LayerDesc;
use serde::{Deserialize, Serialize};

/// Which resource bounds a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// Matrix-engine limited.
    Compute,
    /// DDR-bandwidth limited.
    Memory,
}

/// Timing of one fused layer for one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerTiming {
    /// Matrix-engine cycles.
    pub compute_cycles: u64,
    /// DDR transfer cycles (weights + activations).
    pub mem_cycles: u64,
    /// Total including per-layer overhead.
    pub total_cycles: u64,
    /// Limiting resource.
    pub bound: Bound,
    /// MAC utilisation of the PE array during the compute phase.
    pub utilization: f64,
}

/// Latency decomposition of a full `{L, S}` network run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkTiming {
    /// Per-layer, single-invocation timings.
    pub layers: Vec<LayerTiming>,
    /// Cycles of the deterministic prefix (run once with IC).
    pub prefix_cycles: u64,
    /// Cycles of one Bayesian-suffix pass.
    pub suffix_cycles: u64,
    /// Monte Carlo samples.
    pub s: usize,
    /// Total cycles for the complete prediction.
    pub total_cycles: u64,
    /// Whether intermediate-layer caching was applied.
    pub ic: bool,
}

impl NetworkTiming {
    /// Total latency in milliseconds at the configured clock.
    pub fn latency_ms(&self, cfg: &AccelConfig) -> f64 {
        cfg.cycles_to_ms(self.total_cycles)
    }
}

/// The performance model.
#[derive(Debug, Clone)]
pub struct PerfModel {
    cfg: AccelConfig,
}

impl PerfModel {
    /// Create a model for a configuration.
    pub fn new(cfg: AccelConfig) -> PerfModel {
        PerfModel { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// Timing of one layer invocation.
    ///
    /// `input_offchip` — whether the input feature map must be fetched
    /// from DDR (false when IC pins it on chip);
    /// `output_offchip` — whether the stored output is written back.
    pub fn layer_timing(
        &self,
        l: &LayerDesc,
        input_offchip: bool,
        output_offchip: bool,
    ) -> LayerTiming {
        let c = &self.cfg;
        let red = (l.in_c * l.k * l.k) as u64; // C·K² reduction length
        let f_tiles = (l.out_c as u64).div_ceil(c.pf as u64);
        let v_tiles = ((l.out_h * l.out_w) as u64).div_ceil(c.pv as u64);
        let red_tiles = red.div_ceil(c.pc as u64);
        let fill = (c.pc.ilog2() as u64) + 4; // adder tree + FU pipeline
        let compute = f_tiles * v_tiles * red_tiles + fill;

        let dw = c.dw_bytes;
        let mut bytes = l.weight_bytes(dw);
        if input_offchip {
            bytes += l.input_bytes(dw);
        }
        if output_offchip {
            bytes += l.output_bytes(dw);
        }
        let mem = c.ddr.transfer_cycles(bytes);

        let total = compute.max(mem) + c.layer_overhead_cycles;
        let utilization =
            l.macs() as f64 / (compute.saturating_sub(fill).max(1) * c.multipliers() as u64) as f64;
        LayerTiming {
            compute_cycles: compute,
            mem_cycles: mem,
            total_cycles: total,
            bound: if compute >= mem {
                Bound::Compute
            } else {
                Bound::Memory
            },
            utilization: utilization.min(1.0),
        }
    }

    /// Index of the first Bayesian layer for a given `L` (layers are in
    /// execution order; sites are numbered in the same order).
    fn first_bayes_idx(layers: &[LayerDesc], l: usize) -> usize {
        bnn_nn::arch::first_bayesian_layer(layers, l)
    }

    /// Latency of a `{L, S}` Bayesian prediction.
    ///
    /// With `ic`, layers before the first Bayesian layer run once and
    /// the suffix runs `S` times with its boundary input pinned on
    /// chip; without, the whole network runs `S` times.
    pub fn network_timing(
        &self,
        layers: &[LayerDesc],
        bayes: BayesConfig,
        ic: bool,
    ) -> NetworkTiming {
        assert!(bayes.s > 0, "S must be positive");
        let split = Self::first_bayes_idx(layers, bayes.l);
        let mut per_layer = Vec::with_capacity(layers.len());
        let mut prefix = 0u64;
        let mut suffix = 0u64;
        for (i, l) in layers.iter().enumerate() {
            // The suffix boundary input is pinned on chip under IC.
            let input_offchip = !(ic && i == split);
            let t = self.layer_timing(l, input_offchip, true);
            if i < split {
                prefix += t.total_cycles;
            } else {
                suffix += t.total_cycles;
            }
            per_layer.push(t);
        }
        let total = if ic {
            prefix + suffix * bayes.s as u64
        } else {
            (prefix + suffix) * bayes.s as u64
        };
        NetworkTiming {
            layers: per_layer,
            prefix_cycles: prefix,
            suffix_cycles: suffix,
            s: bayes.s,
            total_cycles: total,
            ic,
        }
    }

    /// Throughput in GOP/s for a `{L, S}` run (ops = 2·MACs actually
    /// executed, the Table IV convention).
    pub fn throughput_gops(&self, layers: &[LayerDesc], bayes: BayesConfig, ic: bool) -> f64 {
        let t = self.network_timing(layers, bayes, ic);
        let split = Self::first_bayes_idx(layers, bayes.l);
        let prefix_ops: u64 = layers[..split].iter().map(LayerDesc::ops).sum();
        let suffix_ops: u64 = layers[split..].iter().map(LayerDesc::ops).sum();
        let ops = if ic {
            prefix_ops + suffix_ops * bayes.s as u64
        } else {
            (prefix_ops + suffix_ops) * bayes.s as u64
        };
        ops as f64 / (t.total_cycles as f64 / (self.cfg.clock_mhz * 1e6)) / 1e9
    }

    /// Energy efficiency in GOP/s/W at the configured board power.
    pub fn energy_efficiency(&self, layers: &[LayerDesc], bayes: BayesConfig, ic: bool) -> f64 {
        self.throughput_gops(layers, bayes, ic) / self.cfg.board_power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_nn::arch::{extract_layers, resnet101_desc};
    use bnn_nn::models;
    use bnn_tensor::Shape4;

    fn pm() -> PerfModel {
        PerfModel::new(AccelConfig::paper_default())
    }

    #[test]
    fn compute_formula_hand_check() {
        // F=64, HoWo=100, C*K²=128: ceil(64/64)*100*ceil(128/64)=200 + fill.
        let l = LayerDesc {
            name: "t".into(),
            kind: bnn_nn::arch::LayerKind::Conv,
            in_c: 32,
            out_c: 64,
            k: 2,
            stride: 1,
            pad: 0,
            in_h: 11,
            in_w: 11,
            out_h: 10,
            out_w: 10,
            stored_h: 10,
            stored_w: 10,
            has_bn: false,
            has_relu: true,
            pool: None,
            shortcut_add: false,
            input_site: None,
        };
        let t = pm().layer_timing(&l, true, true);
        assert_eq!(t.compute_cycles, 200 + 6 + 4); // fill = log2(64)+4 = 10
    }

    #[test]
    fn resnet101_throughput_matches_table4_regime() {
        // Paper Table IV: 1590 GOP/s on ResNet-101 with L = N.
        let layers = resnet101_desc();
        let n = layers.iter().filter_map(|l| l.input_site).count();
        let g = pm().throughput_gops(&layers, BayesConfig::new(n, 1), true);
        assert!(
            (1300.0..1843.2).contains(&g),
            "ResNet-101 throughput {g} GOP/s outside the paper's regime"
        );
    }

    #[test]
    fn energy_efficiency_matches_table4_regime() {
        // Paper: 33.3 GOP/s/W at 45 W.
        let layers = resnet101_desc();
        let n = layers.iter().filter_map(|l| l.input_site).count();
        let e = pm().energy_efficiency(&layers, BayesConfig::new(n, 1), true);
        assert!((28.0..41.0).contains(&e), "energy efficiency {e}");
    }

    #[test]
    fn ic_speedup_large_for_small_l() {
        // Table III: VGG-11 {1,100}: w/ IC ~75x faster than w/o.
        let net = models::vgg11(10, 3, 32, 8, 1);
        let layers = extract_layers(&net, Shape4::new(1, 3, 32, 32));
        let cfg = BayesConfig::new(1, 100);
        let with = pm().network_timing(&layers, cfg, true).total_cycles;
        let without = pm().network_timing(&layers, cfg, false).total_cycles;
        let speedup = without as f64 / with as f64;
        assert!(
            speedup > 10.0,
            "IC speedup {speedup} too small for L=1,S=100"
        );
    }

    #[test]
    fn ic_speedup_shrinks_as_l_grows() {
        let net = models::vgg11(10, 3, 32, 8, 1);
        let layers = extract_layers(&net, Shape4::new(1, 3, 32, 32));
        let s_small = {
            let c = BayesConfig::new(1, 50);
            let w = pm().network_timing(&layers, c, true).total_cycles;
            let wo = pm().network_timing(&layers, c, false).total_cycles;
            wo as f64 / w as f64
        };
        let s_large = {
            let c = BayesConfig::new(8, 50);
            let w = pm().network_timing(&layers, c, true).total_cycles;
            let wo = pm().network_timing(&layers, c, false).total_cycles;
            wo as f64 / w as f64
        };
        assert!(
            s_small > s_large,
            "IC speedup must fall with L: {s_small} vs {s_large}"
        );
    }

    #[test]
    fn latency_monotone_in_s() {
        let net = models::lenet5(10, 1, 28, 1);
        let layers = extract_layers(&net, Shape4::new(1, 1, 28, 28));
        let t3 = pm()
            .network_timing(&layers, BayesConfig::new(2, 3), true)
            .total_cycles;
        let t100 = pm()
            .network_timing(&layers, BayesConfig::new(2, 100), true)
            .total_cycles;
        assert!(t100 > t3);
        // With IC the growth is sub-linear in S (prefix amortised).
        assert!((t100 as f64) < (t3 as f64) * 100.0 / 3.0);
    }

    #[test]
    fn fc_layers_are_memory_bound() {
        let net = models::lenet5(10, 1, 28, 1);
        let layers = extract_layers(&net, Shape4::new(1, 1, 28, 28));
        let fc1 = layers
            .iter()
            .find(|l| l.name.starts_with("fc"))
            .expect("fc exists");
        let t = pm().layer_timing(fc1, true, true);
        assert_eq!(t.bound, Bound::Memory, "batch-1 FC must be DDR-bound");
    }

    #[test]
    fn utilization_higher_for_wide_layers() {
        let layers = resnet101_desc();
        // A mid-network 3x3 with C=256 saturates PC; the stem (C=3) cannot.
        let stem = pm().layer_timing(&layers[0], true, true);
        let mid = pm().layer_timing(
            layers
                .iter()
                .find(|l| l.in_c == 256 && l.k == 3)
                .expect("3x3x256 exists"),
            true,
            true,
        );
        assert!(mid.utilization > stem.utilization);
        assert!(mid.utilization > 0.9, "wide 3x3 should be >90% utilised");
    }

    #[test]
    fn latency_improves_with_parallelism() {
        let net = models::resnet18(10, 3, 16, 1);
        let layers = extract_layers(&net, Shape4::new(1, 3, 32, 32));
        let small = PerfModel::new(AccelConfig::with_parallelism(8, 8, 1));
        let big = PerfModel::new(AccelConfig::with_parallelism(64, 64, 1));
        let c = BayesConfig::new(18, 10);
        assert!(
            big.network_timing(&layers, c, true).total_cycles
                < small.network_timing(&layers, c, true).total_cycles
        );
    }
}
