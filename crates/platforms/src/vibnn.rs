//! Reproduction of VIBNN (Cai et al., ASPLOS'18): an FPGA accelerator
//! for Bayesian neural networks with *Gaussian weight sampling*.
//!
//! VIBNN accelerates 3-layer fully-connected BNNs whose weights carry
//! a Gaussian variational posterior `w ~ N(μ, σ²)`; every inference
//! samples all weights on chip with Gaussian RNGs (their RLF-GRNG is a
//! CLT-of-LFSR construction — modelled bit-faithfully by
//! [`bnn_rng::CltGaussianSampler`]). The functional model reproduces
//! that datapath; the performance model is parameterised with the
//! published platform (Cyclone V, 212.95 MHz, 342 DSPs, 6.11 W) and
//! reproduces the published 59.6 GOP/s for Table IV.

use bnn_rng::{CltGaussianSampler, GaussianSampler, SoftRng};
use bnn_tensor::softmax_rows;

use crate::AcceleratorSummary;

/// One fully-connected layer with a Gaussian weight posterior.
#[derive(Debug, Clone)]
pub struct GaussLayer {
    /// Input features.
    pub in_f: usize,
    /// Output features.
    pub out_f: usize,
    /// Posterior means `[out, in]`.
    pub mu: Vec<f32>,
    /// Posterior standard deviations `[out, in]` (positive).
    pub sigma: Vec<f32>,
    /// Bias means `[out]`.
    pub bias: Vec<f32>,
}

/// A VIBNN-style Bayesian MLP (sigmoid hidden activations, as in the
/// original's MNIST configuration 784-400-400-10).
#[derive(Debug, Clone)]
pub struct VibnnNetwork {
    layers: Vec<GaussLayer>,
}

impl VibnnNetwork {
    /// Build a network with the given layer widths and random
    /// posterior (for datapath exercises; VIBNN's trained posteriors
    /// are not public).
    ///
    /// # Panics
    ///
    /// Panics unless at least two widths (input, output) are given.
    pub fn new(widths: &[usize], seed: u64) -> VibnnNetwork {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let mut rng = SoftRng::new(seed);
        let layers = widths
            .windows(2)
            .map(|w| {
                let (i, o) = (w[0], w[1]);
                let std = (1.0 / i as f32).sqrt();
                GaussLayer {
                    in_f: i,
                    out_f: o,
                    mu: (0..i * o).map(|_| rng.normal_f32(0.0, std)).collect(),
                    sigma: (0..i * o).map(|_| 0.05 + 0.05 * rng.next_f32()).collect(),
                    bias: vec![0.0; o],
                }
            })
            .collect();
        VibnnNetwork { layers }
    }

    /// The original paper's MNIST topology 784-400-400-10.
    pub fn mnist_784_400_400_10(seed: u64) -> VibnnNetwork {
        VibnnNetwork::new(&[784, 400, 400, 10], seed)
    }

    /// Layers.
    pub fn layers(&self) -> &[GaussLayer] {
        &self.layers
    }

    /// MACs of one forward pass (one weight sample).
    pub fn macs(&self) -> u64 {
        self.layers.iter().map(|l| (l.in_f * l.out_f) as u64).sum()
    }

    /// One forward pass with freshly-sampled weights from the hardware
    /// Gaussian RNG model.
    pub fn sample_forward(&self, x: &[f32], g: &mut dyn GaussianSampler) -> Vec<f32> {
        assert_eq!(x.len(), self.layers[0].in_f, "input width mismatch");
        let mut act = x.to_vec();
        for (li, l) in self.layers.iter().enumerate() {
            let mut out = vec![0.0f32; l.out_f];
            for (o, out_v) in out.iter_mut().enumerate() {
                let mut acc = l.bias[o];
                for (i, &a) in act.iter().enumerate() {
                    let idx = o * l.in_f + i;
                    let w = l.mu[idx] + l.sigma[idx] * g.sample();
                    acc += w * a;
                }
                *out_v = acc;
            }
            if li + 1 < self.layers.len() {
                for v in &mut out {
                    *v = 1.0 / (1.0 + (-*v).exp()); // sigmoid
                }
            }
            act = out;
        }
        act
    }

    /// Predictive distribution over `s` weight samples.
    pub fn predictive(&self, x: &[f32], s: usize, g: &mut dyn GaussianSampler) -> Vec<f32> {
        assert!(s > 0, "at least one sample");
        let k = self.layers.last().expect("non-empty").out_f;
        let mut acc = vec![0.0f32; k];
        for _ in 0..s {
            let mut logits = self.sample_forward(x, g);
            softmax_rows(&mut logits, 1, k);
            for (a, l) in acc.iter_mut().zip(&logits) {
                *a += l;
            }
        }
        for a in &mut acc {
            *a /= s as f32;
        }
        acc
    }

    /// A CLT Gaussian sampler matching VIBNN's RLF-GRNG structure.
    pub fn hardware_sampler(seed: u64) -> CltGaussianSampler {
        CltGaussianSampler::new(12, 16, seed)
    }
}

/// VIBNN's published platform numbers, with throughput derived from a
/// PE-array model (`mac_units` MACs at `efficiency`) calibrated to the
/// published 59.6 GOP/s.
#[derive(Debug, Clone, PartialEq)]
pub struct VibnnPerfModel {
    /// Clock in MHz (published).
    pub clock_mhz: f64,
    /// DSP blocks (published).
    pub dsps: u64,
    /// Power in watts (published).
    pub power_w: f64,
    /// Modelled MAC units in the FC engine.
    pub mac_units: u64,
    /// Modelled sustained efficiency of the MAC array.
    pub efficiency: f64,
}

impl Default for VibnnPerfModel {
    fn default() -> Self {
        // 160 MACs at 87.5% sustained ≈ 59.6 GOP/s at 212.95 MHz.
        VibnnPerfModel {
            clock_mhz: 212.95,
            dsps: 342,
            power_w: 6.11,
            mac_units: 160,
            efficiency: 0.875,
        }
    }
}

impl VibnnPerfModel {
    /// Sustained throughput in GOP/s.
    pub fn throughput_gops(&self) -> f64 {
        2.0 * self.mac_units as f64 * self.efficiency * self.clock_mhz / 1e3
    }

    /// Latency of one Monte Carlo sample of a network, in ms.
    pub fn sample_latency_ms(&self, net: &VibnnNetwork) -> f64 {
        2.0 * net.macs() as f64 / (self.throughput_gops() * 1e9) * 1e3
    }

    /// Table IV row.
    pub fn summary(&self) -> AcceleratorSummary {
        AcceleratorSummary {
            name: "VIBNN [8]".into(),
            fpga: "Cyclone V 5CGTFD9E5F35C7".into(),
            clock_mhz: self.clock_mhz,
            dsps: self.dsps,
            power_w: self.power_w,
            throughput_gops: self.throughput_gops(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_matches_published_value() {
        let m = VibnnPerfModel::default();
        assert!(
            (m.throughput_gops() - 59.6).abs() < 1.0,
            "calibrated throughput {} != 59.6",
            m.throughput_gops()
        );
    }

    #[test]
    fn published_efficiency_metrics() {
        let s = VibnnPerfModel::default().summary();
        // Paper Table IV: 9.75 GOP/s/W, 0.174 GOP/s/DSP.
        assert!(
            (s.energy_efficiency() - 9.75).abs() < 0.3,
            "{}",
            s.energy_efficiency()
        );
        assert!(
            (s.compute_efficiency() - 0.174).abs() < 0.01,
            "{}",
            s.compute_efficiency()
        );
    }

    #[test]
    fn predictive_is_distribution_and_stochastic() {
        let net = VibnnNetwork::new(&[16, 8, 4], 3);
        let x = vec![0.3f32; 16];
        let mut g = VibnnNetwork::hardware_sampler(1);
        let p = net.predictive(&x, 5, &mut g);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        // Two single samples differ (weights resampled).
        let a = net.sample_forward(&x, &mut g);
        let b = net.sample_forward(&x, &mut g);
        assert_ne!(a, b);
    }

    #[test]
    fn weight_uncertainty_widens_predictive() {
        // A confidently-biased network with a narrow posterior must
        // have lower predictive entropy than the same network with a
        // wide posterior.
        let mut narrow = VibnnNetwork::new(&[8, 8, 3], 5);
        for l in &mut narrow.layers {
            for s in &mut l.sigma {
                *s = 0.001;
            }
        }
        // Bias the output layer hard toward class 0.
        if let Some(last) = narrow.layers.last_mut() {
            last.bias = vec![4.0, 0.0, 0.0];
        }
        let mut wide = narrow.clone();
        for l in &mut wide.layers {
            for s in &mut l.sigma {
                *s = 0.8;
            }
        }
        let x = vec![0.5f32; 8];
        let entropy = |p: &[f32]| -> f64 {
            p.iter()
                .filter(|&&v| v > 0.0)
                .map(|&v| -f64::from(v) * f64::from(v).ln())
                .sum()
        };
        let mut g1 = VibnnNetwork::hardware_sampler(2);
        let mut g2 = VibnnNetwork::hardware_sampler(2);
        let hn = entropy(&narrow.predictive(&x, 30, &mut g1));
        let hw = entropy(&wide.predictive(&x, 30, &mut g2));
        assert!(
            hw > hn,
            "wide posterior must be more uncertain: {hw} vs {hn}"
        );
    }

    #[test]
    fn mnist_topology_macs() {
        let net = VibnnNetwork::mnist_784_400_400_10(1);
        assert_eq!(net.macs(), (784 * 400 + 400 * 400 + 400 * 10) as u64);
    }
}
