//! Baseline platform models for the paper's comparisons.
//!
//! * [`PlatformModel`] — roofline-style batch-1 latency models of the
//!   paper's CPU (Intel i9-9900K) and GPU (RTX 2080 SUPER) baselines,
//!   used by Tables I and III. Neither platform applies
//!   intermediate-layer caching: PyTorch reruns the full network for
//!   every Monte Carlo sample, exactly as the paper measured.
//! * [`vibnn`] — a reproduction of the VIBNN weight-sampling MLP
//!   accelerator (Gaussian RNG + FC engine) with a calibrated
//!   performance model for Table IV.
//! * [`bynqnet`] — a reproduction of BYNQNet's sampling-free moment
//!   propagation through quadratic activations, with its performance
//!   model for Table IV.
//! * [`AcceleratorSummary`] — one Table IV row.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bynqnet;
mod cpu_gpu;
pub mod vibnn;

pub use cpu_gpu::PlatformModel;

/// One row of the paper's Table IV cross-accelerator comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorSummary {
    /// Accelerator name.
    pub name: String,
    /// FPGA device.
    pub fpga: String,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// DSP blocks used.
    pub dsps: u64,
    /// Board power in watts.
    pub power_w: f64,
    /// Sustained throughput in GOP/s.
    pub throughput_gops: f64,
}

impl AcceleratorSummary {
    /// Energy efficiency in GOP/s/W.
    pub fn energy_efficiency(&self) -> f64 {
        self.throughput_gops / self.power_w
    }

    /// Compute efficiency in GOP/s/DSP.
    pub fn compute_efficiency(&self) -> f64 {
        self.throughput_gops / self.dsps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_derived_metrics() {
        let s = AcceleratorSummary {
            name: "x".into(),
            fpga: "y".into(),
            clock_mhz: 200.0,
            dsps: 100,
            power_w: 10.0,
            throughput_gops: 50.0,
        };
        assert!((s.energy_efficiency() - 5.0).abs() < 1e-12);
        assert!((s.compute_efficiency() - 0.5).abs() < 1e-12);
    }
}
