//! Reproduction of BYNQNet (Awano & Hashimoto, DATE'20): sampling-free
//! Bayesian inference by *moment propagation* through quadratic
//! activations.
//!
//! BYNQNet restricts the network to linear layers and the quadratic
//! nonlinearity `y = x² + x`, so the mean and variance of every
//! activation propagate analytically (no Monte Carlo loop):
//!
//! * linear `y = Wx + b` with independent inputs:
//!   `μ_y = Wμ + b`, `σ²_y = (W∘W)σ²`,
//! * quadratic `y = x² + x` with `x ~ N(μ, σ²)`:
//!   `E[y] = μ² + σ² + μ`, `Var[y] = σ²·((2μ+1)² + 2σ²)`.
//!
//! The functional model reproduces that pipeline (with Gaussian-weight
//! first-layer variance injection); the performance model is
//! parameterised with the published platform (Zynq XC7Z020, 200 MHz,
//! 220 DSPs, 2.76 W) and reproduces the published 24.22 GOP/s.

use crate::AcceleratorSummary;
use bnn_rng::SoftRng;

/// One linear layer with Gaussian weight posterior for the
/// moment-propagation pipeline.
#[derive(Debug, Clone)]
pub struct MomentLinear {
    /// Input features.
    pub in_f: usize,
    /// Output features.
    pub out_f: usize,
    /// Weight means `[out, in]`.
    pub mu: Vec<f32>,
    /// Weight variances `[out, in]` (non-negative).
    pub var: Vec<f32>,
    /// Bias `[out]`.
    pub bias: Vec<f32>,
}

/// A BYNQNet-style network: linear layers + quadratic activations.
#[derive(Debug, Clone)]
pub struct BynqnetNetwork {
    layers: Vec<MomentLinear>,
}

impl BynqnetNetwork {
    /// Build with random posteriors (the published weights are not
    /// public); widths as in the original MNIST pipeline.
    ///
    /// # Panics
    ///
    /// Panics unless at least two widths are given.
    pub fn new(widths: &[usize], seed: u64) -> BynqnetNetwork {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let mut rng = SoftRng::new(seed);
        let layers = widths
            .windows(2)
            .map(|w| {
                let (i, o) = (w[0], w[1]);
                let std = (1.0 / i as f32).sqrt();
                MomentLinear {
                    in_f: i,
                    out_f: o,
                    mu: (0..i * o).map(|_| rng.normal_f32(0.0, std)).collect(),
                    var: (0..i * o).map(|_| 0.002 + 0.002 * rng.next_f32()).collect(),
                    bias: vec![0.0; o],
                }
            })
            .collect();
        BynqnetNetwork { layers }
    }

    /// MACs of one (moment) forward pass — mean and variance paths.
    pub fn macs(&self) -> u64 {
        // Two GEMVs per layer: one for means, one for variances.
        2 * self
            .layers
            .iter()
            .map(|l| (l.in_f * l.out_f) as u64)
            .sum::<u64>()
    }

    /// Propagate `(mean, variance)` through the network; returns the
    /// output moments (logit space).
    ///
    /// # Panics
    ///
    /// Panics if the input width mismatches.
    pub fn forward_moments(&self, mean: &[f32], var: &[f32]) -> (Vec<f32>, Vec<f32>) {
        assert_eq!(mean.len(), self.layers[0].in_f, "input width mismatch");
        assert_eq!(var.len(), mean.len(), "moment vectors must align");
        let mut m = mean.to_vec();
        let mut v = var.to_vec();
        let last = self.layers.len() - 1;
        for (li, l) in self.layers.iter().enumerate() {
            let mut mo = vec![0.0f32; l.out_f];
            let mut vo = vec![0.0f32; l.out_f];
            for o in 0..l.out_f {
                let mut acc_m = l.bias[o];
                let mut acc_v = 0.0f32;
                for i in 0..l.in_f {
                    let idx = o * l.in_f + i;
                    let (wm, wv) = (l.mu[idx], l.var[idx]);
                    acc_m += wm * m[i];
                    // Var(w·x) for independent w, x:
                    // wv·xv + wv·xm² + wm²·xv.
                    acc_v += wv * v[i] + wv * m[i] * m[i] + wm * wm * v[i];
                }
                mo[o] = acc_m;
                vo[o] = acc_v.max(0.0);
            }
            if li != last {
                // Quadratic activation y = x² + x, moment-matched.
                for o in 0..l.out_f {
                    let (mu, s2) = (mo[o], vo[o]);
                    let ey = mu * mu + s2 + mu;
                    let vy = s2 * ((2.0 * mu + 1.0).powi(2) + 2.0 * s2);
                    mo[o] = ey;
                    vo[o] = vy.max(0.0);
                }
            }
            m = mo;
            v = vo;
        }
        (m, v)
    }

    /// Monte Carlo estimate of the same output moments, for validating
    /// the analytic propagation (weights and inputs sampled).
    pub fn forward_mc(
        &self,
        mean: &[f32],
        var: &[f32],
        samples: usize,
        seed: u64,
    ) -> (Vec<f32>, Vec<f32>) {
        let mut rng = SoftRng::new(seed);
        let k = self.layers.last().expect("non-empty").out_f;
        let mut sum = vec![0.0f64; k];
        let mut sq = vec![0.0f64; k];
        for _ in 0..samples {
            let mut act: Vec<f32> = mean
                .iter()
                .zip(var)
                .map(|(&m, &v)| m + v.sqrt() * rng.normal_f32(0.0, 1.0))
                .collect();
            let last = self.layers.len() - 1;
            for (li, l) in self.layers.iter().enumerate() {
                let mut out = vec![0.0f32; l.out_f];
                for (o, out_v) in out.iter_mut().enumerate() {
                    let mut acc = l.bias[o];
                    for (i, &a) in act.iter().enumerate() {
                        let idx = o * l.in_f + i;
                        let w = l.mu[idx] + l.var[idx].sqrt() * rng.normal_f32(0.0, 1.0);
                        acc += w * a;
                    }
                    *out_v = acc;
                }
                if li != last {
                    for v in &mut out {
                        *v = *v * *v + *v;
                    }
                }
                act = out;
            }
            for (j, &a) in act.iter().enumerate() {
                sum[j] += f64::from(a);
                sq[j] += f64::from(a) * f64::from(a);
            }
        }
        let n = samples as f64;
        let mean_out: Vec<f32> = sum.iter().map(|&s| (s / n) as f32).collect();
        let var_out: Vec<f32> = sum
            .iter()
            .zip(&sq)
            .map(|(&s, &q)| ((q / n) - (s / n) * (s / n)).max(0.0) as f32)
            .collect();
        (mean_out, var_out)
    }
}

/// BYNQNet's published platform numbers with a calibrated pipeline
/// model reproducing the published 24.22 GOP/s.
#[derive(Debug, Clone, PartialEq)]
pub struct BynqnetPerfModel {
    /// Clock in MHz (published).
    pub clock_mhz: f64,
    /// DSP blocks (published).
    pub dsps: u64,
    /// Power in watts (published).
    pub power_w: f64,
    /// Modelled parallel MAC lanes of the moment pipeline.
    pub mac_units: u64,
    /// Modelled sustained efficiency.
    pub efficiency: f64,
}

impl Default for BynqnetPerfModel {
    fn default() -> Self {
        // 64 MAC lanes at ~94.6% sustained ≈ 24.22 GOP/s at 200 MHz.
        BynqnetPerfModel {
            clock_mhz: 200.0,
            dsps: 220,
            power_w: 2.76,
            mac_units: 64,
            efficiency: 0.946,
        }
    }
}

impl BynqnetPerfModel {
    /// Sustained throughput in GOP/s.
    pub fn throughput_gops(&self) -> f64 {
        2.0 * self.mac_units as f64 * self.efficiency * self.clock_mhz / 1e3
    }

    /// Table IV row.
    pub fn summary(&self) -> AcceleratorSummary {
        AcceleratorSummary {
            name: "BYNQNet [10]".into(),
            fpga: "Zynq XC7Z020".into(),
            clock_mhz: self.clock_mhz,
            dsps: self.dsps,
            power_w: self.power_w,
            throughput_gops: self.throughput_gops(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_matches_published_value() {
        let m = BynqnetPerfModel::default();
        assert!(
            (m.throughput_gops() - 24.22).abs() < 0.3,
            "calibrated throughput {}",
            m.throughput_gops()
        );
    }

    #[test]
    fn published_efficiency_metrics() {
        let s = BynqnetPerfModel::default().summary();
        // Paper Table IV: 8.77 GOP/s/W, 0.121 GOP/s/DSP. Note the
        // paper's own figures are inconsistent: 24.22/220 = 0.110, so
        // their 0.121 divides by ~200 *used* DSPs. We divide by the
        // listed 220 and accept either convention here.
        assert!(
            (s.energy_efficiency() - 8.77).abs() < 0.3,
            "{}",
            s.energy_efficiency()
        );
        assert!(
            (s.compute_efficiency() - 0.121).abs() < 0.015,
            "{}",
            s.compute_efficiency()
        );
    }

    #[test]
    fn moment_propagation_matches_monte_carlo() {
        // With a deterministic input, the hidden pre-activations are
        // exactly Gaussian (weights are) and hidden units are
        // independent (disjoint weight rows), so the analytic moments
        // are exact up to Monte Carlo error.
        let net = BynqnetNetwork::new(&[6, 8, 4], 7);
        let mean = vec![0.3f32, -0.2, 0.1, 0.4, -0.1, 0.2];
        let var = vec![0.0f32; 6];
        let (am, av) = net.forward_moments(&mean, &var);
        let (mm, mv) = net.forward_mc(&mean, &var, 60_000, 11);
        for j in 0..4 {
            let scale = mm[j].abs().max(0.1);
            assert!(
                (am[j] - mm[j]).abs() / scale < 0.1,
                "mean[{j}]: analytic {} vs MC {}",
                am[j],
                mm[j]
            );
            let vscale = mv[j].max(0.001);
            assert!(
                (av[j] - mv[j]).abs() / vscale < 0.15,
                "var[{j}]: analytic {} vs MC {}",
                av[j],
                mv[j]
            );
        }
    }

    #[test]
    fn correlated_inputs_expose_diagonal_approximation() {
        // With shared input randomness the diagonal-covariance
        // assumption (which BYNQNet also makes) becomes visible: the
        // analytic variance diverges from MC. This documents the
        // approximation rather than hiding it.
        let net = BynqnetNetwork::new(&[6, 8, 4], 7);
        let mean = vec![0.3f32, -0.2, 0.1, 0.4, -0.1, 0.2];
        let var = vec![0.05f32; 6];
        let (_, av) = net.forward_moments(&mean, &var);
        let (_, mv) = net.forward_mc(&mean, &var, 40_000, 11);
        let rel: f32 = (0..4)
            .map(|j| (av[j] - mv[j]).abs() / mv[j].max(1e-3))
            .fold(0.0, f32::max);
        assert!(
            rel > 0.05,
            "expected a visible diagonal-approximation gap, got {rel}"
        );
    }

    #[test]
    fn zero_input_variance_with_zero_weight_variance_is_deterministic() {
        let mut net = BynqnetNetwork::new(&[4, 6, 3], 9);
        for l in &mut net.layers {
            for v in &mut l.var {
                *v = 0.0;
            }
        }
        let (_, v) = net.forward_moments(&[0.1, 0.2, 0.3, 0.4], &[0.0; 4]);
        assert!(v.iter().all(|&x| x.abs() < 1e-9), "no variance anywhere");
    }

    #[test]
    fn variance_grows_with_input_uncertainty() {
        let net = BynqnetNetwork::new(&[4, 6, 3], 13);
        let mean = vec![0.2f32; 4];
        let (_, v_small) = net.forward_moments(&mean, &[0.01; 4]);
        let (_, v_big) = net.forward_moments(&mean, &[0.5; 4]);
        let s: f32 = v_small.iter().sum();
        let b: f32 = v_big.iter().sum();
        assert!(b > s, "more input variance must yield more output variance");
    }

    #[test]
    fn macs_count_both_moment_paths() {
        let net = BynqnetNetwork::new(&[10, 5, 2], 1);
        assert_eq!(net.macs(), 2 * (50 + 10));
    }
}
