//! Roofline-style batch-1 latency models of the paper's CPU and GPU
//! baselines.
//!
//! The paper runs PyTorch at batch size 1. In that regime per-layer
//! framework overhead (op dispatch, kernel launch) dominates small
//! layers while arithmetic throughput and memory bandwidth bound the
//! large ones, so each layer costs
//!
//! ```text
//! t = overhead + max(2·MACs / eff_flops, bytes / mem_bw)
//! ```
//!
//! Constants are calibrated from public specifications and typical
//! batch-1 efficiencies, not fitted per table row (DESIGN.md). The
//! paper's GPU footnote — int8 estimated as fp32 performance ÷ 4 — is
//! reproduced by the `compute_speedup` field.

use bnn_mcd::BayesConfig;
use bnn_nn::arch::LayerDesc;

/// A batch-1 inference latency model for a general-purpose platform.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformModel {
    /// Platform name.
    pub name: String,
    /// Effective arithmetic throughput at batch 1, in GFLOP/s.
    pub eff_gflops: f64,
    /// Effective memory bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Per-layer framework overhead in microseconds.
    pub layer_overhead_us: f64,
    /// Bytes per weight/activation element (fp32 → 4).
    pub elem_bytes: f64,
    /// Uniform compute speedup applied to the arithmetic term
    /// (the paper's "int8 = fp32 ÷ 4" GPU estimate → 4.0).
    pub compute_speedup: f64,
}

impl PlatformModel {
    /// Intel Core i9-9900K running PyTorch fp32 at batch 1.
    ///
    /// 8 cores × AVX2 ≈ 460 GFLOP/s peak; batch-1 conv efficiency in
    /// PyTorch is ~6-8%, giving ~32 GFLOP/s effective; ~40 µs per op
    /// dispatch.
    pub fn i9_9900k() -> PlatformModel {
        PlatformModel {
            name: "Intel i9-9900K (PyTorch, batch 1)".into(),
            eff_gflops: 32.0,
            mem_bw_gbs: 25.0,
            layer_overhead_us: 40.0,
            elem_bytes: 4.0,
            compute_speedup: 1.0,
        }
    }

    /// NVIDIA RTX 2080 SUPER with the paper's int8 = fp32/4 estimate.
    ///
    /// 11.1 TFLOP/s peak fp32; batch-1 kernel efficiency ~3%, giving
    /// ~340 GFLOP/s effective; ~18 µs launch overhead per layer.
    pub fn rtx_2080_super() -> PlatformModel {
        PlatformModel {
            name: "RTX 2080 SUPER (estimated int8, batch 1)".into(),
            eff_gflops: 340.0,
            mem_bw_gbs: 300.0,
            layer_overhead_us: 18.0,
            elem_bytes: 4.0,
            compute_speedup: 4.0,
        }
    }

    /// Latency of one full forward pass in milliseconds.
    pub fn pass_latency_ms(&self, layers: &[LayerDesc]) -> f64 {
        let mut total_us = 0.0;
        for l in layers {
            let flops = 2.0 * l.macs() as f64;
            let compute_us = flops / (self.eff_gflops * self.compute_speedup) / 1e3;
            let bytes =
                (l.weight_bytes(1) + l.input_bytes(1) + l.output_bytes(1)) as f64 * self.elem_bytes;
            let mem_us = bytes / self.mem_bw_gbs / 1e3;
            total_us += self.layer_overhead_us + compute_us.max(mem_us);
        }
        total_us / 1e3
    }

    /// Latency of an `{L, S}` Bayesian prediction with *software*
    /// intermediate-layer caching: the deterministic prefix runs once,
    /// the Bayesian suffix `S` times.
    ///
    /// The paper's CPU/GPU baselines use the software IC of
    /// Stochastic-YOLO (ref. 5) — visible in Table III, where the CPU
    /// `{1,100}` latency is ~12 ms on all three networks regardless of
    /// size.
    pub fn bayes_latency_ms(&self, layers: &[LayerDesc], bayes: BayesConfig) -> f64 {
        let split = bnn_nn::arch::first_bayesian_layer(layers, bayes.l);
        let prefix = self.pass_latency_ms(&layers[..split]);
        let suffix = self.pass_latency_ms(&layers[split..]);
        prefix + suffix * bayes.s as f64
    }

    /// Latency of `S` full passes (no caching — naive PyTorch MCD).
    pub fn bayes_latency_no_ic_ms(&self, layers: &[LayerDesc], bayes: BayesConfig) -> f64 {
        self.pass_latency_ms(layers) * bayes.s as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_nn::arch::extract_layers;
    use bnn_nn::models;
    use bnn_tensor::Shape4;

    fn lenet_layers() -> Vec<LayerDesc> {
        extract_layers(&models::lenet5(10, 1, 28, 1), Shape4::new(1, 1, 28, 28))
    }

    #[test]
    fn lenet_cpu_latency_matches_paper_magnitude() {
        // Paper Table I, LeNet-5 {1,3}: CPU 0.67 ms.
        let cpu = PlatformModel::i9_9900k();
        let ms = cpu.bayes_latency_ms(&lenet_layers(), BayesConfig::new(1, 3));
        assert!((0.3..1.5).contains(&ms), "CPU LeNet {{1,3}} = {ms} ms");
    }

    #[test]
    fn lenet_gpu_latency_matches_paper_magnitude() {
        // Paper Table I, LeNet-5 {1,3}: GPU 0.24 ms.
        let gpu = PlatformModel::rtx_2080_super();
        let ms = gpu.bayes_latency_ms(&lenet_layers(), BayesConfig::new(1, 3));
        assert!((0.1..0.8).contains(&ms), "GPU LeNet {{1,3}} = {ms} ms");
    }

    #[test]
    fn gpu_faster_than_cpu_on_all_nets() {
        let cpu = PlatformModel::i9_9900k();
        let gpu = PlatformModel::rtx_2080_super();
        for layers in [
            lenet_layers(),
            extract_layers(&models::vgg11(10, 3, 32, 8, 1), Shape4::new(1, 3, 32, 32)),
            extract_layers(&models::resnet18(10, 3, 16, 1), Shape4::new(1, 3, 32, 32)),
        ] {
            let c = cpu.pass_latency_ms(&layers);
            let g = gpu.pass_latency_ms(&layers);
            assert!(g < c, "GPU ({g}) must beat CPU ({c})");
        }
    }

    #[test]
    fn no_ic_latency_linear_in_s() {
        let cpu = PlatformModel::i9_9900k();
        let layers = lenet_layers();
        let t1 = cpu.bayes_latency_no_ic_ms(&layers, BayesConfig::new(2, 1));
        let t10 = cpu.bayes_latency_no_ic_ms(&layers, BayesConfig::new(2, 10));
        assert!(
            (t10 / t1 - 10.0).abs() < 1e-9,
            "naive MCD scales linearly in S"
        );
    }

    #[test]
    fn software_ic_flattens_l1_latency_across_networks() {
        // Paper Table III: CPU {1,100} is ~12 ms for LeNet, VGG and
        // ResNet alike — the suffix (one FC layer) dominates, not the
        // network size.
        let cpu = PlatformModel::i9_9900k();
        let nets = [
            lenet_layers(),
            extract_layers(&models::vgg11(10, 3, 32, 8, 1), Shape4::new(1, 3, 32, 32)),
            extract_layers(&models::resnet18(10, 3, 16, 1), Shape4::new(1, 3, 32, 32)),
        ];
        let b = BayesConfig::new(1, 100);
        let ts: Vec<f64> = nets.iter().map(|l| cpu.bayes_latency_ms(l, b)).collect();
        let spread = ts.iter().cloned().fold(f64::MIN, f64::max)
            / ts.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 2.0, "L=1 latencies should be within 2x: {ts:?}");
    }

    #[test]
    fn software_ic_beats_naive() {
        let cpu = PlatformModel::i9_9900k();
        let layers = lenet_layers();
        let b = BayesConfig::new(1, 100);
        assert!(cpu.bayes_latency_ms(&layers, b) < cpu.bayes_latency_no_ic_ms(&layers, b));
    }

    #[test]
    fn overhead_dominates_small_networks() {
        // LeNet-5 at batch 1 is dispatch-bound: ~5 layers * 40 µs.
        let cpu = PlatformModel::i9_9900k();
        let ms = cpu.pass_latency_ms(&lenet_layers());
        let overhead_ms = 5.0 * 40.0 / 1e3;
        assert!(
            ms < overhead_ms * 2.0,
            "LeNet must be overhead-dominated: {ms}"
        );
    }
}
