//! Stage 2: algorithmic design-space exploration and mode selection.

use crate::modes::{OptMode, Requirements};
use crate::providers::MetricProvider;
use bnn_accel::{AccelConfig, PerfModel};
use bnn_mcd::BayesConfig;
use bnn_nn::arch::LayerDesc;
use bnn_platforms::PlatformModel;
use serde::{Deserialize, Serialize};

/// One evaluated `{L, S}` candidate (a point in Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidatePoint {
    /// Trailing Bayesian layers.
    pub l: usize,
    /// Monte Carlo samples.
    pub s: usize,
    /// FPGA latency with IC, in ms.
    pub fpga_ms: f64,
    /// FPGA latency without IC, in ms.
    pub fpga_no_ic_ms: f64,
    /// CPU latency (no IC), in ms.
    pub cpu_ms: f64,
    /// GPU latency (no IC), in ms.
    pub gpu_ms: f64,
    /// Test accuracy (0-1).
    pub accuracy: f64,
    /// aPE on noise, nats.
    pub ape: f64,
    /// ECE (0-1).
    pub ece: f64,
}

impl CandidatePoint {
    /// Whether the point satisfies the requirements (FPGA latency).
    pub fn feasible(&self, r: &Requirements) -> bool {
        r.max_latency_ms.map(|v| self.fpga_ms <= v).unwrap_or(true)
            && r.min_accuracy.map(|v| self.accuracy >= v).unwrap_or(true)
            && r.min_ape.map(|v| self.ape >= v).unwrap_or(true)
            && r.max_ece.map(|v| self.ece <= v).unwrap_or(true)
    }

    /// The objective value under a mode (always minimised).
    pub fn objective(&self, mode: OptMode) -> f64 {
        match mode {
            OptMode::Latency => self.fpga_ms,
            OptMode::Accuracy => -self.accuracy,
            OptMode::Uncertainty => -self.ape,
            OptMode::Confidence => self.ece,
        }
    }
}

/// Result of an exploration: all candidates plus the selected point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplorationResult {
    /// Hardware configuration the sweep assumed.
    pub config: AccelConfig,
    /// Every evaluated candidate.
    pub candidates: Vec<CandidatePoint>,
    /// The mode-optimal feasible candidate, if any.
    pub selected: Option<CandidatePoint>,
}

/// The algorithmic explorer for one network/workload.
#[derive(Debug)]
pub struct Explorer {
    perf: PerfModel,
    layers: Vec<LayerDesc>,
    n_sites: usize,
    cpu: PlatformModel,
    gpu: PlatformModel,
    l_domain: Vec<usize>,
    s_domain: Vec<usize>,
}

impl Explorer {
    /// Create an explorer with the paper's `L`/`S` domains.
    pub fn new(cfg: AccelConfig, layers: Vec<LayerDesc>, n_sites: usize) -> Explorer {
        Explorer {
            perf: PerfModel::new(cfg),
            layers,
            n_sites,
            cpu: PlatformModel::i9_9900k(),
            gpu: PlatformModel::rtx_2080_super(),
            l_domain: BayesConfig::l_domain(n_sites),
            s_domain: BayesConfig::s_domain().to_vec(),
        }
    }

    /// Override the `{L}` domain (tests, ablations).
    pub fn with_l_domain(mut self, ls: Vec<usize>) -> Explorer {
        self.l_domain = ls;
        self
    }

    /// Override the `{S}` domain.
    pub fn with_s_domain(mut self, ss: Vec<usize>) -> Explorer {
        self.s_domain = ss;
        self
    }

    /// The number of MCD sites of the workload.
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Evaluate one `{L, S}` point.
    pub fn evaluate(
        &self,
        provider: &mut dyn MetricProvider,
        l: usize,
        s: usize,
    ) -> CandidatePoint {
        let bayes = BayesConfig::new(l, s);
        let cfg = self.perf.config();
        let fpga = self
            .perf
            .network_timing(&self.layers, bayes, true)
            .latency_ms(cfg);
        let fpga_no_ic = self
            .perf
            .network_timing(&self.layers, bayes, false)
            .latency_ms(cfg);
        let cpu = self.cpu.bayes_latency_ms(&self.layers, bayes);
        let gpu = self.gpu.bayes_latency_ms(&self.layers, bayes);
        let q = provider.metrics(l, s);
        CandidatePoint {
            l,
            s,
            fpga_ms: fpga,
            fpga_no_ic_ms: fpga_no_ic,
            cpu_ms: cpu,
            gpu_ms: gpu,
            accuracy: q.accuracy,
            ape: q.ape,
            ece: q.ece,
        }
    }

    /// Sweep the full `L × S` grid.
    pub fn candidates(&self, provider: &mut dyn MetricProvider) -> Vec<CandidatePoint> {
        let mut out = Vec::with_capacity(self.l_domain.len() * self.s_domain.len());
        for &l in &self.l_domain {
            for &s in &self.s_domain {
                out.push(self.evaluate(provider, l, s));
            }
        }
        out
    }

    /// Full exploration: sweep, filter by requirements, select by mode.
    pub fn explore(
        &self,
        provider: &mut dyn MetricProvider,
        mode: OptMode,
        requirements: &Requirements,
    ) -> ExplorationResult {
        let candidates = self.candidates(provider);
        let selected = select(&candidates, mode, requirements);
        ExplorationResult {
            config: *self.perf.config(),
            candidates,
            selected,
        }
    }
}

/// Filter by requirements and pick the mode-optimal candidate.
pub fn select(
    candidates: &[CandidatePoint],
    mode: OptMode,
    requirements: &Requirements,
) -> Option<CandidatePoint> {
    candidates
        .iter()
        .filter(|c| c.feasible(requirements))
        .min_by(|a, b| {
            a.objective(mode)
                .partial_cmp(&b.objective(mode))
                .expect("objectives are finite")
        })
        .copied()
}

/// Extract the Pareto front over a set of (minimised) objectives:
/// candidates not dominated by any other candidate. A dominates B if A
/// is no worse on every objective and strictly better on at least one.
///
/// Useful beyond the paper's single-mode selection: the front is the
/// complete menu of rational `{L, S}` choices a user could pick from.
pub fn pareto_front(candidates: &[CandidatePoint], modes: &[OptMode]) -> Vec<CandidatePoint> {
    assert!(!modes.is_empty(), "at least one objective required");
    let dominates = |a: &CandidatePoint, b: &CandidatePoint| -> bool {
        let mut strictly = false;
        for &m in modes {
            let (oa, ob) = (a.objective(m), b.objective(m));
            if oa > ob + 1e-15 {
                return false;
            }
            if oa < ob - 1e-15 {
                strictly = true;
            }
        }
        strictly
    };
    candidates
        .iter()
        .filter(|c| !candidates.iter().any(|other| dominates(other, c)))
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::providers::SyntheticMetricProvider;
    use bnn_nn::{arch::extract_layers, models};
    use bnn_tensor::Shape4;

    fn explorer() -> Explorer {
        let net = models::resnet18(10, 3, 8, 1);
        let layers = extract_layers(&net, Shape4::new(1, 3, 32, 32));
        Explorer::new(AccelConfig::paper_default(), layers, net.n_sites())
    }

    #[test]
    fn grid_covers_l_times_s() {
        let e = explorer();
        let mut p = SyntheticMetricProvider::resnet18();
        let c = e.candidates(&mut p);
        assert_eq!(c.len(), 5 * 11, "5 L values x 11 S values");
    }

    #[test]
    fn opt_latency_selects_min_l_min_s() {
        let e = explorer();
        let mut p = SyntheticMetricProvider::resnet18();
        let r = e.explore(&mut p, OptMode::Latency, &Requirements::none());
        let sel = r.selected.expect("unconstrained selection exists");
        assert_eq!(
            (sel.l, sel.s),
            (1, 3),
            "paper Table I: Opt-Latency picks {{1, 3}}"
        );
    }

    #[test]
    fn opt_uncertainty_prefers_large_l_and_s() {
        let e = explorer();
        let mut p = SyntheticMetricProvider::resnet18();
        let r = e.explore(&mut p, OptMode::Uncertainty, &Requirements::none());
        let sel = r.selected.expect("selection exists");
        assert_eq!(sel.s, 100, "uncertainty wants the most samples");
        assert!(
            sel.l >= 12,
            "uncertainty wants many Bayesian layers, got {}",
            sel.l
        );
    }

    #[test]
    fn constraints_filter_candidates() {
        let e = explorer();
        let mut p = SyntheticMetricProvider::resnet18();
        // A tight latency bound forces a small-S pick even in
        // Opt-Uncertainty mode.
        let unconstrained = e
            .explore(&mut p, OptMode::Uncertainty, &Requirements::none())
            .selected
            .expect("exists");
        let tight = Requirements {
            max_latency_ms: Some(2.0),
            ..Requirements::none()
        };
        let constrained = e
            .explore(&mut p, OptMode::Uncertainty, &tight)
            .selected
            .expect("exists");
        assert!(constrained.fpga_ms <= 2.0);
        assert!(constrained.ape <= unconstrained.ape);
    }

    #[test]
    fn infeasible_constraints_yield_none() {
        let e = explorer();
        let mut p = SyntheticMetricProvider::resnet18();
        let impossible = Requirements {
            max_latency_ms: Some(0.0001),
            min_accuracy: Some(0.9999),
            ..Requirements::none()
        };
        let r = e.explore(&mut p, OptMode::Confidence, &impossible);
        assert!(r.selected.is_none());
    }

    #[test]
    fn selected_point_is_feasible_and_optimal() {
        let e = explorer();
        let mut p = SyntheticMetricProvider::resnet18();
        let req = Requirements {
            max_latency_ms: Some(40.0),
            min_ape: Some(0.4),
            min_accuracy: Some(0.90),
            ..Requirements::none()
        };
        let r = e.explore(&mut p, OptMode::Confidence, &req);
        let sel = r.selected.expect("feasible space is non-empty");
        assert!(sel.feasible(&req));
        for c in r.candidates.iter().filter(|c| c.feasible(&req)) {
            assert!(sel.ece <= c.ece + 1e-12, "selected must minimise ECE");
        }
    }

    #[test]
    fn pareto_front_contains_all_mode_optima() {
        let e = explorer();
        let mut p = SyntheticMetricProvider::resnet18();
        let cands = e.candidates(&mut p);
        let modes = OptMode::all();
        let front = pareto_front(&cands, &modes);
        assert!(!front.is_empty() && front.len() <= cands.len());
        for mode in modes {
            let best = select(&cands, mode, &Requirements::none()).expect("non-empty");
            assert!(
                front.iter().any(|c| (c.l, c.s) == (best.l, best.s)),
                "{} optimum must lie on the front",
                mode.label()
            );
        }
    }

    #[test]
    fn pareto_front_points_are_mutually_nondominated() {
        let e = explorer();
        let mut p = SyntheticMetricProvider::resnet18();
        let cands = e.candidates(&mut p);
        let modes = [OptMode::Latency, OptMode::Uncertainty];
        let front = pareto_front(&cands, &modes);
        for a in &front {
            for b in &front {
                let better_everywhere = modes
                    .iter()
                    .all(|&m| a.objective(m) < b.objective(m) - 1e-15);
                assert!(!better_everywhere, "front contains a dominated point");
            }
        }
    }

    #[test]
    fn ic_always_at_least_as_fast() {
        let e = explorer();
        let mut p = SyntheticMetricProvider::resnet18();
        for c in e.candidates(&mut p) {
            assert!(c.fpga_ms <= c.fpga_no_ic_ms + 1e-12);
        }
    }
}
