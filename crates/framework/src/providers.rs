//! Quality-metric providers for the algorithmic exploration stage.

use bnn_data::{gaussian_noise_like, Dataset};
use bnn_mcd::{
    accuracy, avg_predictive_entropy, ece, mean_probs, sample_probs_on, BayesConfig, FloatBackend,
    ParallelConfig, SoftwareMaskSource,
};
use bnn_nn::{models, Graph, SgdConfig, Trainer};
use bnn_tensor::{Shape4, Tensor};
use std::collections::HashMap;

/// Quality metrics of one `{L, S}` configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityMetrics {
    /// Test accuracy (0-1).
    pub accuracy: f64,
    /// Average predictive entropy on Gaussian noise, in nats.
    pub ape: f64,
    /// Expected calibration error (0-1, 10 bins).
    pub ece: f64,
}

/// Source of quality metrics for `{L, S}` points.
pub trait MetricProvider {
    /// Metrics of the configuration (implementations may train/evaluate
    /// lazily and cache).
    fn metrics(&mut self, l: usize, s: usize) -> QualityMetrics;
}

/// Closed-form trend model calibrated to the paper's Table I, for fast
/// demos and framework tests.
///
/// Shapes encoded (all observed in the paper's results):
/// * accuracy rises with `S` and saturates; moderately-Bayesian
///   configurations peak;
/// * aPE grows with both `L` and `S` (more Bayesian layers and more
///   samples → more expressive uncertainty);
/// * ECE falls with `S` and is best at intermediate-to-large `L`.
#[derive(Debug, Clone)]
pub struct SyntheticMetricProvider {
    n: usize,
    base_acc: f64,
    acc_gain: f64,
    ape_max: f64,
    ece_base: f64,
}

impl SyntheticMetricProvider {
    /// Trend model for LeNet-5 on MNIST-like data.
    pub fn lenet5() -> SyntheticMetricProvider {
        SyntheticMetricProvider {
            n: 5,
            base_acc: 0.9920,
            acc_gain: 0.0015,
            ape_max: 1.1,
            ece_base: 0.01,
        }
    }

    /// Trend model for VGG-11 on SVHN-like data.
    pub fn vgg11() -> SyntheticMetricProvider {
        SyntheticMetricProvider {
            n: 11,
            base_acc: 0.952,
            acc_gain: 0.012,
            ape_max: 2.0,
            ece_base: 0.03,
        }
    }

    /// Trend model for ResNet-18 on CIFAR-like data.
    pub fn resnet18() -> SyntheticMetricProvider {
        SyntheticMetricProvider {
            n: 18,
            base_acc: 0.925,
            acc_gain: 0.004,
            ape_max: 1.3,
            ece_base: 0.05,
        }
    }
}

impl MetricProvider for SyntheticMetricProvider {
    fn metrics(&mut self, l: usize, s: usize) -> QualityMetrics {
        let lf = (l.min(self.n)) as f64 / self.n as f64;
        let sf = 1.0 - (-((s as f64) / 8.0)).exp();
        // Accuracy: saturating gain in S; gentle penalty for extreme L
        // (fully-Bayesian nets lose a little accuracy, as in Table I's
        // ResNet rows).
        let acc = self.base_acc + self.acc_gain * sf * (1.0 - 0.55 * (lf - 0.45).abs());
        // aPE: grows with both L and S.
        let ape = self.ape_max * lf.powf(0.7) * (0.35 + 0.65 * sf);
        // ECE: improves with S; best near 2/3 N.
        let ece = (self.ece_base * (1.6 - sf) * (1.0 + 1.8 * (lf - 0.66).powi(2))).max(0.001);
        QualityMetrics {
            accuracy: acc,
            ape,
            ece,
        }
    }
}

/// Which of the paper's evaluation networks to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetKind {
    /// LeNet-5 (MNIST-like, 1×28×28).
    LeNet5,
    /// Channel-reduced VGG-11 (SVHN-like, 3×32×32).
    Vgg11,
    /// Channel-reduced ResNet-18 (CIFAR-like, 3×32×32).
    ResNet18,
}

impl NetKind {
    /// Build the network for this kind.
    pub fn build(&self, seed: u64) -> Graph {
        match self {
            NetKind::LeNet5 => models::lenet5(10, 1, 28, seed),
            NetKind::Vgg11 => models::vgg11(10, 3, 32, 8, seed),
            NetKind::ResNet18 => models::resnet18(10, 3, 8, seed),
        }
    }

    /// Per-network SGD hyper-parameters: the deeper stacks diverge at
    /// LeNet's 0.05 learning rate (verified empirically — VGG-11
    /// reaches 82 % test accuracy at 0.02 and 11 % at 0.05).
    pub fn sgd_config(&self) -> SgdConfig {
        match self {
            NetKind::LeNet5 => SgdConfig {
                lr: 0.05,
                momentum: 0.9,
                weight_decay: 5e-4,
            },
            NetKind::Vgg11 | NetKind::ResNet18 => SgdConfig {
                lr: 0.02,
                momentum: 0.9,
                weight_decay: 5e-4,
            },
        }
    }
}

/// Training/evaluation budget of the trained provider (kept small so
/// the benchmark harness completes on a laptop; scale up via the
/// environment for full runs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingBudget {
    /// Training epochs per `L` configuration.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Test images evaluated.
    pub test_n: usize,
    /// OOD noise images evaluated.
    pub noise_n: usize,
    /// Largest `S` evaluated (smaller `S` reuse the cached passes).
    pub s_max: usize,
}

impl Default for TrainingBudget {
    fn default() -> Self {
        TrainingBudget {
            epochs: 3,
            batch: 32,
            test_n: 128,
            noise_n: 64,
            s_max: 100,
        }
    }
}

struct CachedEval {
    /// Per-pass softmax probabilities on the test set.
    test_passes: Vec<Tensor>,
    /// Per-pass softmax probabilities on the noise set.
    noise_passes: Vec<Tensor>,
    test_labels: Vec<usize>,
}

/// The honest metric provider: trains the network per `L` (MCD active
/// in training, as the paper does) and evaluates all `S` values from
/// one set of cached Monte Carlo passes.
pub struct TrainedMetricProvider {
    kind: NetKind,
    dataset: Dataset,
    budget: TrainingBudget,
    seed: u64,
    cache: HashMap<usize, CachedEval>,
}

impl std::fmt::Debug for TrainedMetricProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedMetricProvider")
            .field("kind", &self.kind)
            .field("budget", &self.budget)
            .field("cached_l", &self.cache.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl TrainedMetricProvider {
    /// Create a provider over a dataset.
    pub fn new(
        kind: NetKind,
        dataset: Dataset,
        budget: TrainingBudget,
        seed: u64,
    ) -> TrainedMetricProvider {
        TrainedMetricProvider {
            kind,
            dataset,
            budget,
            seed,
            cache: HashMap::new(),
        }
    }

    fn ensure_l(&mut self, l: usize) {
        if self.cache.contains_key(&l) {
            return;
        }
        let b = self.budget;
        let mut net = self.kind.build(self.seed ^ ((l as u64) << 8));
        let mut trainer = Trainer::new(
            &net,
            self.kind.sgd_config(),
            l,
            0.25,
            self.seed.wrapping_add(l as u64),
        );
        for _ in 0..b.epochs {
            let _ = trainer.train_epoch(
                &mut net,
                &self.dataset.train_x,
                &self.dataset.train_y,
                b.batch,
            );
        }

        // Evaluate: cache per-pass probabilities once at s_max; every
        // smaller S is a prefix average (the paper's S sweep).
        let test_n = b.test_n.min(self.dataset.test_x.shape().n);
        let test_x = subset(&self.dataset.test_x, test_n);
        let test_labels = self.dataset.test_y[..test_n].to_vec();
        let noise = gaussian_noise_like(&self.dataset, b.noise_n, self.seed ^ 0xDEAD);

        // The generic engine over the float backend: the same sampling
        // path `Session` serves, so framework metrics and served
        // predictions cannot drift apart.
        let cfg = BayesConfig::new(l, b.s_max);
        let mut backend = FloatBackend::new(&net);
        let parallel = ParallelConfig::max_parallel();
        let mut src = SoftwareMaskSource::new(self.seed ^ 0xBEEF ^ l as u64);
        let test_passes = sample_probs_on(&mut backend, &test_x, cfg, &mut src, parallel);
        let noise_passes = sample_probs_on(&mut backend, &noise, cfg, &mut src, parallel);

        self.cache.insert(
            l,
            CachedEval {
                test_passes,
                noise_passes,
                test_labels,
            },
        );
    }
}

fn subset(xs: &Tensor, n: usize) -> Tensor {
    let s = xs.shape();
    let mut out = Tensor::zeros(Shape4::new(n, s.c, s.h, s.w));
    for i in 0..n {
        out.item_mut(i).copy_from_slice(xs.item(i));
    }
    out
}

impl MetricProvider for TrainedMetricProvider {
    fn metrics(&mut self, l: usize, s: usize) -> QualityMetrics {
        self.ensure_l(l);
        let c = &self.cache[&l];
        let s = s.min(c.test_passes.len());
        let test_probs = mean_probs(&c.test_passes, s);
        let noise_probs = mean_probs(&c.noise_passes, s);
        QualityMetrics {
            accuracy: accuracy(&test_probs, &c.test_labels),
            ape: avg_predictive_entropy(&noise_probs),
            ece: ece(&test_probs, &c.test_labels, 10).ece,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_trends_match_paper_shapes() {
        let mut p = SyntheticMetricProvider::resnet18();
        // aPE grows with L at fixed S.
        let a1 = p.metrics(1, 50).ape;
        let a9 = p.metrics(9, 50).ape;
        let a18 = p.metrics(18, 50).ape;
        assert!(a1 < a9 && a9 < a18, "aPE must grow with L: {a1} {a9} {a18}");
        // aPE grows with S at fixed L.
        assert!(p.metrics(9, 3).ape < p.metrics(9, 100).ape);
        // ECE falls with S.
        assert!(p.metrics(12, 100).ece < p.metrics(12, 3).ece);
        // Accuracy in a plausible band.
        let acc = p.metrics(1, 8).accuracy;
        assert!((0.9..1.0).contains(&acc));
    }

    #[test]
    fn trained_provider_produces_sane_metrics() {
        // Tiny budget: the point is plumbing, not accuracy.
        let ds = bnn_data::synth_mnist(96, 32, 5);
        let mut p = TrainedMetricProvider::new(
            NetKind::LeNet5,
            ds,
            TrainingBudget {
                epochs: 1,
                batch: 16,
                test_n: 16,
                noise_n: 8,
                s_max: 4,
            },
            7,
        );
        let m = p.metrics(2, 3);
        assert!((0.0..=1.0).contains(&m.accuracy));
        assert!((0.0..=10f64.ln() + 0.01).contains(&m.ape));
        assert!((0.0..=1.0).contains(&m.ece));
        // Second call hits the cache (same result).
        let m2 = p.metrics(2, 3);
        assert_eq!(m.accuracy, m2.accuracy);
    }

    #[test]
    fn netkind_builders_have_paper_site_counts() {
        assert_eq!(NetKind::LeNet5.build(1).n_sites(), 5);
        assert_eq!(NetKind::Vgg11.build(1).n_sites(), 11);
        assert_eq!(NetKind::ResNet18.build(1).n_sites(), 18);
    }
}
