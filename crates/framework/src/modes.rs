//! Optimization modes and user requirements.

use serde::{Deserialize, Serialize};

/// The paper's four optimization modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptMode {
    /// Minimise prediction latency (`Opt-Latency`).
    Latency,
    /// Maximise test accuracy (`Opt-Accuracy`).
    Accuracy,
    /// Maximise average predictive entropy on OOD noise
    /// (`Opt-Uncertainty`).
    Uncertainty,
    /// Minimise expected calibration error (`Opt-Confidence`).
    Confidence,
}

impl OptMode {
    /// All four modes, in the paper's order.
    pub fn all() -> [OptMode; 4] {
        [
            OptMode::Latency,
            OptMode::Accuracy,
            OptMode::Uncertainty,
            OptMode::Confidence,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            OptMode::Latency => "Opt-Latency",
            OptMode::Accuracy => "Opt-Accuracy",
            OptMode::Uncertainty => "Opt-Uncertainty",
            OptMode::Confidence => "Opt-Confidence",
        }
    }
}

/// Minimal metric requirements (the paper's constraint box in Fig. 6).
/// `None` disables a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Requirements {
    /// Upper bound on latency in milliseconds.
    pub max_latency_ms: Option<f64>,
    /// Lower bound on accuracy (fraction, 0-1).
    pub min_accuracy: Option<f64>,
    /// Lower bound on aPE in nats.
    pub min_ape: Option<f64>,
    /// Upper bound on ECE (fraction, 0-1).
    pub max_ece: Option<f64>,
}

impl Requirements {
    /// No constraints.
    pub fn none() -> Requirements {
        Requirements::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(OptMode::Latency.label(), "Opt-Latency");
        assert_eq!(OptMode::all().len(), 4);
    }

    #[test]
    fn default_requirements_unconstrained() {
        let r = Requirements::none();
        assert!(r.max_latency_ms.is_none() && r.min_accuracy.is_none());
    }
}
