//! The paper's automatic optimization framework (Section IV, Figure 5).
//!
//! Given user inputs — hardware constraints, an optimization mode and
//! minimal metric requirements — the framework runs two greedy stages:
//!
//! 1. **Hardware optimization** ([`optimize_hardware`]): pick the
//!    maximum parallelism `(P_C, P_F, P_V)` whose estimated resource
//!    usage fits the device, using the `bnn-accel` resource model.
//! 2. **Algorithmic optimization** ([`Explorer`]): sweep the partial
//!    Bayesian configurations `L × S`, read latency from the
//!    performance model (the paper's "performance lookup table") and
//!    quality metrics (accuracy, aPE, ECE) from software evaluation,
//!    filter by the requirements and select by mode.
//!
//! Quality metrics come from a [`MetricProvider`]:
//! [`TrainedMetricProvider`] trains and evaluates real networks on the
//! synthetic datasets (the honest, slower path used by the benchmark
//! harness), while [`SyntheticMetricProvider`] is a closed-form trend
//! model calibrated to the paper's Table I for fast exploration demos.
//!
//! # Example
//!
//! ```
//! use bnn_framework::{
//!     optimize_hardware, Explorer, OptMode, Requirements, SyntheticMetricProvider,
//! };
//! use bnn_accel::FpgaDevice;
//! use bnn_nn::{arch::extract_layers, models};
//! use bnn_tensor::Shape4;
//!
//! let net = models::lenet5(10, 1, 28, 1);
//! let layers = extract_layers(&net, Shape4::new(1, 1, 28, 28));
//! let cfg = optimize_hardware(&FpgaDevice::arria10_sx660(), &[&layers]);
//! let explorer = Explorer::new(cfg, layers, net.n_sites());
//! let mut provider = SyntheticMetricProvider::lenet5();
//! let result = explorer.explore(&mut provider, OptMode::Latency, &Requirements::none());
//! assert!(result.selected.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explore;
mod hw_opt;
mod modes;
mod providers;

pub use explore::{pareto_front, select, CandidatePoint, ExplorationResult, Explorer};
pub use hw_opt::optimize_hardware;
pub use modes::{OptMode, Requirements};
pub use providers::{
    MetricProvider, NetKind, QualityMetrics, SyntheticMetricProvider, TrainedMetricProvider,
    TrainingBudget,
};
