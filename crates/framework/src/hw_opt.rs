//! Stage 1: greedy hardware optimization.

use bnn_accel::{AccelConfig, FpgaDevice, PerfModel, ResourceModel};
use bnn_mcd::BayesConfig;
use bnn_nn::arch::LayerDesc;

/// Pick the highest-parallelism configuration that fits the device for
/// every workload (the paper's "determines the maximum parallelism
/// level implementable on the target hardware").
///
/// Ties on multiplier count are broken by the lower summed latency of
/// one full pass over all workloads — a balanced `(P_C, P_F)` split
/// usually wins because real layers rarely saturate an extreme one.
pub fn optimize_hardware(device: &FpgaDevice, workloads: &[&[LayerDesc]]) -> AccelConfig {
    let model = ResourceModel::new(device.clone());
    let mut best: Option<(AccelConfig, usize, u64)> = None;
    for cfg in AccelConfig::design_space() {
        let (_, fits) = model.check(&cfg, workloads);
        if !fits {
            continue;
        }
        let mults = cfg.multipliers();
        let perf = PerfModel::new(cfg);
        let lat: u64 = workloads
            .iter()
            .map(|ls| {
                let n = ls.iter().filter_map(|l| l.input_site).count().max(1);
                perf.network_timing(ls, BayesConfig::new(n, 1), true)
                    .total_cycles
            })
            .sum();
        let better = match &best {
            None => true,
            Some((_, bm, bl)) => mults > *bm || (mults == *bm && lat < *bl),
        };
        if better {
            best = Some((cfg, mults, lat));
        }
    }
    best.map(|(c, _, _)| c)
        .expect("the smallest design-space point always fits")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_nn::arch::extract_layers;
    use bnn_nn::models;
    use bnn_tensor::Shape4;

    fn workload() -> Vec<LayerDesc> {
        extract_layers(&models::resnet18(10, 3, 16, 1), Shape4::new(1, 3, 32, 32))
    }

    #[test]
    fn arria10_yields_large_parallelism() {
        let wl = workload();
        let cfg = optimize_hardware(&FpgaDevice::arria10_sx660(), &[&wl]);
        // The paper lands on 64x64x1 = 4096 multipliers; the greedy
        // stage must reach at least that scale on the same device.
        assert!(cfg.multipliers() >= 4096, "got {:?}", cfg);
    }

    #[test]
    fn small_device_yields_small_parallelism() {
        let wl = workload();
        let big = optimize_hardware(&FpgaDevice::arria10_sx660(), &[&wl]);
        let small = optimize_hardware(&FpgaDevice::zynq_7020(), &[&wl]);
        assert!(small.multipliers() < big.multipliers());
        // And it must actually fit.
        let model = ResourceModel::new(FpgaDevice::zynq_7020());
        let (_, fits) = model.check(&small, &[&wl]);
        assert!(fits);
    }

    #[test]
    fn selected_config_fits_device() {
        let wl = workload();
        for dev in [FpgaDevice::arria10_sx660(), FpgaDevice::cyclone_v()] {
            let cfg = optimize_hardware(&dev, &[&wl]);
            let model = ResourceModel::new(dev);
            let (_, fits) = model.check(&cfg, &[&wl]);
            assert!(fits);
        }
    }
}
