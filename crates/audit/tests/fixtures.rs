//! Fixture suite for the auditor: positive/negative cases per rule,
//! waiver semantics, lexer correctness (banned tokens inside string
//! literals and comments must *not* flag), and a self-check that the
//! live workspace passes clean.
//!
//! Fixtures are in-memory `(path, source)` pairs driven through
//! [`bnn_audit::audit_sources`] — the same engine the binary uses
//! after its filesystem walk. Every banned token below lives inside a
//! raw string, so the auditor scanning *this* file sees only blanks.

use bnn_audit::{audit_sources, AuditReport};

fn run(files: &[(&str, &str)]) -> AuditReport {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    audit_sources(&sources)
}

fn rule_hits(report: &AuditReport, rule: &str) -> Vec<usize> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

/// A minimal clean crate roof, used as filler where a test needs a
/// file that passes every roof rule.
const CLEAN_ROOF: &str = r#"//! Docs.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
"#;

// ---------------------------------------------------------------- unsafe-audit

#[test]
fn unsafe_outside_allowlist_is_flagged() {
    let report = run(&[(
        "crates/tensor/src/kernels.rs",
        r#"fn f(p: *const f32) -> f32 { unsafe { *p } }"#,
    )]);
    assert_eq!(rule_hits(&report, "unsafe-audit"), vec![1]);
}

#[test]
fn unsafe_in_pool_with_safety_comment_passes() {
    let report = run(&[(
        "crates/mcd/src/pool.rs",
        r#"fn erase(job: Box<dyn FnOnce()>) -> Job {
    // SAFETY: completion-before-return keeps the borrow live.
    unsafe { std::mem::transmute(job) }
}
"#,
    )]);
    assert_eq!(rule_hits(&report, "unsafe-audit"), Vec::<usize>::new());
}

#[test]
fn unsafe_in_pool_without_safety_comment_is_flagged() {
    let report = run(&[(
        "crates/mcd/src/pool.rs",
        r#"fn erase(job: Box<dyn FnOnce()>) -> Job {
    unsafe { std::mem::transmute(job) }
}
"#,
    )]);
    assert_eq!(rule_hits(&report, "unsafe-audit"), vec![2]);
}

#[test]
fn safety_comment_may_sit_above_attributes() {
    let report = run(&[(
        "crates/mcd/src/pool.rs",
        r#"// SAFETY: the attribute between comment and use is fine.
#[allow(unsafe_code)]
unsafe fn erase() {}
"#,
    )]);
    assert_eq!(rule_hits(&report, "unsafe-audit"), Vec::<usize>::new());
}

#[test]
fn crate_roof_without_unsafe_lint_is_flagged() {
    let report = run(&[(
        "crates/tensor/src/lib.rs",
        "//! Docs.\n#![warn(missing_docs)]\n",
    )]);
    assert_eq!(rule_hits(&report, "unsafe-audit"), vec![1]);

    let clean = run(&[("crates/tensor/src/lib.rs", CLEAN_ROOF)]);
    assert!(clean.is_clean(), "{}", clean.render_text());
}

// ---------------------------------------------------------------- determinism

#[test]
fn hashmap_in_engine_crate_is_flagged_but_not_elsewhere() {
    let bad = run(&[(
        "crates/nn/src/graph.rs",
        r#"use std::collections::HashMap;
fn f() { let m: HashMap<u32, u32> = HashMap::new(); }
"#,
    )]);
    // One finding per token per line (two `HashMap` uses on line 2
    // collapse into one diagnostic).
    assert_eq!(bad.finding_count("determinism"), 2);

    // `framework` is outside the engine scope: HashMaps are fine.
    let ok = run(&[(
        "crates/framework/src/providers.rs",
        r#"use std::collections::HashMap;"#,
    )]);
    assert!(ok.is_clean(), "{}", ok.render_text());
}

#[test]
fn wall_clock_flagged_in_deterministic_mcd_but_not_chaos_or_pool() {
    let bad = run(&[(
        "crates/mcd/src/backend.rs",
        r#"fn f() { let t = std::time::Instant::now(); }"#,
    )]);
    assert_eq!(rule_hits(&bad, "determinism"), vec![1]);

    let ok = run(&[
        (
            "crates/mcd/src/chaos.rs",
            r#"fn f() { let t = std::time::Instant::now(); }"#,
        ),
        (
            "crates/mcd/src/pool.rs",
            r#"fn f() { let t = std::time::Instant::now(); }"#,
        ),
    ]);
    assert!(ok.is_clean(), "{}", ok.render_text());
}

#[test]
fn banned_tokens_inside_literals_and_comments_do_not_flag() {
    // Lexer correctness: every occurrence is comment or literal text.
    let report = run(&[(
        "crates/tensor/src/lib.rs",
        r##"//! Docs mention HashMap and Instant::now freely.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
// A comment about thread_rng and SystemTime.
/* block comment: HashMap unsafe panic! */
const MSG: &str = "HashMap and unsafe and .unwrap() in a string";
const RAW: &str = r#"Instant::now and thread::spawn in a raw string"#;
const CH: char = 'u'; // not the start of `unsafe`
fn lifetime<'unsafe_free>(x: &'unsafe_free u32) -> u32 { *x }
"##,
    )]);
    assert!(report.is_clean(), "{}", report.render_text());
}

#[test]
fn cfg_test_modules_are_exempt_from_determinism() {
    let report = run(&[(
        "crates/rng/src/lib.rs",
        r#"//! Docs.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#[cfg(test)]
mod tests {
    #[test]
    fn timing() { let _ = std::time::Instant::now(); }
}
"#,
    )]);
    assert!(report.is_clean(), "{}", report.render_text());
}

// ---------------------------------------------------------------- concurrency

#[test]
fn thread_spawn_in_library_code_is_flagged() {
    let report = run(&[(
        "crates/quant/src/exec.rs",
        r#"fn f() { std::thread::spawn(|| {}); }"#,
    )]);
    assert_eq!(rule_hits(&report, "concurrency"), vec![1]);
}

#[test]
fn thread_spawn_in_tests_and_examples_is_allowed() {
    let report = run(&[
        (
            "crates/serve/tests/stress.rs",
            r#"fn f() { std::thread::spawn(|| {}); }"#,
        ),
        (
            "examples/quickstart.rs",
            r#"fn f() { std::thread::scope(|_| {}); }"#,
        ),
        (
            "crates/mcd/src/pool.rs",
            r#"fn f() { std::thread::Builder::new(); }"#,
        ),
    ]);
    assert!(report.is_clean(), "{}", report.render_text());
}

#[test]
fn lock_unwrap_needs_poisoning_policy_comment() {
    let bad = run(&[(
        "crates/serve/src/lib.rs",
        r#"//! Docs.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
fn f(m: &std::sync::Mutex<u32>) { let _ = m.lock().unwrap(); }
"#,
    )]);
    // Both the missing policy comment and the panic rule fire here.
    assert_eq!(rule_hits(&bad, "concurrency"), vec![4]);

    let ok = run(&[(
        "crates/mcd/src/pool.rs",
        r#"// Poisoning policy: state is consistent, propagate anyway.
fn f(m: &std::sync::Mutex<u32>) { let _ = m.lock().unwrap(); }
"#,
    )]);
    assert_eq!(rule_hits(&ok, "concurrency"), Vec::<usize>::new());
}

// ---------------------------------------------------------------- panic

#[test]
fn panic_constructs_on_dispatcher_paths_are_flagged() {
    let report = run(&[(
        "crates/serve/src/lib.rs",
        r#"//! Docs.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
fn a(x: Option<u32>) -> u32 { x.unwrap() }
fn b(x: Option<u32>) -> u32 { x.expect("present") }
fn c() { panic!("boom"); }
fn d(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }
"#,
    )]);
    assert_eq!(rule_hits(&report, "panic"), vec![4, 5, 6]);
}

#[test]
fn panic_rule_exempts_serve_tests_and_other_crates() {
    let report = run(&[
        (
            "crates/serve/src/lib.rs",
            r#"//! Docs.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
/// Doc example: `handle.predict(x).wait().expect("served")`.
fn ok() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); panic!("fine in tests"); }
}
"#,
        ),
        (
            "crates/nn/src/train.rs",
            r#"fn f(x: Option<u32>) -> u32 { x.unwrap() }"#,
        ),
    ]);
    assert!(report.is_clean(), "{}", report.render_text());
}

#[test]
fn panic_rule_covers_the_net_crate() {
    // The wire decoder's "malformed input never panics" guarantee is
    // enforced statically: the same rule that guards the serve
    // dispatcher covers crates/net/src.
    let report = run(&[(
        "crates/net/src/wire.rs",
        r#"fn decode(b: &[u8]) -> u8 { *b.first().unwrap() }
fn worker() { unreachable!("connection state"); }
"#,
    )]);
    assert_eq!(rule_hits(&report, "panic"), vec![1, 2]);
}

#[test]
fn net_lock_unwrap_needs_poisoning_policy() {
    let report = run(&[(
        "crates/net/src/monitor.rs",
        r#"fn f(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap() }
"#,
    )]);
    assert_eq!(rule_hits(&report, "concurrency"), vec![1]);
}

#[test]
fn net_spawn_requires_a_waiver() {
    let report = run(&[
        (
            "crates/net/src/server.rs",
            r#"fn bare() { std::thread::spawn(|| {}); }
// audit:allow(concurrency) resident acceptor thread, joined on shutdown.
fn waived() { std::thread::spawn(|| {}); }
"#,
        ),
        ("crates/net/src/lib.rs", CLEAN_ROOF),
    ]);
    assert_eq!(rule_hits(&report, "concurrency"), vec![1]);
    assert_eq!(report.waived_count("concurrency"), 1);
}

#[test]
fn determinism_rule_covers_loadgen_module_and_net_binaries() {
    // The load generator's schedule must replay from its seed alone:
    // both the planning module and anything under crates/net/src/bin/
    // sit inside the determinism scope, while the rest of the net
    // crate (socket plumbing) stays outside it.
    let report = run(&[
        (
            "crates/net/src/loadgen.rs",
            r#"fn f() { let m: std::collections::HashMap<u32, u32> = Default::default(); let _ = m; }
"#,
        ),
        (
            "crates/net/src/bin/loadgen.rs",
            r#"fn f() { let _ = std::time::Instant::now(); }
fn g() -> Vec<String> { std::env::args().collect() }
"#,
        ),
        (
            "crates/net/src/server.rs",
            r#"fn f() { let _ = std::time::Instant::now(); }
"#,
        ),
    ]);
    let mut hits: Vec<(String, usize)> = report
        .findings
        .iter()
        .filter(|f| f.rule == "determinism")
        .map(|f| (f.path.clone(), f.line))
        .collect();
    hits.sort();
    assert_eq!(
        hits,
        vec![
            ("crates/net/src/bin/loadgen.rs".to_string(), 1),
            ("crates/net/src/bin/loadgen.rs".to_string(), 2),
            ("crates/net/src/loadgen.rs".to_string(), 1),
        ]
    );
}

#[test]
fn loadgen_binary_clock_intake_is_waivable() {
    let report = run(&[(
        "crates/net/src/bin/loadgen.rs",
        r#"fn now() {
    // audit:allow(determinism) the one clock intake; never feeds the seeded schedule.
    let _ = std::time::Instant::now();
}
"#,
    )]);
    assert!(report.is_clean(), "{}", report.render_text());
    assert_eq!(report.waived_count("determinism"), 1);
}

#[test]
fn determinism_rule_covers_the_trace_crate() {
    // The span recorder rides inside every deterministic layer, so
    // its sources sit in the determinism scope: a clock read outside
    // the dedicated clock module — or a HashMap anywhere in the
    // crate — is a finding.
    let report = run(&[
        (
            "crates/trace/src/lib.rs",
            r#"//! Docs.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
fn stamp() -> u64 { let _ = std::time::Instant::now(); 0 }
"#,
        ),
        (
            "crates/trace/src/chrome.rs",
            r#"fn f() { let m: std::collections::HashMap<u64, u64> = Default::default(); let _ = m; }
"#,
        ),
    ]);
    let mut hits: Vec<(String, usize)> = report
        .findings
        .iter()
        .filter(|f| f.rule == "determinism")
        .map(|f| (f.path.clone(), f.line))
        .collect();
    hits.sort();
    assert_eq!(
        hits,
        vec![
            ("crates/trace/src/chrome.rs".to_string(), 1),
            ("crates/trace/src/lib.rs".to_string(), 4),
        ]
    );
}

#[test]
fn trace_clock_module_intake_is_waivable() {
    // The tracer's single wall-clock intake mirrors the loadgen
    // binary's discipline: one waived site in one module, clean
    // everywhere else.
    let report = run(&[(
        "crates/trace/src/clock.rs",
        r#"fn epoch() {
    // audit:allow(determinism) the tracer's one clock intake; timestamps are telemetry only.
    let _ = std::time::Instant::now();
}
"#,
    )]);
    assert!(report.is_clean(), "{}", report.render_text());
    assert_eq!(report.waived_count("determinism"), 1);
}

#[test]
fn panic_rule_covers_net_binaries() {
    // crates/net/src/bin/ sits inside PANIC_SCOPE by prefix: the load
    // generator must report failures through its exit code, not
    // unwind mid-run with counters half-merged.
    let report = run(&[(
        "crates/net/src/bin/loadgen.rs",
        r#"fn f(x: Option<u32>) -> u32 { x.unwrap() }
"#,
    )]);
    assert_eq!(rule_hits(&report, "panic"), vec![1]);
}

// ---------------------------------------------------------------- lint-headers

#[test]
fn crate_roof_without_missing_docs_lint_is_flagged() {
    let report = run(&[(
        "crates/data/src/lib.rs",
        "//! Docs.\n#![forbid(unsafe_code)]\n",
    )]);
    assert_eq!(rule_hits(&report, "lint-headers"), vec![1]);
}

// ---------------------------------------------------------------- waivers

#[test]
fn standalone_waiver_covers_next_code_line() {
    let report = run(&[(
        "crates/nn/src/exec.rs",
        r#"// audit:allow(concurrency) cannot use WorkerPool below bnn-mcd.
std::thread::scope(|_| {});
"#,
    )]);
    assert!(report.is_clean(), "{}", report.render_text());
    assert_eq!(report.waived_count("concurrency"), 1);
    assert!(report.waivers.iter().all(|w| w.used));
}

#[test]
fn trailing_waiver_covers_its_own_line() {
    let report = run(&[(
        "crates/mcd/src/backend.rs",
        r#"fn f() { let _ = std::time::Instant::now(); } // audit:allow(determinism) telemetry only.
"#,
    )]);
    assert!(report.is_clean(), "{}", report.render_text());
    assert_eq!(report.waived_count("determinism"), 1);
}

#[test]
fn waiver_for_a_different_rule_does_not_suppress() {
    let report = run(&[(
        "crates/nn/src/exec.rs",
        r#"// audit:allow(determinism) wrong rule for a spawn.
std::thread::scope(|_| {});
"#,
    )]);
    assert_eq!(report.finding_count("concurrency"), 1);
}

#[test]
fn waiver_without_reason_is_itself_a_finding() {
    let report = run(&[(
        "crates/nn/src/exec.rs",
        r#"// audit:allow(concurrency)
std::thread::scope(|_| {});
"#,
    )]);
    // The spawn is waived, but the bare waiver is flagged.
    assert_eq!(report.finding_count("concurrency"), 0);
    assert_eq!(rule_hits(&report, "waiver"), vec![1]);
}

#[test]
fn waiver_naming_unknown_rule_is_a_finding() {
    let report = run(&[(
        "crates/nn/src/exec.rs",
        r#"fn f() {} // audit:allow(no-such-rule) bogus.
"#,
    )]);
    assert_eq!(rule_hits(&report, "waiver"), vec![1]);
}

#[test]
fn prose_mentions_of_waiver_syntax_are_inert() {
    let report = run(&[(
        "crates/tensor/src/lib.rs",
        r#"//! Exceptions use `// audit:allow(determinism) reason` comments.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Note that audit:allow(determinism) mid-sentence is not a waiver.
fn f() {}
"#,
    )]);
    assert!(report.is_clean(), "{}", report.render_text());
    assert!(report.waivers.is_empty());
}

// ---------------------------------------------------------------- lexer

#[test]
fn lexer_blanks_literals_and_collects_comments() {
    use bnn_audit::lexer::lex;
    let lines = lex("let x = \"unsafe\"; // trailing SAFETY: note\n'a'; 'static\n");
    assert!(!lines[0].code.contains("unsafe"));
    assert!(lines[0].comment_contains("SAFETY:"));
    assert!(!lines[1].code.contains("'a'"));
    assert!(lines[1].code.contains("'static"));

    let raw = lex("let s = r#\"quote \" inside\"#; let after = unsafe_token;\n");
    assert!(!raw[0].code.contains("quote"));
    assert!(raw[0].code.contains("unsafe_token"));

    let nested = lex("/* outer /* inner */ still comment */ code_here\n");
    assert!(nested[0].code.contains("code_here"));
    assert!(!nested[0].code.contains("inner"));
    assert!(nested[0].comment_contains("inner"));
}

#[test]
fn multiline_strings_stay_blanked() {
    use bnn_audit::lexer::lex;
    let lines = lex("let s = \"line one\nHashMap on line two\";\nlet t = HashMap::new();\n");
    assert!(!lines[1].code.contains("HashMap"));
    assert!(lines[2].code.contains("HashMap"));
}

// ---------------------------------------------------------------- reporting

#[test]
fn json_summary_is_deterministic_and_counts_waivers() {
    let files = [
        (
            "crates/mcd/src/backend.rs",
            r#"fn f() { let _ = std::time::Instant::now(); } // audit:allow(determinism) telemetry.
"#,
        ),
        (
            "crates/quant/src/exec.rs",
            r#"fn f() { std::thread::spawn(|| {}); }"#,
        ),
    ];
    let a = run(&files);
    let b = run(&files);
    assert_eq!(a.to_json(), b.to_json());
    assert!(a.to_json().contains("\"waived\": 1"));
    assert!(a.to_json().contains("\"findings\": 1"));
    assert!(!a.is_clean());
}

// ---------------------------------------------------------------- self-check

#[test]
fn live_workspace_passes_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = bnn_audit::audit(&root).expect("workspace scan");
    assert!(report.files_scanned > 50, "walk found the workspace");
    assert!(report.is_clean(), "{}", report.render_text());
    // Every waiver in the tree suppresses something and says why.
    for w in &report.waivers {
        assert!(w.used, "stale waiver: {}:{}", w.path, w.waiver.line);
        assert!(!w.waiver.reason.is_empty());
    }
}
