//! `bnn-audit` — a dependency-free static analyzer for the workspace's
//! determinism and concurrency invariants.
//!
//! The repo's value proposition — replies bit-identical solo vs.
//! coalesced, at any thread count, on any substrate — rests on
//! invariants that the conformance harness can only check
//! *dynamically* on the shapes it samples. This crate is the static
//! complement: a hand-rolled lexer (no `syn`; `vendor/` is
//! offline-only) plus a small set of named, individually-waivable
//! rules that prove the code *can't* reach for nondeterminism.
//!
//! # Rules
//!
//! | rule | invariant |
//! |---|---|
//! | `unsafe-audit` | `unsafe` only in allowlisted files, each use immediately preceded by a `SAFETY:` comment; every crate roof carries `#![deny(unsafe_code)]` or stricter |
//! | `determinism` | no `HashMap`/`HashSet`, wall-clock, `rand` or env-dependent branching in the engine/kernel crates (`tensor`, `nn`, `rng`, `quant`, and the deterministic modules of `mcd`) |
//! | `concurrency` | no `thread::spawn`/`scope`/`Builder` outside `mcd/src/pool.rs` — fan-out routes through `WorkerPool`; no `.lock().unwrap()` without an adjacent poisoning-policy comment in `serve`/`pool` |
//! | `panic` | no `unwrap`/`expect`/`panic!` in `crates/serve/src` dispatcher paths outside `#[cfg(test)]` — a dispatcher panic is a typed-`ServeError` bug |
//! | `lint-headers` | every crate roof carries `#![warn(missing_docs)]` or stricter |
//!
//! # Waivers
//!
//! Every exception is inline, named and justified:
//!
//! ```text
//! // audit:allow(determinism) wall_ms is telemetry; it never feeds the computation.
//! let t0 = Instant::now();
//! ```
//!
//! A waiver on its own comment line covers the next code line; a
//! trailing waiver covers its own line. A waiver without a reason, or
//! naming an unknown rule, is itself a finding — so `grep audit:allow`
//! always returns a justified list. The binary exits nonzero on any
//! unwaived finding and writes a machine-readable `AUDIT.json`
//! summary whose waiver counts are part of the tracked trajectory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use lexer::LineView;
use std::path::Path;

/// A lexed source file plus the metadata rules need: its
/// workspace-relative path, per-line `#[cfg(test)]` region map and
/// parsed waivers.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated on every platform.
    pub rel_path: String,
    /// Per-line code/comment split from [`lexer::lex`].
    pub lines: Vec<LineView>,
    /// Whether the whole file is test code (under a `tests/` dir).
    pub is_test_file: bool,
    test_region: Vec<bool>,
    waivers: Vec<Waiver>,
}

/// One `// audit:allow(<rule>) reason` comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule name inside the parentheses.
    pub rule: String,
    /// Justification text after the closing parenthesis.
    pub reason: String,
    /// 1-based line the waiver comment sits on.
    pub line: usize,
    /// 1-based line the waiver covers (itself, or the next code line
    /// when the waiver stands alone).
    pub target_line: usize,
}

impl SourceFile {
    /// Lex `source` into a `SourceFile` at workspace-relative `rel_path`.
    pub fn parse(rel_path: &str, source: &str) -> SourceFile {
        let lines = lexer::lex(source);
        let is_test_file = rel_path.starts_with("tests/") || rel_path.contains("/tests/");
        let test_region = mark_test_regions(&lines);
        let waivers = parse_waivers(&lines);
        SourceFile {
            rel_path: rel_path.to_string(),
            lines,
            is_test_file,
            test_region,
            waivers,
        }
    }

    /// Blanked code of 0-based line `idx` (empty past EOF).
    pub fn code(&self, idx: usize) -> &str {
        self.lines.get(idx).map(|l| l.code.as_str()).unwrap_or("")
    }

    /// Whether 0-based line `idx` is test code — a test file, or
    /// inside a `#[cfg(test)]` / `#[test]` item.
    pub fn in_test(&self, idx: usize) -> bool {
        self.is_test_file || self.test_region.get(idx).copied().unwrap_or(false)
    }

    /// Whether this file is a crate roof (`src/lib.rs` of the facade
    /// or of a workspace crate).
    pub fn is_crate_roof(&self) -> bool {
        self.rel_path == "src/lib.rs"
            || (self.rel_path.starts_with("crates/") && self.rel_path.ends_with("/src/lib.rs"))
    }

    /// Whether the file's code contains `needle` anywhere (comments
    /// and literals excluded).
    pub fn code_contains(&self, needle: &str) -> bool {
        self.lines.iter().any(|l| l.code.contains(needle))
    }
}

/// Mark lines belonging to `#[cfg(test)]` / `#[test]` items by brace
/// tracking: from the attribute, everything through the matching close
/// brace of the item it gates is test code.
fn mark_test_regions(lines: &[LineView]) -> Vec<bool> {
    let mut region = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let code = &lines[i].code;
        if !(code.contains("cfg(test") || code.contains("#[test]")) {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            region[j] = true;
            for ch in lines[j].code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    region
}

/// Extract `audit:allow(<rule>) reason` waivers from comments. Only a
/// comment that *begins* with the marker is a waiver — doc comments
/// (whose text starts with the third `/` or a `!`) and prose that
/// merely mention the syntax stay inert.
fn parse_waivers(lines: &[LineView]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        for comment in &line.comments {
            let trimmed = comment.trim_start();
            if !trimmed.starts_with("audit:allow(") {
                continue;
            }
            let rest = &trimmed["audit:allow(".len()..];
            let (rule, reason) = match rest.find(')') {
                Some(close) => (
                    rest[..close].trim().to_string(),
                    rest[close + 1..].trim().to_string(),
                ),
                None => (rest.trim().to_string(), String::new()),
            };
            // A standalone waiver line covers the next code line;
            // a trailing waiver covers its own.
            let target = if line.has_code() {
                idx
            } else {
                let mut t = idx + 1;
                while t < lines.len() && !lines[t].has_code() {
                    t += 1;
                }
                t
            };
            out.push(Waiver {
                rule,
                reason,
                line: idx + 1,
                target_line: target + 1,
            });
        }
    }
    out
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Name of the rule that fired.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable diagnostic.
    pub message: String,
}

/// A waiver resolved against the findings it suppressed.
#[derive(Debug, Clone)]
pub struct ResolvedWaiver {
    /// Workspace-relative file path.
    pub path: String,
    /// The waiver itself.
    pub waiver: Waiver,
    /// Whether it suppressed at least one finding this run.
    pub used: bool,
}

/// The full result of one audit pass.
pub struct AuditReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Unwaived findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Every waiver in the tree, sorted by (path, line).
    pub waivers: Vec<ResolvedWaiver>,
    /// Names of all rules that ran (stable order).
    pub rule_names: Vec<&'static str>,
}

impl AuditReport {
    /// Whether the tree passed with no unwaived findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings suppressed per rule (used-waiver count).
    pub fn waived_count(&self, rule: &str) -> usize {
        self.waivers
            .iter()
            .filter(|w| w.used && w.waiver.rule == rule)
            .count()
    }

    /// Unwaived findings per rule.
    pub fn finding_count(&self, rule: &str) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    /// `file:line: [rule] message` diagnostics plus a summary table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.path, f.line, f.rule, f.message
            ));
        }
        out.push_str(&format!(
            "bnn-audit: {} file(s), {} finding(s), {} waiver(s)\n",
            self.files_scanned,
            self.findings.len(),
            self.waivers.len()
        ));
        for rule in &self.rule_names {
            out.push_str(&format!(
                "  {:<13} findings {:>2}  waived {:>2}\n",
                rule,
                self.finding_count(rule),
                self.waived_count(rule)
            ));
        }
        let unused = self.waivers.iter().filter(|w| !w.used).count();
        if unused > 0 {
            out.push_str(&format!(
                "  note: {unused} waiver(s) suppressed nothing this run\n"
            ));
        }
        out
    }

    /// Deterministic machine-readable summary (the `AUDIT.json` body).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"findings\": {},\n", self.findings.len()));
        s.push_str("  \"rules\": {\n");
        for (i, rule) in self.rule_names.iter().enumerate() {
            s.push_str(&format!(
                "    \"{}\": {{ \"findings\": {}, \"waived\": {} }}{}\n",
                rule,
                self.finding_count(rule),
                self.waived_count(rule),
                if i + 1 < self.rule_names.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  },\n");
        s.push_str("  \"waivers\": [\n");
        for (i, w) in self.waivers.iter().enumerate() {
            s.push_str(&format!(
                "    {{ \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"used\": {}, \"reason\": \"{}\" }}{}\n",
                json_escape(&w.waiver.rule),
                json_escape(&w.path),
                w.waiver.line,
                w.used,
                json_escape(&w.waiver.reason),
                if i + 1 < self.waivers.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"violations\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(&format!(
                "    {{ \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\" }}{}\n",
                json_escape(f.rule),
                json_escape(&f.path),
                f.line,
                json_escape(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Top-level directories that are not project source: third-party
/// stand-ins (`vendor/` mirrors external API surfaces, like a
/// registry dependency would), build output and VCS metadata.
const SKIP_DIRS: [&str; 5] = ["vendor", "target", ".git", "results", ".github"];

/// Collect every project `.rs` file under `root`, sorted by relative
/// path so reports and `AUDIT.json` are deterministic.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            if path.is_dir() {
                let top_level = path.parent() == Some(root);
                if top_level && SKIP_DIRS.contains(&name.as_str()) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                let src = std::fs::read_to_string(&path)?;
                files.push((rel, src));
            }
        }
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(files)
}

/// Run the default rule set over a workspace rooted at `root`.
pub fn audit(root: &Path) -> std::io::Result<AuditReport> {
    let sources = collect_sources(root)?;
    Ok(audit_sources(&sources))
}

/// Run the default rule set over in-memory `(rel_path, source)` pairs
/// — the entry point the fixture tests drive directly.
pub fn audit_sources(sources: &[(String, String)]) -> AuditReport {
    let rules = rules::default_rules();
    let rule_names: Vec<&'static str> = rules.iter().map(|r| r.name()).collect();
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(rel, src)| SourceFile::parse(rel, src))
        .collect();

    let mut raw: Vec<Finding> = Vec::new();
    for file in &files {
        for rule in &rules {
            rule.check(file, &mut raw);
        }
    }

    // Resolve waivers: a finding is suppressed by a same-rule waiver
    // targeting its line. Malformed waivers become findings themselves
    // (and cannot be waived — "waiver" is not a rule name).
    let mut waivers: Vec<ResolvedWaiver> = Vec::new();
    for file in &files {
        for w in &file.waivers {
            if !rule_names.contains(&w.rule.as_str()) {
                raw.push(Finding {
                    rule: "waiver",
                    path: file.rel_path.clone(),
                    line: w.line,
                    message: format!(
                        "audit:allow names unknown rule `{}` (known: {})",
                        w.rule,
                        rule_names.join(", ")
                    ),
                });
            } else if w.reason.is_empty() {
                raw.push(Finding {
                    rule: "waiver",
                    path: file.rel_path.clone(),
                    line: w.line,
                    message: format!(
                        "audit:allow({}) carries no justification — every exception needs a written reason",
                        w.rule
                    ),
                });
            }
            waivers.push(ResolvedWaiver {
                path: file.rel_path.clone(),
                waiver: w.clone(),
                used: false,
            });
        }
    }

    let mut findings = Vec::new();
    for f in raw {
        let mut waived = false;
        if f.rule != "waiver" {
            for w in waivers.iter_mut() {
                if w.path == f.path && w.waiver.rule == f.rule && w.waiver.target_line == f.line {
                    w.used = true;
                    waived = true;
                }
            }
        }
        if !waived {
            findings.push(f);
        }
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    waivers.sort_by(|a, b| (a.path.as_str(), a.waiver.line).cmp(&(b.path.as_str(), b.waiver.line)));

    AuditReport {
        files_scanned: files.len(),
        findings,
        waivers,
        rule_names,
    }
}
