//! A comment/string/char-literal-aware line lexer for Rust sources.
//!
//! The rules in this crate are token greps, so the one piece of real
//! parsing they need is knowing which bytes of a line are *code* and
//! which are comment or literal text — otherwise a doc example
//! mentioning `unwrap()` or a diagnostic string containing
//! `"HashMap"` would trip a rule. This lexer walks a file once and
//! produces, per line, the source with every comment, string literal,
//! raw string, byte string and char literal blanked to spaces
//! (columns are preserved, so offsets stay meaningful), plus the text
//! of each comment on that line (where `SAFETY:` justifications and
//! `audit:allow` waivers live).
//!
//! Handled: `//`/`///`/`//!` line comments, nested `/* */` block
//! comments (multi-line), `"…"` with escapes, `r"…"`/`r#"…"#`-style
//! raw strings at any hash depth, `b"…"`/`br#"…"#` byte strings,
//! char/byte-char literals (`'a'`, `b'\n'`) and — crucially — the
//! lifetime-vs-char-literal ambiguity (`'env` stays code).

/// One source line, split into its code and comment parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineView {
    /// The line with comments and literals blanked to spaces.
    pub code: String,
    /// Text of each comment (or comment fragment) on this line,
    /// without the `//`, `/*`, `*/` markers.
    pub comments: Vec<String>,
}

impl LineView {
    /// Whether the line carries any non-whitespace code.
    pub fn has_code(&self) -> bool {
        !self.code.trim().is_empty()
    }

    /// Whether any comment on this line contains `needle`.
    pub fn comment_contains(&self, needle: &str) -> bool {
        self.comments.iter().any(|c| c.contains(needle))
    }
}

enum Mode {
    Code,
    LineComment,
    Block { depth: usize },
    Str,
    RawStr { hashes: usize },
}

/// Lex a whole source file into per-line views.
pub fn lex(src: &str) -> Vec<LineView> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comments: Vec<String> = Vec::new();
    let mut cur_comment: Option<String> = None;
    let mut mode = Mode::Code;
    let mut i = 0;

    while i < n {
        let c = chars[i];
        if c == '\n' {
            if let Some(text) = cur_comment.take() {
                comments.push(text);
            }
            lines.push(LineView {
                code: std::mem::take(&mut code),
                comments: std::mem::take(&mut comments),
            });
            match mode {
                // A line comment ends with its line.
                Mode::LineComment => mode = Mode::Code,
                // A block comment continues; restart its buffer so
                // each line gets its own fragment.
                Mode::Block { .. } => cur_comment = Some(String::new()),
                _ => {}
            }
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                if c == '/' && i + 1 < n && chars[i + 1] == '/' {
                    mode = Mode::LineComment;
                    cur_comment = Some(String::new());
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
                    mode = Mode::Block { depth: 1 };
                    cur_comment = Some(String::new());
                    code.push_str("  ");
                    i += 2;
                } else if let Some((skip, raw, hashes)) = raw_or_byte_string_start(&chars, i) {
                    for _ in 0..skip {
                        code.push(' ');
                    }
                    i += skip;
                    mode = if raw {
                        Mode::RawStr { hashes }
                    } else {
                        Mode::Str
                    };
                } else if c == '"' {
                    mode = Mode::Str;
                    code.push(' ');
                    i += 1;
                } else if c == '\'' {
                    i = blank_char_literal_or_lifetime(&chars, i, &mut code);
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                if let Some(buf) = cur_comment.as_mut() {
                    buf.push(c);
                }
                code.push(' ');
                i += 1;
            }
            Mode::Block { depth } => {
                if c == '*' && i + 1 < n && chars[i + 1] == '/' {
                    if depth == 1 {
                        mode = Mode::Code;
                        if let Some(text) = cur_comment.take() {
                            comments.push(text);
                        }
                    } else {
                        mode = Mode::Block { depth: depth - 1 };
                        if let Some(buf) = cur_comment.as_mut() {
                            buf.push_str("*/");
                        }
                    }
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
                    mode = Mode::Block { depth: depth + 1 };
                    if let Some(buf) = cur_comment.as_mut() {
                        buf.push_str("/*");
                    }
                    code.push_str("  ");
                    i += 2;
                } else {
                    if let Some(buf) = cur_comment.as_mut() {
                        buf.push(c);
                    }
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    // Escape: blank the backslash and the escaped
                    // char, except a line continuation (`\` + newline)
                    // where the newline must reach the line splitter.
                    code.push(' ');
                    i += 1;
                    if i < n && chars[i] != '\n' {
                        code.push(' ');
                        i += 1;
                    }
                } else if c == '"' {
                    mode = Mode::Code;
                    code.push(' ');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr { hashes } => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while j < n && seen < hashes && chars[j] == '#' {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        for _ in i..j {
                            code.push(' ');
                        }
                        i = j;
                        mode = Mode::Code;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
            }
        }
    }
    if let Some(text) = cur_comment.take() {
        comments.push(text);
    }
    if !code.is_empty() || !comments.is_empty() {
        lines.push(LineView { code, comments });
    }
    lines
}

/// If position `i` starts a raw or byte string (`r"`, `r#"`, `b"`,
/// `br#"` …), return `(chars_to_skip_through_quote, is_raw, hashes)`.
fn raw_or_byte_string_start(chars: &[char], i: usize) -> Option<(usize, bool, usize)> {
    // An identifier character before the prefix means `r`/`b` is the
    // tail of a name (`var"` can't occur, but `br` could end an ident).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return None;
    }
    let mut j = i;
    let mut saw_prefix = false;
    if j < chars.len() && chars[j] == 'b' {
        j += 1;
        saw_prefix = true;
    }
    let mut raw = false;
    if j < chars.len() && chars[j] == 'r' {
        j += 1;
        raw = true;
        saw_prefix = true;
    }
    if !saw_prefix {
        return None;
    }
    let mut hashes = 0;
    while raw && j < chars.len() && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j < chars.len() && chars[j] == '"' && (raw || hashes == 0) {
        Some((j - i + 1, raw, hashes))
    } else {
        None
    }
}

/// Handle a `'` in code: blank a char literal, or keep a lifetime.
/// Returns the next index to resume at.
fn blank_char_literal_or_lifetime(chars: &[char], i: usize, code: &mut String) -> usize {
    let n = chars.len();
    if i + 1 < n && chars[i + 1] == '\\' {
        // Escaped char literal: blank through the closing quote.
        let mut j = i;
        code.push(' ');
        j += 1;
        while j < n && chars[j] != '\'' && chars[j] != '\n' {
            if chars[j] == '\\' && j + 1 < n {
                code.push_str("  ");
                j += 2;
            } else {
                code.push(' ');
                j += 1;
            }
        }
        if j < n && chars[j] == '\'' {
            code.push(' ');
            j += 1;
        }
        return j;
    }
    if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
        // Plain 'x' literal.
        code.push_str("   ");
        return i + 3;
    }
    // Lifetime (`'env`) or stray quote: leave it as code.
    code.push('\'');
    i + 1
}
