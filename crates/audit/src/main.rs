//! `bnn-audit` CLI: walk the workspace, run every rule, print
//! `file:line` diagnostics, write `AUDIT.json`, exit nonzero on any
//! unwaived finding.
//!
//! ```text
//! bnn-audit [--root DIR] [--json PATH | --no-json]
//! ```
//!
//! With no flags the workspace root is found by walking up from the
//! current directory to the first `Cargo.toml` containing
//! `[workspace]`, and the summary is written to `<root>/AUDIT.json`
//! (deterministic content — CI diffs it against the committed
//! snapshot so the waiver count stays part of the tracked trajectory).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(body) = std::fs::read_to_string(&manifest) {
            if body.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut write_json = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_path = args.next().map(PathBuf::from),
            "--no-json" => write_json = false,
            "--help" | "-h" => {
                println!("usage: bnn-audit [--root DIR] [--json PATH | --no-json]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bnn-audit: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("bnn-audit: no workspace root above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let report = match bnn_audit::audit(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bnn-audit: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    print!("{}", report.render_text());

    if write_json {
        let path = json_path.unwrap_or_else(|| root.join("AUDIT.json"));
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("bnn-audit: writing {} failed: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("[written {}]", path.display());
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
