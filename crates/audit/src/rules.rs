//! The rule set: each invariant is a [`Rule`] over one lexed
//! [`SourceFile`], producing [`Finding`]s the engine then resolves
//! against inline waivers. A new rule (lock-order, API-surface …) is
//! ~50 lines: implement [`Rule`], add it to [`default_rules`].

use crate::lexer::LineView;
use crate::{Finding, SourceFile};

/// One named, individually-waivable invariant.
pub trait Rule {
    /// Stable name used in diagnostics and `audit:allow(<name>)`.
    fn name(&self) -> &'static str;
    /// Append findings for `file` to `out`.
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>);
}

/// The default rule set, in report order.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(UnsafeAudit),
        Box::new(Determinism),
        Box::new(Concurrency),
        Box::new(PanicHygiene),
        Box::new(LintHeaders),
    ]
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whether `code` contains `tok` at identifier boundaries (so
/// `unsafe` does not match `unsafe_code`, `HashMap` does not match
/// `MyHashMapLike`). Tokens may contain `::`/`!`/`.` freely.
fn has_token(code: &str, tok: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(tok) {
        let start = from + pos;
        let end = start + tok.len();
        let pre_ok = start == 0 || !is_ident(code[..start].chars().next_back().unwrap_or(' '));
        let last_is_ident = tok.chars().next_back().map(is_ident).unwrap_or(false);
        let post_ok = !last_is_ident || !code[end..].chars().next().map(is_ident).unwrap_or(false);
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Walk upward from line `idx`, skipping blank and attribute lines,
/// and report whether the nearest preceding line (or `idx` itself)
/// carries a comment containing `needle` (case-insensitive, so
/// "Poisoning policy:" satisfies a "poison" requirement).
fn adjacent_comment_contains(file: &SourceFile, idx: usize, needle: &str) -> bool {
    let wanted = needle.to_ascii_lowercase();
    let hit = |line: &LineView| {
        line.comments
            .iter()
            .any(|c| c.to_ascii_lowercase().contains(&wanted))
    };
    if hit(&file.lines[idx]) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let line: &LineView = &file.lines[i];
        if hit(line) {
            return true;
        }
        let code = line.code.trim();
        let skippable = code.is_empty() || code.starts_with("#[") || code.starts_with("#!");
        if !skippable {
            return false;
        }
    }
    false
}

/// `unsafe` is allowed only here, and only with a `SAFETY:` argument.
pub const UNSAFE_ALLOWLIST: [&str; 1] = ["crates/mcd/src/pool.rs"];

/// **unsafe-audit** — `unsafe` stays rare, local and argued.
///
/// * `unsafe` tokens only in [`UNSAFE_ALLOWLIST`] files;
/// * each use immediately preceded by (or carrying) a `SAFETY:`
///   comment — attributes and blank lines may sit between;
/// * every crate roof declares `#![deny(unsafe_code)]` or
///   `#![forbid(unsafe_code)]` (the allowlisted crate needs `deny`,
///   which a local `#[allow]` can override where `forbid` cannot).
pub struct UnsafeAudit;

impl Rule for UnsafeAudit {
    fn name(&self) -> &'static str {
        "unsafe-audit"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let allowlisted = UNSAFE_ALLOWLIST.contains(&file.rel_path.as_str());
        for (idx, line) in file.lines.iter().enumerate() {
            if !has_token(&line.code, "unsafe") {
                continue;
            }
            if !allowlisted {
                out.push(Finding {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line: idx + 1,
                    message: format!(
                        "`unsafe` outside the audited allowlist ({})",
                        UNSAFE_ALLOWLIST.join(", ")
                    ),
                });
            } else if !adjacent_comment_contains(file, idx, "SAFETY:") {
                out.push(Finding {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line: idx + 1,
                    message: "`unsafe` without an immediately preceding `SAFETY:` comment"
                        .to_string(),
                });
            }
        }
        if file.is_crate_roof()
            && !file.code_contains("#![deny(unsafe_code)]")
            && !file.code_contains("#![forbid(unsafe_code)]")
        {
            out.push(Finding {
                rule: self.name(),
                path: file.rel_path.clone(),
                line: 1,
                message: "crate roof lacks `#![deny(unsafe_code)]` (or `forbid`)".to_string(),
            });
        }
    }
}

/// Crates whose `src/` must stay free of nondeterminism sources. The
/// load-generator planning module and the `bnn-net` binaries are held
/// to the same bar: a loadgen schedule must replay bit-identically
/// from its seed, so any clock or env read there needs an explicit
/// `audit:allow` waiver at its single intake point. `bnn-trace` is in
/// scope too — the span recorder rides inside every deterministic
/// layer, so its one wall-clock intake (the `clock` module) carries
/// the same single-site waiver discipline.
pub const DETERMINISTIC_CRATES: [&str; 8] = [
    "crates/tensor/src/",
    "crates/nn/src/",
    "crates/rng/src/",
    "crates/quant/src/",
    "crates/mcd/src/",
    "crates/net/src/loadgen.rs",
    "crates/net/src/bin/",
    "crates/trace/src/",
];

/// `mcd` modules where wall-clock reads are legitimate: chaos fault
/// delays and pool shutdown plumbing never feed computed values.
pub const WALL_CLOCK_EXEMPT: [&str; 2] = ["crates/mcd/src/chaos.rs", "crates/mcd/src/pool.rs"];

/// Tokens that make results depend on something other than the seed.
const NONDETERMINISM_TOKENS: [&str; 7] = [
    "HashMap",
    "HashSet",
    "thread_rng",
    "rand::",
    "std::env",
    "env::var",
    "option_env!",
];

/// Wall-clock tokens (separately scoped — see [`WALL_CLOCK_EXEMPT`]).
const WALL_CLOCK_TOKENS: [&str; 2] = ["Instant::now", "SystemTime"];

/// **determinism** — the engine and kernel crates may consume only
/// seed-derived state: no hash-order iteration, no wall-clock, no
/// OS randomness, no env-dependent branching. This is what makes
/// "same seed, same reply" provable rather than sampled.
pub struct Determinism;

impl Rule for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !DETERMINISTIC_CRATES
            .iter()
            .any(|p| file.rel_path.starts_with(p))
        {
            return;
        }
        let wall_exempt = WALL_CLOCK_EXEMPT.contains(&file.rel_path.as_str());
        for (idx, line) in file.lines.iter().enumerate() {
            if file.in_test(idx) {
                continue;
            }
            for tok in NONDETERMINISM_TOKENS {
                if has_token(&line.code, tok) {
                    out.push(Finding {
                        rule: self.name(),
                        path: file.rel_path.clone(),
                        line: idx + 1,
                        message: format!("nondeterminism source `{tok}` in an engine crate"),
                    });
                }
            }
            if !wall_exempt {
                for tok in WALL_CLOCK_TOKENS {
                    if has_token(&line.code, tok) {
                        out.push(Finding {
                            rule: self.name(),
                            path: file.rel_path.clone(),
                            line: idx + 1,
                            message: format!("wall-clock read `{tok}` in a deterministic module"),
                        });
                    }
                }
            }
        }
    }
}

/// The one place threads may be created: the order-preserving pool.
pub const SPAWN_ALLOWLIST: [&str; 1] = ["crates/mcd/src/pool.rs"];

const SPAWN_TOKENS: [&str; 3] = ["thread::spawn", "thread::scope", "thread::Builder"];

/// Files where every `Mutex` access must state its poisoning policy.
pub const LOCK_POLICY_SCOPE: [&str; 3] = [
    "crates/serve/src/",
    "crates/net/src/",
    "crates/mcd/src/pool.rs",
];

/// **concurrency** — all data-parallel fan-out routes through
/// `WorkerPool` (one audited spawn site, order-preserving, panic-
/// poisoning), so thread creation anywhere else in library code is a
/// finding; and in the lock-heavy crates, `.lock().unwrap()` /
/// `.lock().expect(…)` without an adjacent poisoning-policy comment
/// is a finding — poisoning is a real state that needs a stated
/// policy, not an accidental panic path.
pub struct Concurrency;

impl Rule for Concurrency {
    fn name(&self) -> &'static str {
        "concurrency"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        // Spawn scope: library code only (crate `src/` trees and the
        // facade). Tests and examples are *clients* of the stack and
        // may run their own threads.
        let library = (file.rel_path.starts_with("crates/") && file.rel_path.contains("/src/"))
            || file.rel_path.starts_with("src/");
        let spawn_allowed = SPAWN_ALLOWLIST.contains(&file.rel_path.as_str());
        for (idx, line) in file.lines.iter().enumerate() {
            if library && !spawn_allowed && !file.in_test(idx) {
                for tok in SPAWN_TOKENS {
                    if has_token(&line.code, tok) {
                        out.push(Finding {
                            rule: self.name(),
                            path: file.rel_path.clone(),
                            line: idx + 1,
                            message: format!(
                                "`{tok}` outside {} — fan-out must route through WorkerPool",
                                SPAWN_ALLOWLIST.join(", ")
                            ),
                        });
                    }
                }
            }
            if LOCK_POLICY_SCOPE
                .iter()
                .any(|p| file.rel_path.starts_with(p))
                && (line.code.contains(".lock().unwrap()") || line.code.contains(".lock().expect("))
                && !adjacent_comment_contains(file, idx, "poison")
            {
                out.push(Finding {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line: idx + 1,
                    message: "lock unwrap without an adjacent poisoning-policy comment".to_string(),
                });
            }
        }
    }
}

/// Panicking constructs banned from dispatcher paths. The method
/// patterns include the leading `.` and trailing delimiter so
/// `unwrap_or_else` / `expect_err` do not match.
const PANIC_METHODS: [&str; 2] = [".unwrap()", ".expect("];
const PANIC_MACROS: [&str; 4] = ["panic!", "unreachable!", "todo!", "unimplemented!"];

/// Crates whose `src/` is an availability boundary: a panic there
/// kills a resident thread other parties depend on (the serve
/// dispatcher every `Handle` waits on; a net connection worker
/// mid-protocol, which would drop the peer without a typed error
/// frame).
pub const PANIC_SCOPE: [&str; 2] = ["crates/serve/src/", "crates/net/src/"];

/// **panic** — the [`PANIC_SCOPE`] crates are availability
/// boundaries: any failure there must resolve to a typed error
/// (`ServeError`, a wire error frame, a `DecodeError`) instead of a
/// panic. In particular the `bnn-net` frame decoder's "malformed
/// input never panics" guarantee is enforced here statically, on top
/// of the malformed-input tests. Test modules are exempt.
pub struct PanicHygiene;

impl Rule for PanicHygiene {
    fn name(&self) -> &'static str {
        "panic"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !PANIC_SCOPE.iter().any(|p| file.rel_path.starts_with(p)) {
            return;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if file.in_test(idx) {
                continue;
            }
            for pat in PANIC_METHODS {
                if line.code.contains(pat) {
                    out.push(Finding {
                        rule: self.name(),
                        path: file.rel_path.clone(),
                        line: idx + 1,
                        message: format!(
                            "`{pat}` on a dispatcher path — resolve to a typed ServeError instead"
                        ),
                    });
                }
            }
            for tok in PANIC_MACROS {
                if has_token(&line.code, tok) {
                    out.push(Finding {
                        rule: self.name(),
                        path: file.rel_path.clone(),
                        line: idx + 1,
                        message: format!(
                            "`{tok}` on a dispatcher path — resolve to a typed ServeError instead"
                        ),
                    });
                }
            }
        }
    }
}

/// **lint-headers** — every crate roof keeps the normalized preamble:
/// `#![warn(missing_docs)]` (or stricter) next to the unsafe lint the
/// `unsafe-audit` rule already checks, so API docs stay a build
/// requirement rather than a convention.
pub struct LintHeaders;

impl Rule for LintHeaders {
    fn name(&self) -> &'static str {
        "lint-headers"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !file.is_crate_roof() {
            return;
        }
        if !file.code_contains("#![warn(missing_docs)]")
            && !file.code_contains("#![deny(missing_docs)]")
            && !file.code_contains("#![forbid(missing_docs)]")
        {
            out.push(Finding {
                rule: self.name(),
                path: file.rel_path.clone(),
                line: 1,
                message: "crate roof lacks `#![warn(missing_docs)]` (or stricter)".to_string(),
            });
        }
    }
}
