//! Property-based tests of the MCD metrics and predictive machinery.

use bnn_mcd::{accuracy, avg_predictive_entropy, ece, mean_probs, mutual_information, nll};
use bnn_tensor::{softmax_rows, Shape4, Tensor};
use proptest::prelude::*;

fn prob_rows(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) * 4.0 - 2.0
    };
    let mut logits: Vec<f32> = (0..rows * cols).map(|_| next()).collect();
    softmax_rows(&mut logits, rows, cols);
    Tensor::from_vec(Shape4::vec(rows, cols), logits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Entropy lies in [0, ln k] for any probability rows.
    #[test]
    fn entropy_bounds(rows in 1usize..10, cols in 2usize..12, seed in 0u64..1000) {
        let p = prob_rows(rows, cols, seed);
        let h = avg_predictive_entropy(&p);
        prop_assert!(h >= -1e-9 && h <= (cols as f64).ln() + 1e-6);
    }

    /// ECE lies in [0, 1] and its bins partition the dataset.
    #[test]
    fn ece_bounds(rows in 1usize..12, cols in 2usize..8, seed in 0u64..1000) {
        let p = prob_rows(rows, cols, seed);
        let labels: Vec<usize> = (0..rows).map(|i| i % cols).collect();
        let c = ece(&p, &labels, 10);
        prop_assert!((0.0..=1.0).contains(&c.ece));
        prop_assert_eq!(c.counts.iter().sum::<usize>(), rows);
    }

    /// Accuracy and NLL are consistent: perfect one-hot rows on the
    /// true label give accuracy 1 and NLL ~ 0.
    #[test]
    fn accuracy_nll_consistency(rows in 1usize..10, cols in 2usize..6) {
        let mut data = vec![0.0f32; rows * cols];
        let labels: Vec<usize> = (0..rows).map(|i| (i * 7) % cols).collect();
        for (i, &y) in labels.iter().enumerate() {
            data[i * cols + y] = 1.0;
        }
        let p = Tensor::from_vec(Shape4::vec(rows, cols), data);
        prop_assert!((accuracy(&p, &labels) - 1.0).abs() < 1e-12);
        prop_assert!(nll(&p, &labels) < 1e-6);
    }

    /// mean_probs(passes, s) rows remain distributions, and averaging
    /// all passes equals the incremental running mean.
    #[test]
    fn mean_probs_is_distribution(
        passes in 1usize..8, rows in 1usize..5, cols in 2usize..6, seed in 0u64..500
    ) {
        let ps: Vec<Tensor> =
            (0..passes).map(|i| prob_rows(rows, cols, seed + i as u64)).collect();
        let m = mean_probs(&ps, passes);
        for i in 0..rows {
            let s: f32 = m.item(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
    }

    /// Mutual information is non-negative and bounded by the
    /// predictive-mean entropy.
    #[test]
    fn mutual_information_bounds(
        passes in 2usize..6, rows in 1usize..5, cols in 2usize..6, seed in 0u64..500
    ) {
        let ps: Vec<Tensor> =
            (0..passes).map(|i| prob_rows(rows, cols, seed + 31 * i as u64)).collect();
        let mi = mutual_information(&ps);
        let h_mean = avg_predictive_entropy(&mean_probs(&ps, passes));
        prop_assert!(mi >= -1e-12);
        prop_assert!(mi <= h_mean + 1e-9, "MI {} exceeds H[mean] {}", mi, h_mean);
    }
}
