//! Property tests for the pooled two-axis engine schedule.
//!
//! The engine contract: predictions are a pure function of the graph,
//! the Bayesian config and the mask-source seed — *never* of the
//! schedule. These properties drive the schedule axes through random
//! input counts, sample counts, thread counts, chunk sizes and pool
//! sizes and require byte equality against the simplest possible
//! reference: a serial per-input `predictive_pooled` loop.

use bnn_mcd::{
    predictive_batched_pooled, predictive_pooled, BayesConfig, FloatBackend, FusedBackend,
    ParallelConfig, SoftwareMaskSource, WorkerPool,
};
use bnn_nn::models;
use bnn_tensor::{Shape4, Tensor};
use proptest::prelude::*;

fn input(n: usize, hw: usize, seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let data = (0..n * hw * hw)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(Shape4::new(n, 1, hw, hw), data)
}

/// Reference: one serial predictive per input item, continuing the
/// same mask stream — exactly what `predictive_batched*` at
/// `batch = 1` promises to reproduce.
fn per_input_reference(net: &bnn_nn::Graph, xs: &Tensor, cfg: BayesConfig, seed: u64) -> Tensor {
    let inline = WorkerPool::new(0);
    let mut backend = FloatBackend::new(net);
    let mut src = SoftwareMaskSource::new(seed);
    let n = xs.shape().n;
    let mut out: Option<Tensor> = None;
    for i in 0..n {
        let x = xs.select_item(i);
        let (probs, _) = predictive_pooled(
            &mut backend,
            &x,
            cfg,
            &mut src,
            ParallelConfig::serial(),
            &inline,
        );
        let k = probs.shape().item_len();
        let all = out.get_or_insert_with(|| Tensor::zeros(Shape4::vec(n, k)));
        all.item_mut(i).copy_from_slice(probs.item(0));
    }
    out.expect("at least one input item")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `predictive_batched_pooled` with batch-axis parallelism (and
    /// any sample-axis split on top) is bit-identical to the
    /// per-input serial loop, on both the per-sample and the fused
    /// float backends, at any pool size.
    #[test]
    fn batch_parallel_matches_per_input_loop(
        seed in 0u64..1000,
        n in 1usize..7,
        l in 1usize..4,
        s in 1usize..8,
        threads in 1usize..5,
        batch_threads in 2usize..5,
        chunk in 1usize..5,
        workers in 0usize..5,
        fused in any::<bool>(),
    ) {
        let net = models::lenet5(10, 1, 16, 3);
        let xs = input(n, 16, seed);
        let cfg = BayesConfig::new(l, s);
        let want = per_input_reference(&net, &xs, cfg, seed);

        let pool = WorkerPool::new(workers);
        let parallel = ParallelConfig::with_threads(threads)
            .with_batch_threads(batch_threads)
            .with_chunk(chunk);
        let mut src = SoftwareMaskSource::new(seed);
        let (got, cost) = if fused {
            let mut backend = FusedBackend::new(&net);
            predictive_batched_pooled(&mut backend, &xs, cfg, &mut src, parallel, 1, &pool)
        } else {
            let mut backend = FloatBackend::new(&net);
            predictive_batched_pooled(&mut backend, &xs, cfg, &mut src, parallel, 1, &pool)
        };
        prop_assert_eq!(
            got.as_slice(),
            want.as_slice(),
            "two-axis schedule changed the prediction (fused={}, workers={}, \
             threads={}, batch_threads={}, chunk={})",
            fused, workers, threads, batch_threads, chunk
        );
        prop_assert_eq!(cost.samples, n * s, "S per input item");
        prop_assert_eq!(cost.batch, n);
    }

    /// Chunk-size overrides on the sample axis never move a byte, at
    /// any thread count and pool size (the fused backend stacks
    /// exactly `chunk` samples per GEMM, so this also pins the
    /// stacked kernels' any-sub-chunking contract).
    #[test]
    fn sample_chunking_is_bit_identical(
        seed in 0u64..1000,
        s in 1usize..10,
        threads in 1usize..5,
        chunk in 1usize..11,
        workers in 0usize..4,
    ) {
        let net = models::lenet5(10, 1, 16, 5);
        let x = input(2, 16, seed);
        let cfg = BayesConfig::new(3, s);

        let inline = WorkerPool::new(0);
        let mut serial = FusedBackend::new(&net);
        let (want, _) = predictive_pooled(
            &mut serial,
            &x,
            cfg,
            &mut SoftwareMaskSource::new(seed),
            ParallelConfig::serial(),
            &inline,
        );

        let pool = WorkerPool::new(workers);
        let mut chunked = FusedBackend::new(&net);
        let (got, _) = predictive_pooled(
            &mut chunked,
            &x,
            cfg,
            &mut SoftwareMaskSource::new(seed),
            ParallelConfig::with_threads(threads).with_chunk(chunk),
            &pool,
        );
        prop_assert_eq!(
            got.as_slice(),
            want.as_slice(),
            "chunk={} threads={} workers={} changed the prediction",
            chunk, threads, workers
        );
    }
}
