//! The parallel sampling engine against the serial one.
//!
//! The engine's contract is strict: because all `S` mask sets are
//! drawn serially before any worker starts, and the predictive mean
//! reduces in sample order, the result must be *bit-identical* for
//! every thread count — which trivially satisfies the 1e-6 acceptance
//! bound.

use bnn_mcd::{BayesConfig, McdPredictor, ParallelConfig, SoftwareMaskSource};
use bnn_nn::models;
use bnn_tensor::{Shape4, Tensor};
use proptest::prelude::*;

fn input(n: usize, hw: usize, seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let data = (0..n * hw * hw)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(Shape4::new(n, 1, hw, hw), data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `predictive` with `threads > 1` is bit-identical to the serial
    /// path given the same `MaskSource` seed.
    #[test]
    fn parallel_predictive_matches_serial(
        seed in 0u64..1000,
        l in 1usize..4,
        s in 1usize..9,
        threads in 2usize..6,
        batch in 1usize..3,
    ) {
        let net = models::lenet5(10, 1, 16, seed % 17);
        let x = input(batch, 16, seed);
        let cfg = BayesConfig::new(l, s);

        let serial = McdPredictor::new(&net)
            .with_parallelism(ParallelConfig::serial())
            .predictive(&x, cfg, &mut SoftwareMaskSource::new(seed));
        let parallel = McdPredictor::new(&net)
            .with_parallelism(ParallelConfig::with_threads(threads))
            .predictive(&x, cfg, &mut SoftwareMaskSource::new(seed));

        prop_assert_eq!(
            serial.as_slice(),
            parallel.as_slice(),
            "thread count changed the predictive distribution"
        );
    }

    /// The per-sample probability tensors (not just their mean) agree,
    /// and both paths consume the mask stream at the same rate: a
    /// source re-used after one engine hands the *other* engine the
    /// same continuation stream.
    #[test]
    fn sample_stream_alignment_across_engines(seed in 0u64..500, s in 2usize..6) {
        let net = models::lenet5(10, 1, 16, 3);
        let x = input(1, 16, seed);
        let cfg = BayesConfig::new(2, s);

        let mut src_serial = SoftwareMaskSource::new(seed);
        let mut src_parallel = SoftwareMaskSource::new(seed);
        let serial_pred = McdPredictor::new(&net).with_parallelism(ParallelConfig::serial());
        let parallel_pred =
            McdPredictor::new(&net).with_parallelism(ParallelConfig::with_threads(4));

        // Round 1: the per-sample tensors agree element-wise.
        let a = serial_pred.sample_probs(&x, cfg, &mut src_serial);
        let b = parallel_pred.sample_probs(&x, cfg, &mut src_parallel);
        prop_assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(&b) {
            prop_assert!(pa.max_abs_diff(pb) == 0.0, "per-sample probabilities diverged");
        }

        // Round 2: cross over the sources — both engines must have
        // advanced their streams identically.
        let a2 = serial_pred.predictive(&x, cfg, &mut src_parallel);
        let b2 = parallel_pred.predictive(&x, cfg, &mut src_serial);
        prop_assert_eq!(a2.as_slice(), b2.as_slice(), "mask streams advanced differently");
    }
}

#[test]
fn oversubscribed_thread_count_is_clamped() {
    // More threads than samples must still produce the exact stream.
    let net = models::lenet5(10, 1, 16, 2);
    let x = input(1, 16, 9);
    let cfg = BayesConfig::new(2, 3);
    let serial = McdPredictor::new(&net)
        .with_parallelism(ParallelConfig::serial())
        .predictive(&x, cfg, &mut SoftwareMaskSource::new(5));
    let wide = McdPredictor::new(&net)
        .with_parallelism(ParallelConfig::with_threads(64))
        .predictive(&x, cfg, &mut SoftwareMaskSource::new(5));
    assert_eq!(serial.as_slice(), wide.as_slice());
}

#[test]
fn default_parallelism_is_at_least_one_thread() {
    assert!(ParallelConfig::default().threads >= 1);
    assert_eq!(ParallelConfig::serial().threads, 1);
    assert_eq!(ParallelConfig::with_threads(0).threads, 1);
}
