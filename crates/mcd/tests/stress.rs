//! Timeout-guarded stress tests for the persistent worker pool and
//! the pooled sampling engine.
//!
//! What these pin down, beyond the bit-identity properties:
//!
//! * one shared [`WorkerPool`] survives many sequential *and*
//!   concurrent predictive calls (nested batch × sample scheduling
//!   included) without deadlock — every test body runs under a hard
//!   watchdog deadline, so a wedged queue fails loudly instead of
//!   hanging CI;
//! * the zero-sample and single-sample edges behave: `S = 0` panics
//!   the *call* (cleanly, pool intact), `S = 1` serves;
//! * a panicking backend poisons its own call, not the process — the
//!   pool's workers keep serving afterwards.

use bnn_mcd::{
    predictive_batched_pooled, predictive_pooled, BayesBackend, BayesConfig, FloatBackend,
    ParallelConfig, SoftwareMaskSource, WorkerPool,
};
use bnn_nn::{models, Graph, MaskSet};
use bnn_tensor::{Shape4, Tensor};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Run `body` on a fresh thread and fail the test if it has not
/// finished within `secs` — the deadlock guard for everything below.
fn with_deadline<F: FnOnce() + Send + 'static>(secs: u64, body: F) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => worker.join().expect("stress body panicked"),
        Err(_) => panic!("stress test exceeded {secs}s — engine deadlock?"),
    }
}

fn test_net() -> Graph {
    models::lenet5(10, 1, 16, 7)
}

fn test_input(n: usize) -> Tensor {
    Tensor::from_vec(
        Shape4::new(n, 1, 16, 16),
        (0..n * 256)
            .map(|i| ((i * 13 % 31) as f32 / 15.0) - 1.0)
            .collect(),
    )
}

#[test]
fn shared_pool_serves_sequential_and_concurrent_calls() {
    with_deadline(120, || {
        let net = Arc::new(test_net());
        let pool = Arc::new(WorkerPool::new(4));
        let cfg = BayesConfig::new(3, 6);
        let x = test_input(2);

        // Reference prediction per seed, on an inline pool.
        let reference = |seed: u64| {
            let inline = WorkerPool::new(0);
            let mut backend = FloatBackend::new(&net);
            predictive_pooled(
                &mut backend,
                &x,
                cfg,
                &mut SoftwareMaskSource::new(seed),
                ParallelConfig::serial(),
                &inline,
            )
            .0
        };

        // Many sequential calls through the one pool, mixed schedules.
        let mut backend = FloatBackend::new(&net);
        for round in 0..12u64 {
            let parallel = match round % 3 {
                0 => ParallelConfig::with_threads(4),
                1 => ParallelConfig::with_threads(2).with_chunk(1),
                _ => ParallelConfig::serial(),
            };
            let (probs, _) = predictive_pooled(
                &mut backend,
                &x,
                cfg,
                &mut SoftwareMaskSource::new(round),
                parallel,
                &pool,
            );
            assert_eq!(
                probs.as_slice(),
                reference(round).as_slice(),
                "sequential call {round} diverged"
            );
        }

        // Concurrent callers (each its own backend + seed) sharing the
        // pool, including nested batch × sample schedules.
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let net = Arc::clone(&net);
            let pool = Arc::clone(&pool);
            joins.push(std::thread::spawn(move || {
                let xs = test_input(3);
                let mut backend = FloatBackend::new(&net);
                let parallel = ParallelConfig::with_threads(2).with_batch_threads(2);
                let mut results = Vec::new();
                for round in 0..4u64 {
                    let seed = t * 1000 + round;
                    let (probs, _) = predictive_batched_pooled(
                        &mut backend,
                        &xs,
                        cfg,
                        &mut SoftwareMaskSource::new(seed),
                        parallel,
                        1,
                        &pool,
                    );
                    results.push((seed, probs));
                }
                results
            }));
        }
        for join in joins {
            for (seed, probs) in join.join().expect("caller thread survived") {
                let inline = WorkerPool::new(0);
                let mut serial = FloatBackend::new(&net);
                let xs = test_input(3);
                let (want, _) = predictive_batched_pooled(
                    &mut serial,
                    &xs,
                    cfg,
                    &mut SoftwareMaskSource::new(seed),
                    ParallelConfig::serial(),
                    1,
                    &inline,
                );
                assert_eq!(
                    probs.as_slice(),
                    want.as_slice(),
                    "concurrent call (seed {seed}) diverged"
                );
            }
        }
    });
}

#[test]
fn zero_and_single_sample_edges() {
    with_deadline(60, || {
        let net = test_net();
        let pool = WorkerPool::new(4);
        let x = test_input(1);

        // S = 0 must panic the call — cleanly, without wedging the pool.
        let err = catch_unwind(AssertUnwindSafe(|| {
            let mut backend = FloatBackend::new(&net);
            predictive_pooled(
                &mut backend,
                &x,
                BayesConfig {
                    l: 2,
                    s: 0,
                    p: 0.25,
                },
                &mut SoftwareMaskSource::new(1),
                ParallelConfig::with_threads(4),
                &pool,
            )
        }));
        assert!(err.is_err(), "S = 0 must panic the predictive call");

        // S = 1 serves on every schedule, through the same pool.
        let inline = WorkerPool::new(0);
        let mut serial = FloatBackend::new(&net);
        let cfg = BayesConfig::new(2, 1);
        let (want, _) = predictive_pooled(
            &mut serial,
            &x,
            cfg,
            &mut SoftwareMaskSource::new(7),
            ParallelConfig::serial(),
            &inline,
        );
        for parallel in [
            ParallelConfig::with_threads(4),
            ParallelConfig::with_threads(1).with_chunk(3),
            ParallelConfig::serial().with_batch_threads(4),
        ] {
            let mut backend = FloatBackend::new(&net);
            let (got, cost) = predictive_pooled(
                &mut backend,
                &x,
                cfg,
                &mut SoftwareMaskSource::new(7),
                parallel,
                &pool,
            );
            assert_eq!(got.as_slice(), want.as_slice(), "S = 1 diverged");
            assert_eq!(cost.samples, 1);
        }
    });
}

/// A backend whose forward passes panic: the injected fault for the
/// poisoning test. Geometry is nominal; no pass ever completes.
struct PanickyBackend;

impl BayesBackend for PanickyBackend {
    type Scratch = ();

    fn name(&self) -> &'static str {
        "panicky"
    }

    fn n_sites(&self) -> usize {
        1
    }

    fn site_channels(&self, _input: Shape4) -> Vec<usize> {
        vec![4]
    }

    fn output_classes(&self, _input: Shape4) -> usize {
        2
    }

    fn prepare(&mut self, _x: &Tensor, _active: &[bool]) {}

    fn make_scratch(&self) {}

    fn forward(&self, _masks: &MaskSet, _scratch: &mut ()) -> Tensor {
        panic!("injected backend panic");
    }
}

#[test]
fn worker_panic_poisons_the_call_not_the_process() {
    with_deadline(60, || {
        let net = test_net();
        let pool = WorkerPool::new(4);
        let x = test_input(1);

        // Every sample chunk of this call panics on a pool worker; the
        // call must re-throw on the caller and nothing else.
        let err = catch_unwind(AssertUnwindSafe(|| {
            let mut backend = PanickyBackend;
            predictive_pooled(
                &mut backend,
                &x,
                BayesConfig::new(1, 8),
                &mut SoftwareMaskSource::new(3),
                ParallelConfig::with_threads(4),
                &pool,
            )
        }))
        .expect_err("backend panic must poison the predictive call");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "injected backend panic");

        // The same pool keeps serving healthy calls afterwards.
        let inline = WorkerPool::new(0);
        let cfg = BayesConfig::new(3, 6);
        let mut serial = FloatBackend::new(&net);
        let (want, _) = predictive_pooled(
            &mut serial,
            &x,
            cfg,
            &mut SoftwareMaskSource::new(9),
            ParallelConfig::serial(),
            &inline,
        );
        let mut backend = FloatBackend::new(&net);
        let (got, _) = predictive_pooled(
            &mut backend,
            &x,
            cfg,
            &mut SoftwareMaskSource::new(9),
            ParallelConfig::with_threads(4),
            &pool,
        );
        assert_eq!(
            got.as_slice(),
            want.as_slice(),
            "pool must survive a poisoned call"
        );
    });
}
