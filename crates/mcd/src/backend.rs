//! The [`BayesBackend`] trait and the generic Monte Carlo sampling
//! engine.
//!
//! The paper's central claim is that one Bayesian workload — `S`
//! Monte Carlo forward passes over a partially-Bayesian network — can
//! be retargeted across execution substrates: f32 software, int8
//! integer arithmetic, and the FPGA accelerator. This module encodes
//! that claim in the type system. A substrate implements
//! [`BayesBackend`] (single-pass execution for a prepared input plus
//! an optional analytic cost model) and the *one* generic engine here
//! supplies everything else:
//!
//! * active-site computation (`last L of N`),
//! * serial mask pre-draw from a [`MaskSource`] (so the deterministic
//!   stream never depends on thread timing),
//! * [`ParallelConfig`] two-axis (batch × sample) fan-out over a
//!   persistent [`WorkerPool`] with per-worker scratch,
//! * sample averaging ([`mean_probs`]) and batched prediction,
//! * wall-clock and model-cost accounting ([`CostReport`]).
//!
//! Every entry point has a `_pooled` variant taking an explicit
//! [`WorkerPool`] (what a `Session` owns); the plain variants reuse
//! the process-wide [`WorkerPool::global`], so no predictive call
//! ever pays per-call thread spawn. [`serve_requests_pooled`] is the
//! cross-call-batching entry point behind the `bnn-serve` front door:
//! a micro-batch of independently-seeded [`SeededRequest`]s, each
//! bit-identical to its solo serving whatever its neighbors.
//!
//! [`FloatBackend`] (below) wraps the f32 [`Graph`] executor with the
//! intermediate-layer-caching suffix re-runs; [`FusedBackend`] layers
//! batched-sample GEMM fusion on top of it (weights stream once per
//! layer instead of once per sample, bit-identical results);
//! `bnn-quant` provides `Int8Backend`, `bnn-accel` provides
//! `AccelBackend`, and the `bnn-fpga` facade ties them together behind
//! a `Session` builder. Any future substrate (SIMD kernels, sharded
//! serving) is a drop-in `impl BayesBackend`, and the conformance
//! harness in [`crate::conformance`] gives it agreement coverage in
//! one line.

use crate::pool::WorkerPool;
use crate::predict::{active_sites, mean_probs, BayesConfig, ParallelConfig};
use crate::source::{MaskSource, SoftwareMaskSource};
use bnn_nn::{Activations, ExecScratch, Graph, MaskSet, Node, Op, StackedScratch};
use bnn_tensor::{softmax_rows, Shape4, Tensor};
use std::ops::Range;
use std::time::Instant;

/// Analytic cost of one `{L, S}` predictive run.
///
/// The accelerator populates every field (cycles, latency at its
/// configured clock, off-chip traffic). The software backends model
/// memory traffic only — the weight bytes a `{L, S}` prediction
/// streams through the GEMM kernels, which is exactly the quantity
/// batched-sample fusion changes — and report zero cycles/latency.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModelCost {
    /// Modelled execution cycles for the complete prediction (zero for
    /// software backends, which have no cycle model).
    pub cycles: u64,
    /// Modelled latency in milliseconds at the backend's clock (zero
    /// for software backends).
    pub latency_ms: f64,
    /// Modelled memory traffic in bytes: off-chip traffic on the
    /// accelerator, weight-streaming traffic on the software backends.
    pub mem_bytes: u64,
}

/// Cost report of one predictive run through the generic engine.
///
/// Wall-clock time is measured by the engine for every backend; the
/// `model` field carries the backend's analytic hardware cost when it
/// has one (CPU paths report `None`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostReport {
    /// Monte Carlo samples requested (`S`, summed over batches). A
    /// fully deterministic run (`L = 0`) executes one pass and
    /// replicates it, so this is not a per-pass work count there.
    pub samples: usize,
    /// Input items predicted.
    pub batch: usize,
    /// Measured wall-clock time in milliseconds.
    pub wall_ms: f64,
    /// The backend's analytic cost model, if it has one (summed over
    /// batches).
    pub model: Option<ModelCost>,
}

impl CostReport {
    /// Fold another run's cost into this one (batched prediction).
    pub fn accumulate(&mut self, other: &CostReport) {
        self.samples += other.samples;
        self.batch += other.batch;
        self.wall_ms += other.wall_ms;
        self.model = match (self.model, other.model) {
            (Some(a), Some(b)) => Some(ModelCost {
                cycles: a.cycles + b.cycles,
                latency_ms: a.latency_ms + b.latency_ms,
                mem_bytes: a.mem_bytes + b.mem_bytes,
            }),
            (a, b) => a.or(b),
        };
    }
}

/// One Bayesian execution substrate (float, int8, accelerator, ...).
///
/// A backend executes single Monte Carlo passes for one *prepared*
/// input; the generic engine ([`sample_probs_on`], [`predictive_on`],
/// [`predictive_batched_on`]) owns mask pre-draw, thread fan-out,
/// averaging and cost accounting. The contract:
///
/// 1. [`BayesBackend::prepare`] binds an input batch and precomputes
///    whatever is shared across samples — typically the deterministic
///    prefix under intermediate-layer caching.
/// 2. [`BayesBackend::forward`] runs one pass over the prepared input
///    and returns *softmax probabilities* `(n, k)`. It takes `&self`
///    plus a per-worker [`BayesBackend::Scratch`], so the engine may
///    fan passes out across threads.
/// 3. Results must not depend on scratch contents or thread count —
///    the engine's bit-identical-at-any-parallelism guarantee extends
///    to every backend.
pub trait BayesBackend: Sync {
    /// Per-worker mutable state (scratch buffers) reused across the
    /// samples one worker executes. Use `()` if none is needed.
    type Scratch: Send;

    /// Short backend name for logs, benches and cost reports.
    fn name(&self) -> &'static str;

    /// Number of MCD sites in the compiled network (the paper's `N`).
    fn n_sites(&self) -> usize;

    /// Mask length per site for an input shape (the channel count each
    /// site's Bernoulli draw must cover).
    fn site_channels(&self, input: Shape4) -> Vec<usize>;

    /// Output classes `K` for an input shape.
    fn output_classes(&self, input: Shape4) -> usize;

    /// Bind an input batch and precompute per-input state shared by
    /// all samples. Called exactly once before a group of
    /// [`BayesBackend::forward`] calls.
    fn prepare(&mut self, x: &Tensor, active: &[bool]);

    /// Fresh per-worker scratch for the prepared input.
    fn make_scratch(&self) -> Self::Scratch;

    /// One Monte Carlo pass over the prepared input: softmax
    /// probabilities of shape `(n, k)`.
    fn forward(&self, masks: &MaskSet, scratch: &mut Self::Scratch) -> Tensor;

    /// A group of Monte Carlo passes over the prepared input: one
    /// `(n, k)` probability tensor per mask set, in mask-set order.
    ///
    /// The engine hands each worker its whole contiguous sample chunk
    /// through this hook. The default implementation loops
    /// [`BayesBackend::forward`] — every per-sample backend inherits
    /// the previous behaviour unchanged. Backends that fuse samples
    /// ([`FusedBackend`]'s stacked GEMMs) override it; an override
    /// must return exactly `mask_sets.len()` tensors and must be
    /// bit-identical to the default for *any* sub-chunking of the
    /// sample list, because the engine's chunk boundaries move with
    /// the thread count and the bit-identical-at-any-parallelism
    /// guarantee extends to every backend.
    fn forward_batch(&self, mask_sets: &[MaskSet], scratch: &mut Self::Scratch) -> Vec<Tensor> {
        mask_sets.iter().map(|m| self.forward(m, scratch)).collect()
    }

    /// Analytic cost of a full `{L, S}` prediction, if the backend
    /// models one (the accelerator's cycle/traffic models, the
    /// software backends' weight-streaming traffic).
    fn model_cost(&self, bayes: BayesConfig) -> Option<ModelCost> {
        let _ = bayes;
        None
    }

    /// A fresh, *unprepared* duplicate of this backend.
    ///
    /// Batch-axis parallelism ([`ParallelConfig::batch_threads`])
    /// needs one backend per batch worker, because
    /// [`BayesBackend::prepare`] binds a single input batch. A fork
    /// must compute bit-identically to the original (same graph, same
    /// parameters); prepared state and pooled scratches need not (and
    /// should not) be carried over. The default `None` opts the
    /// substrate out — `predictive_batched*` then falls back to the
    /// sequential batch loop, which stays bit-identical.
    fn fork(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

/// Per-sample softmax probabilities: `s` tensors of shape `(n, k)`.
///
/// This is *the* sampling engine — every backend and the legacy
/// [`crate::McdPredictor`] route through it. All `S` mask sets are
/// drawn serially from `src` up front, then the passes execute as
/// contiguous sample chunks on `pool` (joined in chunk order), which
/// keeps the result bit-identical at any thread count, chunk size and
/// pool size. With no active Bayesian site the predictive is
/// deterministic: one pass, replicated, and `src` is not consumed.
///
/// # Panics
///
/// Panics if `cfg.s == 0`.
pub fn sample_probs_pooled<B: BayesBackend>(
    backend: &mut B,
    x: &Tensor,
    cfg: BayesConfig,
    src: &mut dyn MaskSource,
    parallel: ParallelConfig,
    pool: &WorkerPool,
) -> Vec<Tensor> {
    assert!(cfg.s > 0, "at least one Monte Carlo sample required");
    let parallel = parallel.normalized();
    let active = active_sites(backend.n_sites(), cfg.l);
    let channels = backend.site_channels(x.shape());
    let mask_sets = draw_mask_sets(&active, &channels, cfg, src);
    backend.prepare(x, &active);
    run_prepared(backend, cfg.s, &mask_sets, parallel, pool)
}

/// The pool the legacy (pool-less) entry points fall back to: the
/// process-wide [`WorkerPool::global`] when the schedule actually
/// fans out, else a static zero-worker inline pool — so strictly
/// serial callers never spawn the global worker threads.
fn fallback_pool(parallel: ParallelConfig) -> &'static WorkerPool {
    if parallel.pool_workers() == 0 {
        WorkerPool::inline()
    } else {
        WorkerPool::global()
    }
}

/// [`sample_probs_pooled`] on the process-wide [`WorkerPool::global`]
/// (or, for a fully serial schedule, an inline pool that spawns
/// nothing).
pub fn sample_probs_on<B: BayesBackend>(
    backend: &mut B,
    x: &Tensor,
    cfg: BayesConfig,
    src: &mut dyn MaskSource,
    parallel: ParallelConfig,
) -> Vec<Tensor> {
    sample_probs_pooled(backend, x, cfg, src, parallel, fallback_pool(parallel))
}

/// Serially pre-draw one predictive call's mask sets: `S` sets when
/// any site is active, none (and no stream consumption) otherwise.
fn draw_mask_sets(
    active: &[bool],
    channels: &[usize],
    cfg: BayesConfig,
    src: &mut dyn MaskSource,
) -> Vec<MaskSet> {
    if !active.iter().any(|&a| a) {
        return Vec::new();
    }
    (0..cfg.s)
        .map(|_| src.next_masks(active, channels, cfg.p))
        .collect()
}

/// Per-sample passes over an already-prepared backend: the shared tail
/// of [`sample_probs_pooled`] and the batch-parallel schedule. An
/// empty `mask_sets` is the deterministic short-circuit — one pass,
/// replicated `s` times.
fn run_prepared<B: BayesBackend>(
    backend: &B,
    s: usize,
    mask_sets: &[MaskSet],
    parallel: ParallelConfig,
    pool: &WorkerPool,
) -> Vec<Tensor> {
    if mask_sets.is_empty() {
        let mut scratch = backend.make_scratch();
        let probs = backend.forward(&MaskSet::none(), &mut scratch);
        return vec![probs; s];
    }
    run_samples(backend, mask_sets, parallel, pool)
}

/// Execute pre-drawn mask sets on a prepared backend with the
/// configured fan-out. Samples are returned in mask-set order.
///
/// Each work unit receives its whole contiguous chunk through
/// [`BayesBackend::forward_batch`], so fusing backends amortize
/// weight streaming across the chunk while per-sample backends run
/// the default forward loop.
fn run_samples<B: BayesBackend>(
    backend: &B,
    mask_sets: &[MaskSet],
    parallel: ParallelConfig,
    pool: &WorkerPool,
) -> Vec<Tensor> {
    let threads = parallel.threads.clamp(1, mask_sets.len());
    let chunk = parallel
        .chunk
        .unwrap_or_else(|| mask_sets.len().div_ceil(threads))
        .clamp(1, mask_sets.len());
    let probs: Vec<Tensor> = if threads == 1 {
        // Strictly serial: one scratch, nothing queued on the pool.
        // Without a chunk override this is one chunk spanning all
        // samples — the fullest possible fusion.
        let mut scratch = backend.make_scratch();
        let mut out = Vec::with_capacity(mask_sets.len());
        for ms in mask_sets.chunks(chunk) {
            let span = bnn_trace::start();
            out.extend(backend.forward_batch(ms, &mut scratch));
            bnn_trace::finish(span, bnn_trace::Stage::Chunk, 0, ms.len() as u64);
        }
        out
    } else {
        // Contiguous sample chunks as pool tasks; results join in
        // chunk order, which keeps the samples in stream order.
        let tasks: Vec<Box<dyn FnOnce() -> Vec<Tensor> + Send + '_>> = mask_sets
            .chunks(chunk)
            .map(|ms| {
                Box::new(move || {
                    let span = bnn_trace::start();
                    let mut scratch = backend.make_scratch();
                    let probs = backend.forward_batch(ms, &mut scratch);
                    bnn_trace::finish(span, bnn_trace::Stage::Chunk, 0, ms.len() as u64);
                    probs
                }) as Box<dyn FnOnce() -> Vec<Tensor> + Send + '_>
            })
            .collect();
        pool.run(tasks).into_iter().flatten().collect()
    };
    assert_eq!(
        probs.len(),
        mask_sets.len(),
        "{}: forward_batch must return one tensor per mask set",
        backend.name()
    );
    probs
}

/// Predictive distribution `(n, k)` — the mean of the per-sample
/// softmax probabilities (the paper's `1/S Σ p(y|x, M_s)`) — plus the
/// run's cost report.
///
/// Routes through the same `run_request` core as the request-serving
/// path ([`serve_requests_pooled`]), so the two are bit-identical by
/// construction, not merely by test.
pub fn predictive_pooled<B: BayesBackend>(
    backend: &mut B,
    x: &Tensor,
    cfg: BayesConfig,
    src: &mut dyn MaskSource,
    parallel: ParallelConfig,
    pool: &WorkerPool,
) -> (Tensor, CostReport) {
    assert!(cfg.s > 0, "at least one Monte Carlo sample required");
    let parallel = parallel.normalized();
    let active = active_sites(backend.n_sites(), cfg.l);
    let channels = backend.site_channels(x.shape());
    let masks = draw_mask_sets(&active, &channels, cfg, src);
    let out = run_request(backend, x, &masks, &active, cfg, parallel, pool);
    (out.probs, out.cost)
}

/// [`predictive_pooled`] on the process-wide [`WorkerPool::global`]
/// (or, for a fully serial schedule, an inline pool that spawns
/// nothing).
pub fn predictive_on<B: BayesBackend>(
    backend: &mut B,
    x: &Tensor,
    cfg: BayesConfig,
    src: &mut dyn MaskSource,
    parallel: ParallelConfig,
) -> (Tensor, CostReport) {
    predictive_pooled(backend, x, cfg, src, parallel, fallback_pool(parallel))
}

/// Predictive over a dataset in batches of at most `batch` items,
/// returning an `(n, k)` probability tensor and the accumulated cost.
///
/// This is where both schedule axes meet: with
/// `parallel.batch_threads > 1` (and a backend whose
/// [`BayesBackend::fork`] is implemented) the batch groups themselves
/// run as pool tasks, each forked backend preparing its own inputs
/// while its sample chunks nest on the *same* pool. The mask stream
/// is pre-drawn serially in group order, every group's samples join
/// in stream order, and rows are assembled in input order — so the
/// result is bit-identical to the sequential batch loop (which is
/// itself bit-identical to per-input [`predictive_pooled`] calls at
/// `batch = 1`). `wall_ms` sums the per-group wall times, which
/// overlap under batch parallelism.
///
/// # Panics
///
/// Panics if `batch == 0`, `cfg.s == 0` or `xs` is empty.
pub fn predictive_batched_pooled<B: BayesBackend + Send>(
    backend: &mut B,
    xs: &Tensor,
    cfg: BayesConfig,
    src: &mut dyn MaskSource,
    parallel: ParallelConfig,
    batch: usize,
    pool: &WorkerPool,
) -> (Tensor, CostReport) {
    assert!(batch > 0, "batch must be non-zero");
    // Checked up front (not only inside the per-group predictive) so
    // the batch-parallel schedule fails the same way the sequential
    // loop does, before any group executes.
    assert!(cfg.s > 0, "at least one Monte Carlo sample required");
    let parallel = parallel.normalized();
    let s = xs.shape();
    let groups: Vec<Range<usize>> = (0..s.n)
        .step_by(batch)
        .map(|row| row..(row + batch).min(s.n))
        .collect();
    let batch_threads = parallel.batch_threads.clamp(1, groups.len().max(1));
    if batch_threads > 1 {
        if let Some(result) = predictive_batch_parallel(
            backend,
            xs,
            cfg,
            src,
            parallel,
            &groups,
            batch_threads,
            pool,
        ) {
            return result;
        }
    }
    // Sequential batch loop (also the fallback for unforkable
    // backends).
    let mut out: Option<Tensor> = None;
    let mut cost = CostReport::default();
    for group in &groups {
        let bx = slice_items(xs, group.clone());
        let (probs, c) = predictive_pooled(backend, &bx, cfg, src, parallel, pool);
        cost.accumulate(&c);
        write_rows(&mut out, s.n, group.start, &probs);
    }
    (out.expect("dataset is non-empty"), cost)
}

/// [`predictive_batched_pooled`] on the process-wide
/// [`WorkerPool::global`] (or, for a fully serial schedule, an
/// inline pool that spawns nothing).
pub fn predictive_batched_on<B: BayesBackend + Send>(
    backend: &mut B,
    xs: &Tensor,
    cfg: BayesConfig,
    src: &mut dyn MaskSource,
    parallel: ParallelConfig,
    batch: usize,
) -> (Tensor, CostReport) {
    predictive_batched_pooled(
        backend,
        xs,
        cfg,
        src,
        parallel,
        batch,
        fallback_pool(parallel),
    )
}

/// One batch group's result inside the batch-parallel schedule: the
/// group's first input row, its predictive distribution and its cost.
type GroupResult = (usize, Tensor, CostReport);

/// A batch-parallel pool task: a contiguous run of batch groups
/// executed on one forked backend.
type GroupTask<'a> = Box<dyn FnOnce() -> Vec<GroupResult> + Send + 'a>;

/// The batch-parallel schedule: contiguous runs of batch groups as
/// pool tasks over forked backends. Returns `None` when the backend
/// cannot fork (the caller then runs the sequential loop).
#[allow(clippy::too_many_arguments)]
fn predictive_batch_parallel<B: BayesBackend + Send>(
    backend: &mut B,
    xs: &Tensor,
    cfg: BayesConfig,
    src: &mut dyn MaskSource,
    parallel: ParallelConfig,
    groups: &[Range<usize>],
    batch_threads: usize,
    pool: &WorkerPool,
) -> Option<(Tensor, CostReport)> {
    let span = groups.len().div_ceil(batch_threads);
    let mut forks = Vec::with_capacity(groups.len().div_ceil(span));
    for _ in groups.chunks(span) {
        forks.push(backend.fork()?);
    }
    // Serial mask pre-draw in group order: exactly the stream the
    // sequential loop would consume (channel counts are independent
    // of the group's item count).
    let active = active_sites(backend.n_sites(), cfg.l);
    let channels = backend.site_channels(xs.shape().with_n(1));
    let group_masks: Vec<Vec<MaskSet>> = groups
        .iter()
        .map(|_| draw_mask_sets(&active, &channels, cfg, src))
        .collect();

    let n = xs.shape().n;
    let tasks: Vec<GroupTask<'_>> = forks
        .into_iter()
        .zip(groups.chunks(span))
        .zip(group_masks.chunks(span))
        .map(|((mut fork, task_groups), task_masks)| {
            let active = &active;
            Box::new(move || {
                task_groups
                    .iter()
                    .zip(task_masks)
                    .map(|(group, masks)| {
                        // audit:allow(determinism) wall_ms is CostReport telemetry; it never feeds the computation, so replies stay bit-identical.
                        let t0 = Instant::now();
                        let bx = slice_items(xs, group.clone());
                        fork.prepare(&bx, active);
                        let passes = run_prepared(&fork, cfg.s, masks, parallel, pool);
                        let probs = mean_probs(&passes, passes.len());
                        let cost = CostReport {
                            samples: cfg.s,
                            batch: bx.shape().n,
                            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
                            model: fork.model_cost(cfg),
                        };
                        (group.start, probs, cost)
                    })
                    .collect()
            }) as GroupTask<'_>
        })
        .collect();

    let mut out: Option<Tensor> = None;
    let mut cost = CostReport::default();
    for (row, probs, c) in pool.run(tasks).into_iter().flatten() {
        cost.accumulate(&c);
        write_rows(&mut out, n, row, &probs);
    }
    Some((out.expect("dataset is non-empty"), cost))
}

/// One coalesced serving request: an input and the request's *private*
/// mask-stream seed.
///
/// This is the engine-side contract behind cross-call batching
/// (`bnn-serve`): a request's Monte Carlo masks are derived from its
/// own seed — not pulled from one serial stream in batch order — so
/// its prediction cannot depend on which neighbors it happens to be
/// coalesced with, or on its position in the micro-batch.
#[derive(Debug, Clone, Copy)]
pub struct SeededRequest<'a> {
    /// The request's input (single-item for the serving front door;
    /// the engine accepts any batch size).
    pub x: &'a Tensor,
    /// Seed of the request's private software mask stream
    /// ([`crate::SoftwareMaskSource`]).
    pub seed: u64,
}

/// One request's result from [`serve_requests_pooled`].
#[derive(Debug, Clone)]
pub struct RequestResult {
    /// The `S` per-sample softmax probability tensors, in the
    /// request's own mask-stream order (what an uncertainty
    /// decomposition consumes).
    pub passes: Vec<Tensor>,
    /// The predictive mean `(n, k)` over those passes.
    pub probs: Tensor,
    /// This request's slice of the run's cost: its own wall time,
    /// sample count and model cost.
    pub cost: CostReport,
}

/// Serve a micro-batch of independently-seeded requests in one engine
/// pass: the cross-call-batching primitive behind `bnn-serve`.
///
/// Each request runs as its own batch group — one
/// [`BayesBackend::prepare`] plus `S` suffix passes whose masks are
/// drawn from the request's *own* [`crate::SoftwareMaskSource`] — so
/// request `i`'s result is **bit-identical** to serving it alone
/// ([`sample_probs_pooled`] with `SoftwareMaskSource::new(seed_i)`),
/// whatever its neighbors, its position, the micro-batch size, the
/// schedule or the pool size. (Per-request groups are also *required*
/// for that guarantee, not just sufficient: dropout masks are
/// channel-wise and shared across the items of one forward pass, so
/// folding strangers' inputs into one tensor would force them to share
/// one mask stream.) What coalescing buys is everything around the
/// math: one dispatcher wake-up and one pool submission per
/// micro-batch, one resident backend whose prefix buffers and pooled
/// stacked scratches stay hot across requests, and — with
/// `parallel.batch_threads > 1` on a forkable backend — the requests
/// of one micro-batch fanning out over the pool.
///
/// Requests may differ in input shape; the mask sets are pre-drawn
/// serially in request order (each from its own seed, so the order is
/// immaterial to the results).
///
/// # Panics
///
/// Panics if `cfg.s == 0`.
pub fn serve_requests_pooled<B: BayesBackend + Send>(
    backend: &mut B,
    requests: &[SeededRequest<'_>],
    cfg: BayesConfig,
    parallel: ParallelConfig,
    pool: &WorkerPool,
) -> Vec<RequestResult> {
    assert!(cfg.s > 0, "at least one Monte Carlo sample required");
    let parallel = parallel.normalized();
    if requests.is_empty() {
        return Vec::new();
    }
    let active = active_sites(backend.n_sites(), cfg.l);
    // Per-request mask pre-draw: each request's private stream,
    // consumed exactly as its solo serving would.
    let request_masks: Vec<Vec<MaskSet>> = requests
        .iter()
        .map(|req| {
            let channels = backend.site_channels(req.x.shape());
            draw_mask_sets(
                &active,
                &channels,
                cfg,
                &mut SoftwareMaskSource::new(req.seed),
            )
        })
        .collect();

    let batch_threads = parallel.batch_threads.min(requests.len());
    if batch_threads > 1 {
        if let Some(results) = serve_requests_parallel(
            backend,
            requests,
            &request_masks,
            &active,
            cfg,
            parallel,
            batch_threads,
            pool,
        ) {
            return results;
        }
    }
    // Sequential request loop (also the fallback for unforkable
    // backends): the resident backend serves the requests in order,
    // reusing its prefix buffers and pooled scratches across them.
    requests
        .iter()
        .zip(&request_masks)
        .map(|(req, masks)| run_request(backend, req.x, masks, &active, cfg, parallel, pool))
        .collect()
}

/// [`serve_requests_pooled`] on the process-wide [`WorkerPool::global`]
/// (or, for a fully serial schedule, an inline pool that spawns
/// nothing).
pub fn serve_requests_on<B: BayesBackend + Send>(
    backend: &mut B,
    requests: &[SeededRequest<'_>],
    cfg: BayesConfig,
    parallel: ParallelConfig,
) -> Vec<RequestResult> {
    serve_requests_pooled(backend, requests, cfg, parallel, fallback_pool(parallel))
}

/// Bind one input and execute its pre-drawn mask sets: timed
/// prepare, sample passes, predictive mean and cost accounting.
/// *The* shared serving core — [`predictive_pooled`] and both
/// request schedules of [`serve_requests_pooled`] all run exactly
/// this, which is what makes solo and coalesced serving
/// bit-identical by construction.
fn run_request<B: BayesBackend>(
    backend: &mut B,
    x: &Tensor,
    masks: &[MaskSet],
    active: &[bool],
    cfg: BayesConfig,
    parallel: ParallelConfig,
    pool: &WorkerPool,
) -> RequestResult {
    // audit:allow(determinism) wall_ms is CostReport telemetry; it never feeds the computation, so replies stay bit-identical.
    let t0 = Instant::now();
    let prepare_span = bnn_trace::start();
    backend.prepare(x, active);
    bnn_trace::finish(
        prepare_span,
        bnn_trace::Stage::Prepare,
        0,
        x.shape().n as u64,
    );
    let forward_span = bnn_trace::start();
    let passes = run_prepared(backend, cfg.s, masks, parallel, pool);
    bnn_trace::finish(forward_span, bnn_trace::Stage::Forward, 0, cfg.s as u64);
    let probs = mean_probs(&passes, passes.len());
    let cost = CostReport {
        samples: cfg.s,
        batch: x.shape().n,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        model: backend.model_cost(cfg),
    };
    RequestResult {
        passes,
        probs,
        cost,
    }
}

/// A batch-parallel serving task: a contiguous run of requests
/// executed on one forked backend.
type RequestTask<'a> = Box<dyn FnOnce() -> Vec<RequestResult> + Send + 'a>;

/// The batch-parallel request schedule: contiguous request runs as
/// pool tasks over forked backends. Returns `None` when the backend
/// cannot fork (the caller then runs the sequential loop).
#[allow(clippy::too_many_arguments)]
fn serve_requests_parallel<B: BayesBackend + Send>(
    backend: &mut B,
    requests: &[SeededRequest<'_>],
    request_masks: &[Vec<MaskSet>],
    active: &[bool],
    cfg: BayesConfig,
    parallel: ParallelConfig,
    batch_threads: usize,
    pool: &WorkerPool,
) -> Option<Vec<RequestResult>> {
    let span = requests.len().div_ceil(batch_threads);
    let mut forks = Vec::with_capacity(requests.len().div_ceil(span));
    for _ in requests.chunks(span) {
        forks.push(backend.fork()?);
    }
    let tasks: Vec<RequestTask<'_>> = forks
        .into_iter()
        .zip(requests.chunks(span))
        .zip(request_masks.chunks(span))
        .map(|((mut fork, task_requests), task_masks)| {
            Box::new(move || {
                task_requests
                    .iter()
                    .zip(task_masks)
                    .map(|(req, masks)| {
                        run_request(&mut fork, req.x, masks, active, cfg, parallel, pool)
                    })
                    .collect()
            }) as RequestTask<'_>
        })
        .collect();
    Some(pool.run(tasks).into_iter().flatten().collect())
}

/// Copy an item range of `xs` into a fresh batch tensor.
fn slice_items(xs: &Tensor, items: Range<usize>) -> Tensor {
    let s = xs.shape();
    let mut bx = Tensor::zeros(Shape4::new(items.len(), s.c, s.h, s.w));
    for (i, item) in items.enumerate() {
        bx.item_mut(i).copy_from_slice(xs.item(item));
    }
    bx
}

/// Write a batch group's probability rows into the (lazily created)
/// full output tensor, starting at item `row`.
fn write_rows(out: &mut Option<Tensor>, n: usize, row: usize, probs: &Tensor) {
    let k = probs.shape().item_len();
    let all = out.get_or_insert_with(|| Tensor::zeros(Shape4::vec(n, k)));
    for i in 0..probs.shape().n {
        all.item_mut(row + i).copy_from_slice(probs.item(i));
    }
}

/// The f32 software backend: wraps the [`Graph`] executor with the
/// PR-1 performance engine — the deterministic prefix runs once per
/// input through the scratch-backed prefix pass
/// ([`Graph::forward_prefix_with`], reusing the previous call's
/// buffers), and each Monte Carlo pass re-runs only the Bayesian
/// suffix through a reusable [`ExecScratch`]
/// ([`Graph::forward_from_with`]). Bit-identical to the legacy
/// [`crate::McdPredictor`] at any thread count.
#[derive(Debug)]
pub struct FloatBackend<'g> {
    graph: &'g Graph,
    prepared: Option<FloatPrepared>,
    /// im2col workspace of the prefix pass, kept across `prepare`
    /// calls.
    prefix_cols: Vec<f32>,
}

#[derive(Debug)]
struct FloatPrepared {
    /// Shape of the bound input (sizes the suffix scratch).
    shape: Shape4,
    /// Either the cached prefix activations with the node id of the
    /// first active MCD site (IC path), or the input itself for the
    /// deterministic full-forward fallback — never both, so the IC
    /// path does not clone the input batch.
    state: FloatState,
}

#[derive(Debug)]
enum FloatState {
    Prefix(Activations, usize),
    Full(Tensor),
}

/// Bind an input for the float-graph backends ([`FloatBackend`],
/// [`FusedBackend`] — both resume from the very same cached
/// activations): cache the deterministic prefix when a site is
/// active (IC: the scratch-backed prefix pass keeps every node
/// output up to the suffix boundary so re-runs can resume, reusing
/// the previous call's buffers through `reuse`/`cols`), else keep
/// the input for the full-forward fallback.
fn prepare_float_state(
    graph: &Graph,
    x: &Tensor,
    active: &[bool],
    reuse: Option<FloatPrepared>,
    cols: &mut Vec<f32>,
) -> FloatPrepared {
    let state = match first_active_site_node(graph, active) {
        Some(site_node) => {
            let reuse_acts = reuse.and_then(|p| match p.state {
                FloatState::Prefix(acts, _) => Some(acts),
                FloatState::Full(_) => None,
            });
            FloatState::Prefix(
                graph.forward_prefix_with(x, site_node - 1, &MaskSet::none(), reuse_acts, cols),
                site_node,
            )
        }
        None => FloatState::Full(x.clone()),
    };
    FloatPrepared {
        shape: x.shape(),
        state,
    }
}

/// Node id of the first active MCD site in a graph, if any.
fn first_active_site_node(graph: &Graph, active: &[bool]) -> Option<usize> {
    graph
        .nodes()
        .iter()
        .enumerate()
        .find_map(|(id, node)| match node.op {
            Op::McdSite { site, .. } if active.get(site.0).copied().unwrap_or(false) => Some(id),
            _ => None,
        })
}

/// Analytic weight-streaming traffic of one `{L, S}` prediction over a
/// float graph: every weight layer's parameter bytes, counted once for
/// the deterministic prefix and — per sample for the per-sample engine,
/// once per layer for the fused engine — for the Bayesian suffix.
///
/// This is the quantity the paper's accelerator dataflow (and the
/// software batched-sample fusion) optimizes: with `fused_suffix` the
/// suffix term loses its factor of `S`. With no active site the whole
/// network counts once on either engine — the generic engine
/// short-circuits a deterministic predictive to a single pass and
/// replicates it, so no weight is streamed `S` times there.
fn weight_stream_bytes(graph: &Graph, bayes: BayesConfig, fused_suffix: bool) -> u64 {
    let active = active_sites(graph.n_sites(), bayes.l);
    let split = first_active_site_node(graph, &active).unwrap_or(graph.nodes().len());
    let layer_bytes = |node: &Node| -> u64 {
        match node.op {
            Op::Conv { w, b, .. } | Op::Linear { w, b, .. } => {
                4 * (graph.params().get(w).len() + graph.params().get(b).len()) as u64
            }
            _ => 0,
        }
    };
    graph
        .nodes()
        .iter()
        .enumerate()
        .map(|(id, node)| {
            let bytes = layer_bytes(node);
            if id < split || fused_suffix {
                bytes
            } else {
                bytes * bayes.s as u64
            }
        })
        .sum()
}

impl<'g> FloatBackend<'g> {
    /// Create a backend over a graph.
    pub fn new(graph: &'g Graph) -> FloatBackend<'g> {
        FloatBackend {
            graph,
            prepared: None,
            prefix_cols: Vec::new(),
        }
    }

    fn prepared(&self) -> &FloatPrepared {
        self.prepared
            .as_ref()
            .expect("FloatBackend::prepare not called")
    }
}

/// Softmax the rows of a logits tensor in place and return it.
fn softmaxed(mut logits: Tensor) -> Tensor {
    let s = logits.shape();
    let (rows, cols) = (s.n, s.item_len());
    softmax_rows(logits.as_mut_slice(), rows, cols);
    logits
}

impl BayesBackend for FloatBackend<'_> {
    type Scratch = Option<ExecScratch>;

    fn name(&self) -> &'static str {
        "float"
    }

    fn n_sites(&self) -> usize {
        self.graph.n_sites()
    }

    fn site_channels(&self, input: Shape4) -> Vec<usize> {
        self.graph.site_channels(input)
    }

    fn output_classes(&self, input: Shape4) -> usize {
        self.graph.infer_shapes(input)[self.graph.output_id()].item_len()
    }

    fn prepare(&mut self, x: &Tensor, active: &[bool]) {
        let reuse = self.prepared.take();
        self.prepared = Some(prepare_float_state(
            self.graph,
            x,
            active,
            reuse,
            &mut self.prefix_cols,
        ));
    }

    fn make_scratch(&self) -> Option<ExecScratch> {
        let p = self.prepared();
        // Suffix-sized scratch; conv batch splitting is disabled
        // because the engine already owns the host's parallelism.
        match p.state {
            FloatState::Prefix(_, site_node) => Some(
                self.graph
                    .scratch_after(p.shape, site_node - 1)
                    .serial_conv(),
            ),
            FloatState::Full(_) => None,
        }
    }

    fn forward(&self, masks: &MaskSet, scratch: &mut Option<ExecScratch>) -> Tensor {
        let logits = match (&self.prepared().state, scratch) {
            (FloatState::Prefix(prefix, site_node), Some(scratch)) => {
                self.graph
                    .forward_from_with(prefix, site_node - 1, masks, scratch)
            }
            (FloatState::Full(x), _) => self.graph.forward(x, masks),
            (FloatState::Prefix(..), None) => {
                unreachable!("IC-path scratch comes from make_scratch")
            }
        };
        softmaxed(logits)
    }

    fn model_cost(&self, bayes: BayesConfig) -> Option<ModelCost> {
        Some(ModelCost {
            cycles: 0,
            latency_ms: 0.0,
            mem_bytes: weight_stream_bytes(self.graph, bayes, false),
        })
    }

    fn fork(&self) -> Option<Self> {
        Some(FloatBackend::new(self.graph))
    }
}

/// The fused batched-sample f32 backend: the software analogue of the
/// accelerator's weight-streaming dataflow.
///
/// [`FloatBackend`] re-runs the Bayesian suffix once per Monte Carlo
/// sample, paying the weight traffic of every suffix layer `S` times.
/// This backend instead hands each engine worker's whole sample chunk
/// to [`bnn_nn::Graph::forward_from_stacked`], which walks the suffix
/// *once* with the samples stacked along the batch axis — convolutions
/// through a sample-stacked im2col buffer and one `(S·Ho·Wo)`-column
/// GEMM, fully-connected layers through one row-stacked GEMM — so each
/// weight matrix streams once per layer per chunk. Per-sample dropout
/// masks are applied to each sample's stacked item group.
///
/// Because the stacked kernels are bit-identical to the per-sample
/// ones at any chunk size (see `bnn_tensor::gemm_stacked`), the fused
/// predictions are **bit-identical to [`FloatBackend`]** under the
/// same seed and mask stream, at any thread count. `model_cost`
/// reports the reduced weight-streaming traffic: suffix weights once
/// per layer instead of once per sample.
#[derive(Debug)]
pub struct FusedBackend<'g> {
    graph: &'g Graph,
    prepared: Option<FloatPrepared>,
    /// im2col workspace of the prefix pass, kept across `prepare`
    /// calls.
    prefix_cols: Vec<f32>,
    /// Bumped on every [`BayesBackend::prepare`]: pooled scratches
    /// from an older generation replicate a *previous* prefix and must
    /// drop their replicas before reuse.
    generation: u64,
    /// Retired stacked workspaces, reused across predictive calls.
    /// Building one is allocation- and page-fault-heavy (hundreds of
    /// microseconds at `S = 100`), which would otherwise be paid per
    /// call per worker.
    pool: std::sync::Arc<std::sync::Mutex<Vec<PooledStacked>>>,
}

/// Bound on retired workspaces kept alive (per backend).
const SCRATCH_POOL_CAP: usize = 8;

#[derive(Debug)]
struct PooledStacked {
    generation: u64,
    shape: Shape4,
    from: usize,
    scratch: StackedScratch,
}

/// Per-worker scratch of [`FusedBackend`]: the stacked suffix
/// workspace, acquired from the backend's pool (or built) for the
/// worker's chunk size and returned to the pool on drop. The
/// deterministic fallback path needs no scratch.
#[derive(Debug)]
pub struct FusedScratch {
    stacked: Option<StackedScratch>,
    /// `(generation, input shape, suffix boundary)` of the held
    /// scratch, for pool revalidation.
    meta: Option<(u64, Shape4, usize)>,
    pool: std::sync::Arc<std::sync::Mutex<Vec<PooledStacked>>>,
}

impl FusedScratch {
    /// Hand the held workspace back to the backend's pool.
    fn retire(&mut self) {
        if let (Some(scratch), Some((generation, shape, from))) =
            (self.stacked.take(), self.meta.take())
        {
            if let Ok(mut pool) = self.pool.lock() {
                if pool.len() < SCRATCH_POOL_CAP {
                    pool.push(PooledStacked {
                        generation,
                        shape,
                        from,
                        scratch,
                    });
                }
            }
        }
    }
}

impl Drop for FusedScratch {
    fn drop(&mut self) {
        self.retire();
    }
}

impl<'g> FusedBackend<'g> {
    /// Create a fused backend over a graph.
    pub fn new(graph: &'g Graph) -> FusedBackend<'g> {
        FusedBackend {
            graph,
            prepared: None,
            prefix_cols: Vec::new(),
            generation: 0,
            pool: std::sync::Arc::default(),
        }
    }

    fn prepared(&self) -> &FloatPrepared {
        self.prepared
            .as_ref()
            .expect("FusedBackend::prepare not called")
    }

    /// Make `scratch` hold a stacked workspace for `samples` chunks of
    /// the current prepared input: reuse what it already holds if it
    /// matches, else acquire from the pool (dropping stale prefix
    /// replicas), else build fresh.
    fn provision<'s>(
        &self,
        scratch: &'s mut FusedScratch,
        shape: Shape4,
        from: usize,
        samples: usize,
    ) -> &'s mut StackedScratch {
        let held_ok = scratch.stacked.as_ref().is_some_and(|sc| {
            sc.samples() == samples && scratch.meta == Some((self.generation, shape, from))
        });
        if !held_ok {
            scratch.retire();
            let pooled = self.pool.lock().ok().and_then(|mut pool| {
                pool.iter()
                    .position(|e| {
                        e.scratch.samples() == samples && e.shape == shape && e.from == from
                    })
                    .map(|pos| pool.swap_remove(pos))
            });
            let sc = match pooled {
                Some(mut e) => {
                    if e.generation != self.generation {
                        // Replicas belong to a previous prepare.
                        e.scratch.clear_replicas();
                    }
                    e.scratch
                }
                None => self.graph.stacked_scratch_after(shape, from, samples),
            };
            scratch.stacked = Some(sc);
            scratch.meta = Some((self.generation, shape, from));
        }
        scratch.stacked.as_mut().expect("scratch just provisioned")
    }
}

impl BayesBackend for FusedBackend<'_> {
    type Scratch = FusedScratch;

    fn name(&self) -> &'static str {
        "fused"
    }

    fn n_sites(&self) -> usize {
        self.graph.n_sites()
    }

    fn site_channels(&self, input: Shape4) -> Vec<usize> {
        self.graph.site_channels(input)
    }

    fn output_classes(&self, input: Shape4) -> usize {
        self.graph.infer_shapes(input)[self.graph.output_id()].item_len()
    }

    fn prepare(&mut self, x: &Tensor, active: &[bool]) {
        self.generation += 1;
        let reuse = self.prepared.take();
        self.prepared = Some(prepare_float_state(
            self.graph,
            x,
            active,
            reuse,
            &mut self.prefix_cols,
        ));
    }

    fn make_scratch(&self) -> FusedScratch {
        FusedScratch {
            stacked: None,
            meta: None,
            pool: std::sync::Arc::clone(&self.pool),
        }
    }

    fn forward(&self, masks: &MaskSet, scratch: &mut FusedScratch) -> Tensor {
        self.forward_batch(std::slice::from_ref(masks), scratch)
            .pop()
            .expect("one mask set yields one sample")
    }

    fn forward_batch(&self, mask_sets: &[MaskSet], scratch: &mut FusedScratch) -> Vec<Tensor> {
        let p = self.prepared();
        match &p.state {
            // Deterministic fallback: no suffix to fuse.
            FloatState::Full(x) => mask_sets
                .iter()
                .map(|m| softmaxed(self.graph.forward(x, m)))
                .collect(),
            FloatState::Prefix(prefix, site_node) => {
                let from = site_node - 1;
                let s = mask_sets.len();
                let stacked = self.provision(scratch, p.shape, from, s);
                let mut logits = self
                    .graph
                    .forward_from_stacked(prefix, from, mask_sets, stacked);
                let ls = logits.shape();
                softmax_rows(logits.as_mut_slice(), ls.n, ls.item_len());
                // Split the stacked (s·n, k) rows back into per-sample
                // (n, k) probability tensors.
                let (base, k) = (ls.n / s, ls.item_len());
                (0..s)
                    .map(|si| {
                        let mut t = Tensor::zeros(Shape4::vec(base, k));
                        t.as_mut_slice().copy_from_slice(
                            &logits.as_slice()[si * base * k..(si + 1) * base * k],
                        );
                        t
                    })
                    .collect()
            }
        }
    }

    fn model_cost(&self, bayes: BayesConfig) -> Option<ModelCost> {
        Some(ModelCost {
            cycles: 0,
            latency_ms: 0.0,
            mem_bytes: weight_stream_bytes(self.graph, bayes, true),
        })
    }

    fn fork(&self) -> Option<Self> {
        // A fresh fork gets its own scratch pool: pooled workspaces
        // are tagged with per-instance generations, which must not
        // collide across forks.
        Some(FusedBackend::new(self.graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SoftwareMaskSource;
    use bnn_nn::models;

    #[test]
    fn engine_on_float_backend_matches_predictor() {
        let net = models::lenet5(10, 1, 16, 4);
        let x = Tensor::full(Shape4::new(2, 1, 16, 16), 0.15);
        let cfg = BayesConfig::new(2, 5);
        let legacy = crate::McdPredictor::new(&net)
            .with_parallelism(ParallelConfig::serial())
            .predictive(&x, cfg, &mut SoftwareMaskSource::new(11));
        let mut backend = FloatBackend::new(&net);
        let (probs, cost) = predictive_on(
            &mut backend,
            &x,
            cfg,
            &mut SoftwareMaskSource::new(11),
            ParallelConfig::serial(),
        );
        assert_eq!(probs.as_slice(), legacy.as_slice());
        assert_eq!(cost.samples, 5);
        assert_eq!(cost.batch, 2);
        assert!(cost.wall_ms >= 0.0);
        let model = cost.model.expect("software paths model weight traffic");
        assert_eq!(model.cycles, 0, "CPU path has no cycle model");
        assert!(model.mem_bytes > 0, "weight traffic must be reported");
    }

    #[test]
    fn deterministic_run_does_not_consume_masks() {
        let net = models::lenet5(10, 1, 16, 4);
        let x = Tensor::full(Shape4::new(1, 1, 16, 16), 0.2);
        let cfg = BayesConfig {
            l: 0,
            s: 3,
            p: 0.25,
        };
        let mut backend = FloatBackend::new(&net);
        let mut src = SoftwareMaskSource::new(3);
        let passes = sample_probs_on(&mut backend, &x, cfg, &mut src, ParallelConfig::serial());
        assert_eq!(passes.len(), 3);
        for p in &passes[1..] {
            assert_eq!(p.as_slice(), passes[0].as_slice());
        }
        // The untouched source still matches a fresh one.
        let mut fresh = SoftwareMaskSource::new(3);
        let a = src.next_masks(&[true], &[8], 0.25);
        let b = fresh.next_masks(&[true], &[8], 0.25);
        assert_eq!(
            a.get(0).map(|m| m.keep.clone()),
            b.get(0).map(|m| m.keep.clone())
        );
    }

    #[test]
    fn batched_engine_accumulates_cost() {
        let net = models::lenet5(10, 1, 16, 6);
        let xs = Tensor::full(Shape4::new(5, 1, 16, 16), 0.1);
        let cfg = BayesConfig::new(1, 2);
        let mut backend = FloatBackend::new(&net);
        let mut src = SoftwareMaskSource::new(9);
        let (probs, cost) = predictive_batched_on(
            &mut backend,
            &xs,
            cfg,
            &mut src,
            ParallelConfig::serial(),
            2,
        );
        assert_eq!(probs.shape(), Shape4::vec(5, 10));
        assert_eq!(cost.batch, 5);
        assert_eq!(cost.samples, 3 * 2, "S per batch, summed over 3 batches");
    }

    #[test]
    fn float_backend_reports_graph_geometry() {
        let net = models::lenet5(10, 1, 16, 1);
        let backend = FloatBackend::new(&net);
        let shape = Shape4::new(1, 1, 16, 16);
        assert_eq!(backend.n_sites(), 5);
        assert_eq!(backend.output_classes(shape), 10);
        assert_eq!(backend.site_channels(shape).len(), 5);
    }

    #[test]
    fn fused_backend_bit_identical_to_float_backend() {
        let net = models::lenet5(10, 1, 16, 13);
        let x = Tensor::from_vec(
            Shape4::new(3, 1, 16, 16),
            (0..3 * 256)
                .map(|i| ((i * 11 % 23) as f32 / 11.0) - 1.0)
                .collect(),
        );
        for l in [1usize, 3, 5] {
            let cfg = BayesConfig::new(l, 7);
            let mut float = FloatBackend::new(&net);
            let (want, _) = predictive_on(
                &mut float,
                &x,
                cfg,
                &mut SoftwareMaskSource::new(42),
                ParallelConfig::serial(),
            );
            for threads in [1usize, 4] {
                let mut fused = FusedBackend::new(&net);
                let (got, cost) = predictive_on(
                    &mut fused,
                    &x,
                    cfg,
                    &mut SoftwareMaskSource::new(42),
                    ParallelConfig::with_threads(threads),
                );
                assert_eq!(
                    got.as_slice(),
                    want.as_slice(),
                    "fused(L={l}, threads={threads}) diverged from float"
                );
                assert_eq!(cost.samples, cfg.s);
            }
        }
    }

    #[test]
    fn fused_per_sample_probs_match_float_per_sample() {
        // Not just the mean: every individual sample tensor agrees.
        let net = models::lenet5(10, 1, 16, 4);
        let x = Tensor::full(Shape4::new(2, 1, 16, 16), 0.3);
        let cfg = BayesConfig::new(2, 5);
        let mut float = FloatBackend::new(&net);
        let mut fused = FusedBackend::new(&net);
        let a = sample_probs_on(
            &mut float,
            &x,
            cfg,
            &mut SoftwareMaskSource::new(8),
            ParallelConfig::serial(),
        );
        let b = sample_probs_on(
            &mut fused,
            &x,
            cfg,
            &mut SoftwareMaskSource::new(8),
            ParallelConfig::serial(),
        );
        assert_eq!(a.len(), b.len());
        for (s, (pa, pb)) in a.iter().zip(&b).enumerate() {
            assert_eq!(pa.as_slice(), pb.as_slice(), "sample {s} diverged");
        }
    }

    #[test]
    fn fused_deterministic_fallback_matches_float() {
        let net = models::lenet5(10, 1, 16, 5);
        let x = Tensor::full(Shape4::new(1, 1, 16, 16), 0.2);
        let cfg = BayesConfig {
            l: 0,
            s: 3,
            p: 0.25,
        };
        let mut float = FloatBackend::new(&net);
        let mut fused = FusedBackend::new(&net);
        let (want, _) = predictive_on(
            &mut float,
            &x,
            cfg,
            &mut SoftwareMaskSource::new(1),
            ParallelConfig::serial(),
        );
        let (got, _) = predictive_on(
            &mut fused,
            &x,
            cfg,
            &mut SoftwareMaskSource::new(1),
            ParallelConfig::serial(),
        );
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn served_request_bit_identical_solo_vs_coalesced() {
        // The coalescing-invariance contract at the engine level: a
        // request's probabilities are a pure function of (input, seed,
        // config) — never of its neighbors, its position, the
        // schedule or the pool.
        let net = models::lenet5(10, 1, 16, 9);
        let inputs: Vec<Tensor> = (0..5)
            .map(|i| {
                Tensor::from_vec(
                    Shape4::new(1, 1, 16, 16),
                    (0..256)
                        .map(|j| ((i * 7 + j * 3) % 17) as f32 / 8.5 - 1.0)
                        .collect(),
                )
            })
            .collect();
        let cfg = BayesConfig::new(3, 6);

        // Solo reference per request, from a fresh backend each time.
        let solo: Vec<Tensor> = inputs
            .iter()
            .enumerate()
            .map(|(i, x)| {
                let mut backend = FloatBackend::new(&net);
                predictive_on(
                    &mut backend,
                    x,
                    cfg,
                    &mut SoftwareMaskSource::new(100 + i as u64),
                    ParallelConfig::serial(),
                )
                .0
            })
            .collect();

        let requests: Vec<SeededRequest<'_>> = inputs
            .iter()
            .enumerate()
            .map(|(i, x)| SeededRequest {
                x,
                seed: 100 + i as u64,
            })
            .collect();
        let pool = WorkerPool::new(4);
        for parallel in [
            ParallelConfig::serial(),
            ParallelConfig::with_threads(3),
            ParallelConfig::serial().with_batch_threads(3),
            ParallelConfig::with_threads(2)
                .with_batch_threads(2)
                .with_chunk(1),
        ] {
            // One resident backend serving the coalesced micro-batch —
            // and, crucially, the same backend reused across calls with
            // different neighbor sets.
            let mut float = FloatBackend::new(&net);
            let mut fused = FusedBackend::new(&net);
            for subset in [&requests[..], &requests[2..3], &requests[1..4]] {
                for (req, out) in subset.iter().zip(serve_requests_pooled(
                    &mut float, subset, cfg, parallel, &pool,
                )) {
                    let want = &solo[(req.seed - 100) as usize];
                    assert_eq!(
                        out.probs.as_slice(),
                        want.as_slice(),
                        "float request seed {} diverged under {parallel:?}",
                        req.seed
                    );
                    assert_eq!(out.passes.len(), cfg.s);
                    assert_eq!(out.cost.samples, cfg.s);
                    assert_eq!(out.cost.batch, 1);
                }
                for (req, out) in subset.iter().zip(serve_requests_pooled(
                    &mut fused, subset, cfg, parallel, &pool,
                )) {
                    let want = &solo[(req.seed - 100) as usize];
                    assert_eq!(
                        out.probs.as_slice(),
                        want.as_slice(),
                        "fused request seed {} diverged under {parallel:?}",
                        req.seed
                    );
                }
            }
        }
    }

    #[test]
    fn served_request_matches_solo_sample_probs_per_pass() {
        // Not just the mean: every per-sample pass agrees with solo
        // serving, which is what the uncertainty decomposition eats.
        let net = models::lenet5(10, 1, 16, 4);
        let x = Tensor::full(Shape4::new(1, 1, 16, 16), 0.3);
        let other = Tensor::full(Shape4::new(1, 1, 16, 16), -0.4);
        let cfg = BayesConfig::new(2, 5);
        let mut backend = FloatBackend::new(&net);
        let want = sample_probs_on(
            &mut backend,
            &x,
            cfg,
            &mut SoftwareMaskSource::new(77),
            ParallelConfig::serial(),
        );
        let requests = [
            SeededRequest { x: &other, seed: 1 },
            SeededRequest { x: &x, seed: 77 },
        ];
        let out = serve_requests_on(&mut backend, &requests, cfg, ParallelConfig::serial());
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].passes.len(), want.len());
        for (s, (a, b)) in want.iter().zip(&out[1].passes).enumerate() {
            assert_eq!(a.as_slice(), b.as_slice(), "pass {s} diverged");
        }
    }

    #[test]
    fn served_requests_deterministic_and_empty_edges() {
        let net = models::lenet5(10, 1, 16, 3);
        let x = Tensor::full(Shape4::new(1, 1, 16, 16), 0.2);
        // L = 0: no active site, seeds are irrelevant, the passes
        // replicate one deterministic forward.
        let cfg = BayesConfig {
            l: 0,
            s: 3,
            p: 0.25,
        };
        let mut backend = FloatBackend::new(&net);
        let out = serve_requests_on(
            &mut backend,
            &[
                SeededRequest { x: &x, seed: 1 },
                SeededRequest { x: &x, seed: 2 },
            ],
            cfg,
            ParallelConfig::serial(),
        );
        assert_eq!(out[0].probs.as_slice(), out[1].probs.as_slice());
        // Empty micro-batch: no work, no panic.
        let none = serve_requests_on(&mut backend, &[], cfg, ParallelConfig::serial());
        assert!(none.is_empty());
    }

    #[test]
    fn fused_counts_suffix_weight_traffic_once_per_layer() {
        let net = models::lenet5(10, 1, 16, 2);
        let float = FloatBackend::new(&net);
        let fused = FusedBackend::new(&net);
        let float_cost = |cfg: BayesConfig| float.model_cost(cfg).unwrap().mem_bytes;
        let fused_cost = |cfg: BayesConfig| fused.model_cost(cfg).unwrap().mem_bytes;

        // Fused traffic is independent of S; float grows linearly.
        assert_eq!(
            fused_cost(BayesConfig::new(2, 10)),
            fused_cost(BayesConfig::new(2, 50))
        );
        let (f10, f50) = (
            float_cost(BayesConfig::new(2, 10)),
            float_cost(BayesConfig::new(2, 50)),
        );
        assert!(f50 > f10, "float weight traffic must grow with S");
        // The regression identity: float(S) = prefix + S·suffix and
        // fused = prefix + suffix, so the slope recovers the suffix.
        let suffix = (f10 - fused_cost(BayesConfig::new(2, 10))) / 9;
        assert!(suffix > 0, "the Bayesian suffix contains weight layers");
        assert_eq!(
            f50 - f10,
            40 * suffix,
            "float slope must be the suffix weight bytes"
        );
        // Deterministic runs stream everything exactly once on both.
        let det = BayesConfig {
            l: 0,
            s: 25,
            p: 0.25,
        };
        assert_eq!(float_cost(det), fused_cost(det));
    }
}
