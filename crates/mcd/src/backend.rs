//! The [`BayesBackend`] trait and the generic Monte Carlo sampling
//! engine.
//!
//! The paper's central claim is that one Bayesian workload — `S`
//! Monte Carlo forward passes over a partially-Bayesian network — can
//! be retargeted across execution substrates: f32 software, int8
//! integer arithmetic, and the FPGA accelerator. This module encodes
//! that claim in the type system. A substrate implements
//! [`BayesBackend`] (single-pass execution for a prepared input plus
//! an optional analytic cost model) and the *one* generic engine here
//! supplies everything else:
//!
//! * active-site computation (`last L of N`),
//! * serial mask pre-draw from a [`MaskSource`] (so the deterministic
//!   stream never depends on thread timing),
//! * [`ParallelConfig`] thread fan-out with per-worker scratch,
//! * sample averaging ([`mean_probs`]) and batched prediction,
//! * wall-clock and model-cost accounting ([`CostReport`]).
//!
//! [`FloatBackend`] (below) wraps the f32 [`Graph`] executor with the
//! intermediate-layer-caching suffix re-runs; `bnn-quant` provides
//! `Int8Backend`, `bnn-accel` provides `AccelBackend`, and the
//! `bnn-fpga` facade ties them together behind a `Session` builder.
//! Any future substrate (batched-GEMM fusion, SIMD kernels, sharded
//! serving) is a drop-in `impl BayesBackend`.

use crate::predict::{active_sites, mean_probs, BayesConfig, ParallelConfig};
use crate::source::MaskSource;
use bnn_nn::{Activations, ExecScratch, Graph, MaskSet, Op};
use bnn_tensor::{softmax_rows, Shape4, Tensor};
use std::time::Instant;

/// Analytic cost of one `{L, S}` predictive run, for backends that
/// carry a hardware model (the accelerator reports cycles, latency at
/// its configured clock, and off-chip traffic).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModelCost {
    /// Modelled execution cycles for the complete prediction.
    pub cycles: u64,
    /// Modelled latency in milliseconds at the backend's clock.
    pub latency_ms: f64,
    /// Modelled off-chip memory traffic in bytes.
    pub mem_bytes: u64,
}

/// Cost report of one predictive run through the generic engine.
///
/// Wall-clock time is measured by the engine for every backend; the
/// `model` field carries the backend's analytic hardware cost when it
/// has one (CPU paths report `None`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostReport {
    /// Monte Carlo samples requested (`S`, summed over batches). A
    /// fully deterministic run (`L = 0`) executes one pass and
    /// replicates it, so this is not a per-pass work count there.
    pub samples: usize,
    /// Input items predicted.
    pub batch: usize,
    /// Measured wall-clock time in milliseconds.
    pub wall_ms: f64,
    /// The backend's analytic cost model, if it has one (summed over
    /// batches).
    pub model: Option<ModelCost>,
}

impl CostReport {
    /// Fold another run's cost into this one (batched prediction).
    pub fn accumulate(&mut self, other: &CostReport) {
        self.samples += other.samples;
        self.batch += other.batch;
        self.wall_ms += other.wall_ms;
        self.model = match (self.model, other.model) {
            (Some(a), Some(b)) => Some(ModelCost {
                cycles: a.cycles + b.cycles,
                latency_ms: a.latency_ms + b.latency_ms,
                mem_bytes: a.mem_bytes + b.mem_bytes,
            }),
            (a, b) => a.or(b),
        };
    }
}

/// One Bayesian execution substrate (float, int8, accelerator, ...).
///
/// A backend executes single Monte Carlo passes for one *prepared*
/// input; the generic engine ([`sample_probs_on`], [`predictive_on`],
/// [`predictive_batched_on`]) owns mask pre-draw, thread fan-out,
/// averaging and cost accounting. The contract:
///
/// 1. [`BayesBackend::prepare`] binds an input batch and precomputes
///    whatever is shared across samples — typically the deterministic
///    prefix under intermediate-layer caching.
/// 2. [`BayesBackend::forward`] runs one pass over the prepared input
///    and returns *softmax probabilities* `(n, k)`. It takes `&self`
///    plus a per-worker [`BayesBackend::Scratch`], so the engine may
///    fan passes out across threads.
/// 3. Results must not depend on scratch contents or thread count —
///    the engine's bit-identical-at-any-parallelism guarantee extends
///    to every backend.
pub trait BayesBackend: Sync {
    /// Per-worker mutable state (scratch buffers) reused across the
    /// samples one worker executes. Use `()` if none is needed.
    type Scratch: Send;

    /// Short backend name for logs, benches and cost reports.
    fn name(&self) -> &'static str;

    /// Number of MCD sites in the compiled network (the paper's `N`).
    fn n_sites(&self) -> usize;

    /// Mask length per site for an input shape (the channel count each
    /// site's Bernoulli draw must cover).
    fn site_channels(&self, input: Shape4) -> Vec<usize>;

    /// Output classes `K` for an input shape.
    fn output_classes(&self, input: Shape4) -> usize;

    /// Bind an input batch and precompute per-input state shared by
    /// all samples. Called exactly once before a group of
    /// [`BayesBackend::forward`] calls.
    fn prepare(&mut self, x: &Tensor, active: &[bool]);

    /// Fresh per-worker scratch for the prepared input.
    fn make_scratch(&self) -> Self::Scratch;

    /// One Monte Carlo pass over the prepared input: softmax
    /// probabilities of shape `(n, k)`.
    fn forward(&self, masks: &MaskSet, scratch: &mut Self::Scratch) -> Tensor;

    /// Analytic cost of a full `{L, S}` prediction, if the backend
    /// models one (the accelerator's cycle/traffic models).
    fn model_cost(&self, bayes: BayesConfig) -> Option<ModelCost> {
        let _ = bayes;
        None
    }
}

/// Per-sample softmax probabilities: `s` tensors of shape `(n, k)`.
///
/// This is *the* sampling engine — every backend and the legacy
/// [`crate::McdPredictor`] route through it. All `S` mask sets are
/// drawn serially from `src` up front, then the passes fan out over
/// `parallel.threads` scoped workers (contiguous chunks, joined in
/// spawn order), which keeps the result bit-identical at any thread
/// count. With no active Bayesian site the predictive is
/// deterministic: one pass, replicated, and `src` is not consumed.
///
/// # Panics
///
/// Panics if `cfg.s == 0`.
pub fn sample_probs_on<B: BayesBackend>(
    backend: &mut B,
    x: &Tensor,
    cfg: BayesConfig,
    src: &mut dyn MaskSource,
    parallel: ParallelConfig,
) -> Vec<Tensor> {
    assert!(cfg.s > 0, "at least one Monte Carlo sample required");
    let active = active_sites(backend.n_sites(), cfg.l);
    if !active.iter().any(|&a| a) {
        // No Bayesian layer: the predictive is deterministic and the
        // mask stream is left untouched.
        backend.prepare(x, &active);
        let mut scratch = backend.make_scratch();
        let probs = backend.forward(&MaskSet::none(), &mut scratch);
        return vec![probs; cfg.s];
    }
    let channels = backend.site_channels(x.shape());
    backend.prepare(x, &active);
    let mask_sets: Vec<MaskSet> = (0..cfg.s)
        .map(|_| src.next_masks(&active, &channels, cfg.p))
        .collect();
    run_samples(backend, &mask_sets, parallel)
}

/// Execute pre-drawn mask sets on a prepared backend with the
/// configured fan-out. Samples are returned in mask-set order.
fn run_samples<B: BayesBackend>(
    backend: &B,
    mask_sets: &[MaskSet],
    parallel: ParallelConfig,
) -> Vec<Tensor> {
    let threads = parallel.threads.clamp(1, mask_sets.len());
    if threads == 1 {
        // Strictly serial: one scratch, no threads anywhere.
        let mut scratch = backend.make_scratch();
        return mask_sets
            .iter()
            .map(|m| backend.forward(m, &mut scratch))
            .collect();
    }
    // Contiguous sample chunks per worker; joining in spawn order
    // keeps the samples in stream order.
    let chunk = mask_sets.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let workers: Vec<_> = mask_sets
            .chunks(chunk)
            .map(|ms| {
                scope.spawn(move || {
                    let mut scratch = backend.make_scratch();
                    ms.iter()
                        .map(|m| backend.forward(m, &mut scratch))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("sampler thread panicked"))
            .collect()
    })
}

/// Predictive distribution `(n, k)` — the mean of the per-sample
/// softmax probabilities (the paper's `1/S Σ p(y|x, M_s)`) — plus the
/// run's cost report.
pub fn predictive_on<B: BayesBackend>(
    backend: &mut B,
    x: &Tensor,
    cfg: BayesConfig,
    src: &mut dyn MaskSource,
    parallel: ParallelConfig,
) -> (Tensor, CostReport) {
    let t0 = Instant::now();
    let passes = sample_probs_on(backend, x, cfg, src, parallel);
    let probs = mean_probs(&passes, passes.len());
    let report = CostReport {
        samples: cfg.s,
        batch: x.shape().n,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        model: backend.model_cost(cfg),
    };
    (probs, report)
}

/// Predictive over a dataset in batches of at most `batch` items,
/// returning an `(n, k)` probability tensor and the accumulated cost.
///
/// # Panics
///
/// Panics if `batch == 0` or `xs` is empty.
pub fn predictive_batched_on<B: BayesBackend>(
    backend: &mut B,
    xs: &Tensor,
    cfg: BayesConfig,
    src: &mut dyn MaskSource,
    parallel: ParallelConfig,
    batch: usize,
) -> (Tensor, CostReport) {
    assert!(batch > 0, "batch must be non-zero");
    let s = xs.shape();
    let mut out: Option<Tensor> = None;
    let mut cost = CostReport::default();
    let mut row = 0usize;
    while row < s.n {
        let take = batch.min(s.n - row);
        let mut bx = Tensor::zeros(Shape4::new(take, s.c, s.h, s.w));
        for i in 0..take {
            bx.item_mut(i).copy_from_slice(xs.item(row + i));
        }
        let (probs, c) = predictive_on(backend, &bx, cfg, src, parallel);
        cost.accumulate(&c);
        let k = probs.shape().item_len();
        let all = out.get_or_insert_with(|| Tensor::zeros(Shape4::vec(s.n, k)));
        for i in 0..take {
            all.item_mut(row + i).copy_from_slice(probs.item(i));
        }
        row += take;
    }
    (out.expect("dataset is non-empty"), cost)
}

/// The f32 software backend: wraps the [`Graph`] executor with the
/// PR-1 performance engine — the deterministic prefix runs once per
/// input ([`Graph::forward_full`]) and each Monte Carlo pass re-runs
/// only the Bayesian suffix through a reusable [`ExecScratch`]
/// ([`Graph::forward_from_with`]). Bit-identical to the legacy
/// [`crate::McdPredictor`] at any thread count.
#[derive(Debug)]
pub struct FloatBackend<'g> {
    graph: &'g Graph,
    prepared: Option<FloatPrepared>,
}

#[derive(Debug)]
struct FloatPrepared {
    /// Shape of the bound input (sizes the suffix scratch).
    shape: Shape4,
    /// Either the cached prefix activations with the node id of the
    /// first active MCD site (IC path), or the input itself for the
    /// deterministic full-forward fallback — never both, so the IC
    /// path does not clone the input batch.
    state: FloatState,
}

#[derive(Debug)]
enum FloatState {
    Prefix(Activations, usize),
    Full(Tensor),
}

impl<'g> FloatBackend<'g> {
    /// Create a backend over a graph.
    pub fn new(graph: &'g Graph) -> FloatBackend<'g> {
        FloatBackend {
            graph,
            prepared: None,
        }
    }

    /// Node id of the first active MCD site, if any.
    fn first_active_site_node(&self, active: &[bool]) -> Option<usize> {
        self.graph
            .nodes()
            .iter()
            .enumerate()
            .find_map(|(id, node)| match node.op {
                Op::McdSite { site, .. } if active.get(site.0).copied().unwrap_or(false) => {
                    Some(id)
                }
                _ => None,
            })
    }

    fn prepared(&self) -> &FloatPrepared {
        self.prepared
            .as_ref()
            .expect("FloatBackend::prepare not called")
    }
}

/// Softmax the rows of a logits tensor in place and return it.
fn softmaxed(mut logits: Tensor) -> Tensor {
    let s = logits.shape();
    let (rows, cols) = (s.n, s.item_len());
    softmax_rows(logits.as_mut_slice(), rows, cols);
    logits
}

impl BayesBackend for FloatBackend<'_> {
    type Scratch = Option<ExecScratch>;

    fn name(&self) -> &'static str {
        "float"
    }

    fn n_sites(&self) -> usize {
        self.graph.n_sites()
    }

    fn site_channels(&self, input: Shape4) -> Vec<usize> {
        self.graph.site_channels(input)
    }

    fn output_classes(&self, input: Shape4) -> usize {
        self.graph.infer_shapes(input)[self.graph.output_id()].item_len()
    }

    fn prepare(&mut self, x: &Tensor, active: &[bool]) {
        let state = match self.first_active_site_node(active) {
            // IC: run the deterministic prefix once; `forward_full`
            // keeps every node output so suffix re-runs can resume.
            Some(site_node) => {
                FloatState::Prefix(self.graph.forward_full(x, &MaskSet::none()), site_node)
            }
            None => FloatState::Full(x.clone()),
        };
        self.prepared = Some(FloatPrepared {
            shape: x.shape(),
            state,
        });
    }

    fn make_scratch(&self) -> Option<ExecScratch> {
        let p = self.prepared();
        // Suffix-sized scratch; conv batch splitting is disabled
        // because the engine already owns the host's parallelism.
        match p.state {
            FloatState::Prefix(_, site_node) => Some(
                self.graph
                    .scratch_after(p.shape, site_node - 1)
                    .serial_conv(),
            ),
            FloatState::Full(_) => None,
        }
    }

    fn forward(&self, masks: &MaskSet, scratch: &mut Option<ExecScratch>) -> Tensor {
        let logits = match (&self.prepared().state, scratch) {
            (FloatState::Prefix(prefix, site_node), Some(scratch)) => {
                self.graph
                    .forward_from_with(prefix, site_node - 1, masks, scratch)
            }
            (FloatState::Full(x), _) => self.graph.forward(x, masks),
            (FloatState::Prefix(..), None) => {
                unreachable!("IC-path scratch comes from make_scratch")
            }
        };
        softmaxed(logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SoftwareMaskSource;
    use bnn_nn::models;

    #[test]
    fn engine_on_float_backend_matches_predictor() {
        let net = models::lenet5(10, 1, 16, 4);
        let x = Tensor::full(Shape4::new(2, 1, 16, 16), 0.15);
        let cfg = BayesConfig::new(2, 5);
        let legacy = crate::McdPredictor::new(&net)
            .with_parallelism(ParallelConfig::serial())
            .predictive(&x, cfg, &mut SoftwareMaskSource::new(11));
        let mut backend = FloatBackend::new(&net);
        let (probs, cost) = predictive_on(
            &mut backend,
            &x,
            cfg,
            &mut SoftwareMaskSource::new(11),
            ParallelConfig::serial(),
        );
        assert_eq!(probs.as_slice(), legacy.as_slice());
        assert_eq!(cost.samples, 5);
        assert_eq!(cost.batch, 2);
        assert!(cost.wall_ms >= 0.0);
        assert!(cost.model.is_none(), "CPU path has no hardware model");
    }

    #[test]
    fn deterministic_run_does_not_consume_masks() {
        let net = models::lenet5(10, 1, 16, 4);
        let x = Tensor::full(Shape4::new(1, 1, 16, 16), 0.2);
        let cfg = BayesConfig {
            l: 0,
            s: 3,
            p: 0.25,
        };
        let mut backend = FloatBackend::new(&net);
        let mut src = SoftwareMaskSource::new(3);
        let passes = sample_probs_on(&mut backend, &x, cfg, &mut src, ParallelConfig::serial());
        assert_eq!(passes.len(), 3);
        for p in &passes[1..] {
            assert_eq!(p.as_slice(), passes[0].as_slice());
        }
        // The untouched source still matches a fresh one.
        let mut fresh = SoftwareMaskSource::new(3);
        let a = src.next_masks(&[true], &[8], 0.25);
        let b = fresh.next_masks(&[true], &[8], 0.25);
        assert_eq!(
            a.get(0).map(|m| m.keep.clone()),
            b.get(0).map(|m| m.keep.clone())
        );
    }

    #[test]
    fn batched_engine_accumulates_cost() {
        let net = models::lenet5(10, 1, 16, 6);
        let xs = Tensor::full(Shape4::new(5, 1, 16, 16), 0.1);
        let cfg = BayesConfig::new(1, 2);
        let mut backend = FloatBackend::new(&net);
        let mut src = SoftwareMaskSource::new(9);
        let (probs, cost) = predictive_batched_on(
            &mut backend,
            &xs,
            cfg,
            &mut src,
            ParallelConfig::serial(),
            2,
        );
        assert_eq!(probs.shape(), Shape4::vec(5, 10));
        assert_eq!(cost.batch, 5);
        assert_eq!(cost.samples, 3 * 2, "S per batch, summed over 3 batches");
    }

    #[test]
    fn float_backend_reports_graph_geometry() {
        let net = models::lenet5(10, 1, 16, 1);
        let backend = FloatBackend::new(&net);
        let shape = Shape4::new(1, 1, 16, 16);
        assert_eq!(backend.n_sites(), 5);
        assert_eq!(backend.output_classes(shape), 10);
        assert_eq!(backend.site_channels(shape).len(), 5);
    }
}
