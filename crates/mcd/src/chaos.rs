//! Deterministic fault injection: [`ChaosBackend`], a wrapper that
//! makes any [`BayesBackend`] misbehave *on a replayable schedule*.
//!
//! The serving stack's robustness claims — panic quarantine, circuit
//! breaking, graceful drain, bounded tail latency under slow backends
//! — cannot be trusted without a way to provoke the failures on
//! demand. This module is that provocation, built to the same
//! determinism standard as the sampling engine itself: every fault
//! decision is a **pure function of the chaos seed and a call index**
//! ([`fault_at`]), so a chaos run is replayable bit-for-bit — the same
//! seed produces the same panics and the same delays, and any observed
//! failure can be reproduced offline from `(seed, index)` alone.
//!
//! Faults are injected at [`BayesBackend::prepare`], which the engine
//! calls exactly once per served request (or per predictive call), so
//! one fault decision maps to one request — the granularity the
//! serving layer's containment guarantees are stated at. All other
//! trait methods delegate untouched, which yields the transparency
//! contract conformance check 7 pins down: with faults disabled a
//! [`ChaosBackend`] is **bit-identical** to its inner backend, and
//! under active injection every *non-faulted* call's result is
//! bit-identical to the fault-free run.
//!
//! The call counter is shared across [`BayesBackend::fork`]s (an
//! atomic), so the total fault budget is honoured under any schedule;
//! the *assignment* of fault indices to requests is deterministic
//! under the sequential request schedule (`batch_threads = 1`, the
//! serving dispatcher's default), which is what the chaos suite runs.

use crate::backend::{BayesBackend, ModelCost};
use crate::predict::BayesConfig;
use bnn_nn::MaskSet;
use bnn_rng::SoftRng;
use bnn_tensor::{Shape4, Tensor};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-call fault probabilities and the seed their schedule derives
/// from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the fault schedule ([`fault_at`] is pure in this).
    pub seed: u64,
    /// Probability that a call panics (checked first).
    pub panic_prob: f64,
    /// Probability that a non-panicking call is delayed by
    /// [`ChaosConfig::delay`].
    pub delay_prob: f64,
    /// The injected delay for delayed calls.
    pub delay: Duration,
}

impl ChaosConfig {
    /// A schedule that injects nothing — the transparency baseline
    /// (conformance check 7 asserts a backend wrapped with this is
    /// bit-identical to the bare backend).
    pub fn disabled(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            panic_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::ZERO,
        }
    }

    /// A schedule with the given panic and delay probabilities and a
    /// small (1 ms) injected delay.
    pub fn new(seed: u64, panic_prob: f64, delay_prob: f64) -> ChaosConfig {
        ChaosConfig {
            seed,
            panic_prob,
            delay_prob,
            delay: Duration::from_millis(1),
        }
    }

    /// The first `calls` fault decisions of this schedule — the
    /// replay/inspection hook for tests and offline debugging.
    pub fn schedule(&self, calls: u64) -> Vec<Fault> {
        (0..calls).map(|i| fault_at(self, i)).collect()
    }
}

/// One fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The call proceeds untouched.
    None,
    /// The call is delayed by [`ChaosConfig::delay`], then proceeds.
    Delay,
    /// The call panics (`"chaos: injected panic at call <i>"`).
    Panic,
}

/// The fault decision for call `index` under `cfg` — a pure function,
/// so any chaos run is replayable offline from the seed alone.
///
/// One SplitMix64 stream per `(seed, index)` pair (the same derivation
/// idiom as `bnn_serve::request_seed`): the first uniform draw decides
/// panic, the second decides delay.
pub fn fault_at(cfg: &ChaosConfig, index: u64) -> Fault {
    let mut rng = SoftRng::new(cfg.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    if rng.next_f64() < cfg.panic_prob {
        Fault::Panic
    } else if rng.next_f64() < cfg.delay_prob {
        Fault::Delay
    } else {
        Fault::None
    }
}

/// A [`BayesBackend`] wrapper injecting seeded panics and delays at
/// [`BayesBackend::prepare`] (once per served request), per
/// [`ChaosConfig`]. Everything else delegates to the inner backend
/// untouched — see the module docs for the transparency contract.
#[derive(Debug)]
pub struct ChaosBackend<B> {
    inner: B,
    cfg: ChaosConfig,
    /// Calls made so far, shared across forks so the schedule is one
    /// global sequence.
    calls: Arc<AtomicU64>,
}

impl<B> ChaosBackend<B> {
    /// Wrap a backend with a fault schedule.
    pub fn new(inner: B, cfg: ChaosConfig) -> ChaosBackend<B> {
        ChaosBackend {
            inner,
            cfg,
            calls: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Prepare calls made so far (across all forks) — the next call
    /// takes fault index `calls()`.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// This wrapper's fault schedule.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }
}

impl<B: BayesBackend> BayesBackend for ChaosBackend<B> {
    type Scratch = B::Scratch;

    fn name(&self) -> &'static str {
        "chaos"
    }

    fn n_sites(&self) -> usize {
        self.inner.n_sites()
    }

    fn site_channels(&self, input: Shape4) -> Vec<usize> {
        self.inner.site_channels(input)
    }

    fn output_classes(&self, input: Shape4) -> usize {
        self.inner.output_classes(input)
    }

    fn prepare(&mut self, x: &Tensor, active: &[bool]) {
        let index = self.calls.fetch_add(1, Ordering::Relaxed);
        match fault_at(&self.cfg, index) {
            Fault::Panic => panic!("chaos: injected panic at call {index}"),
            Fault::Delay => std::thread::sleep(self.cfg.delay),
            Fault::None => {}
        }
        self.inner.prepare(x, active);
    }

    fn make_scratch(&self) -> Self::Scratch {
        self.inner.make_scratch()
    }

    fn forward(&self, masks: &MaskSet, scratch: &mut Self::Scratch) -> Tensor {
        self.inner.forward(masks, scratch)
    }

    fn forward_batch(&self, mask_sets: &[MaskSet], scratch: &mut Self::Scratch) -> Vec<Tensor> {
        self.inner.forward_batch(mask_sets, scratch)
    }

    fn model_cost(&self, bayes: BayesConfig) -> Option<ModelCost> {
        self.inner.model_cost(bayes)
    }

    fn fork(&self) -> Option<Self> {
        Some(ChaosBackend {
            inner: self.inner.fork()?,
            cfg: self.cfg,
            calls: Arc::clone(&self.calls),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{predictive_on, FloatBackend};
    use crate::predict::ParallelConfig;
    use crate::source::SoftwareMaskSource;
    use bnn_nn::models;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn fault_schedule_is_pure_and_seed_sensitive() {
        let a = ChaosConfig::new(7, 0.5, 0.3);
        assert_eq!(a.schedule(64), a.schedule(64), "same seed, same schedule");
        let b = ChaosConfig::new(8, 0.5, 0.3);
        assert_ne!(
            a.schedule(64),
            b.schedule(64),
            "different seeds must decorrelate"
        );
        // Probabilities are honoured roughly (pure smoke; the exact
        // stream is pinned by the equality above).
        let faults = a.schedule(1000);
        let panics = faults.iter().filter(|f| **f == Fault::Panic).count();
        assert!((300..700).contains(&panics), "panic rate wildly off");
    }

    #[test]
    fn disabled_chaos_is_bit_transparent() {
        let net = models::lenet5(10, 1, 16, 4);
        let x = Tensor::full(Shape4::new(1, 1, 16, 16), 0.2);
        let cfg = BayesConfig::new(2, 5);
        let mut bare = FloatBackend::new(&net);
        let (want, _) = predictive_on(
            &mut bare,
            &x,
            cfg,
            &mut SoftwareMaskSource::new(3),
            ParallelConfig::serial(),
        );
        let mut wrapped = ChaosBackend::new(FloatBackend::new(&net), ChaosConfig::disabled(9));
        let (got, cost) = predictive_on(
            &mut wrapped,
            &x,
            cfg,
            &mut SoftwareMaskSource::new(3),
            ParallelConfig::serial(),
        );
        assert_eq!(got.as_slice(), want.as_slice());
        assert_eq!(wrapped.calls(), 1);
        assert!(cost.model.is_some(), "cost model must delegate");
    }

    #[test]
    fn injected_panic_fires_at_the_scheduled_call() {
        let net = models::lenet5(10, 1, 16, 4);
        let x = Tensor::full(Shape4::new(1, 1, 16, 16), 0.2);
        let cfg = BayesConfig::new(1, 2);
        // Find a seed whose schedule is [None, Panic, ...] so the
        // first call succeeds and the second panics — deterministic,
        // no flakiness.
        let chaos = (0..10_000u64)
            .map(|seed| ChaosConfig::new(seed, 0.5, 0.0))
            .find(|c| fault_at(c, 0) == Fault::None && fault_at(c, 1) == Fault::Panic)
            .expect("a seed with schedule [ok, panic] exists");
        let mut wrapped = ChaosBackend::new(FloatBackend::new(&net), chaos);
        let (first, _) = predictive_on(
            &mut wrapped,
            &x,
            cfg,
            &mut SoftwareMaskSource::new(3),
            ParallelConfig::serial(),
        );
        assert!(first.as_slice().iter().all(|v| v.is_finite()));
        let err = catch_unwind(AssertUnwindSafe(|| {
            predictive_on(
                &mut wrapped,
                &x,
                cfg,
                &mut SoftwareMaskSource::new(3),
                ParallelConfig::serial(),
            )
        }))
        .expect_err("call 1 is scheduled to panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string payload>".into());
        assert!(msg.contains("chaos: injected panic at call 1"), "{msg}");
    }

    #[test]
    fn forks_share_the_fault_budget() {
        let net = models::lenet5(10, 1, 16, 4);
        let wrapped = ChaosBackend::new(FloatBackend::new(&net), ChaosConfig::disabled(1));
        let fork = wrapped.fork().expect("float forks");
        let x = Tensor::full(Shape4::new(1, 1, 16, 16), 0.2);
        let mut fork = fork;
        fork.prepare(&x, &[false; 5]);
        assert_eq!(
            wrapped.calls(),
            1,
            "fork calls must count against the shared schedule"
        );
    }
}
